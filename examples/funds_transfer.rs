//! Electronic funds transfer under failures (§5 of the paper).
//!
//! A four-site bank processes random transfers while sites crash and
//! recover. The run reports availability, in-doubt commits, and verifies
//! that money is conserved exactly once everything settles — the paper's
//! core promise: prompt processing *and* eventual consistency.
//!
//! Run with `cargo run --example funds_transfer`.

use polyvalues::apps::FundsApp;
use polyvalues::prelude::*;
use polyvalues::simnet::{FailureConfig, FailurePlan, SimRng};

const SITES: u32 = 4;
const ACCOUNTS: u64 = 32;
const INITIAL: i64 = 1_000;

fn main() {
    let app = FundsApp::new(ACCOUNTS, INITIAL);
    let mut builder = ClusterBuilder::new(SITES, FundsApp::directory(SITES))
        .seed(2026)
        .net(NetConfig::default())
        .engine(EngineConfig::with_protocol(CommitProtocol::Polyvalue));
    builder = app.seed(builder);
    for _ in 0..3 {
        builder = builder.client(
            ClientConfig {
                record_results: false,
                ..ClientConfig::default()
            },
            Box::new(RandomTransfers::new(ACCOUNTS, 20.0, 50).with_limit(300)),
        );
    }
    let mut cluster = builder.build();

    // Crash/recovery chaos for the first 15 seconds.
    FailurePlan::poisson(
        FailureConfig {
            crash_rate_per_sec: 0.2,
            mean_downtime_secs: 0.8,
            horizon: SimTime::from_secs(15),
        },
        SITES,
        &mut SimRng::new(99),
    )
    .apply(&mut cluster.world);

    println!("banking day: {ACCOUNTS} accounts x {INITIAL}, 3 tellers, failures for 15s");
    println!();
    println!(
        "{:>5} {:>10} {:>9} {:>10} {:>12}",
        "t(s)", "committed", "in-doubt", "polyvalues", "crashes"
    );
    for step in [2u64, 5, 10, 15, 20, 30, 40] {
        cluster.run_until(SimTime::from_secs(step));
        let m = cluster.world.metrics();
        println!(
            "{:>5} {:>10} {:>9} {:>10} {:>12}",
            step,
            m.counter("client.committed"),
            m.counter("txn.in_doubt"),
            cluster.total_poly_count(),
            m.counter("node.crashes"),
        );
    }

    println!();
    let total = app.total(&cluster);
    println!(
        "final total funds: {total} (expected {})",
        app.expected_total()
    );
    assert_eq!(total, app.expected_total(), "money must be conserved");
    assert_eq!(cluster.total_poly_count(), 0, "all uncertainty resolved");
    assert_eq!(
        cluster.world.metrics().counter("relaxed.violations"),
        0,
        "polyvalue protocol never violates atomicity"
    );
    let m = cluster.world.metrics();
    if let Some(h) = m.histogram("client.latency") {
        println!(
            "commit latency: p50 {:.1} ms, p99 {:.1} ms over {} commits",
            h.quantile(0.5).unwrap_or(0.0) * 1e3,
            h.quantile(0.99).unwrap_or(0.0) * 1e3,
            h.count(),
        );
    }
    // Show the accounts ended in a plausible spread.
    let balances: Vec<i64> = (0..ACCOUNTS)
        .map(|a| {
            cluster
                .sum_items(std::iter::once(ItemId(a)))
                .expect("balance settled")
        })
        .collect();
    println!(
        "balance spread: min {} / max {}",
        balances.iter().min().unwrap(),
        balances.iter().max().unwrap()
    );
    println!();
    println!(
        "money conserved through {} crashes — atomic updates held.",
        m.counter("node.crashes")
    );
}
