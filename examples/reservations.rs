//! The paper's reservation example (§5): granting seats against an
//! *uncertain* booking count.
//!
//! "If the number of reservations granted is a polyvalue, then a new
//! reservation can be granted so long as the largest value in that polyvalue
//! is less than the number of available rooms or seats."
//!
//! The run leaves one reservation in doubt (its coordinator is cut off at
//! the moment of decision), then keeps selling seats against the polyvalued
//! count: decisions stay *certain* until the largest possible count reaches
//! capacity, turn *uncertain* for exactly one sale, and become certain
//! denials after that. No overbooking is possible in any outcome.
//!
//! Run with `cargo run --example reservations`.

use polyvalues::apps::{Decision, ReservationsApp};
use polyvalues::engine::{Msg, TxnResult};
use polyvalues::prelude::*;

fn main() {
    // One flight with 5 seats, stored at site 1.
    let app = ReservationsApp::new(2, 5);
    let flight = 1u64; // item 1 → site 1
    let mut builder = ClusterBuilder::new(2, ReservationsApp::directory(2))
        .seed(3)
        .net(NetConfig::instant())
        .engine(EngineConfig::with_protocol(CommitProtocol::Polyvalue));
    builder = app.seed(builder);
    // The ticket desk: 7 sales, one per second, starting at t = 1s. Sales
    // coordinate at the flight's own (healthy) site.
    let mut cluster = builder
        .client(
            ClientConfig {
                max_retries: 0,
                ..ClientConfig::default()
            },
            Box::new(Script::new(
                vec![app.reserve(flight); 7],
                SimDuration::from_secs(1),
            )),
        )
        .build();

    // One reservation coordinated at the *remote* site 0; cut the link the
    // instant site 0 decides, so the booked count is in doubt under T.
    cluster.world.send_from_env(
        NodeId(0),
        Msg::Submit {
            req_id: 1,
            spec: app.reserve(flight),
        },
    );
    while cluster.world.metrics().counter("txn.committed") < 1 {
        let next = SimTime(cluster.world.now().as_micros() + 1);
        cluster.run_until(next);
    }
    let now = cluster.world.now();
    cluster.world.schedule_partition(now, NodeId(0), NodeId(1));
    cluster.run_until(now + SimDuration::from_millis(900));
    println!(
        "booked count in doubt:  {}",
        cluster.item_entry(ItemId(flight)).unwrap()
    );
    println!();

    // Let the desk sell through the uncertainty.
    println!(
        "{:<6} {:>26} {:>12}",
        "sale", "booked entry after sale", "decision"
    );
    for k in 1..=7u64 {
        cluster.run_until(SimTime::from_secs(k) + SimDuration::from_millis(500));
        let entry = cluster.item_entry(ItemId(flight)).unwrap();
        let decision = cluster
            .client(0)
            .expect("client 0 exists")
            .results()
            .get(k as usize - 1)
            .map(|(_, r)| match r {
                TxnResult::Committed { granted, .. } => {
                    format!("{:?}", Decision::from_entry(granted))
                }
                TxnResult::Aborted { reason } => format!("aborted: {reason}"),
            })
            .unwrap_or_else(|| "pending".into());
        println!("{:<6} {:>26} {:>12}", k, entry.to_string(), decision);
    }
    println!();

    // Heal: the in-doubt reservation resolves; capacity was never exceeded
    // in *any* possible world, and is not exceeded now.
    let now = cluster.world.now();
    cluster.world.schedule_heal(now, NodeId(0), NodeId(1));
    cluster.run_until(now + SimDuration::from_secs(5));
    let settled = cluster.item_entry(ItemId(flight)).unwrap();
    println!("settled booked count:   {settled}");
    app.assert_no_overbooking(&cluster);
    let granted = cluster
        .client(0)
        .expect("client 0 exists")
        .results()
        .iter()
        .filter(|(_, r)| r.fully_granted())
        .count();
    let uncertain = cluster.world.metrics().counter("txn.uncertain_output");
    println!();
    println!(
        "desk granted {granted} certain seats plus {uncertain} uncertain answer(s); \
         capacity {} held in every outcome.",
        app.capacity
    );
}
