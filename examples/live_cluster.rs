//! The engine on real threads: the same `Site` logic that runs in the
//! deterministic simulation deploys onto a thread-per-site runtime with
//! crossbeam channels and wall-clock timers.
//!
//! The demo runs a three-site bank, transfers money, crashes a site
//! mid-operation, shows the WAL-backed recovery, and verifies conservation.
//!
//! Run with `cargo run --example live_cluster`.

use polyvalues::prelude::*;
use std::time::Duration;

fn transfer(from: u64, to: u64, amount: i64) -> TransactionSpec {
    let (f, t) = (ItemId(from), ItemId(to));
    TransactionSpec::new()
        .guard(Expr::read(f).ge(Expr::int(amount)))
        .update(f, Expr::read(f).sub(Expr::int(amount)))
        .update(t, Expr::read(t).add(Expr::int(amount)))
}

fn main() {
    let config = EngineConfig {
        read_timeout: SimDuration::from_millis(300),
        ready_timeout: SimDuration::from_millis(300),
        wait_timeout: SimDuration::from_millis(120),
        inquire_interval: SimDuration::from_millis(150),
        ..EngineConfig::with_protocol(CommitProtocol::Polyvalue)
    };
    let topo = Topology::new(3, Directory::Mod(3))
        .engine(config)
        .items((0..3).map(|i| (ItemId(i), Value::Int(100))))
        .collect_trace();
    let cluster = LiveCluster::from_topology(topo).expect("start live cluster");
    println!("three site threads up; account i lives at site i");

    // A few cross-site transfers through different coordinators.
    for (from, to, amount) in [(0u64, 1u64, 30i64), (1, 2, 20), (2, 0, 10)] {
        let result = cluster
            .submit(
                (from % 3) as u32,
                &transfer(from, to, amount),
                Duration::from_secs(5),
            )
            .expect("live cluster answers");
        println!(
            "transfer {from}→{to} of {amount}: committed={}",
            result.is_committed()
        );
    }

    // Crash site 2, show that its data survives in the WAL, and that a
    // transaction needing it fails cleanly rather than hanging.
    println!();
    println!("crashing site 2 …");
    cluster.crash(2).expect("site 2 exists");
    std::thread::sleep(Duration::from_millis(50));
    match cluster.submit(0, &transfer(0, 2, 5), Duration::from_secs(2)) {
        Ok(r) => println!("transfer during outage: committed={}", r.is_committed()),
        Err(e) => println!("transfer during outage: {e}"),
    }
    println!("recovering site 2 …");
    cluster.recover(2).expect("site 2 exists");
    std::thread::sleep(Duration::from_millis(300));

    let snap = cluster
        .inspect(2, Duration::from_secs(1))
        .expect("site 2 answers");
    println!(
        "site 2 after WAL replay: up={} items={:?}",
        snap.up, snap.items
    );

    // Settle and audit.
    std::thread::sleep(Duration::from_millis(300));
    let mut total = 0i64;
    for s in 0..3u32 {
        let snap = cluster.inspect(s, Duration::from_secs(1)).expect("answers");
        for (item, entry) in &snap.items {
            let v = entry.as_simple().and_then(Value::as_int).expect("settled");
            println!("  site {s}: {item} = {v}");
            total += v;
        }
    }
    println!("total funds: {total} (expected 300)");
    assert_eq!(total, 300);
    assert_eq!(cluster.total_poly_count(Duration::from_secs(1)).unwrap(), 0);

    let metrics = cluster.metrics();
    println!(
        "metrics: {} committed, {} aborted-timeout, {} crashes",
        metrics.counter("txn.committed"),
        metrics.counter("txn.aborted.timeout"),
        metrics.counter("live.crashes"),
    );

    // The same trace vocabulary the simulator emits, from real threads.
    let records = cluster.trace_records();
    let decided = records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::Decided { .. }))
        .count();
    println!("trace: {} protocol events, {decided} decisions; last five:", records.len());
    for r in records.iter().rev().take(5).rev() {
        println!("  {r}");
    }
    cluster.shutdown();
    println!("clean shutdown.");
}
