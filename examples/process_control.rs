//! Inventory / process control (§5): real-time reorder alerts over
//! uncertain stock levels.
//!
//! A production line consumes parts while deliveries restock them; a site
//! failure leaves a stock level in doubt, but the real-time decision — "is a
//! reorder due?" — usually comes out *certain* anyway, because it depends
//! only loosely on the exact level.
//!
//! Run with `cargo run --example process_control`.

use polyvalues::apps::{InventoryApp, ProductionTraffic};
use polyvalues::engine::{Msg, TxnResult};
use polyvalues::prelude::*;

fn main() {
    let app = InventoryApp::new(8, 200, 60);
    let mut builder = ClusterBuilder::new(4, InventoryApp::directory(4))
        .seed(5)
        .net(NetConfig::instant())
        .engine(EngineConfig::with_protocol(CommitProtocol::Polyvalue));
    builder = app.seed(builder);
    let mut cluster = builder
        .client(
            ClientConfig {
                record_results: true,
                max_retries: 2,
                ..ClientConfig::default()
            },
            Box::new(ProductionTraffic::new(app, 40.0, 0.3, 12, 150)),
        )
        .build();

    // Let the line run, then knock part 1's site into doubt mid-commit.
    while cluster.world.metrics().counter("txn.committed") < 20 {
        let next = SimTime(cluster.world.now().as_micros() + 1);
        cluster.run_until(next);
    }
    // Drive one explicit consume of part 1 coordinated remotely (site 0) and
    // cut the link after the decision.
    cluster.world.send_from_env(
        NodeId(0),
        Msg::Submit {
            req_id: 9000,
            spec: app.consume(1, 150),
        },
    );
    let committed = cluster.world.metrics().counter("txn.committed");
    while cluster.world.metrics().counter("txn.committed") <= committed {
        let next = SimTime(cluster.world.now().as_micros() + 1);
        cluster.run_until(next);
    }
    let now = cluster.world.now();
    cluster.world.schedule_partition(now, NodeId(0), NodeId(1));
    cluster.run_until(now + SimDuration::from_secs(1));

    let stock = cluster.item_entry(ItemId(1)).unwrap();
    println!("part 1 stock in doubt: {stock}");

    // The control loop's question is binary: reorder or not? Ask against
    // the uncertain level.
    cluster.world.send_from_env(
        NodeId(1),
        Msg::Submit {
            req_id: 9001,
            spec: app.reorder_due(1),
        },
    );
    cluster.run_until(cluster.world.now() + SimDuration::from_millis(200));
    let m = cluster.world.metrics();
    println!(
        "polytransactions so far: {}, uncertain outputs: {}",
        m.counter("txn.polytransactions"),
        m.counter("txn.uncertain_output"),
    );

    // Heal, settle, verify.
    let now = cluster.world.now();
    cluster.world.schedule_heal(now, NodeId(0), NodeId(1));
    cluster.run_until(now + SimDuration::from_secs(10));
    app.assert_stock_sane(&cluster);
    println!(
        "settled part 1 stock:  {}",
        cluster.item_entry(ItemId(1)).unwrap()
    );

    // Summarise the day.
    let results = cluster.client(0).expect("client 0 exists").results();
    let (mut consumed_ok, mut denied, mut reorder_alerts) = (0u64, 0u64, 0u64);
    for (_, result) in results {
        if let TxnResult::Committed {
            granted, outputs, ..
        } = result
        {
            if granted == &Entry::Simple(Value::Bool(true)) {
                consumed_ok += 1;
            } else if granted == &Entry::Simple(Value::Bool(false)) {
                denied += 1;
            }
            if let Some((_, alert)) = outputs.iter().find(|(name, _)| name == "reorder") {
                if alert == &Entry::Simple(Value::Bool(true)) {
                    reorder_alerts += 1;
                }
            }
        }
    }
    println!();
    println!("production summary: {consumed_ok} operations granted, {denied} denied,");
    println!("{reorder_alerts} certain reorder alerts raised; stock never negative.");
    assert_eq!(cluster.total_poly_count(), 0, "uncertainty fully resolved");
}
