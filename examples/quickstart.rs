//! Quickstart: the polyvalue mechanism in five minutes.
//!
//! Builds polyvalues by hand, runs a polytransaction through the evaluator,
//! and then drives a real two-site cluster through an in-doubt commit.
//!
//! Run with `cargo run --example quickstart`.

use polyvalues::core::expr::{evaluate, SplitMode};
use polyvalues::prelude::*;
use std::collections::BTreeMap;

fn main() {
    // ------------------------------------------------------------------
    // 1. A polyvalue is a set of ⟨value, condition⟩ pairs.
    // ------------------------------------------------------------------
    println!("== 1. polyvalues ==");
    let balance = Entry::in_doubt(
        Entry::Simple(Value::Int(90)),  // if T1 completes
        Entry::Simple(Value::Int(100)), // if T1 aborts
        TxnId(1),
    );
    println!("balance in doubt under T1:   {balance}");
    println!(
        "possible range:              {} ..= {}",
        balance.min_value(),
        balance.max_value()
    );
    println!(
        "after learning T1 aborted:   {}",
        balance.assign_outcome(TxnId(1), false)
    );
    println!();

    // ------------------------------------------------------------------
    // 2. Transactions that read polyvalues become polytransactions.
    // ------------------------------------------------------------------
    println!("== 2. polytransactions ==");
    let account = ItemId(0);
    let mut db = BTreeMap::new();
    db.insert(account, balance);
    // Withdraw 30 if the balance covers it — it does in every alternative.
    let spec = TransactionSpec::new()
        .guard(Expr::read(account).ge(Expr::int(30)))
        .update(account, Expr::read(account).sub(Expr::int(30)))
        .output("granted", Expr::read(account).ge(Expr::int(30)));
    let out = evaluate(&spec, &db, SplitMode::Lazy).expect("evaluates");
    println!("alternatives evaluated:      {}", out.alts.len());
    println!("granted in all of them:      {}", out.all_granted());
    let writes = out.collate_writes(&db).expect("valid");
    println!("new balance entry:           {}", writes[&account]);
    println!();

    // ------------------------------------------------------------------
    // 3. The same thing end to end, on a simulated two-site cluster.
    // ------------------------------------------------------------------
    println!("== 3. a cluster run with a failure ==");
    let transfer = TransactionSpec::new()
        .guard(Expr::read(ItemId(0)).ge(Expr::int(30)))
        .update(ItemId(0), Expr::read(ItemId(0)).sub(Expr::int(30)))
        .update(ItemId(1), Expr::read(ItemId(1)).add(Expr::int(30)));
    let mut cluster = ClusterBuilder::new(2, Directory::Mod(2))
        .seed(7)
        .net(NetConfig::instant())
        .engine(EngineConfig::with_protocol(CommitProtocol::Polyvalue))
        .item(ItemId(0), Value::Int(100))
        .item(ItemId(1), Value::Int(100))
        .client(
            ClientConfig {
                max_retries: 0,
                ..ClientConfig::default()
            },
            Box::new(Script::new(vec![transfer], SimDuration::from_millis(1))),
        )
        .build();
    // Run until the coordinator (site 0) has committed, then cut the link
    // before site 1 hears the decision.
    while cluster.world.metrics().counter("txn.committed") < 1 {
        let next = SimTime(cluster.world.now().as_micros() + 1);
        cluster.run_until(next);
    }
    let now = cluster.world.now();
    cluster.world.schedule_partition(now, NodeId(0), NodeId(1));
    cluster.run_until(now + SimDuration::from_secs(1));
    println!(
        "item 0 (decision arrived):   {}",
        cluster.item_entry(ItemId(0)).unwrap()
    );
    println!(
        "item 1 (in doubt):           {}",
        cluster.item_entry(ItemId(1)).unwrap()
    );
    // Heal: the §3.3 outcome propagation collapses the polyvalue.
    let now = cluster.world.now();
    cluster.world.schedule_heal(now, NodeId(0), NodeId(1));
    cluster.run_until(now + SimDuration::from_secs(3));
    println!(
        "item 1 (after recovery):     {}",
        cluster.item_entry(ItemId(1)).unwrap()
    );
    assert_eq!(cluster.total_poly_count(), 0);
    println!();
    println!("done: processing never blocked, and the database converged.");
}
