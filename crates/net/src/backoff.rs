//! Reconnect policy of the socket runtime: exponential backoff with
//! deterministic jitter, plus a per-peer circuit breaker.
//!
//! The original runtime retried a dead peer on a fixed cadence
//! (`RetryBudget`: N attempts, fixed delay) and retried *synchronously*,
//! stalling the whole event loop while a peer was down. This module is the
//! policy half of the fix (the event-loop half lives in
//! [`node`](crate::node)):
//!
//! * [`Backoff`] — how long to wait before attempt `k`: exponential growth
//!   from `base` toward `max`, with a ±`jitter` fraction of randomisation so
//!   a healed partition is rejoined by staggered probes instead of a
//!   thundering herd. The jitter is a pure function of `(salt, attempt)` —
//!   every delay a node ever picks is reproducible from its config.
//! * [`Circuit`] — the per-peer breaker: `Closed` while the link is healthy,
//!   `Open` (with a deadline) after a failure, `HalfOpen` while a single
//!   probe is in flight. Exhausting `attempts` consecutive failures trips
//!   the breaker permanently ([`CircuitVerdict::Exhausted`]), which the node
//!   surfaces as a structured `EngineError::Unreachable` — degraded, never a
//!   hot loop and never a hang.
//!
//! Both are plain data + pure transitions, so the chaos tests can drive them
//! without sockets, and a running node can swap its [`Backoff`] live (the
//! `ConfigBackoff` wire frame) without touching connection state.

use pv_engine::topology::BackoffConfig;
use std::time::{Duration, Instant};

/// An exponential-backoff policy with deterministic jitter.
///
/// Delay before attempt `k` (1-based) is
/// `min(base * factor^(k-1), max)`, scaled by a factor drawn uniformly from
/// `[1 - jitter, 1 + jitter]` via a hash of `(salt, k)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Backoff {
    /// Delay before the first retry.
    pub base: Duration,
    /// Upper bound any single delay grows to.
    pub max: Duration,
    /// Multiplicative growth per attempt (≥ 1.0).
    pub factor: f64,
    /// Fraction of each delay randomised (0.0 = none, 0.5 = ±50 %).
    pub jitter: f64,
    /// Consecutive failures tolerated before the circuit trips for good.
    pub attempts: u32,
}

impl Default for Backoff {
    /// Startup-friendly default: ~50 attempts spanning a few minutes of
    /// wall clock at the cap, matching the old `RetryBudget` spirit
    /// (tolerate a slow-binding peer) while backing off instead of polling.
    fn default() -> Self {
        Backoff {
            base: Duration::from_millis(50),
            max: Duration::from_millis(1000),
            factor: 2.0,
            jitter: 0.25,
            attempts: 50,
        }
    }
}

impl Backoff {
    /// A tight policy for tests that want fast structured failure.
    pub fn fast_fail() -> Self {
        Backoff {
            base: Duration::from_millis(50),
            max: Duration::from_millis(200),
            factor: 2.0,
            jitter: 0.25,
            attempts: 3,
        }
    }

    /// A patient policy for chaos runs: peers stay down for seconds at a
    /// time and must be survived, not declared unreachable.
    pub fn patient() -> Self {
        Backoff {
            base: Duration::from_millis(25),
            max: Duration::from_millis(500),
            factor: 1.6,
            jitter: 0.25,
            attempts: 10_000,
        }
    }

    /// The uniform-cadence policy the old `RetryBudget` expressed: `attempts`
    /// tries, `delay` apart, no growth, no jitter.
    pub fn uniform(attempts: u32, delay: Duration) -> Self {
        Backoff {
            base: delay,
            max: delay,
            factor: 1.0,
            jitter: 0.0,
            attempts,
        }
    }

    /// Builds the policy from its runtime-agnostic [`Topology`]
    /// (`pv_engine::topology`) description.
    pub fn from_config(c: &BackoffConfig) -> Self {
        Backoff {
            base: Duration::from_millis(c.base_ms),
            max: Duration::from_millis(c.max_ms.max(c.base_ms)),
            factor: c.factor.max(1.0),
            jitter: c.jitter.clamp(0.0, 1.0),
            attempts: c.attempts,
        }
    }

    /// The plain-data form that travels in a [`Topology`]
    /// (`pv_engine::topology`) or a `ConfigBackoff` wire frame.
    pub fn to_config(self) -> BackoffConfig {
        BackoffConfig {
            base_ms: self.base.as_millis() as u64,
            max_ms: self.max.as_millis() as u64,
            factor: self.factor,
            jitter: self.jitter,
            attempts: self.attempts,
        }
    }

    /// How long to wait before attempt `attempt` (1-based). Deterministic in
    /// `(self, salt, attempt)`; different salts (peer ids, client ids)
    /// de-correlate the fleets so a healed partition sees staggered probes.
    pub fn delay(&self, attempt: u32, salt: u64) -> Duration {
        let exp = attempt.saturating_sub(1).min(63);
        let grown = self.base.as_secs_f64() * self.factor.max(1.0).powi(exp as i32);
        let capped = grown.min(self.max.as_secs_f64());
        let jittered = if self.jitter > 0.0 {
            // splitmix64 of (salt, attempt) → uniform in [-1, 1).
            let mut z = salt ^ (u64::from(attempt)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
            let sign = 2.0 * unit - 1.0; // [-1,1)
            capped * (1.0 + self.jitter.clamp(0.0, 1.0) * sign)
        } else {
            capped
        };
        Duration::from_secs_f64(jittered.max(0.0))
    }

    /// The TCP connect timeout a dial attempt under this policy should use.
    pub fn connect_timeout(&self) -> Duration {
        self.base.max(Duration::from_millis(250))
    }
}

/// Where a peer link's breaker currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitState {
    /// Link healthy (or never yet used): dial/send freely.
    Closed,
    /// Recent failure: no probe until the deadline passes.
    Open {
        /// When the next probe may launch.
        until: Instant,
    },
    /// A single probe is in flight; its outcome decides the next state.
    HalfOpen,
}

/// What [`Circuit::on_failure`] decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitVerdict {
    /// The circuit opened (or re-opened); retry after the embedded deadline.
    Backoff {
        /// How long the circuit stays open.
        wait: Duration,
    },
    /// The failure budget is exhausted; the peer is unreachable.
    Exhausted,
}

/// A per-peer circuit breaker governed by a [`Backoff`] policy.
#[derive(Debug, Clone)]
pub struct Circuit {
    policy: Backoff,
    state: CircuitState,
    /// Consecutive failures since the last success.
    failures: u32,
    /// Jitter salt (derived from the owning node and peer ids).
    salt: u64,
}

impl Circuit {
    /// A closed circuit under `policy`, jitter-salted by `salt`.
    pub fn new(policy: Backoff, salt: u64) -> Self {
        Circuit {
            policy,
            state: CircuitState::Closed,
            failures: 0,
            salt,
        }
    }

    /// The current breaker state.
    pub fn state(&self) -> CircuitState {
        self.state
    }

    /// Consecutive failures since the last success.
    pub fn failures(&self) -> u32 {
        self.failures
    }

    /// Swaps the policy live; current state and failure count carry over.
    pub fn set_policy(&mut self, policy: Backoff) {
        self.policy = policy;
    }

    /// The active policy.
    pub fn policy(&self) -> &Backoff {
        &self.policy
    }

    /// Whether a dial probe may launch now. `Closed` always may; `Open`
    /// becomes `HalfOpen` (and answers yes) once its deadline passes;
    /// `HalfOpen` already has a probe out, so no.
    pub fn try_probe(&mut self, now: Instant) -> bool {
        match self.state {
            CircuitState::Closed => {
                self.state = CircuitState::HalfOpen;
                true
            }
            CircuitState::Open { until } if now >= until => {
                self.state = CircuitState::HalfOpen;
                true
            }
            CircuitState::Open { .. } | CircuitState::HalfOpen => false,
        }
    }

    /// Records a successful connection: breaker closes, failures reset.
    pub fn on_success(&mut self) {
        self.state = CircuitState::Closed;
        self.failures = 0;
    }

    /// Records a failed dial (or a connection that died): the breaker opens
    /// with the policy's next delay, or reports exhaustion.
    pub fn on_failure(&mut self, now: Instant) -> CircuitVerdict {
        self.failures = self.failures.saturating_add(1);
        if self.failures >= self.policy.attempts {
            // Stay open forever; the owner surfaces Unreachable.
            self.state = CircuitState::Open {
                until: now + Duration::from_secs(3600),
            };
            return CircuitVerdict::Exhausted;
        }
        let wait = self.policy.delay(self.failures, self.salt);
        self.state = CircuitState::Open { until: now + wait };
        CircuitVerdict::Backoff { wait }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_exponentially_to_the_cap() {
        let b = Backoff {
            jitter: 0.0,
            ..Backoff::default()
        };
        let d1 = b.delay(1, 0);
        let d2 = b.delay(2, 0);
        let d3 = b.delay(3, 0);
        assert_eq!(d1, Duration::from_millis(50));
        assert_eq!(d2, Duration::from_millis(100));
        assert_eq!(d3, Duration::from_millis(200));
        assert_eq!(b.delay(30, 0), b.max, "growth caps at max");
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let b = Backoff::default();
        for attempt in 1..10 {
            for salt in [1u64, 7, 42] {
                let d = b.delay(attempt, salt);
                assert_eq!(d, b.delay(attempt, salt), "same inputs, same delay");
                let nominal = b
                    .delay(attempt, salt)
                    .as_secs_f64()
                    .max(f64::MIN_POSITIVE);
                let plain = Backoff { jitter: 0.0, ..b }.delay(attempt, salt).as_secs_f64();
                assert!(
                    (nominal - plain).abs() <= plain * b.jitter + 1e-9,
                    "jitter stays within ±{} of {plain}",
                    b.jitter
                );
            }
        }
    }

    #[test]
    fn different_salts_decorrelate() {
        let b = Backoff::default();
        let delays: Vec<Duration> = (0..8).map(|salt| b.delay(4, salt)).collect();
        let distinct: std::collections::BTreeSet<Duration> = delays.iter().copied().collect();
        assert!(distinct.len() > 4, "salts spread the herd: {delays:?}");
    }

    #[test]
    fn uniform_reproduces_the_old_retry_budget() {
        let b = Backoff::uniform(3, Duration::from_millis(50));
        assert_eq!(b.delay(1, 9), Duration::from_millis(50));
        assert_eq!(b.delay(3, 9), Duration::from_millis(50));
        assert_eq!(b.attempts, 3);
    }

    #[test]
    fn config_round_trips() {
        let b = Backoff::default();
        let back = Backoff::from_config(&b.to_config());
        assert_eq!(b, back);
    }

    #[test]
    fn circuit_walks_closed_open_halfopen_closed() {
        let mut c = Circuit::new(Backoff::fast_fail(), 1);
        let t0 = Instant::now();
        assert_eq!(c.state(), CircuitState::Closed);
        assert!(c.try_probe(t0), "closed circuit probes immediately");
        assert_eq!(c.state(), CircuitState::HalfOpen);
        assert!(!c.try_probe(t0), "only one probe in flight");
        let verdict = c.on_failure(t0);
        let wait = match verdict {
            CircuitVerdict::Backoff { wait } => wait,
            CircuitVerdict::Exhausted => panic!("first failure must not exhaust"),
        };
        assert!(matches!(c.state(), CircuitState::Open { .. }));
        assert!(!c.try_probe(t0), "open circuit holds until the deadline");
        assert!(c.try_probe(t0 + wait + Duration::from_millis(1)));
        c.on_success();
        assert_eq!(c.state(), CircuitState::Closed);
        assert_eq!(c.failures(), 0);
    }

    #[test]
    fn circuit_exhausts_after_the_attempt_budget() {
        let mut c = Circuit::new(Backoff::fast_fail(), 1);
        let t0 = Instant::now();
        let mut verdicts = Vec::new();
        for k in 0..3 {
            let _ = c.try_probe(t0 + Duration::from_secs(k));
            verdicts.push(c.on_failure(t0 + Duration::from_secs(k)));
        }
        assert!(matches!(verdicts[0], CircuitVerdict::Backoff { .. }));
        assert!(matches!(verdicts[1], CircuitVerdict::Backoff { .. }));
        assert_eq!(verdicts[2], CircuitVerdict::Exhausted);
        assert!(
            !c.try_probe(t0 + Duration::from_secs(30)),
            "an exhausted circuit stays open"
        );
    }

    #[test]
    fn policy_swaps_live() {
        let mut c = Circuit::new(Backoff::fast_fail(), 1);
        c.set_policy(Backoff::patient());
        assert_eq!(c.policy().attempts, 10_000);
        let t0 = Instant::now();
        for _ in 0..10 {
            let _ = c.try_probe(t0);
            assert!(
                matches!(c.on_failure(t0), CircuitVerdict::Backoff { .. }),
                "patient policy does not exhaust in 10 failures"
            );
        }
    }
}
