//! An in-process networked cluster: every site node runs its real socket
//! event loop on its own thread, over real localhost TCP.
//!
//! This is the third consumer of the shared [`Topology`] — after
//! `ClusterBuilder::from_topology` (simulation) and
//! `LiveCluster::from_topology` (threads + channels) — and the test/bench
//! harness for the `pv-node` binary's event loop: identical [`Node`] code,
//! just hosted on threads instead of separate processes, so integration
//! tests exercise the full wire path (codec, Hello routing, backpressure,
//! reconnects) without process management. With [`NetBuilder::chaos`] the
//! site links additionally route through a fault-injecting [`ChaosNet`]
//! proxy, which is how the partition/heal and fault-soak tests run a real
//! TCP cluster through the §3.1/§3.3 recovery machinery.

use crate::backoff::Backoff;
use crate::chaos::ChaosNet;
use crate::client::NetClient;
use crate::node::{Node, NodeConfig};
use crate::wire::NodeSnapshot;
use parking_lot::Mutex;
use pv_core::TransactionSpec;
use pv_engine::messages::TxnResult;
use pv_engine::topology::Topology;
use pv_engine::{EngineError, Site};
use pv_simnet::Metrics;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

/// Configures and starts a [`NetCluster`] from a shared [`Topology`].
pub struct NetBuilder {
    topo: Topology,
    backoff: Backoff,
    chaos_seed: Option<u64>,
}

impl NetBuilder {
    /// Starts a builder over an existing cluster description — the same
    /// value `ClusterBuilder::from_topology` and `LiveCluster::from_topology`
    /// accept. A [`Topology::backoff`] policy, when present, seeds the
    /// builder's backoff.
    pub fn from_topology(topo: Topology) -> Self {
        let backoff = topo
            .backoff
            .as_ref()
            .map(Backoff::from_config)
            .unwrap_or_default();
        NetBuilder {
            topo,
            backoff,
            chaos_seed: None,
        }
    }

    /// Overrides the dial/reconnect policy (tests use
    /// [`Backoff::fast_fail`]).
    pub fn backoff(mut self, backoff: Backoff) -> Self {
        self.backoff = backoff;
        self
    }

    /// Routes every site→site link through a fault-injecting [`ChaosNet`]
    /// proxy seeded with `seed`. The proxies start transparent; drive them
    /// through [`NetCluster::chaos`].
    pub fn chaos(mut self, seed: u64) -> Self {
        self.chaos_seed = Some(seed);
        self
    }

    /// Binds every site on a loopback port, wires the peer tables (through
    /// chaos proxies when enabled), and spawns one event-loop thread per
    /// site.
    pub fn start(self) -> Result<NetCluster, EngineError> {
        let sites = self.topo.sites;
        let mut nodes = Vec::with_capacity(sites as usize);
        for s in 0..sites {
            let config = NodeConfig {
                site: s,
                topo: self.topo.clone(),
                backoff: self.backoff,
            };
            nodes.push(Node::bind(config, "127.0.0.1:0".parse().expect("loopback"))?);
        }
        let addrs: Vec<SocketAddr> = nodes
            .iter()
            .map(|n| n.local_addr())
            .collect::<Result<_, _>>()?;
        let chaos = match self.chaos_seed {
            Some(seed) => Some(ChaosNet::new(seed, &addrs)?),
            None => None,
        };
        let peer_addrs = chaos
            .as_ref()
            .map(|c| c.proxy_addrs().to_vec())
            .unwrap_or_else(|| addrs.clone());
        let mut handles = Vec::with_capacity(sites as usize);
        for (s, mut node) in nodes.into_iter().enumerate() {
            node.set_peers(peer_addrs.clone());
            handles.push(
                std::thread::Builder::new()
                    .name(format!("pv-net-{s}"))
                    .spawn(move || node.run())
                    .expect("spawn node thread"),
            );
        }
        Ok(NetCluster {
            addrs,
            handles,
            chaos,
            topo: self.topo,
            backoff: self.backoff,
            next_client: AtomicU32::new(sites + 1),
            control: Mutex::new(None),
        })
    }
}

/// A running socket cluster (one event-loop thread per site, real TCP).
pub struct NetCluster {
    addrs: Vec<SocketAddr>,
    handles: Vec<std::thread::JoinHandle<Result<Site, EngineError>>>,
    chaos: Option<ChaosNet>,
    topo: Topology,
    backoff: Backoff,
    next_client: AtomicU32,
    /// One lazily-opened control connection per site, for
    /// submit/inspect/metrics convenience calls.
    control: Mutex<Option<Vec<NetClient>>>,
}

impl NetCluster {
    /// Starts configuring a networked cluster (alias for
    /// [`NetBuilder::from_topology`]).
    pub fn builder(topo: Topology) -> NetBuilder {
        NetBuilder::from_topology(topo)
    }

    /// Spawns a cluster with the default dial/reconnect policy.
    pub fn from_topology(topo: Topology) -> Result<Self, EngineError> {
        NetBuilder::from_topology(topo).start()
    }

    /// The listen address of every site (index = site id). These are the
    /// sites' real addresses even under chaos — clients bypass the proxies.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// The chaos proxy layer, when the cluster was started with
    /// [`NetBuilder::chaos`].
    pub fn chaos(&self) -> Option<&ChaosNet> {
        self.chaos.as_ref()
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.addrs.len()
    }

    /// Opens a new client connection to `site` with a fresh, unique client
    /// node id. Independent connections can pipeline independently.
    pub fn client(&self, site: u32) -> Result<NetClient, EngineError> {
        let addr = *self
            .addrs
            .get(site as usize)
            .ok_or(EngineError::UnknownSite(site))?;
        let node = self.next_client.fetch_add(1, Ordering::Relaxed);
        NetClient::connect(addr, node, self.backoff)
    }

    /// Runs `f` with the cluster's cached control connection to `site`.
    fn with_control<T>(
        &self,
        site: u32,
        f: impl FnOnce(&mut NetClient) -> Result<T, EngineError>,
    ) -> Result<T, EngineError> {
        if site as usize >= self.addrs.len() {
            return Err(EngineError::UnknownSite(site));
        }
        let mut guard = self.control.lock();
        if guard.is_none() {
            let mut clients = Vec::with_capacity(self.addrs.len());
            for s in 0..self.addrs.len() as u32 {
                clients.push(self.client(s)?);
            }
            *guard = Some(clients);
        }
        f(&mut guard.as_mut().expect("just filled")[site as usize])
    }

    /// Submits a transaction to `coordinator` and blocks for the result.
    /// With `Topology::static_checks` on, the spec is gated client-side
    /// first (same contract as `LiveCluster::submit`).
    pub fn submit(
        &self,
        coordinator: u32,
        spec: &TransactionSpec,
        deadline: Duration,
    ) -> Result<TxnResult, EngineError> {
        if self.topo.engine.static_checks {
            if let Err(report) = pv_analysis::gate_spec(spec) {
                return Err(EngineError::Rejected(report));
            }
        }
        self.with_control(coordinator, |c| c.submit(spec, deadline))
    }

    /// Snapshots a site's state.
    pub fn inspect(&self, site: u32, deadline: Duration) -> Result<NodeSnapshot, EngineError> {
        self.with_control(site, |c| c.inspect(deadline))
    }

    /// Serves a coordination-free read-only transaction at `site`: the site
    /// pins an MVCC snapshot, reads `items` (all its items when the list is
    /// empty), and answers `(snapshot, entries)` without touching its lock
    /// table or sending any site-to-site message.
    pub fn snapshot_read(
        &self,
        site: u32,
        items: &[pv_core::ItemId],
        deadline: Duration,
    ) -> Result<pv_store::SnapshotView, EngineError> {
        self.with_control(site, |c| c.snapshot_read(items, deadline))
    }

    /// Total polyvalued items across sites.
    pub fn total_poly_count(&self, deadline: Duration) -> Result<u64, EngineError> {
        let mut total = 0;
        for s in 0..self.addrs.len() as u32 {
            total += self.inspect(s, deadline)?.poly_count;
        }
        Ok(total)
    }

    /// Fetches and merges every site's metrics registry.
    pub fn metrics(&self, deadline: Duration) -> Result<Metrics, EngineError> {
        let mut merged = Metrics::new();
        for s in 0..self.addrs.len() as u32 {
            let m = self.with_control(s, |c| c.metrics(deadline))?;
            merged.merge(&m);
        }
        Ok(merged)
    }

    /// Fetches one site's metrics registry (unmerged).
    pub fn site_metrics(&self, site: u32, deadline: Duration) -> Result<Metrics, EngineError> {
        self.with_control(site, |c| c.metrics(deadline))
    }

    /// Pushes a new reconnect/backoff policy to every site live.
    pub fn configure_backoff(
        &self,
        config: pv_engine::topology::BackoffConfig,
    ) -> Result<(), EngineError> {
        for s in 0..self.addrs.len() as u32 {
            self.with_control(s, |c| c.configure_backoff(config))?;
        }
        Ok(())
    }

    /// Sends every site a shutdown frame and joins the event-loop threads,
    /// returning the final [`Site`] states.
    pub fn shutdown(self) -> Result<Vec<Site>, EngineError> {
        {
            let mut guard = self.control.lock();
            if guard.is_none() {
                let mut clients = Vec::with_capacity(self.addrs.len());
                for s in 0..self.addrs.len() as u32 {
                    let addr = self.addrs[s as usize];
                    let node = self.next_client.fetch_add(1, Ordering::Relaxed);
                    clients.push(NetClient::connect(addr, node, self.backoff)?);
                }
                *guard = Some(clients);
            }
            for client in guard.as_mut().expect("just filled") {
                client.shutdown()?;
            }
        }
        let mut sites = Vec::with_capacity(self.handles.len());
        for handle in self.handles {
            sites.push(handle.join().expect("node thread panicked")?);
        }
        if let Some(chaos) = self.chaos {
            chaos.shutdown();
        }
        Ok(sites)
    }
}
