//! Networked fault injection: a frame-aware TCP proxy on every site link.
//!
//! A [`ChaosNet`] fronts each site of a `pv-net` cluster with a proxy
//! listener. Site peer tables point at the proxies (the nodes themselves
//! still bind their real addresses), so every site→site connection crosses a
//! proxy that can misbehave on command: delay frames, drop them, duplicate
//! them, throttle bytes, cut a connection in the middle of a frame, or
//! blackhole a direction entirely (a partition). Faults are configured per
//! *directed link* — the proxy learns which node is talking from the `Hello`
//! frame every connection opens with — so one-way partitions and asymmetric
//! loss are first-class.
//!
//! Injection decisions come from a [`SimRng`] forked per connection from one
//! master seed, so a chaos schedule replays the same decision sequence for
//! the same seed and traffic. (Wall-clock interleaving across real sockets
//! is not deterministic — the *faults* are, the timing is not; the recovery
//! invariants the harness checks hold under any interleaving.)
//!
//! The proxy operates on whole frames in the faulted direction: a dropped
//! or delayed frame never corrupts the byte stream, mirroring message-level
//! loss in the simulator's [`pv_simnet`] fault model. The one deliberate
//! exception is [`LinkFaults::cut_midframe_prob`], which truncates a frame
//! and closes the socket — exercising the decoder's partial-frame handling
//! and the node's reconnect path at once. Everything injected is counted in
//! a shared metrics registry under `chaos.injected.*`.

use crate::wire::{decode_frame, Frame, HEADER_LEN};
use parking_lot::Mutex;
use pv_engine::EngineError;
use pv_simnet::{Metrics, SimRng};
use std::collections::{BTreeMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a proxied connection may sit without a parseable `Hello` before
/// the proxy gives up on it.
const HELLO_DEADLINE: Duration = Duration::from_secs(5);

/// Poll tick of the per-connection pump loop.
const PUMP_TICK: Duration = Duration::from_millis(1);

/// The fault schedule of one directed site link.
///
/// All probabilities are per frame in `[0, 1]`; the zero value (the
/// `Default`) is a transparent proxy.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LinkFaults {
    /// Extra latency added to every forwarded frame.
    pub delay: Duration,
    /// Probability a frame is silently dropped.
    pub drop_prob: f64,
    /// Probability a frame is delivered twice.
    pub dup_prob: f64,
    /// Byte-rate cap on the link (`0` = unlimited).
    pub throttle_bytes_per_sec: u64,
    /// Probability a frame is truncated mid-header/payload and the
    /// connection cut — the receiver sees a partial frame then EOF.
    pub cut_midframe_prob: f64,
    /// Blackholes the direction: existing connections are killed and new
    /// ones closed as soon as their `Hello` identifies the link.
    pub blocked: bool,
}

impl LinkFaults {
    /// A transparent link (no faults).
    pub fn clean() -> Self {
        LinkFaults::default()
    }

    /// A blocked (partitioned) link.
    pub fn partitioned() -> Self {
        LinkFaults {
            blocked: true,
            ..LinkFaults::default()
        }
    }
}

struct FaultTable {
    default: LinkFaults,
    links: BTreeMap<(u32, u32), LinkFaults>,
}

impl FaultTable {
    fn get(&self, from: u32, to: u32) -> LinkFaults {
        self.links
            .get(&(from, to))
            .copied()
            .unwrap_or(self.default)
    }

    fn entry(&mut self, from: u32, to: u32) -> &mut LinkFaults {
        let fallback = self.default;
        self.links.entry((from, to)).or_insert(fallback)
    }
}

struct Shared {
    faults: Mutex<FaultTable>,
    /// Where each proxy currently forwards (index = site id). Mutable so a
    /// site restarted on a fresh port can be re-targeted while its
    /// proxy-facing address — the one in every peer table — stays stable.
    reals: Mutex<Vec<SocketAddr>>,
    metrics: Mutex<Metrics>,
    stop: AtomicBool,
    conn_serial: AtomicU64,
    seed: u64,
}

impl Shared {
    fn inc(&self, key: &'static str) {
        self.metrics.lock().inc(key);
    }
}

/// A fleet of fault-injecting proxies, one per site of a cluster.
///
/// Build with the sites' *real* listen addresses; point the sites' peer
/// tables at [`ChaosNet::proxy_addrs`] instead. Clients keep using the real
/// addresses — chaos is injected between sites, where the §3.1/§3.3
/// protocol has to survive it, not between the harness and its probes.
pub struct ChaosNet {
    proxy_addrs: Vec<SocketAddr>,
    shared: Arc<Shared>,
    accepters: Vec<std::thread::JoinHandle<()>>,
}

impl ChaosNet {
    /// Binds one proxy listener per entry of `real_addrs` (loopback, OS
    /// port) and starts forwarding. `seed` drives every injection decision.
    pub fn new(seed: u64, real_addrs: &[SocketAddr]) -> Result<Self, EngineError> {
        let shared = Arc::new(Shared {
            faults: Mutex::new(FaultTable {
                default: LinkFaults::default(),
                links: BTreeMap::new(),
            }),
            reals: Mutex::new(real_addrs.to_vec()),
            metrics: Mutex::new(Metrics::new()),
            stop: AtomicBool::new(false),
            conn_serial: AtomicU64::new(0),
            seed,
        });
        let mut proxy_addrs = Vec::with_capacity(real_addrs.len());
        let mut accepters = Vec::with_capacity(real_addrs.len());
        for to in 0..real_addrs.len() {
            let listener = TcpListener::bind("127.0.0.1:0")
                .map_err(|e| EngineError::Io(format!("bind chaos proxy: {e}")))?;
            listener
                .set_nonblocking(true)
                .map_err(|e| EngineError::Io(format!("set_nonblocking: {e}")))?;
            proxy_addrs.push(
                listener
                    .local_addr()
                    .map_err(|e| EngineError::Io(format!("local_addr: {e}")))?,
            );
            let shared = Arc::clone(&shared);
            let to = to as u32;
            accepters.push(
                std::thread::Builder::new()
                    .name(format!("pv-chaos-accept-{to}"))
                    .spawn(move || accept_loop(listener, to, shared))
                    .map_err(|e| EngineError::Io(format!("spawn accepter: {e}")))?,
            );
        }
        Ok(ChaosNet {
            proxy_addrs,
            shared,
            accepters,
        })
    }

    /// The proxy address fronting each site (index = site id). Hand these
    /// to the sites as their peer table.
    pub fn proxy_addrs(&self) -> &[SocketAddr] {
        &self.proxy_addrs
    }

    /// Repoints site `site`'s proxy at a new real address. The chaos
    /// harness restarts killed nodes on fresh ports (`std` exposes no
    /// `SO_REUSEADDR`, so the old port may sit in TIME_WAIT) — peers keep
    /// dialing the same proxy address and land on the reborn process.
    pub fn retarget(&self, site: u32, real: SocketAddr) {
        let mut reals = self.shared.reals.lock();
        if let Some(slot) = reals.get_mut(site as usize) {
            *slot = real;
        }
    }

    /// Sets the fault schedule applied to links without an explicit entry.
    pub fn set_default(&self, faults: LinkFaults) {
        self.shared.faults.lock().default = faults;
    }

    /// Sets the fault schedule of the directed link `from → to`.
    pub fn set_link(&self, from: u32, to: u32, faults: LinkFaults) {
        self.shared.faults.lock().links.insert((from, to), faults);
    }

    /// The current fault schedule of the directed link `from → to`.
    pub fn link(&self, from: u32, to: u32) -> LinkFaults {
        self.shared.faults.lock().get(from, to)
    }

    /// Partitions site groups `a` and `b` from each other (both
    /// directions). Existing connections across the cut are killed; redials
    /// are refused until [`ChaosNet::heal`]. Non-blocking fault fields of
    /// affected links are preserved.
    pub fn partition(&self, a: &[u32], b: &[u32]) {
        let mut table = self.shared.faults.lock();
        for &x in a {
            for &y in b {
                table.entry(x, y).blocked = true;
                table.entry(y, x).blocked = true;
            }
        }
    }

    /// Blocks only the `from` group → `to` group direction (an asymmetric
    /// partition: requests die, replies from the other side still flow on
    /// their own links).
    pub fn partition_oneway(&self, from: &[u32], to: &[u32]) {
        let mut table = self.shared.faults.lock();
        for &x in from {
            for &y in to {
                table.entry(x, y).blocked = true;
            }
        }
    }

    /// Unblocks every link (other fault fields are preserved). Healed sites
    /// rejoin on their own backoff schedules — the harness asserts that the
    /// rejoin is paced, not a thundering herd.
    pub fn heal(&self) {
        let mut table = self.shared.faults.lock();
        table.default.blocked = false;
        for faults in table.links.values_mut() {
            faults.blocked = false;
        }
    }

    /// A snapshot of everything injected so far (`chaos.injected.*`
    /// counters).
    pub fn metrics(&self) -> Metrics {
        let mut out = Metrics::new();
        out.merge(&self.shared.metrics.lock());
        out
    }

    /// Stops the proxy threads. Existing proxied connections close; the
    /// sites behind the proxies are untouched.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        for handle in self.accepters.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ChaosNet {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

fn accept_loop(listener: TcpListener, to: u32, shared: Arc<Shared>) {
    let mut pumps: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let serial = shared.conn_serial.fetch_add(1, Ordering::Relaxed);
                let real = shared.reals.lock()[to as usize];
                let shared = Arc::clone(&shared);
                if let Ok(handle) = std::thread::Builder::new()
                    .name(format!("pv-chaos-pump-{to}-{serial}"))
                    .spawn(move || pump_conn(stream, real, to, serial, shared))
                {
                    pumps.push(handle);
                }
                pumps.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
    for handle in pumps {
        let _ = handle.join();
    }
}

/// Reads whatever `stream` has available into `buf`; returns false once the
/// connection is finished (EOF or error).
fn fill(stream: &mut TcpStream, buf: &mut Vec<u8>) -> bool {
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return false,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
}

/// Writes as much of `buf` as the socket takes, up to `budget` bytes;
/// returns `Err(())` once the connection is finished.
fn drain(stream: &mut TcpStream, buf: &mut Vec<u8>, budget: usize) -> Result<usize, ()> {
    let mut written = 0;
    while written < budget && !buf.is_empty() {
        let n = buf.len().min(budget - written);
        match stream.write(&buf[..n]) {
            Ok(0) => return Err(()),
            Ok(k) => {
                buf.drain(..k);
                written += k;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return Err(()),
        }
    }
    Ok(written)
}

/// One proxied connection: learn the source node from its `Hello`, dial the
/// real site behind the proxy, then pump frames with faults applied in the
/// client→site direction and bytes relayed verbatim the other way.
fn pump_conn(
    mut client: TcpStream,
    real: SocketAddr,
    to: u32,
    serial: u64,
    shared: Arc<Shared>,
) {
    if client.set_nonblocking(true).is_err() {
        return;
    }
    let _ = client.set_nodelay(true);

    // Phase 1: wait for the Hello that names the directed link.
    let mut rbuf: Vec<u8> = Vec::new();
    let deadline = Instant::now() + HELLO_DEADLINE;
    let (from, hello_raw) = loop {
        if shared.stop.load(Ordering::SeqCst) || Instant::now() >= deadline {
            return;
        }
        if !fill(&mut client, &mut rbuf) {
            return;
        }
        match decode_frame(&rbuf) {
            Ok(Some((Frame::Hello { node, .. }, n))) => {
                let raw = rbuf[..n].to_vec();
                rbuf.drain(..n);
                break (node, raw);
            }
            Ok(Some(_)) | Err(_) => return, // first frame must be Hello
            Ok(None) => std::thread::sleep(PUMP_TICK),
        }
    };

    if shared.faults.lock().get(from, to).blocked {
        shared.inc("chaos.injected.conn_refused");
        return; // dropping the socket = connection refused mid-partition
    }

    let Ok(server) = TcpStream::connect_timeout(&real, Duration::from_secs(2)) else {
        return;
    };
    let mut server = server;
    if server.set_nonblocking(true).is_err() {
        return;
    }
    let _ = server.set_nodelay(true);

    let mut rng = SimRng::new(shared.seed).fork((u64::from(from) << 32) | u64::from(to) ^ serial);

    // Frames waiting out their injected delay, FIFO per due time.
    let mut delayed: VecDeque<(Instant, Vec<u8>)> = VecDeque::new();
    // Bytes cleared for the site, pending socket capacity (and throttle).
    let mut server_wbuf: Vec<u8> = hello_raw;
    // Reverse direction: site → dialer, relayed verbatim.
    let mut client_wbuf: Vec<u8> = Vec::new();
    // Token bucket for throttling (refilled by wall-clock elapsed).
    let mut tokens: f64 = 0.0;
    let mut last_refill = Instant::now();
    let mut cut_after_flush = false;

    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let faults = shared.faults.lock().get(from, to);
        if faults.blocked {
            shared.inc("chaos.injected.conn_killed");
            return;
        }

        let client_alive = fill(&mut client, &mut rbuf);
        if rbuf.len() > 64 * 1024 * 1024 {
            return; // runaway unparseable stream
        }

        // Apply per-frame faults to everything parseable.
        loop {
            match decode_frame(&rbuf) {
                Ok(Some((_, n))) => {
                    let raw = rbuf[..n].to_vec();
                    rbuf.drain(..n);
                    if faults.drop_prob > 0.0 && rng.chance(faults.drop_prob) {
                        shared.inc("chaos.injected.drop");
                        continue;
                    }
                    if faults.cut_midframe_prob > 0.0 && rng.chance(faults.cut_midframe_prob) {
                        shared.inc("chaos.injected.cut_midframe");
                        // Forward a prefix that ends inside the frame, then
                        // hang up once it has flushed.
                        let cut = (raw.len() / 2).max(HEADER_LEN / 2).min(raw.len() - 1);
                        server_wbuf.extend_from_slice(&raw[..cut]);
                        cut_after_flush = true;
                        break;
                    }
                    let copies = if faults.dup_prob > 0.0 && rng.chance(faults.dup_prob) {
                        shared.inc("chaos.injected.dup");
                        2
                    } else {
                        1
                    };
                    for _ in 0..copies {
                        if faults.delay > Duration::ZERO {
                            shared.inc("chaos.injected.delay");
                            delayed.push_back((Instant::now() + faults.delay, raw.clone()));
                        } else {
                            server_wbuf.extend_from_slice(&raw);
                        }
                    }
                }
                Ok(None) => break,
                Err(_) => return, // corrupt stream: no resync possible
            }
        }

        // Release frames whose delay has elapsed.
        let now = Instant::now();
        while matches!(delayed.front(), Some((due, _)) if *due <= now) {
            let (_, raw) = delayed.pop_front().expect("peeked");
            server_wbuf.extend_from_slice(&raw);
        }

        // Throttle: spendable bytes this tick.
        let budget = if faults.throttle_bytes_per_sec > 0 {
            let elapsed = now.duration_since(last_refill).as_secs_f64();
            last_refill = now;
            tokens = (tokens + elapsed * faults.throttle_bytes_per_sec as f64)
                .min(faults.throttle_bytes_per_sec as f64);
            if !server_wbuf.is_empty() && tokens < 1.0 {
                shared.inc("chaos.injected.throttle_stall");
            }
            tokens as usize
        } else {
            last_refill = now;
            usize::MAX
        };
        match drain(&mut server, &mut server_wbuf, budget) {
            Ok(written) => {
                if faults.throttle_bytes_per_sec > 0 {
                    tokens -= written as f64;
                }
            }
            Err(()) => return,
        }
        if cut_after_flush && server_wbuf.is_empty() {
            shared.inc("chaos.injected.conn_killed");
            return;
        }

        // Reverse direction, verbatim.
        let server_alive = fill(&mut server, &mut client_wbuf);
        if drain(&mut client, &mut client_wbuf, usize::MAX).is_err() {
            return;
        }

        let done_client = !client_alive && rbuf.is_empty() && delayed.is_empty();
        if (done_client && server_wbuf.is_empty()) || (!server_alive && client_wbuf.is_empty()) {
            return;
        }
        std::thread::sleep(PUMP_TICK);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_table_falls_back_to_default() {
        let table = FaultTable {
            default: LinkFaults {
                drop_prob: 0.5,
                ..LinkFaults::default()
            },
            links: BTreeMap::from([((0, 1), LinkFaults::partitioned())]),
        };
        assert!(table.get(0, 1).blocked);
        assert!(!table.get(1, 0).blocked);
        assert_eq!(table.get(1, 0).drop_prob, 0.5);
    }

    #[test]
    fn partition_and_heal_toggle_directed_links() {
        let chaos = ChaosNet::new(7, &[]).expect("no listeners needed");
        chaos.partition(&[0], &[1, 2]);
        assert!(chaos.link(0, 1).blocked);
        assert!(chaos.link(2, 0).blocked);
        assert!(!chaos.link(1, 2).blocked);
        chaos.heal();
        assert!(!chaos.link(0, 1).blocked);
        assert!(!chaos.link(2, 0).blocked);
    }

    #[test]
    fn oneway_partition_blocks_only_one_direction() {
        let chaos = ChaosNet::new(7, &[]).expect("no listeners needed");
        chaos.partition_oneway(&[0], &[1]);
        assert!(chaos.link(0, 1).blocked);
        assert!(!chaos.link(1, 0).blocked);
    }

    #[test]
    fn heal_preserves_non_blocking_faults() {
        let chaos = ChaosNet::new(7, &[]).expect("no listeners needed");
        chaos.set_link(
            0,
            1,
            LinkFaults {
                drop_prob: 0.25,
                blocked: true,
                ..LinkFaults::default()
            },
        );
        chaos.heal();
        let link = chaos.link(0, 1);
        assert!(!link.blocked);
        assert_eq!(link.drop_prob, 0.25);
    }
}
