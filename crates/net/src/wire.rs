//! The versioned binary wire format of the socket runtime.
//!
//! Every frame on a `pv-net` connection is
//!
//! ```text
//! [magic: u32 LE] [version: u8] [kind: u8] [reserved: u16 = 0]
//! [len: u32 LE]   [checksum: u32 LE over header prefix and payload]
//! [payload: len bytes]
//! ```
//!
//! a 16-byte header followed by the payload. The checksum is the same FNV-1a
//! the WAL uses ([`pv_store::codec::checksum`]), computed over the twelve
//! header bytes before the checksum field XORed with the payload's own
//! digest — a single flipped bit anywhere in the frame (including the kind
//! and length fields) fails validation. The payload encoding of
//! values, conditions, and entries *is* the WAL codec's
//! ([`pv_store::codec::put_entry`] and friends) — one binary vocabulary for
//! bytes at rest and bytes in flight. What this module adds is the framing
//! (magic/version/kind so a peer can reject foreign or future traffic
//! before parsing) and the encoding of the protocol-level types the WAL
//! never stores: [`Msg`], [`TransactionSpec`], expressions, and results.
//!
//! Decoding is incremental: [`decode_frame`] returns `Ok(None)` while the
//! buffer holds less than one whole frame, so a reader can append socket
//! bytes and retry. Every malformed input — bad magic, wrong version, torn
//! length, checksum mismatch, unknown tags, over-deep expressions — is a
//! typed [`DecodeError`], never a panic.

use bytes::{BufMut, BytesMut};
use pv_core::expr::BinOp;
use pv_core::{CmpOp, Entry, Expr, ItemId, TransactionSpec, TxnId, Value};
use pv_engine::messages::{AbortReason, AccessMode, Msg, TxnResult};
use pv_engine::topology::BackoffConfig;
use pv_engine::EngineError;
use pv_simnet::Metrics;
use pv_store::codec::{
    checksum, get_entry, get_u32, get_u64, get_u8, put_entry, put_value, CodecError,
};
use std::fmt;

/// Leading magic of every frame: `"PVW1"` little-endian.
pub const MAGIC: u32 = u32::from_le_bytes(*b"PVW1");

/// Current wire-format version. Bump on any incompatible payload change;
/// a node answers a foreign version with a clean [`DecodeError::BadVersion`]
/// instead of misparsing.
pub const VERSION: u8 = 1;

/// Bytes in a frame header.
pub const HEADER_LEN: usize = 16;

/// Bytes of the header covered by the frame checksum (everything before
/// the checksum field itself: magic, version, kind, reserved, length).
const HEADER_PREFIX_LEN: usize = 12;

/// Upper bound on a frame payload. Far above any legitimate message (specs
/// and entry lists are small); its real job is to stop a corrupt or hostile
/// length field from forcing a giant allocation.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Maximum expression nesting accepted by the decoder. Deeper input is
/// rejected with [`DecodeError::TooDeep`] rather than recursing toward a
/// stack overflow on untrusted bytes.
pub const MAX_EXPR_DEPTH: u32 = 200;

/// Why encoding failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// The encoded payload exceeds [`MAX_FRAME_LEN`].
    TooLarge {
        /// The payload size that was attempted.
        len: usize,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::TooLarge { len } => {
                write!(f, "payload of {len} bytes exceeds frame limit {MAX_FRAME_LEN}")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

impl From<EncodeError> for EngineError {
    fn from(e: EncodeError) -> Self {
        EngineError::Encode(e.to_string())
    }
}

/// Why decoding failed. These are all *fatal* for the connection; "not
/// enough bytes yet" is not an error but [`decode_frame`]'s `Ok(None)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The header does not start with [`MAGIC`] — not a pv-net peer.
    BadMagic(u32),
    /// The peer speaks a different wire-format version.
    BadVersion(u8),
    /// The header's kind byte names no known frame kind.
    BadKind(u8),
    /// The header's length field exceeds [`MAX_FRAME_LEN`].
    TooLarge(u32),
    /// The payload checksum did not match (corruption in flight).
    BadChecksum,
    /// The payload ended inside a field, or had bytes left over, despite
    /// the header's length — the frame is internally inconsistent.
    Malformed,
    /// An unknown tag inside the payload.
    BadTag(u8),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A decoded polyvalue violated the §3 invariant.
    BadPolyvalue,
    /// An expression nested deeper than [`MAX_EXPR_DEPTH`].
    TooDeep,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic(m) => write!(f, "bad magic {m:#010x}"),
            DecodeError::BadVersion(v) => {
                write!(f, "wire version {v} (this build speaks {VERSION})")
            }
            DecodeError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            DecodeError::TooLarge(n) => {
                write!(f, "declared payload of {n} bytes exceeds limit {MAX_FRAME_LEN}")
            }
            DecodeError::BadChecksum => write!(f, "payload checksum mismatch"),
            DecodeError::Malformed => write!(f, "payload length inconsistent with content"),
            DecodeError::BadTag(t) => write!(f, "unknown payload tag {t}"),
            DecodeError::BadUtf8 => write!(f, "invalid UTF-8 in string field"),
            DecodeError::BadPolyvalue => write!(f, "decoded polyvalue violates invariant"),
            DecodeError::TooDeep => {
                write!(f, "expression nests deeper than {MAX_EXPR_DEPTH}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<DecodeError> for EngineError {
    fn from(e: DecodeError) -> Self {
        EngineError::Decode(e.to_string())
    }
}

impl From<CodecError> for DecodeError {
    fn from(e: CodecError) -> Self {
        match e {
            // Inside a length-delimited payload, "truncated" means the
            // header lied about the length — the frame is malformed.
            CodecError::Truncated => DecodeError::Malformed,
            CodecError::BadChecksum => DecodeError::BadChecksum,
            CodecError::BadTag(t) => DecodeError::BadTag(t),
            CodecError::BadUtf8 => DecodeError::BadUtf8,
            CodecError::BadPolyvalue => DecodeError::BadPolyvalue,
        }
    }
}

/// What kind of node sits behind a [`Frame::Hello`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerKind {
    /// Another site: the connection carries [`Frame::Proto`] traffic and the
    /// sender's site id is authoritative for `from` routing.
    Site,
    /// A client: the connection carries `Submit`s in and `Reply`s out, plus
    /// the control frames (inspect, metrics, shutdown).
    Client,
}

/// A point-in-time view of one networked site, answering
/// [`Frame::InspectReq`] — the socket analogue of
/// [`pv_engine::live::SiteSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSnapshot {
    /// The site's id.
    pub site: u32,
    /// Items the site holds.
    pub items: Vec<(ItemId, Entry<Value>)>,
    /// Items currently holding polyvalues.
    pub poly_count: u64,
    /// Whether any protocol state is still in flight.
    pub quiescent: bool,
}

/// A site's metrics registry in wire form: counters plus every histogram's
/// raw observations (as `f64` bit patterns), so the load generator can
/// [`Metrics::merge`] per-site registries without losing distribution shape.
/// Gauge series are wall-clock-indexed and site-local; they do not ship.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WireMetrics {
    /// Counter name/value pairs.
    pub counters: Vec<(String, u64)>,
    /// Histogram names with raw observations as `f64::to_bits` values.
    pub histograms: Vec<(String, Vec<u64>)>,
}

impl WireMetrics {
    /// Captures a registry for the wire.
    pub fn from_metrics(m: &Metrics) -> Self {
        WireMetrics {
            counters: m.counters().map(|(k, v)| (k.to_owned(), v)).collect(),
            histograms: m
                .histograms()
                .map(|(k, h)| (k.to_owned(), h.values().iter().map(|v| v.to_bits()).collect()))
                .collect(),
        }
    }

    /// Replays this capture into a fresh [`Metrics`] registry.
    pub fn to_metrics(&self) -> Metrics {
        let mut m = Metrics::new();
        for (k, v) in &self.counters {
            m.inc_by(k, *v);
        }
        for (k, bits) in &self.histograms {
            for &b in bits {
                m.observe(k, f64::from_bits(b));
            }
        }
        m
    }
}

/// Everything that can travel on a `pv-net` connection.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// First frame on every connection: who is dialing. A site identifies
    /// itself so the receiver can route subsequent [`Frame::Proto`] traffic;
    /// a client receives `Reply` frames on the same connection.
    Hello {
        /// The dialer's node id (site id, or a client's node id).
        node: u32,
        /// Whether the dialer is a site or a client.
        kind: PeerKind,
    },
    /// A protocol message between nodes — the entire [`Msg`] vocabulary of
    /// §3.1/§3.3, carried verbatim.
    Proto {
        /// The sending node (site id, or a client node id for `Submit`).
        from: u32,
        /// The protocol message.
        msg: Msg,
    },
    /// Control: ask the site for a state snapshot.
    InspectReq,
    /// Control: the snapshot.
    InspectResp(NodeSnapshot),
    /// Control: ask the site for its metrics registry.
    MetricsReq,
    /// Control: the metrics.
    MetricsResp(WireMetrics),
    /// Control: ask the site process to flush its WAL and exit cleanly.
    Shutdown,
    /// Control: live-reconfigure the site's reconnect/backoff policy. Takes
    /// effect for every subsequent dial decision; in-flight connections are
    /// untouched.
    ConfigBackoff(BackoffConfig),
}

impl Frame {
    fn kind_byte(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 0,
            Frame::Proto { .. } => 1,
            Frame::InspectReq => 2,
            Frame::InspectResp(_) => 3,
            Frame::MetricsReq => 4,
            Frame::MetricsResp(_) => 5,
            Frame::Shutdown => 6,
            Frame::ConfigBackoff(_) => 7,
        }
    }
}

// ---- encoding ---------------------------------------------------------------

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn put_expr(buf: &mut BytesMut, e: &Expr) {
    match e {
        Expr::Const(v) => {
            buf.put_u8(0);
            put_value(buf, v);
        }
        Expr::Read(item) => {
            buf.put_u8(1);
            buf.put_u64_le(item.0);
        }
        Expr::Bin(op, l, r) => {
            buf.put_u8(2);
            buf.put_u8(match op {
                BinOp::Add => 0,
                BinOp::Sub => 1,
                BinOp::Mul => 2,
                BinOp::Div => 3,
                BinOp::Min => 4,
                BinOp::Max => 5,
                BinOp::And => 6,
                BinOp::Or => 7,
            });
            put_expr(buf, l);
            put_expr(buf, r);
        }
        Expr::Cmp(op, l, r) => {
            buf.put_u8(3);
            buf.put_u8(match op {
                CmpOp::Eq => 0,
                CmpOp::Ne => 1,
                CmpOp::Lt => 2,
                CmpOp::Le => 3,
                CmpOp::Gt => 4,
                CmpOp::Ge => 5,
            });
            put_expr(buf, l);
            put_expr(buf, r);
        }
        Expr::Neg(inner) => {
            buf.put_u8(4);
            put_expr(buf, inner);
        }
        Expr::Not(inner) => {
            buf.put_u8(5);
            put_expr(buf, inner);
        }
        Expr::If(c, t, f) => {
            buf.put_u8(6);
            put_expr(buf, c);
            put_expr(buf, t);
            put_expr(buf, f);
        }
    }
}

fn put_spec(buf: &mut BytesMut, spec: &TransactionSpec) {
    match &spec.guard {
        Some(g) => {
            buf.put_u8(1);
            put_expr(buf, g);
        }
        None => buf.put_u8(0),
    }
    buf.put_u32_le(spec.updates.len() as u32);
    for (item, e) in &spec.updates {
        buf.put_u64_le(item.0);
        put_expr(buf, e);
    }
    buf.put_u32_le(spec.outputs.len() as u32);
    for (name, e) in &spec.outputs {
        put_string(buf, name);
        put_expr(buf, e);
    }
}

fn put_result(buf: &mut BytesMut, result: &TxnResult) {
    match result {
        TxnResult::Committed {
            granted,
            outputs,
            was_poly,
        } => {
            buf.put_u8(0);
            put_entry(buf, granted);
            buf.put_u32_le(outputs.len() as u32);
            for (name, e) in outputs {
                put_string(buf, name);
                put_entry(buf, e);
            }
            buf.put_u8(u8::from(*was_poly));
        }
        TxnResult::Aborted { reason } => {
            buf.put_u8(1);
            match reason {
                AbortReason::LockConflict => buf.put_u8(0),
                AbortReason::Timeout => buf.put_u8(1),
                AbortReason::Eval(e) => {
                    buf.put_u8(2);
                    put_string(buf, e);
                }
                AbortReason::Rejected(report) => {
                    buf.put_u8(3);
                    put_string(buf, report);
                }
            }
        }
    }
}

fn put_item_entries(buf: &mut BytesMut, entries: &[(ItemId, Entry<Value>)]) {
    buf.put_u32_le(entries.len() as u32);
    for (item, e) in entries {
        buf.put_u64_le(item.0);
        put_entry(buf, e);
    }
}

/// Encodes a protocol message (the [`Frame::Proto`] payload after `from`).
fn put_msg(buf: &mut BytesMut, msg: &Msg) {
    match msg {
        Msg::Submit { req_id, spec } => {
            buf.put_u8(0);
            buf.put_u64_le(*req_id);
            put_spec(buf, spec);
        }
        Msg::Reply { req_id, result } => {
            buf.put_u8(1);
            buf.put_u64_le(*req_id);
            put_result(buf, result);
        }
        Msg::ReadReq { txn, ts, items } => {
            buf.put_u8(2);
            buf.put_u64_le(txn.raw());
            buf.put_u64_le(*ts);
            buf.put_u32_le(items.len() as u32);
            for (item, mode) in items {
                buf.put_u64_le(item.0);
                buf.put_u8(match mode {
                    AccessMode::Read => 0,
                    AccessMode::Write => 1,
                });
            }
        }
        Msg::ReadResp { txn, entries } => {
            buf.put_u8(3);
            buf.put_u64_le(txn.raw());
            put_item_entries(buf, entries);
        }
        Msg::ReadNack { txn } => {
            buf.put_u8(4);
            buf.put_u64_le(txn.raw());
        }
        Msg::Prepare { txn, writes } => {
            buf.put_u8(5);
            buf.put_u64_le(txn.raw());
            put_item_entries(buf, writes);
        }
        Msg::Ready { txn } => {
            buf.put_u8(6);
            buf.put_u64_le(txn.raw());
        }
        Msg::PrepareNack { txn } => {
            buf.put_u8(7);
            buf.put_u64_le(txn.raw());
        }
        Msg::Decision { txn, completed } => {
            buf.put_u8(8);
            buf.put_u64_le(txn.raw());
            buf.put_u8(u8::from(*completed));
        }
        Msg::Inquire { txn } => {
            buf.put_u8(9);
            buf.put_u64_le(txn.raw());
        }
        Msg::OutcomeNotify { txn, completed } => {
            buf.put_u8(10);
            buf.put_u64_le(txn.raw());
            buf.put_u8(u8::from(*completed));
        }
        Msg::PcPrepare { txn, writes, parts } => {
            buf.put_u8(11);
            buf.put_u64_le(txn.raw());
            put_item_entries(buf, writes);
            put_sites(buf, parts);
        }
        Msg::PcVote {
            txn,
            part,
            parts,
            prepared,
        } => {
            buf.put_u8(12);
            buf.put_u64_le(txn.raw());
            buf.put_u32_le(*part);
            put_sites(buf, parts);
            buf.put_u8(u8::from(*prepared));
        }
        Msg::PcVoteAck {
            txn,
            part,
            acceptor,
            prepared,
        } => {
            buf.put_u8(13);
            buf.put_u64_le(txn.raw());
            buf.put_u32_le(*part);
            buf.put_u32_le(*acceptor);
            buf.put_u8(u8::from(*prepared));
        }
        Msg::PcPhase1a { txn, ballot } => {
            buf.put_u8(14);
            buf.put_u64_le(txn.raw());
            buf.put_u64_le(*ballot);
        }
        Msg::PcPhase1b {
            txn,
            ballot,
            acceptor,
            votes,
            parts,
            accepted,
        } => {
            buf.put_u8(15);
            buf.put_u64_le(txn.raw());
            buf.put_u64_le(*ballot);
            buf.put_u32_le(*acceptor);
            buf.put_u32_le(votes.len() as u32);
            for (site, prepared) in votes {
                buf.put_u32_le(*site);
                buf.put_u8(u8::from(*prepared));
            }
            put_sites(buf, parts);
            match accepted {
                Some((b, completed)) => {
                    buf.put_u8(1);
                    buf.put_u64_le(*b);
                    buf.put_u8(u8::from(*completed));
                }
                None => buf.put_u8(0),
            }
        }
        Msg::PcPhase2a {
            txn,
            ballot,
            completed,
        } => {
            buf.put_u8(16);
            buf.put_u64_le(txn.raw());
            buf.put_u64_le(*ballot);
            buf.put_u8(u8::from(*completed));
        }
        Msg::PcPhase2b {
            txn,
            ballot,
            acceptor,
            completed,
        } => {
            buf.put_u8(17);
            buf.put_u64_le(txn.raw());
            buf.put_u64_le(*ballot);
            buf.put_u32_le(*acceptor);
            buf.put_u8(u8::from(*completed));
        }
        Msg::SnapshotRead { req_id, items } => {
            buf.put_u8(18);
            buf.put_u64_le(*req_id);
            buf.put_u32_le(items.len() as u32);
            for item in items {
                buf.put_u64_le(item.0);
            }
        }
        Msg::SnapshotReadReply {
            req_id,
            snapshot,
            entries,
        } => {
            buf.put_u8(19);
            buf.put_u64_le(*req_id);
            buf.put_u64_le(*snapshot);
            put_item_entries(buf, entries);
        }
    }
}

fn put_sites(buf: &mut BytesMut, sites: &[u32]) {
    buf.put_u32_le(sites.len() as u32);
    for s in sites {
        buf.put_u32_le(*s);
    }
}

fn put_wire_metrics(buf: &mut BytesMut, m: &WireMetrics) {
    buf.put_u32_le(m.counters.len() as u32);
    for (name, v) in &m.counters {
        put_string(buf, name);
        buf.put_u64_le(*v);
    }
    buf.put_u32_le(m.histograms.len() as u32);
    for (name, bits) in &m.histograms {
        put_string(buf, name);
        buf.put_u32_le(bits.len() as u32);
        for &b in bits {
            buf.put_u64_le(b);
        }
    }
}

/// Appends one whole frame (header + payload) to `out`.
pub fn encode_frame(frame: &Frame, out: &mut BytesMut) -> Result<(), EncodeError> {
    let mut payload = BytesMut::new();
    match frame {
        Frame::Hello { node, kind } => {
            payload.put_u32_le(*node);
            payload.put_u8(match kind {
                PeerKind::Site => 0,
                PeerKind::Client => 1,
            });
        }
        Frame::Proto { from, msg } => {
            payload.put_u32_le(*from);
            put_msg(&mut payload, msg);
        }
        Frame::InspectReq | Frame::MetricsReq | Frame::Shutdown => {}
        Frame::InspectResp(snap) => {
            payload.put_u32_le(snap.site);
            put_item_entries(&mut payload, &snap.items);
            payload.put_u64_le(snap.poly_count);
            payload.put_u8(u8::from(snap.quiescent));
        }
        Frame::MetricsResp(m) => put_wire_metrics(&mut payload, m),
        Frame::ConfigBackoff(b) => {
            payload.put_u64_le(b.base_ms);
            payload.put_u64_le(b.max_ms);
            payload.put_u64_le(b.factor.to_bits());
            payload.put_u64_le(b.jitter.to_bits());
            payload.put_u32_le(b.attempts);
        }
    }
    if payload.len() > MAX_FRAME_LEN as usize {
        return Err(EncodeError::TooLarge { len: payload.len() });
    }
    let start = out.len();
    out.put_u32_le(MAGIC);
    out.put_u8(VERSION);
    out.put_u8(frame.kind_byte());
    out.put_u8(0);
    out.put_u8(0);
    out.put_u32_le(payload.len() as u32);
    // The checksum covers the header prefix as well as the payload, so a
    // flipped kind or length byte can never pass as a valid frame.
    let sum = checksum(&out[start..start + HEADER_PREFIX_LEN]) ^ checksum(&payload);
    out.put_u32_le(sum);
    out.put_slice(&payload);
    Ok(())
}

/// Encodes a frame into a fresh buffer (convenience over [`encode_frame`]).
pub fn frame_bytes(frame: &Frame) -> Result<Vec<u8>, EncodeError> {
    let mut out = BytesMut::new();
    encode_frame(frame, &mut out)?;
    Ok(out.to_vec())
}

// ---- decoding ---------------------------------------------------------------

fn get_string(buf: &mut &[u8]) -> Result<String, DecodeError> {
    let len = get_u32(buf)? as usize;
    if buf.len() < len {
        return Err(DecodeError::Malformed);
    }
    let (s, rest) = buf.split_at(len);
    *buf = rest;
    String::from_utf8(s.to_vec()).map_err(|_| DecodeError::BadUtf8)
}

fn get_value_w(buf: &mut &[u8]) -> Result<Value, DecodeError> {
    pv_store::codec::get_value(buf).map_err(DecodeError::from)
}

fn get_entry_w(buf: &mut &[u8]) -> Result<Entry<Value>, DecodeError> {
    get_entry(buf).map_err(DecodeError::from)
}

fn get_expr(buf: &mut &[u8], depth: u32) -> Result<Expr, DecodeError> {
    if depth > MAX_EXPR_DEPTH {
        return Err(DecodeError::TooDeep);
    }
    match get_u8(buf)? {
        0 => Ok(Expr::Const(get_value_w(buf)?)),
        1 => Ok(Expr::Read(ItemId(get_u64(buf)?))),
        2 => {
            let op = match get_u8(buf)? {
                0 => BinOp::Add,
                1 => BinOp::Sub,
                2 => BinOp::Mul,
                3 => BinOp::Div,
                4 => BinOp::Min,
                5 => BinOp::Max,
                6 => BinOp::And,
                7 => BinOp::Or,
                t => return Err(DecodeError::BadTag(t)),
            };
            let l = get_expr(buf, depth + 1)?;
            let r = get_expr(buf, depth + 1)?;
            Ok(Expr::Bin(op, Box::new(l), Box::new(r)))
        }
        3 => {
            let op = match get_u8(buf)? {
                0 => CmpOp::Eq,
                1 => CmpOp::Ne,
                2 => CmpOp::Lt,
                3 => CmpOp::Le,
                4 => CmpOp::Gt,
                5 => CmpOp::Ge,
                t => return Err(DecodeError::BadTag(t)),
            };
            let l = get_expr(buf, depth + 1)?;
            let r = get_expr(buf, depth + 1)?;
            Ok(Expr::Cmp(op, Box::new(l), Box::new(r)))
        }
        4 => Ok(Expr::Neg(Box::new(get_expr(buf, depth + 1)?))),
        5 => Ok(Expr::Not(Box::new(get_expr(buf, depth + 1)?))),
        6 => {
            let c = get_expr(buf, depth + 1)?;
            let t = get_expr(buf, depth + 1)?;
            let f = get_expr(buf, depth + 1)?;
            Ok(Expr::If(Box::new(c), Box::new(t), Box::new(f)))
        }
        t => Err(DecodeError::BadTag(t)),
    }
}

fn get_spec(buf: &mut &[u8]) -> Result<TransactionSpec, DecodeError> {
    let guard = match get_u8(buf)? {
        0 => None,
        1 => Some(get_expr(buf, 0)?),
        t => return Err(DecodeError::BadTag(t)),
    };
    let n_updates = get_u32(buf)? as usize;
    let mut updates = Vec::with_capacity(n_updates.min(1024));
    for _ in 0..n_updates {
        let item = ItemId(get_u64(buf)?);
        updates.push((item, get_expr(buf, 0)?));
    }
    let n_outputs = get_u32(buf)? as usize;
    let mut outputs = Vec::with_capacity(n_outputs.min(1024));
    for _ in 0..n_outputs {
        let name = get_string(buf)?;
        outputs.push((name, get_expr(buf, 0)?));
    }
    Ok(TransactionSpec {
        guard,
        updates,
        outputs,
    })
}

fn get_result(buf: &mut &[u8]) -> Result<TxnResult, DecodeError> {
    match get_u8(buf)? {
        0 => {
            let granted = get_entry_w(buf)?;
            let n = get_u32(buf)? as usize;
            let mut outputs = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let name = get_string(buf)?;
                outputs.push((name, get_entry_w(buf)?));
            }
            let was_poly = get_u8(buf)? != 0;
            Ok(TxnResult::Committed {
                granted,
                outputs,
                was_poly,
            })
        }
        1 => {
            let reason = match get_u8(buf)? {
                0 => AbortReason::LockConflict,
                1 => AbortReason::Timeout,
                2 => AbortReason::Eval(get_string(buf)?),
                3 => AbortReason::Rejected(get_string(buf)?),
                t => return Err(DecodeError::BadTag(t)),
            };
            Ok(TxnResult::Aborted { reason })
        }
        t => Err(DecodeError::BadTag(t)),
    }
}

fn get_item_entries(buf: &mut &[u8]) -> Result<Vec<(ItemId, Entry<Value>)>, DecodeError> {
    let n = get_u32(buf)? as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let item = ItemId(get_u64(buf)?);
        out.push((item, get_entry_w(buf)?));
    }
    Ok(out)
}

fn get_msg(buf: &mut &[u8]) -> Result<Msg, DecodeError> {
    match get_u8(buf)? {
        0 => Ok(Msg::Submit {
            req_id: get_u64(buf)?,
            spec: get_spec(buf)?,
        }),
        1 => Ok(Msg::Reply {
            req_id: get_u64(buf)?,
            result: get_result(buf)?,
        }),
        2 => {
            let txn = TxnId(get_u64(buf)?);
            let ts = get_u64(buf)?;
            let n = get_u32(buf)? as usize;
            let mut items = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let item = ItemId(get_u64(buf)?);
                let mode = match get_u8(buf)? {
                    0 => AccessMode::Read,
                    1 => AccessMode::Write,
                    t => return Err(DecodeError::BadTag(t)),
                };
                items.push((item, mode));
            }
            Ok(Msg::ReadReq { txn, ts, items })
        }
        3 => Ok(Msg::ReadResp {
            txn: TxnId(get_u64(buf)?),
            entries: get_item_entries(buf)?,
        }),
        4 => Ok(Msg::ReadNack {
            txn: TxnId(get_u64(buf)?),
        }),
        5 => Ok(Msg::Prepare {
            txn: TxnId(get_u64(buf)?),
            writes: get_item_entries(buf)?,
        }),
        6 => Ok(Msg::Ready {
            txn: TxnId(get_u64(buf)?),
        }),
        7 => Ok(Msg::PrepareNack {
            txn: TxnId(get_u64(buf)?),
        }),
        8 => Ok(Msg::Decision {
            txn: TxnId(get_u64(buf)?),
            completed: get_u8(buf)? != 0,
        }),
        9 => Ok(Msg::Inquire {
            txn: TxnId(get_u64(buf)?),
        }),
        10 => Ok(Msg::OutcomeNotify {
            txn: TxnId(get_u64(buf)?),
            completed: get_u8(buf)? != 0,
        }),
        11 => Ok(Msg::PcPrepare {
            txn: TxnId(get_u64(buf)?),
            writes: get_item_entries(buf)?,
            parts: get_sites(buf)?,
        }),
        12 => Ok(Msg::PcVote {
            txn: TxnId(get_u64(buf)?),
            part: get_u32(buf)?,
            parts: get_sites(buf)?,
            prepared: get_u8(buf)? != 0,
        }),
        13 => Ok(Msg::PcVoteAck {
            txn: TxnId(get_u64(buf)?),
            part: get_u32(buf)?,
            acceptor: get_u32(buf)?,
            prepared: get_u8(buf)? != 0,
        }),
        14 => Ok(Msg::PcPhase1a {
            txn: TxnId(get_u64(buf)?),
            ballot: get_u64(buf)?,
        }),
        15 => {
            let txn = TxnId(get_u64(buf)?);
            let ballot = get_u64(buf)?;
            let acceptor = get_u32(buf)?;
            let n = get_u32(buf)? as usize;
            let mut votes = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let site = get_u32(buf)?;
                votes.push((site, get_u8(buf)? != 0));
            }
            let parts = get_sites(buf)?;
            let accepted = match get_u8(buf)? {
                0 => None,
                1 => Some((get_u64(buf)?, get_u8(buf)? != 0)),
                t => return Err(DecodeError::BadTag(t)),
            };
            Ok(Msg::PcPhase1b {
                txn,
                ballot,
                acceptor,
                votes,
                parts,
                accepted,
            })
        }
        16 => Ok(Msg::PcPhase2a {
            txn: TxnId(get_u64(buf)?),
            ballot: get_u64(buf)?,
            completed: get_u8(buf)? != 0,
        }),
        17 => Ok(Msg::PcPhase2b {
            txn: TxnId(get_u64(buf)?),
            ballot: get_u64(buf)?,
            acceptor: get_u32(buf)?,
            completed: get_u8(buf)? != 0,
        }),
        18 => {
            let req_id = get_u64(buf)?;
            let n = get_u32(buf)? as usize;
            let mut items = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                items.push(ItemId(get_u64(buf)?));
            }
            Ok(Msg::SnapshotRead { req_id, items })
        }
        19 => Ok(Msg::SnapshotReadReply {
            req_id: get_u64(buf)?,
            snapshot: get_u64(buf)?,
            entries: get_item_entries(buf)?,
        }),
        t => Err(DecodeError::BadTag(t)),
    }
}

fn get_sites(buf: &mut &[u8]) -> Result<Vec<u32>, DecodeError> {
    let n = get_u32(buf)? as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push(get_u32(buf)?);
    }
    Ok(out)
}

fn get_wire_metrics(buf: &mut &[u8]) -> Result<WireMetrics, DecodeError> {
    let n_counters = get_u32(buf)? as usize;
    let mut counters = Vec::with_capacity(n_counters.min(1024));
    for _ in 0..n_counters {
        let name = get_string(buf)?;
        counters.push((name, get_u64(buf)?));
    }
    let n_hist = get_u32(buf)? as usize;
    let mut histograms = Vec::with_capacity(n_hist.min(1024));
    for _ in 0..n_hist {
        let name = get_string(buf)?;
        let n = get_u32(buf)? as usize;
        let mut bits = Vec::with_capacity(n.min(65536));
        for _ in 0..n {
            bits.push(get_u64(buf)?);
        }
        histograms.push((name, bits));
    }
    Ok(WireMetrics {
        counters,
        histograms,
    })
}

fn decode_payload(kind: u8, mut p: &[u8]) -> Result<Frame, DecodeError> {
    let buf = &mut p;
    let frame = match kind {
        0 => {
            let node = get_u32(buf)?;
            let kind = match get_u8(buf)? {
                0 => PeerKind::Site,
                1 => PeerKind::Client,
                t => return Err(DecodeError::BadTag(t)),
            };
            Frame::Hello { node, kind }
        }
        1 => {
            let from = get_u32(buf)?;
            Frame::Proto {
                from,
                msg: get_msg(buf)?,
            }
        }
        2 => Frame::InspectReq,
        3 => {
            let site = get_u32(buf)?;
            let items = get_item_entries(buf)?;
            let poly_count = get_u64(buf)?;
            let quiescent = get_u8(buf)? != 0;
            Frame::InspectResp(NodeSnapshot {
                site,
                items,
                poly_count,
                quiescent,
            })
        }
        4 => Frame::MetricsReq,
        5 => Frame::MetricsResp(get_wire_metrics(buf)?),
        6 => Frame::Shutdown,
        7 => {
            let base_ms = get_u64(buf)?;
            let max_ms = get_u64(buf)?;
            let factor = f64::from_bits(get_u64(buf)?);
            let jitter = f64::from_bits(get_u64(buf)?);
            let attempts = get_u32(buf)?;
            if !factor.is_finite() || !jitter.is_finite() {
                return Err(DecodeError::Malformed);
            }
            Frame::ConfigBackoff(BackoffConfig {
                base_ms,
                max_ms,
                factor,
                jitter,
                attempts,
            })
        }
        k => return Err(DecodeError::BadKind(k)),
    };
    if !buf.is_empty() {
        return Err(DecodeError::Malformed);
    }
    Ok(frame)
}

/// Tries to decode one frame from the front of `buf`.
///
/// Returns `Ok(Some((frame, consumed)))` when a whole valid frame is
/// present (`consumed` = header + payload bytes to drain), `Ok(None)` when
/// more bytes are needed, and `Err` when the stream is unrecoverably
/// malformed (the connection should be dropped).
pub fn decode_frame(buf: &[u8]) -> Result<Option<(Frame, usize)>, DecodeError> {
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    let mut h = buf;
    let magic = get_u32(&mut h).expect("header length checked");
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let version = get_u8(&mut h).expect("header length checked");
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let kind = get_u8(&mut h).expect("header length checked");
    // Reserved bytes must be zero in v1, so corruption there is caught and
    // a future version can assign them meaning without ambiguity.
    let reserved = (
        get_u8(&mut h).expect("header length checked"),
        get_u8(&mut h).expect("header length checked"),
    );
    if reserved != (0, 0) {
        return Err(DecodeError::Malformed);
    }
    let len = get_u32(&mut h).expect("header length checked");
    if len > MAX_FRAME_LEN {
        return Err(DecodeError::TooLarge(len));
    }
    let sum = get_u32(&mut h).expect("header length checked");
    let total = HEADER_LEN + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let payload = &buf[HEADER_LEN..total];
    if checksum(&buf[..HEADER_PREFIX_LEN]) ^ checksum(payload) != sum {
        return Err(DecodeError::BadChecksum);
    }
    let frame = decode_payload(kind, payload)?;
    Ok(Some((frame, total)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_core::Entry;

    fn roundtrip(frame: Frame) {
        let bytes = frame_bytes(&frame).unwrap();
        let (decoded, consumed) = decode_frame(&bytes).unwrap().expect("whole frame");
        assert_eq!(consumed, bytes.len());
        assert_eq!(decoded, frame);
    }

    #[test]
    fn hello_and_control_frames_round_trip() {
        roundtrip(Frame::Hello {
            node: 7,
            kind: PeerKind::Site,
        });
        roundtrip(Frame::Hello {
            node: 42,
            kind: PeerKind::Client,
        });
        roundtrip(Frame::InspectReq);
        roundtrip(Frame::MetricsReq);
        roundtrip(Frame::Shutdown);
        roundtrip(Frame::ConfigBackoff(BackoffConfig {
            base_ms: 25,
            max_ms: 750,
            factor: 1.7,
            jitter: 0.33,
            attempts: 12,
        }));
    }

    #[test]
    fn non_finite_backoff_floats_are_rejected() {
        let mut bytes = frame_bytes(&Frame::ConfigBackoff(BackoffConfig::default())).unwrap();
        // Overwrite the factor field (payload offset 16) with NaN bits and
        // re-checksum so only the semantic validation can object.
        let nan = f64::NAN.to_bits().to_le_bytes();
        bytes[HEADER_LEN + 16..HEADER_LEN + 24].copy_from_slice(&nan);
        let sum = checksum(&bytes[..HEADER_PREFIX_LEN]) ^ checksum(&bytes[HEADER_LEN..]);
        bytes[12..16].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(decode_frame(&bytes), Err(DecodeError::Malformed));
    }

    #[test]
    fn proto_frames_round_trip() {
        let spec = TransactionSpec::new()
            .guard(Expr::read(ItemId(0)).ge(Expr::int(40)))
            .update(ItemId(0), Expr::read(ItemId(0)).sub(Expr::int(40)))
            .output("granted", Expr::read(ItemId(0)).ge(Expr::int(40)));
        roundtrip(Frame::Proto {
            from: 3,
            msg: Msg::Submit { req_id: 9, spec },
        });
        let poly = Entry::in_doubt(
            Entry::Simple(Value::Int(60)),
            Entry::Simple(Value::Int(100)),
            TxnId(5),
        );
        roundtrip(Frame::Proto {
            from: 0,
            msg: Msg::Reply {
                req_id: 9,
                result: TxnResult::Committed {
                    granted: Entry::Simple(Value::Bool(true)),
                    outputs: vec![("balance".into(), poly.clone())],
                    was_poly: true,
                },
            },
        });
        roundtrip(Frame::Proto {
            from: 1,
            msg: Msg::Prepare {
                txn: TxnId(77),
                writes: vec![(ItemId(1), poly)],
            },
        });
    }

    #[test]
    fn snapshot_read_frames_round_trip() {
        roundtrip(Frame::Proto {
            from: 9,
            msg: Msg::SnapshotRead {
                req_id: 4,
                items: vec![ItemId(0), ItemId(3)],
            },
        });
        // An empty item list (full scan) must survive the wire too.
        roundtrip(Frame::Proto {
            from: 9,
            msg: Msg::SnapshotRead {
                req_id: 5,
                items: vec![],
            },
        });
        roundtrip(Frame::Proto {
            from: 0,
            msg: Msg::SnapshotReadReply {
                req_id: 4,
                snapshot: 12,
                entries: vec![
                    (ItemId(0), Entry::Simple(Value::Int(60))),
                    (
                        ItemId(3),
                        Entry::in_doubt(
                            Entry::Simple(Value::Int(1)),
                            Entry::Simple(Value::Int(2)),
                            TxnId(8),
                        ),
                    ),
                ],
            },
        });
    }

    #[test]
    fn incremental_decode_waits_for_whole_frame() {
        let bytes = frame_bytes(&Frame::Hello {
            node: 1,
            kind: PeerKind::Site,
        })
        .unwrap();
        for cut in 0..bytes.len() {
            assert_eq!(decode_frame(&bytes[..cut]).unwrap(), None, "cut at {cut}");
        }
        assert!(decode_frame(&bytes).unwrap().is_some());
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let mut bytes = frame_bytes(&Frame::Shutdown).unwrap();
        bytes[0] ^= 0xFF;
        assert!(matches!(decode_frame(&bytes), Err(DecodeError::BadMagic(_))));
        let mut bytes = frame_bytes(&Frame::Shutdown).unwrap();
        bytes[4] = 99;
        assert_eq!(decode_frame(&bytes), Err(DecodeError::BadVersion(99)));
    }

    #[test]
    fn corrupt_payload_fails_checksum() {
        let mut bytes = frame_bytes(&Frame::Hello {
            node: 1,
            kind: PeerKind::Site,
        })
        .unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        assert_eq!(decode_frame(&bytes), Err(DecodeError::BadChecksum));
    }

    #[test]
    fn over_deep_expression_is_rejected_not_overflowed() {
        // Hand-encode a Proto/Submit whose guard is Neg(Neg(...Const)))
        // nested past the depth limit.
        let mut payload = BytesMut::new();
        payload.put_u32_le(0); // from
        payload.put_u8(0); // Submit
        payload.put_u64_le(1); // req_id
        payload.put_u8(1); // guard present
        for _ in 0..(MAX_EXPR_DEPTH + 8) {
            payload.put_u8(4); // Neg(
        }
        payload.put_u8(0); // Const
        put_value(&mut payload, &Value::Int(1));
        payload.put_u32_le(0); // updates
        payload.put_u32_le(0); // outputs
        let mut bytes = BytesMut::new();
        bytes.put_u32_le(MAGIC);
        bytes.put_u8(VERSION);
        bytes.put_u8(1); // Proto
        bytes.put_u8(0);
        bytes.put_u8(0);
        bytes.put_u32_le(payload.len() as u32);
        bytes.put_u32_le(checksum(&bytes[..HEADER_PREFIX_LEN]) ^ checksum(&payload));
        bytes.put_slice(&payload);
        assert_eq!(decode_frame(&bytes), Err(DecodeError::TooDeep));
    }

    #[test]
    fn wire_metrics_round_trip_through_registry() {
        let mut m = Metrics::new();
        m.inc_by("txn.committed", 17);
        m.observe("phase.submit_decided", 1.5);
        m.observe("phase.submit_decided", 2.5);
        let wire = WireMetrics::from_metrics(&m);
        roundtrip(Frame::MetricsResp(wire.clone()));
        let back = wire.to_metrics();
        assert_eq!(back.counter("txn.committed"), 17);
        let h = back.histogram("phase.submit_decided").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean(), Some(2.0));
    }

    #[test]
    fn errors_fold_into_engine_error() {
        let enc: EngineError = EncodeError::TooLarge { len: 99 }.into();
        assert!(matches!(enc, EngineError::Encode(_)));
        let dec: EngineError = DecodeError::BadChecksum.into();
        assert!(matches!(dec, EngineError::Decode(_)));
    }
}
