//! A blocking client connection to one site node.
//!
//! `NetClient` is the socket analogue of [`LiveCluster::submit`]
//! (`pv_engine::live`): it dials a site, identifies itself with a `Hello`
//! frame, and then exchanges `Submit`/`Reply` protocol frames plus the
//! control vocabulary (inspect, metrics, shutdown). Submissions can be
//! pipelined — [`NetClient::submit_async`] returns immediately with the
//! request id and [`NetClient::recv_reply`] collects replies in arrival
//! order — which is what the load generator uses to hold N transactions in
//! flight per connection.

use crate::backoff::Backoff;
use crate::wire::{decode_frame, frame_bytes, Frame, NodeSnapshot, PeerKind};
use pv_core::TransactionSpec;
use pv_engine::messages::{Msg, TxnResult};
use pv_engine::topology::BackoffConfig;
use pv_engine::EngineError;
use pv_simnet::Metrics;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A blocking connection from a client node to one site.
pub struct NetClient {
    stream: TcpStream,
    rbuf: Vec<u8>,
    node: u32,
    next_req: u64,
}

impl NetClient {
    /// Dials `addr` under the `backoff` policy — jittered exponential pauses
    /// between attempts, like a site's peer links — and registers as client
    /// node `node`.
    ///
    /// `node` must be unique across concurrently connected clients of the
    /// cluster and must not collide with a site id (use `sites + k`);
    /// replies are routed to it.
    pub fn connect(addr: SocketAddr, node: u32, backoff: Backoff) -> Result<Self, EngineError> {
        let mut last = String::new();
        let salt = u64::from(node) ^ 0xC11E_17BA;
        for attempt in 0..backoff.attempts {
            if attempt > 0 {
                std::thread::sleep(backoff.delay(attempt, salt));
            }
            match TcpStream::connect_timeout(&addr, backoff.connect_timeout()) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    let mut client = NetClient {
                        stream,
                        rbuf: Vec::new(),
                        node,
                        next_req: 1,
                    };
                    client.send_frame(&Frame::Hello {
                        node,
                        kind: PeerKind::Client,
                    })?;
                    return Ok(client);
                }
                Err(e) => last = e.to_string(),
            }
        }
        Err(EngineError::Io(format!(
            "connect {addr} after {} attempts: {last}",
            backoff.attempts
        )))
    }

    /// The client's node id.
    pub fn node(&self) -> u32 {
        self.node
    }

    fn send_frame(&mut self, frame: &Frame) -> Result<(), EngineError> {
        let bytes = frame_bytes(frame)?;
        self.stream
            .write_all(&bytes)
            .map_err(|e| EngineError::Io(format!("send: {e}")))
    }

    /// Receives the next frame, blocking up to `deadline`.
    fn recv_frame(&mut self, deadline: Duration) -> Result<Frame, EngineError> {
        let limit = Instant::now() + deadline;
        loop {
            if let Some((frame, n)) =
                decode_frame(&self.rbuf).map_err(EngineError::from)?
            {
                self.rbuf.drain(..n);
                return Ok(frame);
            }
            let remaining = limit.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(EngineError::Timeout);
            }
            self.stream
                .set_read_timeout(Some(remaining))
                .map_err(|e| EngineError::Io(format!("set_read_timeout: {e}")))?;
            let mut chunk = [0u8; 16 * 1024];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(EngineError::Disconnected),
                Ok(n) => self.rbuf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
                {
                    return Err(EngineError::Timeout)
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(EngineError::Io(format!("recv: {e}"))),
            }
        }
    }

    /// Sends a transaction without waiting for its reply; returns the
    /// request id the eventual `Reply` will echo.
    pub fn submit_async(&mut self, spec: &TransactionSpec) -> Result<u64, EngineError> {
        let req_id = self.next_req;
        self.next_req += 1;
        self.send_frame(&Frame::Proto {
            from: self.node,
            msg: Msg::Submit {
                req_id,
                spec: spec.clone(),
            },
        })?;
        Ok(req_id)
    }

    /// Receives the next transaction reply (any outstanding request).
    pub fn recv_reply(&mut self, deadline: Duration) -> Result<(u64, TxnResult), EngineError> {
        let limit = Instant::now() + deadline;
        loop {
            let remaining = limit.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(EngineError::Timeout);
            }
            match self.recv_frame(remaining)? {
                Frame::Proto {
                    msg: Msg::Reply { req_id, result },
                    ..
                } => return Ok((req_id, result)),
                // Any other frame on a client pipe is stray; skip it.
                _ => continue,
            }
        }
    }

    /// Submits a transaction and blocks for its result.
    pub fn submit(
        &mut self,
        spec: &TransactionSpec,
        deadline: Duration,
    ) -> Result<TxnResult, EngineError> {
        let want = self.submit_async(spec)?;
        let limit = Instant::now() + deadline;
        loop {
            let remaining = limit.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(EngineError::Timeout);
            }
            let (req_id, result) = self.recv_reply(remaining)?;
            if req_id == want {
                return Ok(result);
            }
            // A stale reply from an abandoned pipelined request: keep going.
        }
    }

    /// Serves a coordination-free read-only transaction at the connected
    /// site: the site pins an MVCC snapshot, reads `items` (all its items
    /// when the list is empty), and answers `(snapshot, entries)` without
    /// touching its lock table or sending any site-to-site message.
    pub fn snapshot_read(
        &mut self,
        items: &[pv_core::ItemId],
        deadline: Duration,
    ) -> Result<pv_store::SnapshotView, EngineError> {
        let want = self.next_req;
        self.next_req += 1;
        self.send_frame(&Frame::Proto {
            from: self.node,
            msg: Msg::SnapshotRead {
                req_id: want,
                items: items.to_vec(),
            },
        })?;
        let limit = Instant::now() + deadline;
        loop {
            let remaining = limit.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(EngineError::Timeout);
            }
            match self.recv_frame(remaining)? {
                Frame::Proto {
                    msg:
                        Msg::SnapshotReadReply {
                            req_id,
                            snapshot,
                            entries,
                        },
                    ..
                } if req_id == want => return Ok((snapshot, entries)),
                _ => continue,
            }
        }
    }

    /// Snapshots the connected site's state.
    pub fn inspect(&mut self, deadline: Duration) -> Result<NodeSnapshot, EngineError> {
        self.send_frame(&Frame::InspectReq)?;
        let limit = Instant::now() + deadline;
        loop {
            let remaining = limit.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(EngineError::Timeout);
            }
            match self.recv_frame(remaining)? {
                Frame::InspectResp(snap) => return Ok(snap),
                _ => continue,
            }
        }
    }

    /// Fetches the connected site's metrics registry.
    pub fn metrics(&mut self, deadline: Duration) -> Result<Metrics, EngineError> {
        self.send_frame(&Frame::MetricsReq)?;
        let limit = Instant::now() + deadline;
        loop {
            let remaining = limit.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(EngineError::Timeout);
            }
            match self.recv_frame(remaining)? {
                Frame::MetricsResp(wire) => return Ok(wire.to_metrics()),
                _ => continue,
            }
        }
    }

    /// Pushes a new reconnect/backoff policy to the connected site live —
    /// its peer circuits re-pace without a restart (fire-and-forget; confirm
    /// via the `net.backoff.reconfigured` counter in [`NetClient::metrics`]).
    pub fn configure_backoff(&mut self, config: BackoffConfig) -> Result<(), EngineError> {
        self.send_frame(&Frame::ConfigBackoff(config))
    }

    /// Asks the site process to flush its WAL and exit cleanly.
    pub fn shutdown(&mut self) -> Result<(), EngineError> {
        self.send_frame(&Frame::Shutdown)
    }
}
