//! One polyvalue site as an OS process, serving real TCP.
//!
//! ```text
//! pv-node --site 0 --addrs 127.0.0.1:7100,127.0.0.1:7101,127.0.0.1:7102 \
//!         [--listen HOST:PORT] [--accounts 12] [--balance 100] \
//!         [--protocol polyvalue] [--data-dir DIR] [--static-checks] [--fast] \
//!         [--attempts 50] [--delay-ms 100] [--max-delay-ms 1000]
//! ```
//!
//! The address list defines the cluster: site `i` listens on the `i`-th
//! address, and every process must be started with the same list and the
//! same seeding flags (they all derive the same [`Topology`]). `--listen`
//! overrides only where this process binds — the chaos harness uses it to
//! bind sites on their real addresses while `--addrs` points every peer
//! table at the fault-injecting proxies. The process serves until a client
//! sends a `Shutdown` frame (exit 0). Any fatal condition — a peer
//! unreachable past the backoff policy's attempt budget, a bind failure —
//! prints a structured JSON error on stderr and exits non-zero instead of
//! hanging:
//!
//! ```text
//! {"error":{"kind":"unreachable","site":2,"detail":"127.0.0.1:7102 after 50 attempts: ..."}}
//! ```
//!
//! Reconnect pacing is exponential: `--delay-ms` is the base delay,
//! doubling (with jitter) toward `--max-delay-ms`, for `--attempts`
//! consecutive failures before the peer is declared unreachable.

use pv_engine::{CommitProtocol, Directory, EngineConfig, EngineError, Topology};
use pv_net::backoff::Backoff;
use pv_net::node::{Node, NodeConfig};
use pv_simnet::SimDuration;
use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: pv-node --site N --addrs HOST:PORT,... [--listen HOST:PORT] [--accounts N] \
         [--balance V] [--protocol polyvalue|blocking2pc|relaxed|paxos-commit] [--data-dir DIR] \
         [--static-checks] [--fast] [--attempts N] [--delay-ms N] [--max-delay-ms N]"
    );
    std::process::exit(2);
}

/// Renders an [`EngineError`] as the structured stderr line contract.
fn error_json(e: &EngineError) -> String {
    let (kind, site) = match e {
        EngineError::Unreachable { site, .. } => ("unreachable", Some(*site)),
        EngineError::Io(_) => ("io", None),
        EngineError::Encode(_) => ("encode", None),
        EngineError::Decode(_) => ("decode", None),
        EngineError::Timeout => ("timeout", None),
        EngineError::Disconnected => ("disconnected", None),
        _ => ("engine", None),
    };
    let detail: String = e
        .to_string()
        .chars()
        .map(|c| match c {
            '"' => '\'',
            '\n' => ' ',
            c => c,
        })
        .collect();
    match site {
        Some(s) => {
            format!("{{\"error\":{{\"kind\":\"{kind}\",\"site\":{s},\"detail\":\"{detail}\"}}}}")
        }
        None => format!("{{\"error\":{{\"kind\":\"{kind}\",\"detail\":\"{detail}\"}}}}"),
    }
}

/// The short-timeout engine configuration used by localhost benches (the
/// live tests' `fast_config`, shared by `pv-loadgen --spawn`).
fn fast_config(protocol: CommitProtocol) -> EngineConfig {
    EngineConfig {
        read_timeout: SimDuration::from_millis(200),
        ready_timeout: SimDuration::from_millis(200),
        wait_timeout: SimDuration::from_millis(80),
        read_lease: SimDuration::from_millis(500),
        inquire_interval: SimDuration::from_millis(100),
        ..EngineConfig::with_protocol(protocol)
    }
}

struct Args {
    site: u32,
    addrs: Vec<SocketAddr>,
    listen: Option<SocketAddr>,
    accounts: u64,
    balance: i64,
    protocol: CommitProtocol,
    data_dir: Option<String>,
    static_checks: bool,
    fast: bool,
    backoff: Backoff,
}

fn parse_args() -> Args {
    let mut args = Args {
        site: u32::MAX,
        addrs: Vec::new(),
        listen: None,
        accounts: 0,
        balance: 100,
        protocol: CommitProtocol::Polyvalue,
        data_dir: None,
        static_checks: false,
        fast: false,
        backoff: Backoff::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--site" => args.site = value("--site").parse().unwrap_or_else(|_| usage()),
            "--addrs" => {
                args.addrs = value("--addrs")
                    .split(',')
                    .map(|a| a.parse().unwrap_or_else(|_| usage()))
                    .collect()
            }
            "--accounts" => args.accounts = value("--accounts").parse().unwrap_or_else(|_| usage()),
            "--balance" => args.balance = value("--balance").parse().unwrap_or_else(|_| usage()),
            "--protocol" => {
                args.protocol = match value("--protocol").as_str() {
                    "polyvalue" => CommitProtocol::Polyvalue,
                    "blocking2pc" => CommitProtocol::Blocking2pc,
                    "relaxed" => CommitProtocol::Relaxed { complete_prob: 0.5 },
                    "paxos-commit" => CommitProtocol::PaxosCommit,
                    _ => usage(),
                }
            }
            "--listen" => {
                args.listen = Some(value("--listen").parse().unwrap_or_else(|_| usage()))
            }
            "--data-dir" => args.data_dir = Some(value("--data-dir")),
            "--static-checks" => args.static_checks = true,
            "--fast" => args.fast = true,
            "--attempts" => {
                args.backoff.attempts = value("--attempts").parse().unwrap_or_else(|_| usage())
            }
            "--delay-ms" => {
                args.backoff.base =
                    Duration::from_millis(value("--delay-ms").parse().unwrap_or_else(|_| usage()));
                args.backoff.max = args.backoff.max.max(args.backoff.base);
            }
            "--max-delay-ms" => {
                args.backoff.max = Duration::from_millis(
                    value("--max-delay-ms").parse().unwrap_or_else(|_| usage()),
                )
            }
            _ => usage(),
        }
    }
    if args.site == u32::MAX || args.addrs.is_empty() || args.site as usize >= args.addrs.len() {
        usage();
    }
    args
}

fn run(args: Args) -> Result<(), EngineError> {
    let sites = args.addrs.len() as u32;
    let engine = if args.fast {
        fast_config(args.protocol)
    } else {
        EngineConfig::with_protocol(args.protocol)
    };
    let mut topo = Topology::new(sites, Directory::Mod(sites))
        .engine(engine)
        .uniform_items(args.accounts, args.balance);
    if args.static_checks {
        topo = topo.static_checks();
    }
    if let Some(dir) = &args.data_dir {
        topo = topo.data_dir(dir);
    }
    let listen = args.listen.unwrap_or(args.addrs[args.site as usize]);
    let mut node = Node::bind(
        NodeConfig {
            site: args.site,
            topo,
            backoff: args.backoff,
        },
        listen,
    )?;
    node.set_peers(args.addrs.clone());
    eprintln!("pv-node: site {} serving on {listen}", args.site);
    node.run()?;
    eprintln!("pv-node: site {} shut down cleanly", args.site);
    Ok(())
}

fn main() -> ExitCode {
    let args = parse_args();
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{}", error_json(&e));
            ExitCode::FAILURE
        }
    }
}
