//! Load generator for a networked polyvalue cluster.
//!
//! ```text
//! # Spawn a 3-process cluster on free localhost ports, hammer it, report:
//! pv-loadgen --sites 3 --accounts 12 --balance 100 --txns 2000 --clients 4
//!
//! # Full bench sweep (site counts × client concurrency), JSON out:
//! pv-loadgen --sweep --txns 2000 --out BENCH_net.json
//!
//! # Target an already-running cluster instead of spawning one:
//! pv-loadgen --addrs 127.0.0.1:7100,127.0.0.1:7101 --txns 1000 --clients 2
//! ```
//!
//! The workload is the paper's funds-transfer bank: `--accounts` integer
//! accounts of `--balance` each, guarded transfers between random pairs,
//! submitted from `--clients` concurrent closed-loop connections (client
//! `k` coordinates through site `k mod sites`). After the run the cluster
//! must drain to zero polyvalues and conserve total funds; a violation, an
//! unreachable site, or a child process dying mid-run exits non-zero with a
//! structured JSON error on stderr (same contract as `pv-node`).

use pv_core::{Expr, ItemId, TransactionSpec};
use pv_engine::EngineError;
use pv_net::backoff::Backoff;
use pv_net::client::NetClient;
use pv_simnet::{Metrics, SimRng};
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener};
use std::process::{Child, Command, ExitCode, Stdio};
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: pv-loadgen [--sites N] [--accounts N] [--balance V] [--txns N] [--clients N] \
         [--protocol polyvalue|blocking2pc|relaxed] [--addrs HOST:PORT,...] [--seed N] \
         [--sweep] [--out PATH] [--attempts N] [--delay-ms N]"
    );
    std::process::exit(2);
}

fn error_json(e: &EngineError) -> String {
    let (kind, site) = match e {
        EngineError::Unreachable { site, .. } => ("unreachable", Some(*site)),
        EngineError::Io(_) => ("io", None),
        EngineError::Timeout => ("timeout", None),
        EngineError::Disconnected => ("disconnected", None),
        _ => ("engine", None),
    };
    let detail: String = e
        .to_string()
        .chars()
        .map(|c| match c {
            '"' => '\'',
            '\n' => ' ',
            c => c,
        })
        .collect();
    match site {
        Some(s) => {
            format!("{{\"error\":{{\"kind\":\"{kind}\",\"site\":{s},\"detail\":\"{detail}\"}}}}")
        }
        None => format!("{{\"error\":{{\"kind\":\"{kind}\",\"detail\":\"{detail}\"}}}}"),
    }
}

#[derive(Clone)]
struct Args {
    sites: u32,
    accounts: u64,
    balance: i64,
    txns: u64,
    clients: u32,
    protocol: String,
    addrs: Vec<SocketAddr>,
    seed: u64,
    sweep: bool,
    out: Option<String>,
    backoff: Backoff,
}

fn parse_args() -> Args {
    let mut args = Args {
        sites: 3,
        accounts: 12,
        balance: 100,
        txns: 2000,
        clients: 4,
        protocol: "polyvalue".into(),
        addrs: Vec::new(),
        seed: 42,
        sweep: false,
        out: None,
        backoff: Backoff::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--sites" => args.sites = value("--sites").parse().unwrap_or_else(|_| usage()),
            "--accounts" => args.accounts = value("--accounts").parse().unwrap_or_else(|_| usage()),
            "--balance" => args.balance = value("--balance").parse().unwrap_or_else(|_| usage()),
            "--txns" => args.txns = value("--txns").parse().unwrap_or_else(|_| usage()),
            "--clients" => args.clients = value("--clients").parse().unwrap_or_else(|_| usage()),
            "--protocol" => args.protocol = value("--protocol"),
            "--addrs" => {
                args.addrs = value("--addrs")
                    .split(',')
                    .map(|a| a.parse().unwrap_or_else(|_| usage()))
                    .collect()
            }
            "--seed" => args.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--sweep" => args.sweep = true,
            "--out" => args.out = Some(value("--out")),
            "--attempts" => {
                args.backoff.attempts = value("--attempts").parse().unwrap_or_else(|_| usage())
            }
            "--delay-ms" => {
                args.backoff.base =
                    Duration::from_millis(value("--delay-ms").parse().unwrap_or_else(|_| usage()));
                args.backoff.max = args.backoff.max.max(args.backoff.base);
            }
            _ => usage(),
        }
    }
    args
}

/// A spawned site process, killed on drop so a failed run leaves no
/// orphans.
struct ChildGuard(Child, u32);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Reserves `n` distinct localhost ports by binding and immediately
/// releasing them (the standard localhost-bench trick; the race window is
/// negligible on a quiet machine).
fn free_addrs(n: u32) -> Result<Vec<SocketAddr>, EngineError> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| {
            TcpListener::bind("127.0.0.1:0").map_err(|e| EngineError::Io(format!("reserve: {e}")))
        })
        .collect::<Result<_, _>>()?;
    listeners
        .iter()
        .map(|l| l.local_addr().map_err(|e| EngineError::Io(format!("reserve: {e}"))))
        .collect()
}

/// Spawns `sites` pv-node processes for the given address table.
fn spawn_cluster(args: &Args, addrs: &[SocketAddr]) -> Result<Vec<ChildGuard>, EngineError> {
    let me = std::env::current_exe().map_err(|e| EngineError::Io(format!("current_exe: {e}")))?;
    let node_bin = me
        .parent()
        .map(|d| d.join("pv-node"))
        .filter(|p| p.exists())
        .ok_or_else(|| {
            EngineError::Io("pv-node binary not found next to pv-loadgen (build both)".into())
        })?;
    let addr_list = addrs
        .iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let mut children = Vec::with_capacity(addrs.len());
    for s in 0..addrs.len() as u32 {
        let child = Command::new(&node_bin)
            .args([
                "--site",
                &s.to_string(),
                "--addrs",
                &addr_list,
                "--accounts",
                &args.accounts.to_string(),
                "--balance",
                &args.balance.to_string(),
                "--protocol",
                &args.protocol,
                "--fast",
                "--attempts",
                &args.backoff.attempts.to_string(),
                "--delay-ms",
                &args.backoff.base.as_millis().to_string(),
            ])
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .map_err(|e| EngineError::Io(format!("spawn pv-node: {e}")))?;
        children.push(ChildGuard(child, s));
    }
    Ok(children)
}

fn transfer(from: u64, to: u64, amount: i64) -> TransactionSpec {
    let (f, t) = (ItemId(from), ItemId(to));
    TransactionSpec::new()
        .guard(Expr::read(f).ge(Expr::int(amount)))
        .update(f, Expr::read(f).sub(Expr::int(amount)))
        .update(t, Expr::read(t).add(Expr::int(amount)))
}

/// The outcome of one measured run.
struct RunStats {
    sites: u32,
    clients: u32,
    submitted: u64,
    committed: u64,
    elapsed: Duration,
    /// Client-observed submit→reply latency (seconds) plus the cluster's
    /// merged phase histograms.
    metrics: Metrics,
}

impl RunStats {
    fn throughput(&self) -> f64 {
        self.committed as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Drives `txns` transfers through `clients` closed-loop connections and
/// verifies conservation before returning.
fn run_load(args: &Args, addrs: &[SocketAddr]) -> Result<RunStats, EngineError> {
    let sites = addrs.len() as u32;
    let per_client = args.txns / u64::from(args.clients).max(1);
    let start = Instant::now();
    let mut handles = Vec::new();
    for c in 0..args.clients {
        let addr = addrs[(c % sites) as usize];
        let accounts = args.accounts;
        let seed = args.seed.wrapping_add(u64::from(c) * 7919);
        let node = sites + 1 + c;
        let backoff = args.backoff;
        handles.push(std::thread::spawn(move || -> Result<(u64, u64, Metrics), EngineError> {
            let mut client = NetClient::connect(addr, node, backoff)?;
            let mut rng = SimRng::new(seed);
            let mut metrics = Metrics::new();
            let mut committed = 0u64;
            for _ in 0..per_client {
                let from = rng.below(accounts);
                let mut to = rng.below(accounts);
                if to == from {
                    to = (to + 1) % accounts;
                }
                let amount = 1 + rng.below(5) as i64;
                let spec = transfer(from, to, amount);
                let t0 = Instant::now();
                let result = client.submit(&spec, Duration::from_secs(10))?;
                metrics.observe("client.latency", t0.elapsed().as_secs_f64());
                if result.is_committed() {
                    committed += 1;
                }
            }
            Ok((per_client, committed, metrics))
        }));
    }
    let mut submitted = 0;
    let mut committed = 0;
    let mut metrics = Metrics::new();
    for h in handles {
        let (s, c, m) = h.join().expect("client thread panicked")?;
        submitted += s;
        committed += c;
        metrics.merge(&m);
    }
    let elapsed = start.elapsed();

    // Conservation gate: wait for the cluster to drain residual
    // uncertainty, then audit total funds across every site.
    let mut control: Vec<NetClient> = Vec::new();
    for (s, addr) in addrs.iter().enumerate() {
        control.push(NetClient::connect(
            *addr,
            sites + 1 + args.clients + s as u32,
            args.backoff,
        )?);
    }
    let drain_limit = Instant::now() + Duration::from_secs(30);
    loop {
        let mut polys = 0;
        let mut quiescent = true;
        for client in &mut control {
            let snap = client.inspect(Duration::from_secs(5))?;
            polys += snap.poly_count;
            quiescent &= snap.quiescent;
        }
        if polys == 0 && quiescent {
            break;
        }
        if Instant::now() > drain_limit {
            return Err(EngineError::Io(format!(
                "cluster did not drain: {polys} polyvalues still in doubt"
            )));
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    let mut total = 0i64;
    for client in &mut control {
        let snap = client.inspect(Duration::from_secs(5))?;
        for (_, entry) in &snap.items {
            let v = entry
                .as_simple()
                .and_then(pv_core::Value::as_int)
                .ok_or_else(|| EngineError::Io("unsettled item after drain".into()))?;
            total += v;
        }
    }
    let expected = args.accounts as i64 * args.balance;
    if total != expected {
        return Err(EngineError::Io(format!(
            "CONSERVATION VIOLATION: total {total}, expected {expected}"
        )));
    }

    // Merge each site's registry (phase histograms, protocol counters).
    for client in &mut control {
        metrics.merge(&client.metrics(Duration::from_secs(5))?);
    }
    Ok(RunStats {
        sites,
        clients: args.clients,
        submitted,
        committed,
        elapsed,
        metrics,
    })
}

/// One spawn-measure-shutdown cycle.
fn run_once(args: &Args) -> Result<RunStats, EngineError> {
    if !args.addrs.is_empty() {
        return run_load(args, &args.addrs.clone());
    }
    let addrs = free_addrs(args.sites)?;
    let children = spawn_cluster(args, &addrs)?;
    let stats = run_load(args, &addrs)?;
    // Clean shutdown: every site flushes its WAL and exits 0.
    for (s, addr) in addrs.iter().enumerate() {
        let mut c = NetClient::connect(*addr, 1_000_000 + s as u32, args.backoff)?;
        c.shutdown()?;
    }
    for mut guard in children {
        let status = guard
            .0
            .wait()
            .map_err(|e| EngineError::Io(format!("wait pv-node: {e}")))?;
        if !status.success() {
            return Err(EngineError::Io(format!(
                "pv-node site {} exited with {status}",
                guard.1
            )));
        }
    }
    Ok(stats)
}

fn print_stats(stats: &RunStats) {
    println!(
        "sites={} clients={} submitted={} committed={} elapsed={:.2}s throughput={:.0} txn/s",
        stats.sites,
        stats.clients,
        stats.submitted,
        stats.committed,
        stats.elapsed.as_secs_f64(),
        stats.throughput()
    );
    for name in ["client.latency", "phase.submit_decided", "phase.submit_prepared"] {
        if let Some(h) = stats.metrics.histogram(name) {
            println!(
                "  {name}: n={} p50={:.2}ms p99={:.2}ms max={:.2}ms",
                h.count(),
                h.quantile(0.5).unwrap_or(0.0) * 1e3,
                h.quantile(0.99).unwrap_or(0.0) * 1e3,
                h.max().unwrap_or(0.0) * 1e3,
            );
        }
    }
}

fn push_bench(
    out: &mut String,
    first: &mut bool,
    name: &str,
    description: &str,
    unit: &str,
    value: f64,
) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str(&format!(
        "    {{\n      \"name\": \"{name}\",\n      \"description\": \"{description}\",\n      \"unit\": \"{unit}\",\n      \"value\": {value:.3}\n    }}"
    ));
}

fn bench_entries(out: &mut String, first: &mut bool, stats: &RunStats) {
    let tag = format!("net_{}s_c{}", stats.sites, stats.clients);
    let desc = format!(
        "{}-process localhost cluster, {} closed-loop clients, funds transfers",
        stats.sites, stats.clients
    );
    push_bench(
        out,
        first,
        &format!("{tag}_throughput"),
        &format!("{desc} (committed transactions per second)"),
        "txn/s",
        stats.throughput(),
    );
    if let Some(h) = stats.metrics.histogram("client.latency") {
        push_bench(
            out,
            first,
            &format!("{tag}_latency_p50"),
            &format!("{desc} (client-observed submit to reply, median)"),
            "ms",
            h.quantile(0.5).unwrap_or(0.0) * 1e3,
        );
        push_bench(
            out,
            first,
            &format!("{tag}_latency_p99"),
            &format!("{desc} (client-observed submit to reply, 99th percentile)"),
            "ms",
            h.quantile(0.99).unwrap_or(0.0) * 1e3,
        );
    }
    for (hist, label) in [
        ("phase.submit_prepared", "submit to prepared"),
        ("phase.prepared_decided", "prepared to decided"),
    ] {
        if let Some(h) = stats.metrics.histogram(hist) {
            push_bench(
                out,
                first,
                &format!("{tag}_{}_p50", hist.replace('.', "_")),
                &format!("{desc} (site-measured {label} phase, median)"),
                "ms",
                h.quantile(0.5).unwrap_or(0.0) * 1e3,
            );
        }
    }
}

fn run_main(args: Args) -> Result<(), EngineError> {
    let mut json = String::from("{\n");
    json.push_str("  \"suite\": \"pv-net localhost cluster\",\n");
    json.push_str(
        "  \"invocation\": \"cargo run --release -p pv-net --bin pv-loadgen -- --sweep\",\n",
    );
    json.push_str("  \"benches\": [\n");
    let mut first = true;

    if args.sweep {
        // Scaling curves: client concurrency at 3 sites, then site count at
        // fixed concurrency.
        for (sites, clients) in [(3, 1), (3, 4), (3, 8), (5, 4)] {
            let mut cfg = args.clone();
            cfg.sites = sites;
            cfg.clients = clients;
            cfg.addrs.clear();
            let stats = run_once(&cfg)?;
            print_stats(&stats);
            bench_entries(&mut json, &mut first, &stats);
        }
    } else {
        let stats = run_once(&args)?;
        print_stats(&stats);
        bench_entries(&mut json, &mut first, &stats);
    }
    json.push_str("\n  ]\n}\n");
    if let Some(path) = &args.out {
        let mut f = std::fs::File::create(path)
            .map_err(|e| EngineError::Io(format!("create {path}: {e}")))?;
        f.write_all(json.as_bytes())
            .map_err(|e| EngineError::Io(format!("write {path}: {e}")))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = parse_args();
    match run_main(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{}", error_json(&e));
            ExitCode::FAILURE
        }
    }
}
