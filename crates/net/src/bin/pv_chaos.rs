//! Kill/restart survival harness for a real `pv-node` process cluster.
//!
//! ```text
//! pv-chaos [--scenario NAME|all] [--seed N] [--sites 3] [--out verdict.json]
//! ```
//!
//! The harness spawns one OS process per site (`--data-dir` disk WALs, the
//! same fast engine config the benches use), fronts every site→site link
//! with a fault-injecting [`ChaosNet`] proxy, drives a funds-transfer load,
//! and then does what the Polyvalues paper is about: kills coordinators
//! mid-prepare, kills participants after Ready, partitions the cluster
//! during the decision phase, restarts everything at once, and rolls
//! restarts through the cluster under live load. After every scenario heals
//! it asserts the §3/§3.3 recovery story end to end:
//!
//! * **conservation** — total funds across all sites equal the seeded total;
//! * **agreement** — the final balances are explained by some commit/abort
//!   assignment of the transactions whose outcome the client never learned
//!   (enumerated exhaustively; every reply the client *did* receive is
//!   pinned to its observed outcome);
//! * **collapse** — in-doubt polyvalues observed while sites were down are
//!   gone after recovery (the §3.3 inquiry protocol resolved them);
//! * **quiescence** — no site still carries protocol state.
//!
//! The `paxos-commit-kill` scenario replays the coordinator kill with every
//! node running `--protocol paxos-commit` and inverts the collapse check:
//! no polyvalue may ever appear, and at least one ballot takeover must have
//! resolved the dead coordinator's transactions.
//!
//! Kill timing, restart order, and partition timing all derive from one
//! seeded [`SimRng`], so a scenario replays the same schedule for the same
//! seed. Each scenario prints a one-line JSON verdict; `--out` additionally
//! writes the collected verdicts as a JSON array. Exit status is 0 iff
//! every scenario's assertions held.

use pv_core::{Expr, ItemId, TransactionSpec};
use pv_engine::EngineError;
use pv_net::backoff::Backoff;
use pv_net::chaos::{ChaosNet, LinkFaults};
use pv_net::client::NetClient;
use pv_simnet::{Metrics, SimRng};
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::process::{Child, Command, ExitCode, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const ACCOUNTS: u64 = 9;
const BALANCE: i64 = 100;

/// Harness-side reconnect policy: patient, because scenarios deliberately
/// leave sites dead for hundreds of milliseconds.
fn harness_backoff() -> Backoff {
    Backoff::patient()
}

fn usage() -> ! {
    eprintln!(
        "usage: pv-chaos [--scenario coordinator-kill|participant-kill|partition|\
         restart-storm|rolling-restart|paxos-commit-kill|all] [--seed N] [--sites N] [--out PATH]"
    );
    std::process::exit(2);
}

struct Args {
    scenario: String,
    seed: u64,
    sites: u32,
    out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scenario: "all".into(),
        seed: 42,
        sites: 3,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--scenario" => args.scenario = value("--scenario"),
            "--seed" => args.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--sites" => args.sites = value("--sites").parse().unwrap_or_else(|_| usage()),
            "--out" => args.out = Some(value("--out")),
            _ => usage(),
        }
    }
    if args.sites < 2 {
        usage();
    }
    args
}

/// What the submitting client learned about one transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Committed,
    Aborted,
    /// The reply never arrived (coordinator died, partition, timeout): the
    /// transaction may have gone either way. Agreement is checked over every
    /// assignment of these.
    Unknown,
}

#[derive(Debug, Clone, Copy)]
struct Txn {
    from: u64,
    to: u64,
    amount: i64,
    outcome: Outcome,
}

fn transfer(from: u64, to: u64, amount: i64) -> TransactionSpec {
    let (f, t) = (ItemId(from), ItemId(to));
    TransactionSpec::new()
        .guard(Expr::read(f).ge(Expr::int(amount)))
        .update(f, Expr::read(f).sub(Expr::int(amount)))
        .update(t, Expr::read(t).add(Expr::int(amount)))
}

struct ChildGuard(Child);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn free_addr() -> Result<SocketAddr, EngineError> {
    TcpListener::bind("127.0.0.1:0")
        .and_then(|l| l.local_addr())
        .map_err(|e| EngineError::Io(format!("reserve port: {e}")))
}

/// One scenario's worth of cluster: real `pv-node` processes behind chaos
/// proxies, disk WALs under a scratch directory, seeded RNG for every
/// schedule decision.
struct Harness {
    rng: SimRng,
    sites: u32,
    /// The commit protocol every spawned node runs (`pv-node --protocol`).
    protocol: &'static str,
    /// Current real (listen) address of each site; changes on restart.
    reals: Arc<Mutex<Vec<SocketAddr>>>,
    chaos: ChaosNet,
    children: Vec<Option<ChildGuard>>,
    data_dir: PathBuf,
    node_bin: PathBuf,
    next_client: Arc<AtomicU32>,
    txns: Vec<Txn>,
}

impl Harness {
    fn start(
        sites: u32,
        seed: u64,
        tag: &str,
        protocol: &'static str,
    ) -> Result<Harness, EngineError> {
        let me =
            std::env::current_exe().map_err(|e| EngineError::Io(format!("current_exe: {e}")))?;
        let node_bin = me
            .parent()
            .map(|d| d.join("pv-node"))
            .filter(|p| p.exists())
            .ok_or_else(|| {
                EngineError::Io("pv-node binary not found next to pv-chaos (build both)".into())
            })?;
        let data_dir = std::env::temp_dir().join(format!(
            "pv-chaos-{tag}-{seed}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&data_dir);
        std::fs::create_dir_all(&data_dir)
            .map_err(|e| EngineError::Io(format!("mkdir {}: {e}", data_dir.display())))?;
        let reals: Vec<SocketAddr> = (0..sites)
            .map(|_| free_addr())
            .collect::<Result<_, _>>()?;
        let chaos = ChaosNet::new(seed, &reals)?;
        let mut harness = Harness {
            rng: SimRng::new(seed ^ 0xC4A0_5EED),
            sites,
            protocol,
            reals: Arc::new(Mutex::new(reals)),
            chaos,
            children: (0..sites).map(|_| None).collect(),
            data_dir,
            node_bin,
            next_client: Arc::new(AtomicU32::new(sites + 100)),
            txns: Vec::new(),
        };
        for s in 0..sites {
            harness.spawn_site(s)?;
        }
        for s in 0..sites {
            harness.wait_ready(s)?;
        }
        Ok(harness)
    }

    fn real(&self, s: u32) -> SocketAddr {
        self.reals.lock().expect("reals lock")[s as usize]
    }

    fn spawn_site(&mut self, s: u32) -> Result<(), EngineError> {
        let proxies = self
            .chaos
            .proxy_addrs()
            .iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let listen = self.real(s);
        let child = Command::new(&self.node_bin)
            .args([
                "--site",
                &s.to_string(),
                "--addrs",
                &proxies,
                "--listen",
                &listen.to_string(),
                "--accounts",
                &ACCOUNTS.to_string(),
                "--balance",
                &BALANCE.to_string(),
                "--data-dir",
                &self.data_dir.display().to_string(),
                "--protocol",
                self.protocol,
                "--fast",
                // Patient reconnects: peers stay dead for a while on purpose.
                "--attempts",
                "100000",
                "--delay-ms",
                "25",
                "--max-delay-ms",
                "500",
            ])
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .map_err(|e| EngineError::Io(format!("spawn pv-node: {e}")))?;
        self.children[s as usize] = Some(ChildGuard(child));
        Ok(())
    }

    /// Polls until site `s` accepts a client connection.
    fn wait_ready(&self, s: u32) -> Result<(), EngineError> {
        let addr = self.real(s);
        let limit = Instant::now() + Duration::from_secs(10);
        loop {
            match std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(250)) {
                Ok(_) => return Ok(()),
                Err(e) => {
                    if Instant::now() > limit {
                        return Err(EngineError::Io(format!("site {s} never came up: {e}")));
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }

    /// Kills site `s` hard (SIGKILL): no WAL flush, no goodbye to peers.
    fn kill(&mut self, s: u32) {
        if let Some(mut guard) = self.children[s as usize].take() {
            let _ = guard.0.kill();
            let _ = guard.0.wait();
        }
    }

    /// Restarts site `s` from its surviving data directory, on a fresh port
    /// (the old one may be stuck in TIME_WAIT); peers keep dialing the same
    /// proxy address, which is re-targeted at the reborn process.
    fn restart(&mut self, s: u32) -> Result<(), EngineError> {
        let fresh = free_addr()?;
        self.reals.lock().expect("reals lock")[s as usize] = fresh;
        self.chaos.retarget(s, fresh);
        self.spawn_site(s)?;
        self.wait_ready(s)
    }

    fn client(&self, s: u32) -> Result<NetClient, EngineError> {
        let node = self.next_client.fetch_add(1, Ordering::Relaxed);
        NetClient::connect(self.real(s), node, harness_backoff())
    }

    /// A fresh transfer between two accounts on *different* sites (adjacent
    /// account ids live on different sites under `Directory::Mod`).
    fn pick_transfer(&mut self, home: Option<u32>) -> (u64, u64, i64) {
        let from = match home {
            // An account homed at `site`: ids ≡ site (mod sites).
            Some(site) => {
                let span = ACCOUNTS / u64::from(self.sites);
                u64::from(site) + u64::from(self.sites) * self.rng.below(span.max(1))
            }
            None => self.rng.below(ACCOUNTS),
        };
        let to = (from + 1) % ACCOUNTS;
        let amount = 1 + self.rng.below(5) as i64;
        (from, to, amount)
    }

    /// Pipelines `n` transfers through one connection to `coordinator` and
    /// returns the client plus (request id → txn index) bookkeeping; every
    /// transfer starts `Unknown` and is upgraded as replies arrive.
    fn submit_batch(
        &mut self,
        coordinator: u32,
        n: usize,
        home: Option<u32>,
    ) -> Result<(NetClient, Vec<(u64, usize)>), EngineError> {
        let mut client = self.client(coordinator)?;
        let mut pending = Vec::with_capacity(n);
        for _ in 0..n {
            let (from, to, amount) = self.pick_transfer(home);
            self.submit_one(&mut client, from, to, amount, &mut pending)?;
        }
        Ok((client, pending))
    }

    /// Pipelines one transfer per account pair. Scenarios that need every
    /// transfer to reach the Prepare phase (where polyvalues get staged)
    /// pass pairwise-disjoint pairs, so no transfer aborts early on a lock
    /// conflict with a batch-mate.
    fn submit_pairs(
        &mut self,
        coordinator: u32,
        pairs: &[(u64, u64)],
    ) -> Result<(NetClient, Vec<(u64, usize)>), EngineError> {
        let mut client = self.client(coordinator)?;
        let mut pending = Vec::with_capacity(pairs.len());
        for &(from, to) in pairs {
            let amount = 1 + self.rng.below(5) as i64;
            self.submit_one(&mut client, from, to, amount, &mut pending)?;
        }
        Ok((client, pending))
    }

    fn submit_one(
        &mut self,
        client: &mut NetClient,
        from: u64,
        to: u64,
        amount: i64,
        pending: &mut Vec<(u64, usize)>,
    ) -> Result<(), EngineError> {
        let idx = self.txns.len();
        self.txns.push(Txn {
            from,
            to,
            amount,
            outcome: Outcome::Unknown,
        });
        let req = client.submit_async(&transfer(from, to, amount))?;
        pending.push((req, idx));
        Ok(())
    }

    /// Collects whatever replies arrive within `window`; the rest stay
    /// `Unknown`. Disconnects and timeouts are expected here — the scenarios
    /// kill the very process that owes the replies.
    fn collect_replies(
        &mut self,
        client: &mut NetClient,
        pending: &mut Vec<(u64, usize)>,
        window: Duration,
    ) {
        let limit = Instant::now() + window;
        while !pending.is_empty() {
            let remaining = limit.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break;
            }
            match client.recv_reply(remaining) {
                Ok((req, result)) => {
                    if let Some(pos) = pending.iter().position(|&(r, _)| r == req) {
                        let (_, idx) = pending.swap_remove(pos);
                        self.txns[idx].outcome = if result.is_committed() {
                            Outcome::Committed
                        } else {
                            Outcome::Aborted
                        };
                    }
                }
                Err(_) => break, // killed/partitioned: the rest stay Unknown
            }
        }
    }

    /// Spawns a background thread that polls the listed sites for in-doubt
    /// polyvalues; join the handle for the verdict. Polling concurrently
    /// with reply collection matters: a stranded polyvalue can collapse
    /// within tens of milliseconds of the outcome landing, so a poll that
    /// starts after the reply window has already missed it.
    fn spawn_poly_poller(
        &self,
        sites: &[u32],
        window: Duration,
    ) -> std::thread::JoinHandle<bool> {
        let addrs: Vec<SocketAddr> = sites.iter().map(|&s| self.real(s)).collect();
        let next = Arc::clone(&self.next_client);
        std::thread::Builder::new()
            .name("pv-chaos-poller".into())
            .spawn(move || {
                let limit = Instant::now() + window;
                loop {
                    for &addr in &addrs {
                        let node = next.fetch_add(1, Ordering::Relaxed);
                        if let Ok(mut c) = NetClient::connect(addr, node, harness_backoff()) {
                            if let Ok(snap) = c.inspect(Duration::from_secs(2)) {
                                if snap.poly_count > 0 {
                                    return true;
                                }
                            }
                        }
                    }
                    if Instant::now() > limit {
                        return false;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            })
            .expect("spawn poly poller")
    }

    /// Waits until every site is quiescent with zero polyvalues; returns
    /// how long that took.
    fn await_quiescence(&self, limit: Duration) -> Result<Duration, EngineError> {
        let start = Instant::now();
        let deadline = start + limit;
        loop {
            let mut polys = 0u64;
            let mut quiescent = true;
            let mut err = None;
            for s in 0..self.sites {
                match self
                    .client(s)
                    .and_then(|mut c| c.inspect(Duration::from_secs(3)))
                {
                    Ok(snap) => {
                        polys += snap.poly_count;
                        quiescent &= snap.quiescent;
                    }
                    Err(e) => err = Some(e),
                }
            }
            if err.is_none() && polys == 0 && quiescent {
                return Ok(start.elapsed());
            }
            if Instant::now() > deadline {
                return Err(EngineError::Io(format!(
                    "no quiescence within {limit:?}: {polys} polyvalues left, last error {err:?}"
                )));
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    /// Final balances, indexed by account id.
    fn balances(&self) -> Result<Vec<i64>, EngineError> {
        let mut out = vec![0i64; ACCOUNTS as usize];
        for s in 0..self.sites {
            let snap = self.client(s)?.inspect(Duration::from_secs(3))?;
            for (item, entry) in &snap.items {
                let v = entry
                    .as_simple()
                    .and_then(pv_core::Value::as_int)
                    .ok_or_else(|| {
                        EngineError::Io(format!("item {item:?} unsettled after drain"))
                    })?;
                out[item.0 as usize] = v;
            }
        }
        Ok(out)
    }

    /// Every site's metrics registry, merged.
    fn merged_metrics(&self) -> Result<Metrics, EngineError> {
        let mut merged = Metrics::new();
        for s in 0..self.sites {
            merged.merge(&self.client(s)?.metrics(Duration::from_secs(3))?);
        }
        Ok(merged)
    }

    /// Conservation + agreement over everything submitted so far.
    fn verify_funds(&self) -> Result<(), EngineError> {
        let final_balances = self.balances()?;
        let total: i64 = final_balances.iter().sum();
        let expected = ACCOUNTS as i64 * BALANCE;
        if total != expected {
            return Err(EngineError::Io(format!(
                "CONSERVATION VIOLATION: total {total}, expected {expected}"
            )));
        }
        let committed: Vec<&Txn> = self
            .txns
            .iter()
            .filter(|t| t.outcome == Outcome::Committed)
            .collect();
        let unknown: Vec<&Txn> = self
            .txns
            .iter()
            .filter(|t| t.outcome == Outcome::Unknown)
            .collect();
        let mut base = vec![BALANCE; ACCOUNTS as usize];
        for t in &committed {
            base[t.from as usize] -= t.amount;
            base[t.to as usize] += t.amount;
        }
        if unknown.len() > 20 {
            return Err(EngineError::Io(format!(
                "{} unknown outcomes exceed the enumeration cap",
                unknown.len()
            )));
        }
        for mask in 0u32..(1u32 << unknown.len()) {
            let mut v = base.clone();
            for (i, t) in unknown.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    v[t.from as usize] -= t.amount;
                    v[t.to as usize] += t.amount;
                }
            }
            if v == final_balances {
                return Ok(());
            }
        }
        Err(EngineError::Io(format!(
            "AGREEMENT VIOLATION: no commit assignment of {} unknown txns explains \
             the final balances {final_balances:?} (observed commits applied: {base:?})",
            unknown.len()
        )))
    }

    fn outcome_counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for t in &self.txns {
            match t.outcome {
                Outcome::Committed => c.0 += 1,
                Outcome::Aborted => c.1 += 1,
                Outcome::Unknown => c.2 += 1,
            }
        }
        c
    }

    /// Clean shutdown: every surviving process flushes and exits 0.
    fn shutdown(mut self) -> Result<(), EngineError> {
        for s in 0..self.sites {
            if self.children[s as usize].is_some() {
                self.client(s)?.shutdown()?;
            }
        }
        for slot in self.children.iter_mut() {
            if let Some(mut guard) = slot.take() {
                let status = guard
                    .0
                    .wait()
                    .map_err(|e| EngineError::Io(format!("wait pv-node: {e}")))?;
                if !status.success() {
                    return Err(EngineError::Io(format!(
                        "pv-node exited with {status} after shutdown"
                    )));
                }
            }
        }
        let _ = std::fs::remove_dir_all(&self.data_dir);
        Ok(())
    }
}

/// One scenario's verdict, rendered as a JSON object.
struct Verdict {
    scenario: &'static str,
    seed: u64,
    ok: bool,
    committed: usize,
    aborted: usize,
    unknown: usize,
    polys_observed: bool,
    recover_ms: f64,
    detail: String,
}

impl Verdict {
    fn json(&self) -> String {
        format!(
            "{{\"scenario\":\"{}\",\"seed\":{},\"ok\":{},\"committed\":{},\"aborted\":{},\
             \"unknown\":{},\"polys_observed\":{},\"recover_ms\":{:.1},\"detail\":\"{}\"}}",
            self.scenario,
            self.seed,
            self.ok,
            self.committed,
            self.aborted,
            self.unknown,
            self.polys_observed,
            self.recover_ms,
            self.detail.replace('"', "'").replace('\n', " "),
        )
    }
}

type ScenarioFn = fn(&mut Harness) -> Result<(bool, Duration), EngineError>;

/// Kill the coordinator while a pipelined batch is mid-prepare; participants
/// time out into in-doubt polyvalues; the restarted coordinator's recovery +
/// §3.3 inquiries must collapse them.
fn coordinator_kill(h: &mut Harness) -> Result<(bool, Duration), EngineError> {
    // 40ms per hop stretches the protocol so the kill lands in a knowable
    // phase: ReadResp arrives ~80ms, Prepare is delivered ~120ms, Decisions
    // land ~200ms. Killing at 135-165ms catches the coordinator after
    // participants staged but before every Decision went out; the stranded
    // participants' wait timers (80ms after staging) then install in-doubt
    // polyvalues that only the restarted coordinator can resolve.
    h.chaos.set_default(LinkFaults {
        delay: Duration::from_millis(40),
        ..LinkFaults::default()
    });
    let (mut client, mut pending) = h.submit_batch(0, 8, None)?;
    std::thread::sleep(Duration::from_millis(135 + h.rng.below(30)));
    h.kill(0);
    let kill_at = Instant::now();
    let survivors: Vec<u32> = (1..h.sites).collect();
    let poller = h.spawn_poly_poller(&survivors, Duration::from_millis(1500));
    h.collect_replies(&mut client, &mut pending, Duration::from_millis(300));
    let polys = poller.join().unwrap_or(false);
    std::thread::sleep(Duration::from_millis(300 + h.rng.below(300)));
    h.restart(0)?;
    h.await_quiescence(Duration::from_secs(30))?;
    Ok((polys, kill_at.elapsed()))
}

/// Kill a participant after it is (likely) Ready; the coordinator either
/// decides without it or the participant recovers into in-doubt state that
/// the outcome table resolves.
fn participant_kill(h: &mut Harness) -> Result<(bool, Duration), EngineError> {
    // Localhost 2PC finishes in microseconds; stretch it with 40ms/hop
    // injected latency so the kill reliably lands after site 1 staged
    // (Prepare delivered ~120ms) but before its Ready reaches the
    // coordinator (~160ms). The surviving participant (site 2) then
    // wait-times-out into in-doubt polyvalues while the coordinator waits
    // out its ready timeout. Disjoint account pairs homed at sites 1→2
    // keep every transfer clear of batch-mate lock conflicts.
    h.chaos.set_default(LinkFaults {
        delay: Duration::from_millis(40),
        ..LinkFaults::default()
    });
    let pairs: Vec<(u64, u64)> = (0..3).map(|i| (1 + 3 * i, 2 + 3 * i)).collect();
    let (mut client, mut pending) = h.submit_pairs(0, &pairs)?;
    std::thread::sleep(Duration::from_millis(125 + h.rng.below(30)));
    h.kill(1);
    let kill_at = Instant::now();
    let poller = h.spawn_poly_poller(&[0, 2], Duration::from_millis(1500));
    h.collect_replies(&mut client, &mut pending, Duration::from_millis(800));
    let polys = poller.join().unwrap_or(false);
    std::thread::sleep(Duration::from_millis(200 + h.rng.below(300)));
    h.restart(1)?;
    h.await_quiescence(Duration::from_secs(30))?;
    Ok((polys, kill_at.elapsed()))
}

/// Partition the coordinator away from its participants during the decision
/// window; after healing, outcomes must propagate and the backoff metrics
/// must show paced (not thundering) reconnects.
fn partition(h: &mut Harness) -> Result<(bool, Duration), EngineError> {
    // As in `participant_kill`: stretch the protocol with 40ms/hop so the
    // cut lands after Prepare was delivered to the remote participants
    // (~120ms) and before the Decision reaches them (~200ms). Their wait
    // timers then install in-doubt polyvalues that stay stranded for the
    // whole partition — the cut also drops any frames still in flight, just
    // like a real partition eats packets.
    h.chaos.set_default(LinkFaults {
        delay: Duration::from_millis(40),
        ..LinkFaults::default()
    });
    let pairs = [(0, 1), (2, 3), (4, 5), (6, 7)];
    let (mut client, mut pending) = h.submit_pairs(0, &pairs)?;
    std::thread::sleep(Duration::from_millis(140 + h.rng.below(40)));
    let rest: Vec<u32> = (1..h.sites).collect();
    h.chaos.partition(&[0], &rest);
    if std::env::var_os("PV_CHAOS_DEBUG").is_some() {
        let t0 = Instant::now();
        while t0.elapsed() < Duration::from_millis(600) {
            let mut line = format!("t={:>5.1}ms", t0.elapsed().as_secs_f64() * 1e3);
            for s in 0..h.sites {
                match h.client(s).and_then(|mut c| c.inspect(Duration::from_secs(1))) {
                    Ok(sn) => line.push_str(&format!(" s{s}:polys={} q={}", sn.poly_count, sn.quiescent)),
                    Err(e) => line.push_str(&format!(" s{s}:err({e:?})")),
                }
            }
            eprintln!("{line}");
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    let poller = h.spawn_poly_poller(&rest, Duration::from_millis(2500));
    h.collect_replies(&mut client, &mut pending, Duration::from_millis(1200));
    let polys = poller.join().unwrap_or(false);
    std::thread::sleep(Duration::from_millis(500 + h.rng.below(500)));
    h.chaos.heal();
    let heal_at = Instant::now();
    h.await_quiescence(Duration::from_secs(30))?;
    let heal_to_quiesce = heal_at.elapsed();

    // Backoff observability: the cut links must have tripped circuits, the
    // healed links must have reconnected, and the open intervals must have
    // grown past the base delay (paced rejoin, not a thundering herd).
    let m = h.merged_metrics()?;
    if m.counter("net.circuit_open") == 0 {
        return Err(EngineError::Io("partition never tripped a circuit".into()));
    }
    if m.counter("net.reconnects") == 0 {
        return Err(EngineError::Io("healed links never reconnected".into()));
    }
    let grew = m
        .histogram("net.backoff.wait_ms")
        .and_then(|hist| hist.max())
        .is_some_and(|max| max > 25.0);
    if !grew {
        return Err(EngineError::Io(
            "backoff never grew past the base delay during the partition".into(),
        ));
    }
    Ok((polys, heal_to_quiesce))
}

/// Kill every site at once mid-load, restart all from their WALs in a
/// seeded order: cold recovery on every site, then collective resolution.
fn restart_storm(h: &mut Harness) -> Result<(bool, Duration), EngineError> {
    let (mut c0, mut p0) = h.submit_batch(0, 6, None)?;
    let (mut c1, mut p1) = h.submit_batch(1 % h.sites, 6, None)?;
    std::thread::sleep(Duration::from_millis(h.rng.below(10)));
    let mut order: Vec<u32> = (0..h.sites).collect();
    for i in (1..order.len()).rev() {
        order.swap(i, h.rng.below(i as u64 + 1) as usize);
    }
    for &s in &order {
        h.kill(s);
    }
    let kill_at = Instant::now();
    h.collect_replies(&mut c0, &mut p0, Duration::from_millis(100));
    h.collect_replies(&mut c1, &mut p1, Duration::from_millis(100));
    std::thread::sleep(Duration::from_millis(200 + h.rng.below(200)));
    for i in (1..order.len()).rev() {
        order.swap(i, h.rng.below(i as u64 + 1) as usize);
    }
    for &s in &order.clone() {
        h.restart(s)?;
    }
    h.await_quiescence(Duration::from_secs(30))?;
    let m = h.merged_metrics()?;
    if m.counter("net.cold_recoveries") < u64::from(h.sites) {
        return Err(EngineError::Io(format!(
            "expected {} cold recoveries, saw {}",
            h.sites,
            m.counter("net.cold_recoveries")
        )));
    }
    Ok((true, kill_at.elapsed()))
}

/// Roll a kill+restart through every site while a background load keeps
/// submitting; the cluster must absorb each loss and end consistent.
fn rolling_restart(h: &mut Harness) -> Result<(bool, Duration), EngineError> {
    let stop = Arc::new(AtomicBool::new(false));
    let reals = Arc::clone(&h.reals);
    let next_client = Arc::clone(&h.next_client);
    let sites = h.sites;
    let load_seed = h.rng.below(u64::MAX);
    let stop2 = Arc::clone(&stop);
    let loader = std::thread::spawn(move || -> Vec<Txn> {
        let mut rng = SimRng::new(load_seed);
        let mut txns = Vec::new();
        let mut target = 0u32;
        while !stop2.load(Ordering::SeqCst) {
            target = (target + 1) % sites;
            let addr = reals.lock().expect("reals lock")[target as usize];
            let node = next_client.fetch_add(1, Ordering::Relaxed);
            let Ok(mut client) = NetClient::connect(addr, node, Backoff::fast_fail()) else {
                std::thread::sleep(Duration::from_millis(50));
                continue;
            };
            for _ in 0..4 {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                let from = rng.below(ACCOUNTS);
                let to = (from + 1) % ACCOUNTS;
                let amount = 1 + rng.below(5) as i64;
                let mut txn = Txn {
                    from,
                    to,
                    amount,
                    outcome: Outcome::Unknown,
                };
                match client.submit(&transfer(from, to, amount), Duration::from_secs(2)) {
                    Ok(result) => {
                        txn.outcome = if result.is_committed() {
                            Outcome::Committed
                        } else {
                            Outcome::Aborted
                        };
                        txns.push(txn);
                    }
                    Err(EngineError::Timeout) | Err(EngineError::Disconnected) => {
                        txns.push(txn); // submitted, outcome unknown
                        break;
                    }
                    Err(_) => break, // connect-level failure: nothing submitted
                }
            }
        }
        txns
    });

    let roll_start = Instant::now();
    for s in 0..h.sites {
        std::thread::sleep(Duration::from_millis(150 + h.rng.below(200)));
        h.kill(s);
        std::thread::sleep(Duration::from_millis(150 + h.rng.below(200)));
        h.restart(s)?;
    }
    let rolled = roll_start.elapsed();
    stop.store(true, Ordering::SeqCst);
    let load_txns = loader.join().expect("load thread panicked");
    h.txns.extend(load_txns);
    h.await_quiescence(Duration::from_secs(30))?;
    Ok((true, rolled))
}

/// The coordinator-kill schedule replayed under Paxos Commit: the same hard
/// SIGKILL mid-prepare, but the stranded participants must *not* install
/// polyvalues — their wait timeouts elect a takeover leader whose ballot
/// closes the transaction against the surviving acceptor majority, with the
/// coordinator still dead. The restarted coordinator then learns the
/// outcomes from its acceptor log and the inquiry tick.
fn paxos_commit_kill(h: &mut Harness) -> Result<(bool, Duration), EngineError> {
    // Same 40ms/hop stretch as `coordinator_kill`: the kill lands after the
    // participants staged and broadcast their ballot-0 votes, before every
    // Decision went out.
    h.chaos.set_default(LinkFaults {
        delay: Duration::from_millis(40),
        ..LinkFaults::default()
    });
    let (mut client, mut pending) = h.submit_batch(0, 8, None)?;
    std::thread::sleep(Duration::from_millis(135 + h.rng.below(30)));
    h.kill(0);
    let kill_at = Instant::now();
    let survivors: Vec<u32> = (1..h.sites).collect();
    let poller = h.spawn_poly_poller(&survivors, Duration::from_millis(1500));
    h.collect_replies(&mut client, &mut pending, Duration::from_millis(300));
    let polys = poller.join().unwrap_or(false);
    if polys {
        return Err(EngineError::Io(
            "paxos-commit installed a polyvalue; the protocol never should".into(),
        ));
    }
    std::thread::sleep(Duration::from_millis(300 + h.rng.below(300)));
    h.restart(0)?;
    h.await_quiescence(Duration::from_secs(30))?;
    // The non-blocking path must actually have run: a dead coordinator with
    // in-flight transactions forces at least one ballot takeover somewhere.
    let m = h.merged_metrics()?;
    if m.counter("pc.takeovers") == 0 {
        return Err(EngineError::Io(
            "coordinator died mid-commit yet no site ever started a takeover".into(),
        ));
    }
    Ok((false, kill_at.elapsed()))
}

fn run_scenario(
    name: &'static str,
    sites: u32,
    seed: u64,
    protocol: &'static str,
    f: ScenarioFn,
) -> Verdict {
    let mut verdict = Verdict {
        scenario: name,
        seed,
        ok: false,
        committed: 0,
        aborted: 0,
        unknown: 0,
        polys_observed: false,
        recover_ms: 0.0,
        detail: String::new(),
    };
    let mut harness = match Harness::start(sites, seed, name, protocol) {
        Ok(h) => h,
        Err(e) => {
            verdict.detail = format!("harness start failed: {e}");
            return verdict;
        }
    };
    let result = f(&mut harness).and_then(|(polys, recover)| {
        verdict.polys_observed = polys;
        verdict.recover_ms = recover.as_secs_f64() * 1e3;
        harness.verify_funds()
    });
    let (committed, aborted, unknown) = harness.outcome_counts();
    verdict.committed = committed;
    verdict.aborted = aborted;
    verdict.unknown = unknown;
    match result.and_then(|()| harness.shutdown()) {
        Ok(()) => {
            verdict.ok = true;
            verdict.detail = "conservation, agreement, collapse, quiescence".into();
        }
        Err(e) => verdict.detail = e.to_string(),
    }
    verdict
}

fn main() -> ExitCode {
    let args = parse_args();
    let all: [(&'static str, &'static str, ScenarioFn); 6] = [
        ("coordinator-kill", "polyvalue", coordinator_kill),
        ("participant-kill", "polyvalue", participant_kill),
        ("partition", "polyvalue", partition),
        ("restart-storm", "polyvalue", restart_storm),
        ("rolling-restart", "polyvalue", rolling_restart),
        ("paxos-commit-kill", "paxos-commit", paxos_commit_kill),
    ];
    let picked: Vec<_> = all
        .iter()
        .filter(|(name, _, _)| args.scenario == "all" || args.scenario == *name)
        .collect();
    if picked.is_empty() {
        eprintln!("unknown scenario: {}", args.scenario);
        usage();
    }
    let mut verdicts = Vec::new();
    for (name, protocol, f) in picked {
        let verdict = run_scenario(name, args.sites, args.seed, protocol, *f);
        println!("{}", verdict.json());
        verdicts.push(verdict);
    }
    let mut ok = verdicts.iter().all(|v| v.ok);
    // A full run that never stranded a single polyvalue did not exercise
    // the §3.3 machinery at all — that's a harness failure, not a pass.
    if args.scenario == "all" && !verdicts.iter().any(|v| v.polys_observed) {
        eprintln!("pv-chaos: no scenario ever observed an in-doubt polyvalue");
        ok = false;
    }
    if let Some(path) = &args.out {
        let body = format!(
            "[\n  {}\n]\n",
            verdicts
                .iter()
                .map(Verdict::json)
                .collect::<Vec<_>>()
                .join(",\n  ")
        );
        if let Err(e) =
            std::fs::File::create(path).and_then(|mut f| f.write_all(body.as_bytes()))
        {
            eprintln!("write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
