//! # pv-net — socket deployment of the polyvalue engine
//!
//! The sans-IO `pv_protocol::SiteMachine` already runs under two runtimes:
//! the deterministic simulation and the thread-per-site live runtime. This
//! crate is the third: real TCP sockets between real processes.
//!
//! * [`wire`] — the versioned, checksummed binary frame format. Payload
//!   encoding of values/conditions/entries is shared with the WAL codec
//!   ([`pv_store::codec`]); this module adds framing and the protocol-level
//!   message vocabulary.
//! * [`node`] — the site process: a non-blocking event loop (accept, read,
//!   decode, engine callback, write-backpressure flush) with a wall-clock
//!   timer wheel and deadline-driven peer dialing governed by [`backoff`].
//! * [`backoff`] — the jittered-exponential [`Backoff`] policy and the
//!   per-peer [`Circuit`] breaker that pace every dial and reconnect.
//! * [`client`] — a blocking client connection with pipelined submission.
//! * [`cluster`] — [`NetCluster`]: every node's event loop hosted on an
//!   in-process thread over real localhost TCP, consuming the same
//!   [`pv_engine::Topology`] as the other two runtimes.
//! * [`chaos`] — a fault-injecting TCP proxy ([`ChaosNet`]) that sits on
//!   every site→site link and applies seeded, deterministic delay, drop,
//!   duplication, throttling, partitions, and mid-frame cuts.
//!
//! The `pv-node` binary wraps [`node::Node`] for one-process-per-site
//! deployment; `pv-loadgen` spawns or targets such a cluster and measures
//! committed throughput and phase latencies (`BENCH_net.json`); `pv-chaos`
//! supervises real `pv-node` processes under kill/restart/partition
//! schedules and asserts the paper's recovery invariants.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backoff;
pub mod chaos;
pub mod client;
pub mod cluster;
pub mod node;
pub mod wire;

pub use backoff::{Backoff, Circuit, CircuitState, CircuitVerdict};
pub use chaos::{ChaosNet, LinkFaults};
pub use client::NetClient;
pub use cluster::{NetBuilder, NetCluster};
pub use node::{Node, NodeConfig};
pub use wire::{DecodeError, EncodeError, Frame, NodeSnapshot, PeerKind, WireMetrics};
