//! The site node: a single-process, single-threaded socket event loop
//! driving one [`pv_engine::Site`].
//!
//! This is the third deployment of the identical sans-IO
//! `pv_protocol::SiteMachine` — after the deterministic simulation and the
//! thread-per-site live runtime — and it reuses the engine's driver contract
//! verbatim: every callback runs under [`pv_simnet::Ctx::external`], effects
//! apply in emission order, `NeedCoin` is answered locally inside
//! [`Site::drive`](pv_engine::Site), and the storage-metrics flush rides the
//! same hooks. What this module adds is real I/O: a non-blocking
//! `std::net` readiness loop (accept, read, decode, write-backpressure
//! flush), a wall-clock timer wheel feeding `on_timer`, and
//! **deadline-driven peer dialing**: connection attempts run on detached
//! dialer threads and report back through a channel, so the event loop keeps
//! serving live peers and clients while an unreachable peer is being
//! retried. Retries are governed by a per-peer [`Circuit`] breaker under a
//! jittered-exponential [`Backoff`] policy — a peer that stays dead walks
//! Closed → Open → HalfOpen with growing pauses (never a hot loop), and a
//! peer that stays unreachable past the policy's attempt budget is a
//! structured [`EngineError::Unreachable`], never a hang. Messages bound for
//! a down peer queue (bounded) and flush on reconnect; the §3.3 inquiry
//! protocol absorbs anything the bound drops.
//!
//! The loop polls with a short sleep rather than an OS readiness API: the
//! workspace is hermetic (no `mio`/`libc`), and at cluster sizes of tens of
//! sockets a sub-millisecond poll is indistinguishable from epoll for the
//! paper's workloads. When nothing is happening the poll tick decays
//! exponentially (200 µs → 10 ms) toward the next timer deadline, so an
//! idle site wakes tens of times per second instead of thousands
//! (`net.idle_wakeups` counts them).

use crate::backoff::{Backoff, Circuit, CircuitVerdict};
use crate::wire::{
    decode_frame, encode_frame, Frame, NodeSnapshot, PeerKind, WireMetrics, MAX_FRAME_LEN,
};
use pv_engine::messages::Msg;
use pv_engine::topology::Topology;
use pv_engine::{EngineError, Site};
use pv_simnet::{Actor, Ctx, Effect, Metrics, NodeId, SimRng, SimTime, Trace};
use pv_store::{DiskWal, SiteId, SiteStore};
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use bytes::BytesMut;

/// Floor of the idle poll tick (and the tick used while traffic flows).
const IDLE_MIN: Duration = Duration::from_micros(200);

/// Ceiling the idle tick decays to while nothing is happening.
const IDLE_MAX: Duration = Duration::from_millis(10);

/// Most protocol messages held for a down peer before the oldest drop.
/// The §3.1 timers and §3.3 inquiries re-drive anything lost.
const PENDING_CAP: usize = 4096;

/// One pending timer in the node's wheel (earliest-due pops first).
struct PendingTimer {
    due: Instant,
    id: u64,
    key: u64,
}

impl PartialEq for PendingTimer {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.id == other.id
    }
}
impl Eq for PendingTimer {}
impl PartialOrd for PendingTimer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingTimer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.due.cmp(&self.due).then(other.id.cmp(&self.id))
    }
}

/// One live connection with read/write buffering. Writes that the socket
/// will not take immediately stay queued in `wbuf` and drain as the peer
/// reads — backpressure without blocking the loop.
struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            dead: false,
        })
    }

    /// Encodes `frame` onto the write queue and pushes what the socket
    /// accepts right away.
    fn queue(&mut self, frame: &Frame) -> Result<(), EngineError> {
        let mut out = BytesMut::new();
        encode_frame(frame, &mut out)?;
        self.wbuf.extend_from_slice(&out);
        self.flush();
        Ok(())
    }

    /// Writes as much queued output as the socket accepts.
    fn flush(&mut self) {
        while !self.wbuf.is_empty() && !self.dead {
            match self.stream.write(&self.wbuf) {
                Ok(0) => {
                    self.dead = true;
                }
                Ok(n) => {
                    self.wbuf.drain(..n);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                }
            }
        }
    }

    /// Reads everything currently available; returns whether any bytes
    /// arrived. EOF or a socket error marks the connection dead (already
    /// buffered frames still parse).
    fn fill(&mut self) -> bool {
        let mut any = false;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    any = true;
                    // Refuse unbounded buffering from a peer that floods
                    // garbage faster than we parse.
                    if self.rbuf.len() > 2 * MAX_FRAME_LEN as usize {
                        self.dead = true;
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        any
    }
}

/// The dial/reconnect state of one outbound peer link.
struct PeerLink {
    addr: Option<SocketAddr>,
    conn: Option<Conn>,
    /// Channel from an in-flight dialer thread, if one is out.
    dial: Option<mpsc::Receiver<std::io::Result<TcpStream>>>,
    circuit: Circuit,
    /// When the current connection was established (stability window: the
    /// circuit only re-closes after the link survives a while, so a
    /// flapping peer keeps walking up the backoff curve).
    connected_at: Option<Instant>,
    /// Messages awaiting reconnect (bounded by [`PENDING_CAP`]).
    pending: VecDeque<Msg>,
    /// Whether this link should be connected even without queued traffic.
    /// Always true for peer sites: a cluster eagerly re-forms itself after
    /// a partition heals instead of waiting for traffic.
    want: bool,
    ever_connected: bool,
    last_err: String,
}

impl PeerLink {
    fn unused(policy: Backoff, salt: u64) -> Self {
        PeerLink {
            addr: None,
            conn: None,
            dial: None,
            circuit: Circuit::new(policy, salt),
            connected_at: None,
            pending: VecDeque::new(),
            want: false,
            ever_connected: false,
            last_err: String::new(),
        }
    }
}

/// Configuration of one site process.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Which site of the topology this process is.
    pub site: SiteId,
    /// The shared cluster description (same value the simulation and live
    /// runtime consume). When it carries a
    /// [`BackoffConfig`](pv_engine::topology::BackoffConfig), that policy
    /// overrides `backoff`.
    pub topo: Topology,
    /// Dial/reconnect policy for peer connections.
    pub backoff: Backoff,
}

/// A bound-but-not-yet-running site node.
///
/// Construction is two-phase so an in-process cluster can bind every
/// listener on port 0 first, learn the real addresses, and only then hand
/// each node the full peer table:
///
/// 1. [`Node::bind`] — open the listener (and the WAL, recovering if the
///    image is non-empty);
/// 2. [`Node::set_peers`] — provide every site's address;
/// 3. [`Node::run`] — dial peers and serve until a `Shutdown` frame.
pub struct Node {
    me: NodeId,
    sites: u32,
    listener: TcpListener,
    backoff: Backoff,
    site: Site,
    recovered: bool,
    metrics: Metrics,
    trace: Trace,
    rng: SimRng,
    next_timer_id: u64,
    timers: BinaryHeap<PendingTimer>,
    cancelled: BTreeSet<u64>,
    epoch: Instant,
    /// Outbound site→site links, indexed by peer site id.
    peers: Vec<PeerLink>,
    /// Inbound connections (slab; indices stay stable, dead slots are None).
    conns: Vec<Option<Conn>>,
    /// Reply routing: node id (from `Hello`) → inbound conn slot.
    routes: BTreeMap<u32, usize>,
    /// Messages a site sends to itself, applied in order within the loop.
    loopback: VecDeque<Msg>,
    /// Current idle poll tick (decays toward [`IDLE_MAX`] while idle).
    idle_tick: Duration,
}

impl Node {
    /// Opens the listener on `listen` (use port 0 to let the OS pick) and
    /// builds the site from the topology: disk-backed WAL under
    /// `data_dir/site-<s>` when the topology has a data dir, recovery from a
    /// non-empty image, seeded items durable before serving.
    pub fn bind(config: NodeConfig, listen: SocketAddr) -> Result<Node, EngineError> {
        let NodeConfig { site: s, topo, backoff } = config;
        if s >= topo.sites {
            return Err(EngineError::UnknownSite(s));
        }
        let backoff = topo
            .backoff
            .as_ref()
            .map(Backoff::from_config)
            .unwrap_or(backoff);
        let listener = TcpListener::bind(listen)
            .map_err(|e| EngineError::Io(format!("bind {listen}: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| EngineError::Io(format!("set_nonblocking: {e}")))?;
        let store = match &topo.data_dir {
            Some(dir) => {
                let path = dir.join(format!("site-{s}"));
                let wal = DiskWal::open(&path, topo.fsync_policy).map_err(|e| {
                    EngineError::Io(format!("open WAL at {}: {e}", path.display()))
                })?;
                let mut store = SiteStore::open(Box::new(wal));
                // Mirror keyspace runs beside the WAL (derived state; the
                // WAL stays the authoritative log).
                store.attach_keyspace_dir(&path);
                store
            }
            None => SiteStore::new(),
        };
        let recovered = !store.wal().is_empty();
        let mut site = Site::with_store(s, topo.engine.clone(), topo.directory.clone(), store);
        site.enable_wall_clock_metrics();
        for (item, value) in &topo.items {
            if topo.directory.site_of(*item) == Some(s) && !site.store().contains(*item) {
                site.seed_item(*item, value.clone());
            }
        }
        site.sync_store();
        let peers = (0..topo.sites)
            .map(|p| PeerLink::unused(backoff, peer_salt(s, p)))
            .collect();
        Ok(Node {
            me: NodeId(s),
            sites: topo.sites,
            listener,
            backoff,
            site,
            recovered,
            metrics: Metrics::new(),
            trace: Trace::default(),
            rng: SimRng::new(0xBEEF_0000 + u64::from(s)),
            next_timer_id: 0,
            timers: BinaryHeap::new(),
            cancelled: BTreeSet::new(),
            epoch: Instant::now(),
            peers,
            conns: Vec::new(),
            routes: BTreeMap::new(),
            loopback: VecDeque::new(),
            idle_tick: IDLE_MIN,
        })
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> Result<SocketAddr, EngineError> {
        self.listener
            .local_addr()
            .map_err(|e| EngineError::Io(format!("local_addr: {e}")))
    }

    /// Provides the full site address table (index = site id). Must be
    /// called before [`Node::run`]. The entry for this site itself is
    /// ignored (self-sends use the in-process loopback queue), so the table
    /// may point at chaos proxies while the node listens on its real
    /// address.
    pub fn set_peers(&mut self, addrs: Vec<SocketAddr>) {
        for (p, addr) in addrs.into_iter().enumerate() {
            if let Some(link) = self.peers.get_mut(p) {
                link.addr = Some(addr);
                link.want = p as u32 != self.me.0;
            }
        }
    }

    /// The active dial/reconnect policy.
    pub fn backoff(&self) -> Backoff {
        self.backoff
    }

    /// Swaps the dial/reconnect policy live (also reachable over the wire
    /// via the `ConfigBackoff` control frame). Connection state carries
    /// over; only future backoff decisions change.
    pub fn set_backoff(&mut self, policy: Backoff) {
        self.backoff = policy;
        for link in &mut self.peers {
            link.circuit.set_policy(policy);
        }
    }

    fn now(&self) -> SimTime {
        SimTime(self.epoch.elapsed().as_micros() as u64)
    }

    /// Runs one engine callback and applies its effects in emission order —
    /// identical contract to the live runtime's driver.
    fn callback(
        &mut self,
        f: impl FnOnce(&mut Site, &mut Ctx<Msg>),
    ) -> Result<(), EngineError> {
        let mut ctx = Ctx::external(
            self.now(),
            self.me,
            &mut self.rng,
            &mut self.metrics,
            &mut self.trace,
            &mut self.next_timer_id,
        );
        f(&mut self.site, &mut ctx);
        let effects = ctx.drain_effects();
        let now = self.now();
        for effect in effects {
            match effect {
                Effect::Send { to, msg } => self.send(to, msg)?,
                Effect::SetTimer { id, key, at } => {
                    let delay =
                        Duration::from_micros(at.as_micros().saturating_sub(now.as_micros()));
                    self.timers.push(PendingTimer {
                        due: Instant::now() + delay,
                        id,
                        key,
                    });
                }
                Effect::CancelTimer(id) => {
                    self.cancelled.insert(id);
                }
            }
        }
        Ok(())
    }

    /// Routes one outgoing message: loopback to self, a peer-site link, or a
    /// client connection (by the node id its `Hello` registered). A missing
    /// client route drops the message like a datagram — the protocol's
    /// timers and inquiries already tolerate loss. A message for a peer site
    /// that is currently down queues (bounded) for delivery on reconnect;
    /// the reconnect itself is governed by the peer's circuit breaker and
    /// never blocks this loop.
    fn send(&mut self, to: NodeId, msg: Msg) -> Result<(), EngineError> {
        if to == self.me {
            self.loopback.push_back(msg);
            return Ok(());
        }
        if to.0 < self.sites {
            let link = &mut self.peers[to.0 as usize];
            if let Some(conn) = link.conn.as_mut() {
                if !conn.dead {
                    conn.queue(&Frame::Proto {
                        from: self.me.0,
                        msg,
                    })?;
                    return Ok(());
                }
            }
            if link.pending.len() >= PENDING_CAP {
                link.pending.pop_front();
                self.metrics.inc("net.dropped_peer_down");
            }
            link.pending.push_back(msg);
            return Ok(());
        }
        if let Some(&slot) = self.routes.get(&to.0) {
            if let Some(conn) = self.conns[slot].as_mut() {
                conn.queue(&Frame::Proto {
                    from: self.me.0,
                    msg,
                })?;
                return Ok(());
            }
        }
        self.metrics.inc("net.dropped_no_route");
        Ok(())
    }

    /// Drains the self-send queue (a site messaging itself must see those
    /// messages in order, before any socket traffic).
    fn drain_loopback(&mut self) -> Result<(), EngineError> {
        while let Some(msg) = self.loopback.pop_front() {
            let me = self.me;
            self.callback(|site, ctx| site.on_message(ctx, me, msg))?;
        }
        Ok(())
    }

    /// Advances every peer link one step: reap dead connections, collect
    /// dial results, promote links that survived the stability window, and
    /// launch new circuit-gated dial probes. Never blocks; a peer whose
    /// circuit exhausts its budget is a fatal structured `Unreachable`.
    fn pump_peers(&mut self) -> Result<bool, EngineError> {
        let mut progress = false;
        let now = Instant::now();
        // The circuit re-closes only once a connection has stayed up this
        // long, so a link that flaps (accept-then-kill partitions) keeps
        // climbing the backoff curve instead of hot-cycling at dial speed.
        let stability = self.backoff.base.max(Duration::from_millis(250));
        for p in 0..self.peers.len() {
            if p as u32 == self.me.0 {
                continue;
            }
            // 1. Reap a connection that died.
            if matches!(&self.peers[p].conn, Some(c) if c.dead) {
                let link = &mut self.peers[p];
                link.conn = None;
                link.connected_at = None;
                link.last_err = "connection closed by peer".into();
                self.metrics.inc("net.peer_conn_lost");
                self.fail_link(p, now)?;
                progress = true;
            }
            // 2. A healthy connection that outlived the stability window
            //    re-closes the circuit (resets the failure count).
            let link = &mut self.peers[p];
            if let Some(t) = link.connected_at {
                if link.circuit.failures() > 0 && now.duration_since(t) >= stability {
                    link.circuit.on_success();
                    self.metrics.inc("net.circuit_reclosed");
                }
            }
            // 3. Collect an in-flight dial result.
            let mut dial_result = None;
            if let Some(rx) = &self.peers[p].dial {
                match rx.try_recv() {
                    Ok(r) => dial_result = Some(r),
                    Err(mpsc::TryRecvError::Empty) => {}
                    Err(mpsc::TryRecvError::Disconnected) => {
                        dial_result = Some(Err(std::io::Error::other("dialer thread vanished")))
                    }
                }
            }
            match dial_result {
                Some(Ok(stream)) => {
                    progress = true;
                    let link = &mut self.peers[p];
                    link.dial = None;
                    match Conn::new(stream) {
                        Ok(mut conn) => {
                            let hello = conn.queue(&Frame::Hello {
                                node: self.me.0,
                                kind: PeerKind::Site,
                            });
                            match hello {
                                Ok(()) => {
                                    link.connected_at = Some(now);
                                    if link.ever_connected {
                                        self.metrics.inc("net.reconnects");
                                    }
                                    link.ever_connected = true;
                                    // First-ever success closes immediately;
                                    // a recovering link waits out the
                                    // stability window (step 2).
                                    if link.circuit.failures() == 0 {
                                        link.circuit.on_success();
                                    }
                                    while let Some(msg) = link.pending.pop_front() {
                                        conn.queue(&Frame::Proto {
                                            from: self.me.0,
                                            msg,
                                        })?;
                                    }
                                    link.conn = Some(conn);
                                }
                                Err(e) => return Err(e),
                            }
                        }
                        Err(e) => {
                            link.last_err = format!("configure socket: {e}");
                            self.fail_link(p, now)?;
                        }
                    }
                }
                Some(Err(e)) => {
                    progress = true;
                    let link = &mut self.peers[p];
                    link.dial = None;
                    link.last_err = e.to_string();
                    self.fail_link(p, now)?;
                }
                None => {}
            }
            // 4. Launch a new probe if the link should be up and the
            //    circuit allows one.
            let link = &mut self.peers[p];
            let needs_conn = link.conn.is_none()
                && link.dial.is_none()
                && (link.want || !link.pending.is_empty());
            if needs_conn && link.circuit.try_probe(now) {
                let Some(addr) = link.addr else {
                    return Err(EngineError::UnknownSite(p as SiteId));
                };
                let timeout = self.backoff.connect_timeout();
                let (tx, rx) = mpsc::channel();
                link.dial = Some(rx);
                self.metrics.inc("net.backoff.attempts");
                std::thread::Builder::new()
                    .name(format!("pv-dial-{}-{p}", self.me.0))
                    .spawn(move || {
                        let _ = tx.send(TcpStream::connect_timeout(&addr, timeout));
                    })
                    .map_err(|e| EngineError::Io(format!("spawn dialer: {e}")))?;
            }
        }
        Ok(progress)
    }

    /// Records a failure on peer link `p`: the circuit opens with the next
    /// backoff delay (observable as `net.circuit_open` / `net.backoff.*`),
    /// or, past the attempt budget, the node gives up with a structured
    /// [`EngineError::Unreachable`].
    fn fail_link(&mut self, p: usize, now: Instant) -> Result<(), EngineError> {
        let link = &mut self.peers[p];
        match link.circuit.on_failure(now) {
            CircuitVerdict::Backoff { wait } => {
                self.metrics.inc("net.circuit_open");
                self.metrics
                    .observe("net.backoff.wait_ms", wait.as_secs_f64() * 1e3);
                Ok(())
            }
            CircuitVerdict::Exhausted => {
                self.metrics.inc("net.backoff.exhausted");
                let addr = link
                    .addr
                    .map(|a| a.to_string())
                    .unwrap_or_else(|| "<unset>".into());
                Err(EngineError::Unreachable {
                    site: p as SiteId,
                    detail: format!(
                        "{addr} after {} attempts: {}",
                        link.circuit.policy().attempts,
                        link.last_err
                    ),
                })
            }
        }
    }

    fn snapshot(&self) -> NodeSnapshot {
        NodeSnapshot {
            site: self.site.id(),
            items: self
                .site
                .store()
                .iter_items()
                .map(|(i, e)| (i, e.clone()))
                .collect(),
            poly_count: self.site.poly_count() as u64,
            quiescent: self.site.is_quiescent(),
        }
    }

    /// Serves until a `Shutdown` frame arrives (returning the final
    /// [`Site`]) or a fatal error occurs: listener failure, or a peer site
    /// unreachable past the backoff policy's attempt budget.
    pub fn run(mut self) -> Result<Site, EngineError> {
        let wired = self
            .peers
            .iter()
            .enumerate()
            .filter(|(p, link)| *p as u32 != self.me.0 && link.addr.is_some())
            .count();
        if wired != self.sites as usize - 1 {
            return Err(EngineError::Io(format!(
                "peer table has {wired} addresses for {} sites",
                self.sites
            )));
        }
        if self.recovered {
            self.callback(|site, ctx| site.on_recover(ctx))?;
            self.drain_loopback()?;
            self.metrics.inc("net.cold_recoveries");
        }
        loop {
            let mut progress = false;

            // 1. Fire due timers.
            loop {
                match self.timers.peek() {
                    Some(t) if t.due <= Instant::now() => {
                        let t = self.timers.pop().expect("peeked");
                        if self.cancelled.remove(&t.id) {
                            continue;
                        }
                        let key = t.key;
                        self.callback(|site, ctx| site.on_timer(ctx, key))?;
                        self.drain_loopback()?;
                        progress = true;
                    }
                    _ => break,
                }
            }

            // 2. Advance peer links (dial results, reconnect probes).
            progress |= self.pump_peers()?;

            // 3. Accept new connections.
            loop {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        let conn = Conn::new(stream)
                            .map_err(|e| EngineError::Io(format!("accept: {e}")))?;
                        self.conns.push(Some(conn));
                        self.metrics.inc("net.accepted");
                        progress = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) => return Err(EngineError::Io(format!("accept: {e}"))),
                }
            }

            // 4. Read every connection and parse complete frames. IO and
            // engine work are separate passes so the engine borrows cleanly.
            let mut events: Vec<(usize, Frame)> = Vec::new();
            for (i, slot) in self.conns.iter_mut().enumerate() {
                let Some(conn) = slot else { continue };
                if conn.fill() {
                    progress = true;
                }
                loop {
                    match decode_frame(&conn.rbuf) {
                        Ok(Some((frame, n))) => {
                            conn.rbuf.drain(..n);
                            events.push((i, frame));
                        }
                        Ok(None) => break,
                        Err(_) => {
                            // A malformed stream cannot be resynchronised;
                            // drop the connection. (Counted, not fatal: only
                            // this peer is affected.)
                            conn.dead = true;
                            break;
                        }
                    }
                }
            }

            // Also drain outbound peer sockets so EOF is noticed (peers
            // never send frames back on our dialed pipe).
            for link in &mut self.peers {
                if let Some(conn) = link.conn.as_mut() {
                    conn.fill();
                }
            }

            // 5. Process frames through the engine.
            for (slot, frame) in events {
                progress = true;
                match frame {
                    Frame::Hello { node, kind: _ } => {
                        self.routes.insert(node, slot);
                    }
                    Frame::Proto { from, msg } => {
                        let from = NodeId(from);
                        self.callback(|site, ctx| site.on_message(ctx, from, msg))?;
                        self.drain_loopback()?;
                    }
                    Frame::InspectReq => {
                        let snap = self.snapshot();
                        if let Some(conn) = self.conns[slot].as_mut() {
                            conn.queue(&Frame::InspectResp(snap))?;
                        }
                    }
                    Frame::MetricsReq => {
                        // Storage metrics were flushed by the engine inside
                        // the last callback; the registry is current.
                        let wire = WireMetrics::from_metrics(&self.metrics);
                        if let Some(conn) = self.conns[slot].as_mut() {
                            conn.queue(&Frame::MetricsResp(wire))?;
                        }
                    }
                    Frame::ConfigBackoff(cfg) => {
                        self.set_backoff(Backoff::from_config(&cfg));
                        self.metrics.inc("net.backoff.reconfigured");
                    }
                    Frame::Shutdown => {
                        self.site.sync_store();
                        // Best-effort flush of queued replies before exit.
                        for conn in self.conns.iter_mut().flatten() {
                            conn.flush();
                        }
                        for link in &mut self.peers {
                            if let Some(conn) = link.conn.as_mut() {
                                conn.flush();
                            }
                        }
                        return Ok(self.site);
                    }
                    // Responses are never addressed *to* a site.
                    Frame::InspectResp(_) | Frame::MetricsResp(_) => {
                        self.metrics.inc("net.unexpected_frame");
                    }
                }
            }

            // 6. Flush pending writes (write backpressure drain).
            for conn in self.conns.iter_mut().flatten() {
                conn.flush();
            }
            for link in &mut self.peers {
                if let Some(conn) = link.conn.as_mut() {
                    conn.flush();
                }
            }

            // 7. Reap dead inbound connections (slots stay; routes drop).
            for (i, slot) in self.conns.iter_mut().enumerate() {
                if matches!(slot, Some(c) if c.dead) {
                    *slot = None;
                    self.routes.retain(|_, &mut s| s != i);
                    self.metrics.inc("net.conn_closed");
                }
            }

            // 8. Idle: sleep with an exponentially decaying tick, clamped
            // to the next timer deadline; any progress resets the decay.
            if !progress {
                self.metrics.inc("net.idle_wakeups");
                let mut tick = self.idle_tick;
                if let Some(t) = self.timers.peek() {
                    tick = tick.min(t.due.saturating_duration_since(Instant::now()));
                }
                std::thread::sleep(tick.max(IDLE_MIN));
                self.idle_tick = (self.idle_tick * 2).min(IDLE_MAX);
            } else {
                self.idle_tick = IDLE_MIN;
            }
        }
    }
}

/// Jitter salt of the (node, peer) directed link.
fn peer_salt(me: SiteId, peer: u32) -> u64 {
    (u64::from(me) << 32) ^ u64::from(peer) ^ 0x5EED_CAFE
}
