//! The site node: a single-process, single-threaded socket event loop
//! driving one [`pv_engine::Site`].
//!
//! This is the third deployment of the identical sans-IO
//! `pv_protocol::SiteMachine` — after the deterministic simulation and the
//! thread-per-site live runtime — and it reuses the engine's driver contract
//! verbatim: every callback runs under [`pv_simnet::Ctx::external`], effects
//! apply in emission order, `NeedCoin` is answered locally inside
//! [`Site::drive`](pv_engine::Site), and the storage-metrics flush rides the
//! same hooks. What this module adds is real I/O: a non-blocking
//! `std::net` readiness loop (accept, read, decode, write-backpressure
//! flush), a wall-clock timer wheel feeding `on_timer`, and dial/reconnect
//! handling with a bounded retry budget — a peer that stays unreachable past
//! the budget is a structured [`EngineError::Unreachable`], never a hang.
//!
//! The loop polls with a short sleep rather than an OS readiness API: the
//! workspace is hermetic (no `mio`/`libc`), and at cluster sizes of tens of
//! sockets a sub-millisecond poll is indistinguishable from epoll for the
//! paper's workloads.

use crate::wire::{
    decode_frame, encode_frame, Frame, NodeSnapshot, PeerKind, WireMetrics, MAX_FRAME_LEN,
};
use pv_engine::messages::Msg;
use pv_engine::topology::Topology;
use pv_engine::{EngineError, Site};
use pv_simnet::{Actor, Ctx, Effect, Metrics, NodeId, SimRng, SimTime, Trace};
use pv_store::{DiskWal, SiteId, SiteStore};
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

use bytes::BytesMut;

/// How a [`Node`] dials peers: total attempts and the pause between them.
/// The budget covers both the startup race (peers still binding) and
/// mid-run drops; exhausting it is a fatal [`EngineError::Unreachable`].
#[derive(Debug, Clone, Copy)]
pub struct RetryBudget {
    /// Maximum connection attempts per peer before giving up.
    pub attempts: u32,
    /// Pause between attempts.
    pub delay: Duration,
}

impl Default for RetryBudget {
    fn default() -> Self {
        RetryBudget {
            attempts: 50,
            delay: Duration::from_millis(100),
        }
    }
}

impl RetryBudget {
    /// A tight budget for tests that want fast failure.
    pub fn fast_fail() -> Self {
        RetryBudget {
            attempts: 3,
            delay: Duration::from_millis(50),
        }
    }
}

/// One pending timer in the node's wheel (earliest-due pops first).
struct PendingTimer {
    due: Instant,
    id: u64,
    key: u64,
}

impl PartialEq for PendingTimer {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.id == other.id
    }
}
impl Eq for PendingTimer {}
impl PartialOrd for PendingTimer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingTimer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.due.cmp(&self.due).then(other.id.cmp(&self.id))
    }
}

/// One live connection with read/write buffering. Writes that the socket
/// will not take immediately stay queued in `wbuf` and drain as the peer
/// reads — backpressure without blocking the loop.
struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            dead: false,
        })
    }

    /// Encodes `frame` onto the write queue and pushes what the socket
    /// accepts right away.
    fn queue(&mut self, frame: &Frame) -> Result<(), EngineError> {
        let mut out = BytesMut::new();
        encode_frame(frame, &mut out)?;
        self.wbuf.extend_from_slice(&out);
        self.flush();
        Ok(())
    }

    /// Writes as much queued output as the socket accepts.
    fn flush(&mut self) {
        while !self.wbuf.is_empty() && !self.dead {
            match self.stream.write(&self.wbuf) {
                Ok(0) => {
                    self.dead = true;
                }
                Ok(n) => {
                    self.wbuf.drain(..n);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                }
            }
        }
    }

    /// Reads everything currently available; returns whether any bytes
    /// arrived. EOF or a socket error marks the connection dead (already
    /// buffered frames still parse).
    fn fill(&mut self) -> bool {
        let mut any = false;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    any = true;
                    // Refuse unbounded buffering from a peer that floods
                    // garbage faster than we parse.
                    if self.rbuf.len() > 2 * MAX_FRAME_LEN as usize {
                        self.dead = true;
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        any
    }
}

/// Configuration of one site process.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Which site of the topology this process is.
    pub site: SiteId,
    /// The shared cluster description (same value the simulation and live
    /// runtime consume).
    pub topo: Topology,
    /// Dial/reconnect budget for peer connections.
    pub retry: RetryBudget,
}

/// A bound-but-not-yet-running site node.
///
/// Construction is two-phase so an in-process cluster can bind every
/// listener on port 0 first, learn the real addresses, and only then hand
/// each node the full peer table:
///
/// 1. [`Node::bind`] — open the listener (and the WAL, recovering if the
///    image is non-empty);
/// 2. [`Node::set_peers`] — provide every site's address;
/// 3. [`Node::run`] — dial peers and serve until a `Shutdown` frame.
pub struct Node {
    me: NodeId,
    sites: u32,
    listener: TcpListener,
    peers_addrs: Vec<SocketAddr>,
    retry: RetryBudget,
    site: Site,
    recovered: bool,
    metrics: Metrics,
    trace: Trace,
    rng: SimRng,
    next_timer_id: u64,
    timers: BinaryHeap<PendingTimer>,
    cancelled: BTreeSet<u64>,
    epoch: Instant,
    /// Outbound site→site connections, indexed by peer site id.
    peer_out: Vec<Option<Conn>>,
    /// Inbound connections (slab; indices stay stable, dead slots are None).
    conns: Vec<Option<Conn>>,
    /// Reply routing: node id (from `Hello`) → inbound conn slot.
    routes: BTreeMap<u32, usize>,
    /// Messages a site sends to itself, applied in order within the loop.
    loopback: VecDeque<Msg>,
}

impl Node {
    /// Opens the listener on `listen` (use port 0 to let the OS pick) and
    /// builds the site from the topology: disk-backed WAL under
    /// `data_dir/site-<s>` when the topology has a data dir, recovery from a
    /// non-empty image, seeded items durable before serving.
    pub fn bind(config: NodeConfig, listen: SocketAddr) -> Result<Node, EngineError> {
        let NodeConfig { site: s, topo, retry } = config;
        if s >= topo.sites {
            return Err(EngineError::UnknownSite(s));
        }
        let listener = TcpListener::bind(listen)
            .map_err(|e| EngineError::Io(format!("bind {listen}: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| EngineError::Io(format!("set_nonblocking: {e}")))?;
        let store = match &topo.data_dir {
            Some(dir) => {
                let path = dir.join(format!("site-{s}"));
                let wal = DiskWal::open(&path, topo.fsync_policy).map_err(|e| {
                    EngineError::Io(format!("open WAL at {}: {e}", path.display()))
                })?;
                SiteStore::open(Box::new(wal))
            }
            None => SiteStore::new(),
        };
        let recovered = !store.wal().is_empty();
        let mut site = Site::with_store(s, topo.engine.clone(), topo.directory.clone(), store);
        site.enable_wall_clock_metrics();
        for (item, value) in &topo.items {
            if topo.directory.site_of(*item) == Some(s) && !site.store().contains(*item) {
                site.seed_item(*item, value.clone());
            }
        }
        site.sync_store();
        Ok(Node {
            me: NodeId(s),
            sites: topo.sites,
            listener,
            peers_addrs: Vec::new(),
            retry,
            site,
            recovered,
            metrics: Metrics::new(),
            trace: Trace::default(),
            rng: SimRng::new(0xBEEF_0000 + u64::from(s)),
            next_timer_id: 0,
            timers: BinaryHeap::new(),
            cancelled: BTreeSet::new(),
            epoch: Instant::now(),
            peer_out: Vec::new(),
            conns: Vec::new(),
            routes: BTreeMap::new(),
            loopback: VecDeque::new(),
        })
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> Result<SocketAddr, EngineError> {
        self.listener
            .local_addr()
            .map_err(|e| EngineError::Io(format!("local_addr: {e}")))
    }

    /// Provides the full site address table (index = site id). Must be
    /// called before [`Node::run`].
    pub fn set_peers(&mut self, addrs: Vec<SocketAddr>) {
        self.peers_addrs = addrs;
    }

    fn now(&self) -> SimTime {
        SimTime(self.epoch.elapsed().as_micros() as u64)
    }

    /// Dials one peer within the retry budget, sending the site `Hello`.
    fn dial(&mut self, peer: SiteId) -> Result<Conn, EngineError> {
        let addr = *self
            .peers_addrs
            .get(peer as usize)
            .ok_or(EngineError::UnknownSite(peer))?;
        let mut last = String::new();
        for attempt in 0..self.retry.attempts {
            if attempt > 0 {
                std::thread::sleep(self.retry.delay);
            }
            match TcpStream::connect_timeout(&addr, self.retry.delay.max(Duration::from_millis(250)))
            {
                Ok(stream) => {
                    let mut conn = Conn::new(stream)
                        .map_err(|e| EngineError::Io(format!("configure socket: {e}")))?;
                    conn.queue(&Frame::Hello {
                        node: self.me.0,
                        kind: PeerKind::Site,
                    })?;
                    return Ok(conn);
                }
                Err(e) => last = e.to_string(),
            }
        }
        Err(EngineError::Unreachable {
            site: peer,
            detail: format!("{addr} after {} attempts: {last}", self.retry.attempts),
        })
    }

    /// Dials every other site up front so startup failures surface as one
    /// structured error instead of per-message drops.
    fn connect_peers(&mut self) -> Result<(), EngineError> {
        self.peer_out = (0..self.sites).map(|_| None).collect();
        for peer in 0..self.sites {
            if peer == self.me.0 {
                continue;
            }
            let conn = self.dial(peer)?;
            self.peer_out[peer as usize] = Some(conn);
        }
        Ok(())
    }

    /// Runs one engine callback and applies its effects in emission order —
    /// identical contract to the live runtime's driver.
    fn callback(
        &mut self,
        f: impl FnOnce(&mut Site, &mut Ctx<Msg>),
    ) -> Result<(), EngineError> {
        let mut ctx = Ctx::external(
            self.now(),
            self.me,
            &mut self.rng,
            &mut self.metrics,
            &mut self.trace,
            &mut self.next_timer_id,
        );
        f(&mut self.site, &mut ctx);
        let effects = ctx.drain_effects();
        let now = self.now();
        for effect in effects {
            match effect {
                Effect::Send { to, msg } => self.send(to, msg)?,
                Effect::SetTimer { id, key, at } => {
                    let delay =
                        Duration::from_micros(at.as_micros().saturating_sub(now.as_micros()));
                    self.timers.push(PendingTimer {
                        due: Instant::now() + delay,
                        id,
                        key,
                    });
                }
                Effect::CancelTimer(id) => {
                    self.cancelled.insert(id);
                }
            }
        }
        Ok(())
    }

    /// Routes one outgoing message: loopback to self, a peer-site pipe, or a
    /// client connection (by the node id its `Hello` registered). A missing
    /// client route drops the message like a datagram — the protocol's
    /// timers and inquiries already tolerate loss — but a peer site that
    /// cannot be redialed within the budget is fatal.
    fn send(&mut self, to: NodeId, msg: Msg) -> Result<(), EngineError> {
        if to == self.me {
            self.loopback.push_back(msg);
            return Ok(());
        }
        if to.0 < self.sites {
            let slot = to.0 as usize;
            let dead = matches!(&self.peer_out[slot], Some(c) if c.dead)
                || self.peer_out[slot].is_none();
            if dead {
                self.metrics.inc("net.reconnects");
                let conn = self.dial(to.0)?;
                self.peer_out[slot] = Some(conn);
            }
            let conn = self.peer_out[slot].as_mut().expect("just ensured");
            conn.queue(&Frame::Proto {
                from: self.me.0,
                msg,
            })?;
            return Ok(());
        }
        if let Some(&slot) = self.routes.get(&to.0) {
            if let Some(conn) = self.conns[slot].as_mut() {
                conn.queue(&Frame::Proto {
                    from: self.me.0,
                    msg,
                })?;
                return Ok(());
            }
        }
        self.metrics.inc("net.dropped_no_route");
        Ok(())
    }

    /// Drains the self-send queue (a site messaging itself must see those
    /// messages in order, before any socket traffic).
    fn drain_loopback(&mut self) -> Result<(), EngineError> {
        while let Some(msg) = self.loopback.pop_front() {
            let me = self.me;
            self.callback(|site, ctx| site.on_message(ctx, me, msg))?;
        }
        Ok(())
    }

    fn snapshot(&self) -> NodeSnapshot {
        NodeSnapshot {
            site: self.site.id(),
            items: self
                .site
                .store()
                .iter_items()
                .map(|(i, e)| (i, e.clone()))
                .collect(),
            poly_count: self.site.poly_count() as u64,
            quiescent: self.site.is_quiescent(),
        }
    }

    /// Serves until a `Shutdown` frame arrives (returning the final
    /// [`Site`]) or a fatal error occurs: listener failure, or a peer site
    /// unreachable past the retry budget.
    pub fn run(mut self) -> Result<Site, EngineError> {
        if self.peers_addrs.len() != self.sites as usize {
            return Err(EngineError::Io(format!(
                "peer table has {} addresses for {} sites",
                self.peers_addrs.len(),
                self.sites
            )));
        }
        self.connect_peers()?;
        if self.recovered {
            self.callback(|site, ctx| site.on_recover(ctx))?;
            self.drain_loopback()?;
            self.metrics.inc("net.cold_recoveries");
        }
        loop {
            let mut progress = false;

            // 1. Fire due timers.
            loop {
                match self.timers.peek() {
                    Some(t) if t.due <= Instant::now() => {
                        let t = self.timers.pop().expect("peeked");
                        if self.cancelled.remove(&t.id) {
                            continue;
                        }
                        let key = t.key;
                        self.callback(|site, ctx| site.on_timer(ctx, key))?;
                        self.drain_loopback()?;
                        progress = true;
                    }
                    _ => break,
                }
            }

            // 2. Accept new connections.
            loop {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        let conn = Conn::new(stream)
                            .map_err(|e| EngineError::Io(format!("accept: {e}")))?;
                        self.conns.push(Some(conn));
                        self.metrics.inc("net.accepted");
                        progress = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) => return Err(EngineError::Io(format!("accept: {e}"))),
                }
            }

            // 3. Read every connection and parse complete frames. IO and
            // engine work are separate passes so the engine borrows cleanly.
            let mut events: Vec<(usize, Frame)> = Vec::new();
            for (i, slot) in self.conns.iter_mut().enumerate() {
                let Some(conn) = slot else { continue };
                if conn.fill() {
                    progress = true;
                }
                loop {
                    match decode_frame(&conn.rbuf) {
                        Ok(Some((frame, n))) => {
                            conn.rbuf.drain(..n);
                            events.push((i, frame));
                        }
                        Ok(None) => break,
                        Err(_) => {
                            // A malformed stream cannot be resynchronised;
                            // drop the connection. (Counted, not fatal: only
                            // this peer is affected.)
                            conn.dead = true;
                            break;
                        }
                    }
                }
            }

            // Also drain outbound peer sockets so EOF is noticed (peers
            // never send frames back on our dialed pipe).
            for slot in self.peer_out.iter_mut().flatten() {
                slot.fill();
            }

            // 4. Process frames through the engine.
            for (slot, frame) in events {
                progress = true;
                match frame {
                    Frame::Hello { node, kind: _ } => {
                        self.routes.insert(node, slot);
                    }
                    Frame::Proto { from, msg } => {
                        let from = NodeId(from);
                        self.callback(|site, ctx| site.on_message(ctx, from, msg))?;
                        self.drain_loopback()?;
                    }
                    Frame::InspectReq => {
                        let snap = self.snapshot();
                        if let Some(conn) = self.conns[slot].as_mut() {
                            conn.queue(&Frame::InspectResp(snap))?;
                        }
                    }
                    Frame::MetricsReq => {
                        // Storage metrics were flushed by the engine inside
                        // the last callback; the registry is current.
                        let wire = WireMetrics::from_metrics(&self.metrics);
                        if let Some(conn) = self.conns[slot].as_mut() {
                            conn.queue(&Frame::MetricsResp(wire))?;
                        }
                    }
                    Frame::Shutdown => {
                        self.site.sync_store();
                        // Best-effort flush of queued replies before exit.
                        for conn in self.conns.iter_mut().flatten() {
                            conn.flush();
                        }
                        for conn in self.peer_out.iter_mut().flatten() {
                            conn.flush();
                        }
                        return Ok(self.site);
                    }
                    // Responses are never addressed *to* a site.
                    Frame::InspectResp(_) | Frame::MetricsResp(_) => {
                        self.metrics.inc("net.unexpected_frame");
                    }
                }
            }

            // 5. Flush pending writes (write backpressure drain).
            for conn in self.conns.iter_mut().flatten() {
                conn.flush();
            }
            for conn in self.peer_out.iter_mut().flatten() {
                conn.flush();
            }

            // 6. Reap dead inbound connections (slots stay; routes drop).
            for (i, slot) in self.conns.iter_mut().enumerate() {
                if matches!(slot, Some(c) if c.dead) {
                    *slot = None;
                    self.routes.retain(|_, &mut s| s != i);
                    self.metrics.inc("net.conn_closed");
                }
            }

            // 7. Idle: sleep until the next timer or a short poll tick.
            if !progress {
                let tick = self
                    .timers
                    .peek()
                    .map(|t| t.due.saturating_duration_since(Instant::now()))
                    .unwrap_or(Duration::from_millis(1))
                    .min(Duration::from_millis(1));
                std::thread::sleep(tick.max(Duration::from_micros(200)));
            }
        }
    }
}
