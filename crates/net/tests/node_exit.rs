//! Failure-path contract of the `pv-node` and `pv-loadgen` binaries: a
//! cluster that cannot form (unreachable peer, bad arguments) must exit
//! non-zero with a structured JSON error on stderr — never hang.

use std::net::TcpListener;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// Runs `cmd` with a watchdog; panics if it outlives `limit`.
fn run_with_timeout(mut cmd: Command, limit: Duration) -> (i32, String) {
    let mut child = cmd
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn binary");
    let deadline = Instant::now() + limit;
    loop {
        match child.try_wait().expect("try_wait") {
            Some(status) => {
                let mut stderr = String::new();
                use std::io::Read;
                child
                    .stderr
                    .take()
                    .expect("piped")
                    .read_to_string(&mut stderr)
                    .expect("read stderr");
                return (status.code().unwrap_or(-1), stderr);
            }
            None => {
                if Instant::now() > deadline {
                    let _ = child.kill();
                    let _ = child.wait();
                    panic!("binary hung past {limit:?} instead of failing fast");
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// A localhost port with nothing listening on it.
fn dead_port() -> String {
    let l = TcpListener::bind("127.0.0.1:0").expect("bind");
    l.local_addr().expect("addr").to_string()
}

#[test]
fn pv_node_exits_nonzero_on_unreachable_peer() {
    let live = dead_port(); // we bind it ourselves below via pv-node
    let dead = dead_port();
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_pv-node"));
    cmd.args([
        "--site",
        "0",
        "--addrs",
        &format!("{live},{dead}"),
        "--accounts",
        "2",
        "--attempts",
        "3",
        "--delay-ms",
        "50",
    ]);
    let (code, stderr) = run_with_timeout(cmd, Duration::from_secs(20));
    assert_ne!(code, 0, "unreachable peer must be fatal");
    let line = stderr
        .lines()
        .find(|l| l.starts_with("{\"error\""))
        .unwrap_or_else(|| panic!("no structured error on stderr:\n{stderr}"));
    assert!(
        line.contains("\"kind\":\"unreachable\"") && line.contains("\"site\":1"),
        "error names the kind and the dead site: {line}"
    );
    assert!(line.contains("attempts"), "error names the retry budget: {line}");
}

#[test]
fn pv_node_exits_2_on_bad_arguments() {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_pv-node"));
    cmd.args(["--site", "5", "--addrs", "127.0.0.1:1"]);
    let (code, stderr) = run_with_timeout(cmd, Duration::from_secs(10));
    assert_eq!(code, 2, "site out of range is a usage error");
    assert!(stderr.contains("usage:"), "usage text on stderr:\n{stderr}");
}

#[test]
fn pv_loadgen_exits_nonzero_when_cluster_is_unreachable() {
    let dead_a = dead_port();
    let dead_b = dead_port();
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_pv-loadgen"));
    cmd.args([
        "--addrs",
        &format!("{dead_a},{dead_b}"),
        "--txns",
        "10",
        "--clients",
        "1",
        "--attempts",
        "3",
        "--delay-ms",
        "50",
    ]);
    let (code, stderr) = run_with_timeout(cmd, Duration::from_secs(20));
    assert_ne!(code, 0, "unreachable cluster must be fatal");
    let line = stderr
        .lines()
        .find(|l| l.starts_with("{\"error\""))
        .unwrap_or_else(|| panic!("no structured error on stderr:\n{stderr}"));
    assert!(
        line.contains("\"kind\":\"io\"") && line.contains("attempts"),
        "error names the failure and budget: {line}"
    );
}
