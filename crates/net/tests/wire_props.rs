//! Property tests over the wire codec.
//!
//! Two obligations:
//!
//! 1. **Round-trip fidelity** — every `Msg` variant (and every control
//!    frame), populated with randomized payloads including nested
//!    polyvalue entries and deep expressions, survives
//!    `encode_frame` → `decode_frame` bit-exactly.
//! 2. **Robustness on hostile bytes** — truncating or corrupting an
//!    encoded frame, or feeding arbitrary garbage, must yield `Ok(None)`
//!    (incomplete) or a structured `DecodeError`. It must never panic:
//!    the decoder fronts a real TCP socket.
//!
//! The generators draw from the deterministic `SimRng`, varying the shape
//! with the proptest seed, so every failure is replayable.

use pv_core::expr::BinOp;
use pv_core::{CmpOp, Condition, Entry, Expr, ItemId, TransactionSpec, TxnId, Value};
use pv_engine::messages::{AbortReason, AccessMode, Msg, TxnResult};
use pv_net::wire::{decode_frame, frame_bytes, Frame, NodeSnapshot, PeerKind, WireMetrics};
use pv_simnet::SimRng;
use proptest::prelude::*;

fn gen_value(rng: &mut SimRng) -> Value {
    match rng.below(3) {
        0 => Value::Int(rng.below(1 << 40) as i64 - (1 << 39)),
        1 => Value::Bool(rng.chance(0.5)),
        _ => {
            let len = rng.below(12) as usize;
            let s: String = (0..len)
                .map(|_| char::from(b'a' + rng.below(26) as u8))
                .collect();
            Value::Str(s)
        }
    }
}

/// A guaranteed-valid entry: either simple, or a binary in-doubt split on a
/// fresh txn variable (exhaustive and pairwise-disjoint by construction),
/// recursively nested up to `depth`.
fn gen_entry(rng: &mut SimRng, depth: u32, next_txn: &mut u64) -> Entry<Value> {
    if depth == 0 || rng.chance(0.5) {
        return Entry::Simple(gen_value(rng));
    }
    let txn = TxnId(*next_txn);
    *next_txn += 1;
    let yes = gen_entry(rng, depth - 1, next_txn);
    let no = gen_entry(rng, depth - 1, next_txn);
    Entry::assemble(vec![
        (yes, Condition::var(txn)),
        (no, Condition::not_var(txn)),
    ])
    .expect("binary split is a valid polyvalue")
}

fn gen_expr(rng: &mut SimRng, depth: u32) -> Expr {
    if depth == 0 {
        return match rng.below(2) {
            0 => Expr::Const(gen_value(rng)),
            _ => Expr::read(ItemId(rng.below(16))),
        };
    }
    match rng.below(7) {
        0 => Expr::Const(gen_value(rng)),
        1 => Expr::read(ItemId(rng.below(16))),
        2 => {
            let op = [
                BinOp::Add,
                BinOp::Sub,
                BinOp::Mul,
                BinOp::Div,
                BinOp::Min,
                BinOp::Max,
                BinOp::And,
                BinOp::Or,
            ][rng.below(8) as usize];
            Expr::Bin(
                op,
                Box::new(gen_expr(rng, depth - 1)),
                Box::new(gen_expr(rng, depth - 1)),
            )
        }
        3 => {
            let op = [
                CmpOp::Eq,
                CmpOp::Ne,
                CmpOp::Lt,
                CmpOp::Le,
                CmpOp::Gt,
                CmpOp::Ge,
            ][rng.below(6) as usize];
            Expr::Cmp(
                op,
                Box::new(gen_expr(rng, depth - 1)),
                Box::new(gen_expr(rng, depth - 1)),
            )
        }
        4 => Expr::Neg(Box::new(gen_expr(rng, depth - 1))),
        5 => Expr::Not(Box::new(gen_expr(rng, depth - 1))),
        _ => Expr::If(
            Box::new(gen_expr(rng, depth - 1)),
            Box::new(gen_expr(rng, depth - 1)),
            Box::new(gen_expr(rng, depth - 1)),
        ),
    }
}

fn gen_spec(rng: &mut SimRng) -> TransactionSpec {
    let mut spec = TransactionSpec::new();
    if rng.chance(0.6) {
        spec = spec.guard(gen_expr(rng, 3));
    }
    for _ in 0..rng.below(4) {
        spec = spec.update(ItemId(rng.below(16)), gen_expr(rng, 2));
    }
    for k in 0..rng.below(3) {
        spec = spec.output(&format!("out{k}"), gen_expr(rng, 2));
    }
    spec
}

fn gen_result(rng: &mut SimRng, next_txn: &mut u64) -> TxnResult {
    if rng.chance(0.6) {
        let n = rng.below(3);
        TxnResult::Committed {
            granted: gen_entry(rng, 2, next_txn),
            outputs: (0..n)
                .map(|k| (format!("out{k}"), gen_entry(rng, 2, next_txn)))
                .collect(),
            was_poly: rng.chance(0.5),
        }
    } else {
        let reason = match rng.below(4) {
            0 => AbortReason::LockConflict,
            1 => AbortReason::Timeout,
            2 => AbortReason::Eval("type error: Int + Bool".into()),
            _ => AbortReason::Rejected("R001: unreadable item".into()),
        };
        TxnResult::Aborted { reason }
    }
}

fn gen_items(rng: &mut SimRng) -> Vec<(ItemId, AccessMode)> {
    (0..1 + rng.below(5))
        .map(|k| {
            (
                ItemId(k),
                if rng.chance(0.5) {
                    AccessMode::Read
                } else {
                    AccessMode::Write
                },
            )
        })
        .collect()
}

fn gen_entries(rng: &mut SimRng, next_txn: &mut u64) -> Vec<(ItemId, Entry<Value>)> {
    (0..1 + rng.below(4))
        .map(|k| (ItemId(k), gen_entry(rng, 2, next_txn)))
        .collect()
}

/// One message of each variant, shaped by `rng` — index order matches the
/// wire tags so a failure names the variant.
fn gen_msg(rng: &mut SimRng, variant: u64) -> Msg {
    let mut next_txn = 100;
    let t = &mut next_txn;
    let txn = TxnId(rng.below(1 << 30));
    match variant {
        0 => Msg::Submit {
            req_id: rng.below(1 << 40),
            spec: gen_spec(rng),
        },
        1 => Msg::Reply {
            req_id: rng.below(1 << 40),
            result: gen_result(rng, t),
        },
        2 => Msg::ReadReq {
            txn,
            ts: rng.below(1 << 50),
            items: gen_items(rng),
        },
        3 => Msg::ReadResp {
            txn,
            entries: gen_entries(rng, t),
        },
        4 => Msg::ReadNack { txn },
        5 => Msg::Prepare {
            txn,
            writes: gen_entries(rng, t),
        },
        6 => Msg::Ready { txn },
        7 => Msg::PrepareNack { txn },
        8 => Msg::Decision {
            txn,
            completed: rng.chance(0.5),
        },
        9 => Msg::Inquire { txn },
        10 => Msg::OutcomeNotify {
            txn,
            completed: rng.chance(0.5),
        },
        11 => Msg::PcPrepare {
            txn,
            writes: gen_entries(rng, t),
            parts: gen_sites(rng),
        },
        12 => Msg::PcVote {
            txn,
            part: rng.below(16) as u32,
            parts: gen_sites(rng),
            prepared: rng.chance(0.5),
        },
        13 => Msg::PcVoteAck {
            txn,
            part: rng.below(16) as u32,
            acceptor: rng.below(16) as u32,
            prepared: rng.chance(0.5),
        },
        14 => Msg::PcPhase1a {
            txn,
            ballot: rng.below(1 << 40),
        },
        15 => Msg::PcPhase1b {
            txn,
            ballot: rng.below(1 << 40),
            acceptor: rng.below(16) as u32,
            votes: (0..rng.below(4))
                .map(|_| (rng.below(16) as u32, rng.chance(0.5)))
                .collect(),
            parts: gen_sites(rng),
            accepted: if rng.chance(0.5) {
                Some((rng.below(1 << 40), rng.chance(0.5)))
            } else {
                None
            },
        },
        16 => Msg::PcPhase2a {
            txn,
            ballot: rng.below(1 << 40),
            completed: rng.chance(0.5),
        },
        17 => Msg::PcPhase2b {
            txn,
            ballot: rng.below(1 << 40),
            acceptor: rng.below(16) as u32,
            completed: rng.chance(0.5),
        },
        18 => Msg::SnapshotRead {
            req_id: rng.below(1 << 40),
            items: (0..rng.below(6)).map(ItemId).collect(),
        },
        _ => Msg::SnapshotReadReply {
            req_id: rng.below(1 << 40),
            snapshot: rng.below(1 << 50),
            entries: gen_entries(rng, t),
        },
    }
}

fn gen_sites(rng: &mut SimRng) -> Vec<u32> {
    (0..rng.below(5)).map(|_| rng.below(16) as u32).collect()
}

const MSG_VARIANTS: u64 = 20;

fn gen_frame(rng: &mut SimRng) -> Frame {
    match rng.below(7) {
        0 => Frame::Hello {
            node: rng.below(1 << 20) as u32,
            kind: if rng.chance(0.5) {
                PeerKind::Site
            } else {
                PeerKind::Client
            },
        },
        1 => Frame::InspectReq,
        2 => {
            let mut next_txn = 500;
            Frame::InspectResp(NodeSnapshot {
                site: rng.below(16) as u32,
                items: (0..rng.below(5))
                    .map(|k| (ItemId(k), gen_entry(rng, 2, &mut next_txn)))
                    .collect(),
                poly_count: rng.below(100),
                quiescent: rng.chance(0.5),
            })
        }
        3 => Frame::MetricsReq,
        4 => {
            let counters = (0..rng.below(4))
                .map(|k| (format!("counter.{k}"), rng.below(1 << 30)))
                .collect();
            let histograms = (0..rng.below(3))
                .map(|k| {
                    let obs = (0..rng.below(6))
                        .map(|_| rng.uniform(0.0, 10.0).to_bits())
                        .collect();
                    (format!("hist.{k}"), obs)
                })
                .collect();
            Frame::MetricsResp(WireMetrics {
                counters,
                histograms,
            })
        }
        5 => Frame::Shutdown,
        _ => {
            let variant = rng.below(MSG_VARIANTS);
            Frame::Proto {
                from: rng.below(64) as u32,
                msg: gen_msg(rng, variant),
            }
        }
    }
}

fn roundtrip(frame: &Frame) {
    let bytes = frame_bytes(frame).expect("encode");
    let (decoded, consumed) = decode_frame(&bytes)
        .expect("decode own encoding")
        .expect("complete frame");
    assert_eq!(consumed, bytes.len(), "frame length accounting");
    assert_eq!(&decoded, frame, "round-trip fidelity");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every `Msg` variant round-trips — the seed varies payload shape,
    /// the loop guarantees variant coverage on every single case.
    #[test]
    fn every_msg_variant_round_trips(seed: u64) {
        let mut rng = SimRng::new(seed);
        for variant in 0..MSG_VARIANTS {
            let frame = Frame::Proto {
                from: rng.below(64) as u32,
                msg: gen_msg(&mut rng, variant),
            };
            roundtrip(&frame);
        }
    }

    /// Control frames (hello, inspect, metrics, shutdown) round-trip with
    /// randomized payloads.
    #[test]
    fn control_frames_round_trip(seed: u64) {
        let mut rng = SimRng::new(seed);
        for _ in 0..8 {
            roundtrip(&gen_frame(&mut rng));
        }
    }

    /// Every strict prefix of a valid frame decodes as `Ok(None)` (need
    /// more bytes) — never a panic, and never a spurious success.
    #[test]
    fn truncation_is_incomplete_never_panic(seed: u64) {
        let mut rng = SimRng::new(seed);
        let frame = gen_frame(&mut rng);
        let bytes = frame_bytes(&frame).expect("encode");
        for cut in 0..bytes.len() {
            match decode_frame(&bytes[..cut]) {
                Ok(None) => {}
                Ok(Some((got, consumed))) => {
                    panic!("prefix {cut}/{} decoded as {got:?} ({consumed} bytes)", bytes.len())
                }
                Err(e) => panic!("prefix {cut}/{} errored: {e}", bytes.len()),
            }
        }
    }

    /// Flipping bytes anywhere in a frame must surface as a structured
    /// decode error (or, for header-length tampering, an incomplete read) —
    /// never a panic, and never silently the original frame *unless* the
    /// flip landed in bytes the checksum doesn't cover (there are none) or
    /// produced an equally-valid encoding of the same frame (impossible:
    /// the encoding is canonical).
    #[test]
    fn corruption_never_panics(seed: u64) {
        let mut rng = SimRng::new(seed);
        let frame = gen_frame(&mut rng);
        let bytes = frame_bytes(&frame).expect("encode");
        for _ in 0..32 {
            let mut bad = bytes.clone();
            let at = rng.below(bad.len() as u64) as usize;
            let bit = 1u8 << rng.below(8);
            bad[at] ^= bit;
            match decode_frame(&bad) {
                // Length-field tampering can make the frame look longer
                // than the buffer: incomplete is fine.
                Ok(None) => {}
                Ok(Some((got, _))) => {
                    assert_ne!(got, frame, "corrupt bytes decoded as the original");
                    // A flip confined to the payload must be caught by the
                    // checksum; reaching here means the header was hit in a
                    // way that produced a different valid frame, which the
                    // 16-byte header layout makes impossible.
                    panic!("single-bit corruption at {at} yielded a valid frame");
                }
                Err(_) => {} // structured error: exactly what we want
            }
        }
    }

    /// Arbitrary garbage — random bytes with a plausible prefix mixed in —
    /// never panics the decoder.
    #[test]
    fn random_garbage_never_panics(seed: u64) {
        let mut rng = SimRng::new(seed);
        let len = rng.below(512) as usize;
        let mut garbage: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
        // Half the cases: graft a valid magic/version on the front so the
        // decoder gets past the cheap header checks into payload parsing.
        if rng.chance(0.5) && garbage.len() >= 6 {
            garbage[0..4].copy_from_slice(&u32::from_le_bytes(*b"PVW1").to_le_bytes());
            garbage[4] = 1;
        }
        let _ = decode_frame(&garbage); // any Ok/Err is fine; no panic
    }
}
