//! Cross-process crash recovery: a real `pv-node` OS process is SIGKILLed
//! mid-transaction, its survivors wait-time-out into stranded in-doubt
//! polyvalues, and the process restarted from its on-disk WAL answers the
//! §3.3 inquiries that collapse them — all over real TCP.
//!
//! This is the process-boundary twin of the in-thread
//! `live_restart_resolves_stranded_polyvalue` test: nothing survives the
//! kill except the data directory.

use pv_core::{Expr, ItemId, TransactionSpec};
use pv_engine::EngineError;
use pv_net::backoff::Backoff;
use pv_net::chaos::{ChaosNet, LinkFaults};
use pv_net::client::NetClient;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const SITES: u32 = 3;
const ACCOUNTS: u64 = 9;
const BALANCE: i64 = 100;

fn transfer(from: u64, to: u64, amt: i64) -> TransactionSpec {
    let (f, t) = (ItemId(from), ItemId(to));
    TransactionSpec::new()
        .guard(Expr::read(f).ge(Expr::int(amt)))
        .update(f, Expr::read(f).sub(Expr::int(amt)))
        .update(t, Expr::read(t).add(Expr::int(amt)))
}

/// Kills the child on drop so a failing test never leaks processes.
struct ChildGuard(Child);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn free_addr() -> SocketAddr {
    let l = TcpListener::bind("127.0.0.1:0").expect("reserve port");
    l.local_addr().expect("local addr")
}

fn spawn_node(site: u32, proxies: &[SocketAddr], listen: SocketAddr, data_dir: &Path) -> ChildGuard {
    let addrs = proxies
        .iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let child = Command::new(env!("CARGO_BIN_EXE_pv-node"))
        .args([
            "--site",
            &site.to_string(),
            "--addrs",
            &addrs,
            "--listen",
            &listen.to_string(),
            "--accounts",
            &ACCOUNTS.to_string(),
            "--balance",
            &BALANCE.to_string(),
            "--data-dir",
            &data_dir.display().to_string(),
            "--fast",
            "--attempts",
            "100000",
            "--delay-ms",
            "25",
            "--max-delay-ms",
            "500",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn pv-node");
    ChildGuard(child)
}

fn wait_ready(addr: SocketAddr) {
    let limit = Instant::now() + Duration::from_secs(10);
    while TcpStream::connect_timeout(&addr, Duration::from_millis(250)).is_err() {
        assert!(Instant::now() < limit, "pv-node at {addr} never came up");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn client(addr: SocketAddr, node: u32) -> Result<NetClient, EngineError> {
    NetClient::connect(addr, node, Backoff::patient())
}

#[test]
fn killed_node_restarts_from_wal_and_collapses_stranded_polyvalues() {
    let data_dir =
        std::env::temp_dir().join(format!("pv-process-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    std::fs::create_dir_all(&data_dir).expect("mkdir data dir");

    // Real processes behind chaos proxies: peer tables point at the proxy
    // ports, so a restarted process can come back on a fresh real port
    // (the old one may sit in TIME_WAIT) without peers noticing.
    let mut reals: Vec<SocketAddr> = (0..SITES).map(|_| free_addr()).collect();
    let chaos = ChaosNet::new(0xD1E5EED, &reals).expect("chaos proxies");
    let proxies = chaos.proxy_addrs().to_vec();
    let mut children: Vec<Option<ChildGuard>> = reals
        .iter()
        .enumerate()
        .map(|(s, &listen)| Some(spawn_node(s as u32, &proxies, listen, &data_dir)))
        .collect();
    for &addr in &reals {
        wait_ready(addr);
    }

    // Stretch every hop to 80ms so a participant's wait-timer (80ms after
    // staging under --fast) strands an observable polyvalue strictly before
    // the coordinator's Decision — two more hops away — can collapse it.
    // The kill is triggered by *observation*, not a tuned sleep: the moment
    // a survivor reports an in-doubt polyvalue, the coordinator dies and
    // the still-undelivered Decisions die with its connections. A round
    // that aborts early (read timeout under machine load) strands nothing,
    // so retry with a fresh batch rather than flaking.
    chaos.set_default(LinkFaults {
        delay: Duration::from_millis(80),
        ..LinkFaults::default()
    });
    let mut submitter = client(reals[0], 100).expect("client to site 0");
    let mut stranded = false;
    'rounds: for _ in 0..5 {
        for (f, t) in [(0u64, 1u64), (2, 3), (4, 5), (6, 7)] {
            submitter.submit_async(&transfer(f, t, 5)).expect("submit");
        }
        let observed_limit = Instant::now() + Duration::from_secs(2);
        while Instant::now() < observed_limit {
            for (s, &addr) in reals.iter().enumerate().skip(1) {
                if let Ok(snap) = client(addr, 200 + s as u32)
                    .and_then(|mut c| c.inspect(Duration::from_secs(2)))
                {
                    if snap.poly_count > 0 {
                        stranded = true;
                        break 'rounds;
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        // Let the failed round's outcomes settle before resubmitting the
        // same account pairs.
        std::thread::sleep(Duration::from_millis(400));
    }
    assert!(stranded, "survivors never held an in-doubt polyvalue");
    drop(submitter);
    drop(children[0].take()); // SIGKILL: no WAL flush, no goodbye

    // Restart site 0 from nothing but its data directory, on a fresh port.
    let fresh = free_addr();
    reals[0] = fresh;
    chaos.retarget(0, fresh);
    children[0] = Some(spawn_node(0, &proxies, fresh, &data_dir));
    wait_ready(fresh);

    // §3.3: the survivors' inquiries reach the reborn coordinator and every
    // polyvalue collapses; the whole cluster drains.
    let drain_limit = Instant::now() + Duration::from_secs(30);
    loop {
        let mut polys = 0;
        let mut quiescent = true;
        for (s, &addr) in reals.iter().enumerate() {
            let snap = client(addr, 300 + s as u32)
                .and_then(|mut c| c.inspect(Duration::from_secs(3)))
                .expect("inspect");
            polys += snap.poly_count;
            quiescent &= snap.quiescent;
        }
        if polys == 0 && quiescent {
            break;
        }
        assert!(
            Instant::now() < drain_limit,
            "cluster never drained after restart ({polys} polyvalues left)"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    // The reborn process replayed its WAL (cold recovery), and money is
    // conserved across the crash no matter which outcomes won.
    let m = client(reals[0], 400)
        .and_then(|mut c| c.metrics(Duration::from_secs(3)))
        .expect("metrics");
    assert!(
        m.counter("net.cold_recoveries") >= 1,
        "restarted site recovered from its WAL"
    );
    let mut total = 0;
    for (s, &addr) in reals.iter().enumerate() {
        let snap = client(addr, 500 + s as u32)
            .and_then(|mut c| c.inspect(Duration::from_secs(3)))
            .expect("inspect");
        for (_, entry) in &snap.items {
            total += entry
                .as_simple()
                .and_then(|v| v.as_int())
                .expect("settled value after drain");
        }
    }
    assert_eq!(total, ACCOUNTS as i64 * BALANCE, "conservation across the crash");

    // Clean shutdown (also releases the data dir for removal).
    for (s, &addr) in reals.iter().enumerate() {
        client(addr, 600 + s as u32)
            .and_then(|mut c| c.shutdown())
            .expect("shutdown");
    }
    for child in &mut children {
        if let Some(mut guard) = child.take() {
            let _ = guard.0.wait();
        }
    }
    chaos.shutdown();
    let _ = std::fs::remove_dir_all(&data_dir);
}
