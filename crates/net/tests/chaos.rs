//! Integration tests for the fault-injecting chaos layer: a real TCP
//! cluster whose site links route through [`ChaosNet`] proxies, driven
//! through partition/heal, live backoff reconfiguration, and injected link
//! faults — asserting both the engine invariants (conservation, drain) and
//! the backoff/circuit observability the recovery machinery promises.

use pv_core::{Expr, ItemId, TransactionSpec};
use pv_engine::topology::BackoffConfig;
use pv_engine::{Directory, EngineConfig, Topology};
use pv_net::backoff::Backoff;
use pv_net::chaos::LinkFaults;
use pv_net::{NetBuilder, NetCluster};
use pv_simnet::SimDuration;
use std::time::{Duration, Instant};

fn transfer(from: u64, to: u64, amt: i64) -> TransactionSpec {
    let (f, t) = (ItemId(from), ItemId(to));
    TransactionSpec::new()
        .guard(Expr::read(f).ge(Expr::int(amt)))
        .update(f, Expr::read(f).sub(Expr::int(amt)))
        .update(t, Expr::read(t).add(Expr::int(amt)))
}

fn fast_config() -> EngineConfig {
    EngineConfig {
        read_timeout: SimDuration::from_millis(200),
        ready_timeout: SimDuration::from_millis(200),
        wait_timeout: SimDuration::from_millis(80),
        read_lease: SimDuration::from_millis(500),
        inquire_interval: SimDuration::from_millis(100),
        ..EngineConfig::default()
    }
}

fn bank_topology(sites: u32, accounts: u64) -> Topology {
    Topology::new(sites, Directory::Mod(sites))
        .engine(fast_config())
        .uniform_items(accounts, 100)
}

/// Polls until every site is quiescent with zero polyvalues.
fn drain(cluster: &NetCluster) {
    let limit = Instant::now() + Duration::from_secs(30);
    loop {
        let mut polys = 0;
        let mut quiescent = true;
        for s in 0..cluster.site_count() as u32 {
            let snap = cluster.inspect(s, Duration::from_secs(5)).expect("inspect");
            polys += snap.poly_count;
            quiescent &= snap.quiescent;
        }
        if polys == 0 && quiescent {
            return;
        }
        assert!(Instant::now() < limit, "cluster did not drain");
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn total_funds(cluster: &NetCluster) -> i64 {
    let mut total = 0;
    for s in 0..cluster.site_count() as u32 {
        let snap = cluster.inspect(s, Duration::from_secs(5)).expect("inspect");
        for (_, entry) in &snap.items {
            total += entry
                .as_simple()
                .and_then(|v| v.as_int())
                .expect("settled int after drain");
        }
    }
    total
}

#[test]
fn partition_heals_with_paced_backoff() {
    // Cut site 0 away mid-protocol, let the cluster flounder, heal, and
    // require the full recovery story: funds conserved, state drained, and
    // — the robustness contract — circuits tripped, backoff delays grew
    // past the base (paced rejoin, not a thundering herd), and the healed
    // links actually reconnected.
    let backoff = Backoff {
        base: Duration::from_millis(25),
        max: Duration::from_millis(400),
        factor: 2.0,
        jitter: 0.25,
        attempts: 10_000,
    };
    let cluster = NetBuilder::from_topology(bank_topology(3, 6))
        .backoff(backoff)
        .chaos(7)
        .start()
        .expect("start");
    let chaos = cluster.chaos().expect("chaos layer present");

    // Stretch the protocol so the cut lands mid-2PC, then cut after the
    // Prepare hop (~3 × 40ms) and before the Decision hop (~5 × 40ms).
    chaos.set_default(LinkFaults {
        delay: Duration::from_millis(40),
        ..LinkFaults::default()
    });
    let mut client = cluster.client(0).expect("client");
    let pending: Vec<u64> = [(0u64, 1u64), (2, 3), (4, 5)]
        .iter()
        .map(|&(f, t)| client.submit_async(&transfer(f, t, 5)).expect("submit"))
        .collect();
    std::thread::sleep(Duration::from_millis(150));
    chaos.partition(&[0], &[1, 2]);

    // Collect whatever replies escape; the cut swallows the rest.
    let limit = Instant::now() + Duration::from_millis(800);
    let mut replies = 0;
    while replies < pending.len() {
        let remaining = limit.saturating_duration_since(Instant::now());
        if remaining.is_zero() || client.recv_reply(remaining).is_err() {
            break;
        }
        replies += 1;
    }

    // Let the partition cook long enough for circuits to trip and backoff
    // to climb, then heal and drain.
    std::thread::sleep(Duration::from_millis(700));
    chaos.heal();
    drain(&cluster);
    assert_eq!(total_funds(&cluster), 600, "conservation across partition");

    let m = cluster.metrics(Duration::from_secs(5)).expect("metrics");
    assert!(m.counter("net.circuit_open") > 0, "partition trips circuits");
    assert!(m.counter("net.reconnects") > 0, "healed links reconnect");
    let max_wait = m
        .histogram("net.backoff.wait_ms")
        .and_then(|h| h.max())
        .unwrap_or(0.0);
    assert!(
        max_wait > 25.0,
        "backoff grows past the base delay while cut (max {max_wait}ms)"
    );
    cluster.shutdown().expect("clean shutdown");
}

#[test]
fn injected_link_faults_are_counted_and_survivable() {
    // Latency plus duplication on every link: commits must still happen
    // (duplicate frames are idempotent at the protocol layer), funds must
    // conserve, and the proxy must account for what it injected.
    let cluster = NetBuilder::from_topology(bank_topology(2, 4))
        .backoff(Backoff::patient())
        .chaos(21)
        .start()
        .expect("start");
    let chaos = cluster.chaos().expect("chaos layer present");
    chaos.set_default(LinkFaults {
        delay: Duration::from_millis(5),
        dup_prob: 0.3,
        ..LinkFaults::default()
    });

    let deadline = Duration::from_secs(10);
    let committed = (0..8)
        .filter(|&i| {
            cluster
                .submit(i % 2, &transfer(u64::from(i % 4), u64::from((i + 1) % 4), 2), deadline)
                .map(|r| r.is_committed())
                .unwrap_or(false)
        })
        .count();
    assert!(committed > 0, "nothing committed under link faults");

    drain(&cluster);
    assert_eq!(total_funds(&cluster), 400, "conservation under faults");

    let m = chaos.metrics();
    assert!(m.counter("chaos.injected.delay") > 0, "delays were injected");
    assert!(m.counter("chaos.injected.dup") > 0, "duplicates were injected");
    cluster.shutdown().expect("clean shutdown");
}

#[test]
fn configure_backoff_reconfigures_every_site_live() {
    let cluster = NetBuilder::from_topology(bank_topology(3, 3))
        .backoff(Backoff::fast_fail())
        .start()
        .expect("start");
    cluster
        .configure_backoff(BackoffConfig {
            base_ms: 10,
            max_ms: 100,
            factor: 1.5,
            jitter: 0.1,
            attempts: 500,
        })
        .expect("reconfigure");
    let m = cluster.metrics(Duration::from_secs(5)).expect("metrics");
    assert_eq!(
        m.counter("net.backoff.reconfigured"),
        3,
        "every site acknowledged the new policy"
    );
    // The cluster still works under the new policy.
    let result = cluster
        .submit(0, &transfer(0, 1, 5), Duration::from_secs(10))
        .expect("submit");
    assert!(result.is_committed());
    cluster.shutdown().expect("clean shutdown");
}

#[test]
fn idle_event_loop_sleeps_instead_of_spinning() {
    // An idle cluster's event loops must decay into millisecond sleeps:
    // over half a second of idleness, two sites should wake at most a few
    // hundred times (a busy-poll loop would rack up millions). Lower bound
    // guards against the metric silently not being wired at all.
    let cluster = NetBuilder::from_topology(bank_topology(2, 2))
        .backoff(Backoff::patient())
        .start()
        .expect("start");
    // Settle, then measure a quiet window.
    std::thread::sleep(Duration::from_millis(200));
    let before = cluster
        .metrics(Duration::from_secs(5))
        .expect("metrics")
        .counter("net.idle_wakeups");
    std::thread::sleep(Duration::from_millis(500));
    let after = cluster
        .metrics(Duration::from_secs(5))
        .expect("metrics")
        .counter("net.idle_wakeups");
    let wakeups = after.saturating_sub(before);
    assert!(wakeups > 0, "idle wakeups are counted");
    assert!(
        wakeups < 5_000,
        "idle loops sleep rather than spin ({wakeups} wakeups in 500ms)"
    );
    cluster.shutdown().expect("clean shutdown");
}
