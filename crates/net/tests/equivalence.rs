//! Cross-runtime equivalence: one [`Topology`], three runtimes, identical
//! outcomes.
//!
//! The same deterministic sequence of guarded transfers is executed
//! sequentially against (1) the simulated cluster, (2) the live
//! threads-and-channels cluster, and (3) the real-TCP networked cluster —
//! all built from the *same* `Topology` value. Because execution is
//! sequential, each transfer's fate depends only on the committed state the
//! previous ones left behind, so all three runtimes must produce the same
//! `(committed, fully_granted)` sequence and the same final balances, and
//! every runtime must conserve total funds.

use pv_core::{Entry, Expr, ItemId, TransactionSpec, Value};
use pv_engine::{
    ClientConfig, ClusterBuilder, CommitProtocol, Directory, EngineConfig, LiveCluster, Script,
    Topology,
};
use pv_net::NetCluster;
use pv_simnet::{SimDuration, SimRng};
use std::time::Duration;

const SITES: u32 = 3;
const ACCOUNTS: u64 = 6;
const BALANCE: i64 = 100;

fn shared_topology(protocol: CommitProtocol) -> Topology {
    Topology::new(SITES, Directory::Mod(SITES))
        .engine(EngineConfig {
            protocol,
            read_timeout: SimDuration::from_millis(200),
            ready_timeout: SimDuration::from_millis(200),
            wait_timeout: SimDuration::from_millis(80),
            read_lease: SimDuration::from_millis(500),
            inquire_interval: SimDuration::from_millis(100),
            ..EngineConfig::default()
        })
        .uniform_items(ACCOUNTS, BALANCE)
}

/// The workload: 24 transfers whose amounts are chosen so that some guards
/// deny (insufficient funds), making the outcome sequence state-dependent —
/// a runtime that diverges anywhere diverges visibly from then on.
fn workload() -> Vec<TransactionSpec> {
    let mut rng = SimRng::new(0xE9_01);
    (0..24)
        .map(|_| {
            let from = rng.below(ACCOUNTS);
            let mut to = rng.below(ACCOUNTS);
            if to == from {
                to = (to + 1) % ACCOUNTS;
            }
            // Mostly modest amounts, occasionally one large enough that the
            // guard denies once an account has drained.
            let amt = if rng.chance(0.3) {
                90 + rng.below(40) as i64
            } else {
                1 + rng.below(30) as i64
            };
            let (f, t) = (ItemId(from), ItemId(to));
            TransactionSpec::new()
                .guard(Expr::read(f).ge(Expr::int(amt)))
                .update(f, Expr::read(f).sub(Expr::int(amt)))
                .update(t, Expr::read(t).add(Expr::int(amt)))
        })
        .collect()
}

/// `(committed, fully_granted)` per transaction plus the final per-item
/// balances, sorted by item.
type Outcomes = (Vec<(bool, bool)>, Vec<(u64, i64)>);

fn settled_int(entry: &Entry<Value>) -> i64 {
    entry
        .as_simple()
        .and_then(|v| v.as_int())
        .expect("item settled to a simple int")
}

fn run_sim(protocol: CommitProtocol, specs: Vec<TransactionSpec>) -> Outcomes {
    // One scripted client, widely spaced arrivals so execution is strictly
    // sequential in virtual time; no retries so each result is the fate of
    // exactly one attempt.
    let n = specs.len();
    let mut cluster = ClusterBuilder::from_topology(shared_topology(protocol))
        .seed(11)
        .client(
            ClientConfig {
                max_retries: 0,
                ..ClientConfig::default()
            },
            Box::new(Script::new(specs, SimDuration::from_secs(5))),
        )
        .build();
    let deadline = pv_simnet::SimTime::ZERO + SimDuration::from_secs(5 * (n as u64 + 4));
    cluster.run_until(deadline);
    let results = cluster.client(0).expect("client").results();
    assert_eq!(results.len(), n, "sim: every transaction got a result");
    let fates = results
        .iter()
        .map(|(_, r)| (r.is_committed(), r.fully_granted()))
        .collect();
    assert!(cluster.all_quiescent(), "sim drained");
    let balances = (0..ACCOUNTS)
        .map(|i| {
            (
                i,
                settled_int(&cluster.item_entry(ItemId(i)).expect("item")),
            )
        })
        .collect();
    (fates, balances)
}

/// Polls `probe` until it reports every site settled (quiescent, zero
/// polyvalues). "Sequential" means settled-between-submissions: without
/// this, the next transaction can race the previous decision's propagation
/// to a participant and hit a timing-dependent no-wait lock conflict.
fn settle(mut probe: impl FnMut() -> (u64, bool)) {
    let limit = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let (polys, quiescent) = probe();
        if polys == 0 && quiescent {
            return;
        }
        assert!(std::time::Instant::now() < limit, "cluster did not settle");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn run_live(protocol: CommitProtocol, specs: Vec<TransactionSpec>) -> Outcomes {
    let cluster = LiveCluster::from_topology(shared_topology(protocol)).expect("start live");
    let deadline = Duration::from_secs(10);
    let fates = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let r = cluster
                .submit((i as u32) % SITES, spec, deadline)
                .expect("live submit");
            settle(|| {
                let mut polys = 0u64;
                let mut quiescent = true;
                for s in 0..SITES {
                    let snap = cluster.inspect(s, deadline).expect("inspect");
                    polys += snap.poly_count as u64;
                    quiescent &= snap.quiescent;
                }
                (polys, quiescent)
            });
            (r.is_committed(), r.fully_granted())
        })
        .collect();
    let mut balances = Vec::new();
    for s in 0..SITES {
        let snap = cluster.inspect(s, deadline).expect("inspect");
        assert_eq!(snap.poly_count, 0, "live drained");
        for (item, entry) in &snap.items {
            balances.push((item.0, settled_int(entry)));
        }
    }
    balances.sort_unstable();
    cluster.shutdown();
    (fates, balances)
}

fn run_net(protocol: CommitProtocol, specs: Vec<TransactionSpec>) -> Outcomes {
    let cluster = NetCluster::from_topology(shared_topology(protocol)).expect("start net");
    let deadline = Duration::from_secs(10);
    let fates = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let r = cluster
                .submit((i as u32) % SITES, spec, deadline)
                .expect("net submit");
            settle(|| {
                let mut polys = 0u64;
                let mut quiescent = true;
                for s in 0..SITES {
                    let snap = cluster.inspect(s, deadline).expect("inspect");
                    polys += snap.poly_count;
                    quiescent &= snap.quiescent;
                }
                (polys, quiescent)
            });
            (r.is_committed(), r.fully_granted())
        })
        .collect();
    let mut balances = Vec::new();
    for s in 0..SITES {
        let snap = cluster.inspect(s, deadline).expect("inspect");
        assert_eq!(snap.poly_count, 0, "net drained");
        for (item, entry) in &snap.items {
            balances.push((item.0, settled_int(entry)));
        }
    }
    balances.sort_unstable();
    cluster.shutdown().expect("clean shutdown");
    (fates, balances)
}

fn assert_equivalent(protocol: CommitProtocol) {
    let specs = workload();
    let (sim_fates, sim_balances) = run_sim(protocol, specs.clone());
    let (live_fates, live_balances) = run_live(protocol, specs.clone());
    let (net_fates, net_balances) = run_net(protocol, specs);

    // The workload is interesting: at least one commit-and-grant and at
    // least one guard denial, so the fate vector actually discriminates.
    assert!(sim_fates.iter().any(|&(c, g)| c && g), "some grant");
    assert!(sim_fates.iter().any(|&(c, g)| c && !g), "some denial");

    assert_eq!(sim_fates, live_fates, "sim vs live outcome sequence");
    assert_eq!(sim_fates, net_fates, "sim vs net outcome sequence");
    assert_eq!(sim_balances, live_balances, "sim vs live final balances");
    assert_eq!(sim_balances, net_balances, "sim vs net final balances");

    for (name, balances) in [
        ("sim", &sim_balances),
        ("live", &live_balances),
        ("net", &net_balances),
    ] {
        let total: i64 = balances.iter().map(|(_, v)| v).sum();
        assert_eq!(
            total,
            ACCOUNTS as i64 * BALANCE,
            "{name}: conservation of funds"
        );
    }
}

#[test]
fn same_topology_same_outcomes_on_all_three_runtimes() {
    assert_equivalent(CommitProtocol::Polyvalue);
}

/// The fault-free Paxos Commit fast path must route every transaction to
/// the same fate on all three runtimes — votes, acceptor acknowledgements
/// and the decision broadcast all cross the real TCP codec in the net
/// cluster.
#[test]
fn same_topology_same_outcomes_under_paxos_commit() {
    assert_equivalent(CommitProtocol::PaxosCommit);
}
