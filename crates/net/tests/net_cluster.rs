//! Integration tests for the in-process socket cluster: real TCP between
//! event-loop threads, exercising the full wire path (codec, Hello routing,
//! pipelining, inspection, metrics, clean shutdown).

use pv_core::{Expr, ItemId, TransactionSpec};
use pv_engine::{Directory, EngineConfig, EngineError, Topology};
use pv_net::backoff::Backoff;
use pv_net::{NetBuilder, NetCluster};
use pv_simnet::SimDuration;
use std::time::{Duration, Instant};

fn transfer(from: u64, to: u64, amt: i64) -> TransactionSpec {
    let (f, t) = (ItemId(from), ItemId(to));
    TransactionSpec::new()
        .guard(Expr::read(f).ge(Expr::int(amt)))
        .update(f, Expr::read(f).sub(Expr::int(amt)))
        .update(t, Expr::read(t).add(Expr::int(amt)))
}

fn fast_config() -> EngineConfig {
    EngineConfig {
        read_timeout: SimDuration::from_millis(200),
        ready_timeout: SimDuration::from_millis(200),
        wait_timeout: SimDuration::from_millis(80),
        read_lease: SimDuration::from_millis(500),
        inquire_interval: SimDuration::from_millis(100),
        ..EngineConfig::default()
    }
}

fn bank_topology(sites: u32, accounts: u64) -> Topology {
    Topology::new(sites, Directory::Mod(sites))
        .engine(fast_config())
        .uniform_items(accounts, 100)
}

/// Polls until every site is quiescent with zero polyvalues.
fn drain(cluster: &NetCluster) {
    let limit = Instant::now() + Duration::from_secs(30);
    loop {
        let mut polys = 0;
        let mut quiescent = true;
        for s in 0..cluster.site_count() as u32 {
            let snap = cluster.inspect(s, Duration::from_secs(5)).expect("inspect");
            polys += snap.poly_count;
            quiescent &= snap.quiescent;
        }
        if polys == 0 && quiescent {
            return;
        }
        assert!(Instant::now() < limit, "cluster did not drain");
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn total_funds(cluster: &NetCluster) -> i64 {
    let mut total = 0;
    for s in 0..cluster.site_count() as u32 {
        let snap = cluster.inspect(s, Duration::from_secs(5)).expect("inspect");
        for (_, entry) in &snap.items {
            total += entry
                .as_simple()
                .and_then(|v| v.as_int())
                .expect("settled int after drain");
        }
    }
    total
}

#[test]
fn transfers_commit_and_conserve_over_tcp() {
    let cluster = NetCluster::from_topology(bank_topology(3, 6)).expect("start");
    let deadline = Duration::from_secs(10);

    let committed = (0..20)
        .filter(|i| {
            let spec = transfer(i % 6, (i + 1) % 6, 5);
            cluster
                .submit((i % 3) as u32, &spec, deadline)
                .expect("submit")
                .is_committed()
        })
        .count();
    assert!(committed > 0, "no transfer committed");

    drain(&cluster);
    assert_eq!(total_funds(&cluster), 600, "conservation over TCP");

    let metrics = cluster.metrics(deadline).expect("metrics");
    assert!(
        metrics.counter("txn.committed") > 0,
        "site-side commit counters travel the wire"
    );

    let sites = cluster.shutdown().expect("clean shutdown");
    assert_eq!(sites.len(), 3);
    for site in &sites {
        assert!(site.is_quiescent());
    }
}

#[test]
fn concurrent_clients_from_many_connections_conserve() {
    let cluster = NetCluster::from_topology(bank_topology(3, 8)).expect("start");
    let deadline = Duration::from_secs(10);

    let mut handles = Vec::new();
    for c in 0..4u64 {
        let mut client = cluster.client((c % 3) as u32).expect("client");
        handles.push(std::thread::spawn(move || {
            let mut committed = 0;
            for i in 0..15u64 {
                let from = (c * 3 + i) % 8;
                let to = (from + 1 + c) % 8;
                let spec = transfer(from, to, 3);
                // Lock conflicts abort under no-wait; that's a valid
                // outcome — conservation is the invariant under test.
                if let Ok(result) = client.submit(&spec, deadline) {
                    if result.is_committed() {
                        committed += 1;
                    }
                }
            }
            committed
        }));
    }
    let committed: u64 = handles.into_iter().map(|h| h.join().expect("client")).sum();
    assert!(committed > 0, "nothing committed under contention");

    drain(&cluster);
    assert_eq!(total_funds(&cluster), 800, "conservation under contention");
    cluster.shutdown().expect("clean shutdown");
}

#[test]
fn pipelined_submissions_all_reply() {
    let cluster = NetCluster::from_topology(bank_topology(2, 4)).expect("start");
    let mut client = cluster.client(0).expect("client");

    // Hold 8 transactions in flight on one connection; every one must get
    // a reply routed back to this client node.
    let mut pending: Vec<u64> = (0..8)
        .map(|i| {
            client
                .submit_async(&transfer(i % 4, (i + 1) % 4, 1))
                .expect("submit_async")
        })
        .collect();
    let limit = Instant::now() + Duration::from_secs(20);
    while !pending.is_empty() {
        let remaining = limit.saturating_duration_since(Instant::now());
        assert!(!remaining.is_zero(), "replies missing: {pending:?}");
        let (req_id, _result) = client.recv_reply(remaining).expect("reply");
        pending.retain(|&p| p != req_id);
    }

    drain(&cluster);
    assert_eq!(total_funds(&cluster), 400);
    cluster.shutdown().expect("clean shutdown");
}

#[test]
fn snapshot_reads_over_tcp_are_coordination_free() {
    let cluster = NetCluster::from_topology(bank_topology(2, 4)).expect("start");
    let deadline = Duration::from_secs(10);
    assert!(cluster
        .submit(0, &transfer(0, 1, 30), deadline)
        .expect("submit")
        .is_committed());
    drain(&cluster);

    let before = cluster.metrics(deadline).expect("metrics");
    // Named items read at one snapshot sequence number.
    let (snap, entries) = cluster
        .snapshot_read(0, &[ItemId(0), ItemId(2)], deadline)
        .expect("snapshot read");
    assert!(snap > 0);
    assert_eq!(entries.len(), 2);
    for (item, entry) in &entries {
        let n = entry.as_simple().and_then(|v| v.as_int()).expect("settled");
        match item.0 {
            0 => assert_eq!(n, 70),
            2 => assert_eq!(n, 100),
            other => panic!("unexpected item {other}"),
        }
    }
    // Empty list = full scan of the site's items.
    let (_, all) = cluster.snapshot_read(1, &[], deadline).expect("full scan");
    assert_eq!(all.len(), 2, "site 1 is home to items 1 and 3");

    let after = cluster.metrics(deadline).expect("metrics");
    assert_eq!(
        after.counter("store.snapshot_reads") - before.counter("store.snapshot_reads"),
        2
    );
    // Coordination-free: no lock-table traffic, no transactions or
    // protocol phases between the captures.
    for c in ["lock.conflicts", "lock.queued", "txn.submitted", "inquire.sent"] {
        assert_eq!(before.counter(c), after.counter(c), "{c} moved");
    }
    cluster.shutdown().expect("clean shutdown");
}

#[test]
fn static_checks_gate_client_side() {
    let topo = bank_topology(2, 2).static_checks();
    let cluster = NetCluster::from_topology(topo).expect("start");
    // Statically ill-typed (int + bool): the analysis gate must reject it
    // before it ever touches a socket.
    let bad = TransactionSpec::new().update(ItemId(0), Expr::int(1).add(Expr::bool(true)));
    match cluster.submit(0, &bad, Duration::from_secs(5)) {
        Err(EngineError::Rejected(_)) => {}
        other => panic!("expected static-check rejection, got {other:?}"),
    }
    cluster.shutdown().expect("clean shutdown");
}

#[test]
fn unreachable_peer_fails_fast_with_structured_error() {
    // A node whose peer table points at a dead port must give up within
    // its backoff attempt budget and name the unreachable site — not hang.
    use pv_net::node::{Node, NodeConfig};
    let topo = bank_topology(2, 2);
    let mut node = Node::bind(
        NodeConfig {
            site: 0,
            topo,
            backoff: Backoff::fast_fail(),
        },
        "127.0.0.1:0".parse().unwrap(),
    )
    .expect("bind");
    let dead = {
        // Grab a port and release it so nothing listens there.
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    };
    node.set_peers(vec![node.local_addr().expect("addr"), dead]);
    match node.run() {
        Err(EngineError::Unreachable { site, detail }) => {
            assert_eq!(site, 1);
            assert!(detail.contains("attempts"), "detail names the budget: {detail}");
        }
        Err(other) => panic!("expected Unreachable, got {other:?}"),
        Ok(_) => panic!("expected Unreachable, got a clean shutdown"),
    }
}

#[test]
fn net_builder_backoff_override_applies() {
    // fast_fail keeps the failure path quick even when the cluster itself
    // is healthy — this just exercises the builder surface.
    let cluster = NetBuilder::from_topology(bank_topology(2, 2))
        .backoff(Backoff::fast_fail())
        .start()
        .expect("start");
    let result = cluster
        .submit(0, &transfer(0, 1, 10), Duration::from_secs(10))
        .expect("submit");
    assert!(result.is_committed());
    cluster.shutdown().expect("clean shutdown");
}
