//! Property tests: the condition algebra is a faithful boolean algebra.
//!
//! Strategy: generate random condition ASTs over a small variable universe,
//! build both a `Condition` (canonical DNF) and a reference closure, and
//! compare them on every assignment of the universe (2^N, N ≤ 5).

use proptest::prelude::*;
use pv_core::{Condition, TxnId};
use std::collections::BTreeMap;

/// Number of transaction variables in the test universe.
const VARS: u64 = 5;

/// A reference boolean formula evaluated directly.
#[derive(Debug, Clone)]
enum Formula {
    Tru,
    Fls,
    Var(u64),
    Not(Box<Formula>),
    And(Box<Formula>, Box<Formula>),
    Or(Box<Formula>, Box<Formula>),
}

impl Formula {
    fn eval(&self, assignment: &BTreeMap<TxnId, bool>) -> bool {
        match self {
            Formula::Tru => true,
            Formula::Fls => false,
            Formula::Var(v) => assignment.get(&TxnId(*v)).copied().unwrap_or(false),
            Formula::Not(a) => !a.eval(assignment),
            Formula::And(a, b) => a.eval(assignment) && b.eval(assignment),
            Formula::Or(a, b) => a.eval(assignment) || b.eval(assignment),
        }
    }

    fn to_condition(&self) -> Condition {
        match self {
            Formula::Tru => Condition::tru(),
            Formula::Fls => Condition::fls(),
            Formula::Var(v) => Condition::var(TxnId(*v)),
            Formula::Not(a) => a.to_condition().not(),
            Formula::And(a, b) => a.to_condition().and(&b.to_condition()),
            Formula::Or(a, b) => a.to_condition().or(&b.to_condition()),
        }
    }
}

fn formula() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        Just(Formula::Tru),
        Just(Formula::Fls),
        (0..VARS).prop_map(Formula::Var),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|a| Formula::Not(Box::new(a))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Formula::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Formula::Or(Box::new(a), Box::new(b))),
        ]
    })
}

fn all_assignments() -> Vec<BTreeMap<TxnId, bool>> {
    (0u32..(1 << VARS))
        .map(|bits| {
            (0..VARS)
                .map(|v| (TxnId(v), bits & (1 << v) != 0))
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The canonical DNF evaluates exactly like the source formula.
    #[test]
    fn dnf_matches_reference_semantics(f in formula()) {
        let cond = f.to_condition();
        for a in all_assignments() {
            prop_assert_eq!(cond.eval(&a), f.eval(&a), "assignment {:?}", a);
        }
    }

    /// `is_true`/`is_false` agree with exhaustive evaluation.
    #[test]
    fn constancy_checks_are_exact(f in formula()) {
        let cond = f.to_condition();
        let evals: Vec<bool> = all_assignments().iter().map(|a| f.eval(a)).collect();
        prop_assert_eq!(cond.is_true(), evals.iter().all(|&b| b));
        prop_assert_eq!(cond.is_false(), evals.iter().all(|&b| !b));
    }

    /// Double negation is semantically the identity (and syntactically, since
    /// the form is canonical and negation is computed canonically).
    #[test]
    fn double_negation_preserves_semantics(f in formula()) {
        let cond = f.to_condition();
        let back = cond.not().not();
        for a in all_assignments() {
            prop_assert_eq!(cond.eval(&a), back.eval(&a));
        }
    }

    /// Negation complements on every assignment.
    #[test]
    fn negation_complements(f in formula()) {
        let cond = f.to_condition();
        let neg = cond.not();
        for a in all_assignments() {
            prop_assert_eq!(cond.eval(&a), !neg.eval(&a));
        }
        // f ∨ ¬f is a tautology; f ∧ ¬f is a contradiction.
        prop_assert!(cond.or(&neg).is_true());
        prop_assert!(cond.and(&neg).is_false());
    }

    /// Outcome substitution equals semantic restriction.
    #[test]
    fn assign_is_semantic_restriction(f in formula(), var in 0..VARS, value: bool) {
        let cond = f.to_condition();
        let restricted = cond.assign(TxnId(var), value);
        for mut a in all_assignments() {
            a.insert(TxnId(var), value);
            prop_assert_eq!(restricted.eval(&a), cond.eval(&a));
        }
        // The restricted condition no longer mentions the variable.
        prop_assert!(!restricted.vars().contains(&TxnId(var)));
    }

    /// `implies` is exactly semantic implication.
    #[test]
    fn implies_matches_semantics(f in formula(), g in formula()) {
        let cf = f.to_condition();
        let cg = g.to_condition();
        let semantic = all_assignments().iter().all(|a| !f.eval(a) || g.eval(a));
        prop_assert_eq!(cf.implies(&cg), semantic);
    }

    /// `disjoint_with` is exactly semantic non-overlap.
    #[test]
    fn disjoint_matches_semantics(f in formula(), g in formula()) {
        let cf = f.to_condition();
        let cg = g.to_condition();
        let semantic = all_assignments().iter().all(|a| !(f.eval(a) && g.eval(a)));
        prop_assert_eq!(cf.disjoint_with(&cg), semantic);
    }

    /// Canonicalisation is idempotent: rebuilding from the products of a
    /// canonical condition yields the same condition.
    #[test]
    fn canonical_form_is_stable(f in formula()) {
        let cond = f.to_condition();
        let rebuilt = Condition::from_products(cond.products().to_vec());
        prop_assert_eq!(cond, rebuilt);
    }

    /// No product in a canonical condition subsumes another, and none is
    /// contradictory (minimality of the stored representation).
    #[test]
    fn canonical_form_is_minimal(f in formula()) {
        let cond = f.to_condition();
        let ps = cond.products();
        for (i, p) in ps.iter().enumerate() {
            for (j, q) in ps.iter().enumerate() {
                if i != j {
                    prop_assert!(!p.subsumes(q), "{p} subsumes {q}");
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Differential: the memoized `assign` agrees with the uncached
    /// reference path on arbitrary conditions. The memo is a pure speed
    /// cache, so the two must be *structurally* identical, not just
    /// semantically equivalent.
    #[test]
    fn memoized_assign_matches_uncached(f in formula(), var in 0..VARS, value: bool) {
        let cond = f.to_condition();
        let fast = cond.assign(TxnId(var), value);
        let slow = cond.assign_uncached(TxnId(var), value);
        prop_assert_eq!(&fast, &slow);
        // Asking again must serve the (now cached) answer unchanged.
        prop_assert_eq!(cond.assign(TxnId(var), value), slow);
    }

    /// Differential: chained substitution (the §3.3 outcome-propagation
    /// pattern, where each result feeds the next lookup) stays in lockstep
    /// with the uncached path for every prefix of the outcome sequence.
    #[test]
    fn memoized_assign_chain_matches_uncached(f in formula(), outcome_bits in 0u32..(1 << VARS)) {
        let mut fast = f.to_condition();
        let mut slow = fast.clone();
        for v in 0..VARS {
            let value = outcome_bits & (1 << v) != 0;
            fast = fast.assign(TxnId(v), value);
            slow = slow.assign_uncached(TxnId(v), value);
            prop_assert_eq!(&fast, &slow, "diverged after assigning T{}", v);
        }
        // All variables substituted: the condition is now a constant.
        prop_assert!(fast.is_true() || fast.is_false());
    }

    /// Differential: both assign paths agree with semantic restriction on
    /// conditions wider than the inline literal capacity (exercising the
    /// heap-spilled product representation).
    #[test]
    fn memoized_assign_matches_on_wide_products(bits in 0u64..(1 << 6), var in 0u64..6, value: bool) {
        // One product of six literals (spills the inline small-vec) plus a
        // couple of overlapping narrower products.
        use pv_core::{Literal, Product};
        let wide = Product::from_literals((0..6).map(|v| {
            if bits & (1 << v) != 0 { Literal::positive(TxnId(v)) } else { Literal::negative(TxnId(v)) }
        })).expect("distinct variables never contradict");
        let narrow_a = Product::from_literals([Literal::positive(TxnId(0)), Literal::negative(TxnId(5))]);
        let narrow_b = Product::from_literals([Literal::negative(TxnId(1))]);
        let cond = Condition::from_products(
            [Some(wide), narrow_a, narrow_b].into_iter().flatten(),
        );
        prop_assert_eq!(
            cond.assign(TxnId(var), value),
            cond.assign_uncached(TxnId(var), value)
        );
    }

    /// Rendering a condition and parsing it back yields the same condition
    /// (Display and the parser are inverse up to canonicalisation, which
    /// Display's input already has).
    #[test]
    fn display_parse_round_trip(f in formula()) {
        let cond = f.to_condition();
        let rendered = cond.to_string();
        let parsed = pv_core::cond::parse_condition(&rendered)
            .expect("rendered conditions always parse");
        prop_assert_eq!(parsed, cond, "failed for {}", rendered);
    }
}
