//! Property tests for the polytransaction evaluator (§3.2).
//!
//! The fundamental theorem being checked: evaluating a transaction against a
//! database with polyvalues, then resolving the collated results under an
//! outcome assignment, gives the same answer as first resolving the database
//! and evaluating the transaction on plain values.

use proptest::prelude::*;
use pv_core::expr::{evaluate, ReadSource, SplitMode};
use pv_core::{Condition, Entry, Expr, ItemId, TransactionSpec, TxnId, Value};
use std::collections::BTreeMap;

const VARS: u64 = 3;
const ITEMS: u64 = 4;

type Db = BTreeMap<ItemId, Entry<Value>>;

/// Database generator: every item starts simple and accumulates 0–2 in-doubt
/// updates, mirroring how polyvalues are created by the protocol.
fn db_strategy() -> impl Strategy<Value = Db> {
    prop::collection::vec(
        (0i64..8, prop::collection::vec((0i64..8, 0..VARS), 0..3)),
        ITEMS as usize,
    )
    .prop_map(|per_item| {
        per_item
            .into_iter()
            .enumerate()
            .map(|(i, (initial, history))| {
                let mut e = Entry::Simple(Value::Int(initial));
                for (new, txn) in history {
                    e = Entry::in_doubt(Entry::Simple(Value::Int(new)), e, TxnId(txn));
                }
                (ItemId(i as u64), e)
            })
            .collect()
    })
}

/// Total integer expressions (no division, so evaluation cannot fail).
fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-4i64..8).prop_map(Expr::int),
        (0..ITEMS).prop_map(|i| Expr::read(ItemId(i))),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.add(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.sub(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.min(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.max(b)),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, t, e)| Expr::ite(
                c.lt(Expr::int(3)),
                t,
                e
            )),
        ]
    })
}

fn spec_strategy() -> impl Strategy<Value = TransactionSpec> {
    (
        prop::option::of(expr_strategy()),
        prop::collection::vec((0..ITEMS, expr_strategy()), 0..3),
        prop::collection::vec(expr_strategy(), 0..2),
    )
        .prop_map(|(guard, updates, outputs)| {
            let mut spec = TransactionSpec::new();
            if let Some(g) = guard {
                spec = spec.guard(g.lt(Expr::int(4)));
            }
            for (item, e) in updates {
                spec = spec.update(ItemId(item), e);
            }
            for (i, e) in outputs.into_iter().enumerate() {
                spec = spec.output(&format!("o{i}"), e);
            }
            spec
        })
}

fn all_assignments() -> Vec<BTreeMap<TxnId, bool>> {
    (0u32..(1 << VARS))
        .map(|bits| {
            (0..VARS)
                .map(|v| (TxnId(v), bits & (1 << v) != 0))
                .collect()
        })
        .collect()
}

/// Resolves every entry of the database under an assignment.
fn resolve_db(db: &Db, a: &BTreeMap<TxnId, bool>) -> BTreeMap<ItemId, Value> {
    db.iter()
        .map(|(item, e)| (*item, e.resolve(a).expect("complete").clone()))
        .collect()
}

/// Replays of the shrunk inputs recorded in
/// `prop_eval.proptest-regressions`. The vendored proptest shim does not
/// read that file, so the historical failure cases are reconstructed here as
/// plain tests — they run in CI regardless of `PROPTEST_CASES`.
mod regressions {
    use super::*;

    /// Runs one (db, spec) pair through the invariants the property suite
    /// checks: lazy/eager agreement, alternative-condition validity, and
    /// commutation of polyevaluation with resolution.
    fn check(db: &Db, spec: &TransactionSpec) {
        let lazy = evaluate(spec, db, SplitMode::Lazy).unwrap();
        let eager = evaluate(spec, db, SplitMode::Eager).unwrap();
        assert_eq!(
            lazy.collate_writes(db).unwrap(),
            eager.collate_writes(db).unwrap()
        );
        assert_eq!(
            lazy.collate_outputs().unwrap(),
            eager.collate_outputs().unwrap()
        );
        let conds: Vec<&Condition> = lazy.alts.iter().map(|a| &a.cond).collect();
        assert!(Condition::complete(conds.iter().copied()));
        assert!(Condition::pairwise_disjoint(&conds));

        let writes = lazy.collate_writes(db).unwrap();
        let outputs = lazy.collate_outputs().unwrap();
        for a in all_assignments() {
            let plain = resolve_db(db, &a);
            let plain_entries: Db = plain
                .iter()
                .map(|(i, v)| (*i, Entry::Simple(v.clone())))
                .collect();
            let reference = evaluate(spec, &plain_entries, SplitMode::Lazy).unwrap();
            assert_eq!(reference.alts.len(), 1);
            let ref_alt = &reference.alts[0];
            for (item, entry) in &writes {
                let expect = ref_alt
                    .writes
                    .get(item)
                    .cloned()
                    .unwrap_or_else(|| plain[item].clone());
                assert_eq!(entry.resolve(&a), Some(&expect));
            }
            for (idx, (name, entry)) in outputs.iter().enumerate() {
                let (ref_name, ref_val) = &ref_alt.outputs[idx];
                assert_eq!(name, ref_name);
                assert_eq!(entry.resolve(&a), Some(ref_val));
            }
        }
    }

    /// Shrunk input of `polyeval_commutes_with_resolution`: an output-only
    /// transaction whose nested conditional reads two distinct polyvalued
    /// items on different branches.
    #[test]
    fn nested_conditional_over_two_polyvalues() {
        let db: Db = [
            (ItemId(0), Entry::Simple(Value::Int(2))),
            (ItemId(1), Entry::Simple(Value::Int(0))),
            (
                ItemId(2),
                Entry::in_doubt(
                    Entry::Simple(Value::Int(0)),
                    Entry::Simple(Value::Int(2)),
                    TxnId(1),
                ),
            ),
            (
                ItemId(3),
                Entry::in_doubt(
                    Entry::Simple(Value::Int(1)),
                    Entry::Simple(Value::Int(0)),
                    TxnId(0),
                ),
            ),
        ]
        .into();
        let o0 = Expr::ite(
            Expr::int(2).add(Expr::int(1)).lt(Expr::int(3)),
            Expr::ite(
                Expr::int(0).lt(Expr::int(3)),
                Expr::read(ItemId(2)),
                Expr::int(0),
            ),
            Expr::int(0).add(Expr::int(0).add(Expr::read(ItemId(3)))),
        );
        let spec = TransactionSpec::new().output("o0", o0);
        check(&db, &spec);
    }

    /// Shrunk input of `polyeval_commutes_with_resolution`: a polyvalued
    /// guard over items 0/2/3 gating updates that write a polyvalued item
    /// and read another in the same transaction.
    #[test]
    fn polyvalued_guard_gating_updates() {
        let db: Db = [
            (ItemId(0), Entry::Simple(Value::Int(0))),
            (
                ItemId(1),
                Entry::in_doubt(
                    Entry::Simple(Value::Int(1)),
                    Entry::Simple(Value::Int(0)),
                    TxnId(0),
                ),
            ),
            (ItemId(2), Entry::Simple(Value::Int(0))),
            (
                ItemId(3),
                Entry::in_doubt(
                    Entry::Simple(Value::Int(4)),
                    Entry::Simple(Value::Int(2)),
                    TxnId(1),
                ),
            ),
        ]
        .into();
        let guard = Expr::read(ItemId(3))
            .max(Expr::int(0))
            .sub(Expr::read(ItemId(2)).sub(Expr::read(ItemId(0))))
            .lt(Expr::int(4));
        let spec = TransactionSpec::new()
            .guard(guard)
            .update(ItemId(1), Expr::int(2).max(Expr::int(0)))
            .update(ItemId(2), Expr::read(ItemId(1)).min(Expr::int(0)));
        check(&db, &spec);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Lazy and eager partitioning collate to identical results.
    #[test]
    fn lazy_and_eager_agree(db in db_strategy(), spec in spec_strategy()) {
        let lazy = evaluate(&spec, &db, SplitMode::Lazy).unwrap();
        let eager = evaluate(&spec, &db, SplitMode::Eager).unwrap();
        prop_assert_eq!(
            lazy.collate_writes(&db).unwrap(),
            eager.collate_writes(&db).unwrap()
        );
        prop_assert_eq!(
            lazy.collate_outputs().unwrap(),
            eager.collate_outputs().unwrap()
        );
        // Lazy never produces more alternatives than eager.
        prop_assert!(lazy.alts.len() <= eager.alts.len());
    }

    /// Alternative conditions are complete and pairwise disjoint — the §3.2
    /// guarantee that makes the produced polyvalues valid.
    #[test]
    fn alternative_conditions_are_complete_and_disjoint(
        db in db_strategy(),
        spec in spec_strategy(),
        mode in prop_oneof![Just(SplitMode::Lazy), Just(SplitMode::Eager)],
    ) {
        let out = evaluate(&spec, &db, mode).unwrap();
        let conds: Vec<&Condition> = out.alts.iter().map(|a| &a.cond).collect();
        prop_assert!(Condition::complete(conds.iter().copied()));
        prop_assert!(Condition::pairwise_disjoint(&conds));
    }

    /// The fundamental correctness property: polyevaluation then resolution
    /// equals resolution then plain evaluation.
    #[test]
    fn polyeval_commutes_with_resolution(db in db_strategy(), spec in spec_strategy()) {
        let out = evaluate(&spec, &db, SplitMode::Lazy).unwrap();
        let writes = out.collate_writes(&db).unwrap();
        let outputs = out.collate_outputs().unwrap();
        for a in all_assignments() {
            // Reference: evaluate against the resolved (plain) database.
            let plain = resolve_db(&db, &a);
            let plain_entries: Db =
                plain.iter().map(|(i, v)| (*i, Entry::Simple(v.clone()))).collect();
            let reference = evaluate(&spec, &plain_entries, SplitMode::Lazy).unwrap();
            prop_assert_eq!(reference.alts.len(), 1);
            let ref_alt = &reference.alts[0];

            // Writes: each collated entry resolves to the reference value, or
            // to the resolved current value if the reference did not write.
            for (item, entry) in &writes {
                let expect = ref_alt
                    .writes
                    .get(item)
                    .cloned()
                    .unwrap_or_else(|| plain[item].clone());
                prop_assert_eq!(entry.resolve(&a), Some(&expect));
            }
            // Items never collated must not have been written by the
            // reference either.
            for item in ref_alt.writes.keys() {
                prop_assert!(writes.contains_key(item));
            }

            // Outputs match pointwise.
            for (idx, (name, entry)) in outputs.iter().enumerate() {
                let (ref_name, ref_val) = &ref_alt.outputs[idx];
                prop_assert_eq!(name, ref_name);
                prop_assert_eq!(entry.resolve(&a), Some(ref_val));
            }
        }
    }

    /// Every collated entry satisfies the polyvalue invariant.
    #[test]
    fn collated_entries_are_valid(db in db_strategy(), spec in spec_strategy()) {
        let out = evaluate(&spec, &db, SplitMode::Lazy).unwrap();
        for entry in out.collate_writes(&db).unwrap().values() {
            entry.validate().unwrap();
        }
        for (_, entry) in out.collate_outputs().unwrap() {
            entry.validate().unwrap();
        }
        out.collate_granted().unwrap().validate().unwrap();
    }

    /// A transaction whose static read set contains no polyvalued item is
    /// never partitioned and produces only simple writes.
    #[test]
    fn certain_inputs_never_propagate_uncertainty(spec in spec_strategy()) {
        let db: Db = (0..ITEMS)
            .map(|i| (ItemId(i), Entry::Simple(Value::Int(i as i64))))
            .collect();
        let out = evaluate(&spec, &db, SplitMode::Lazy).unwrap();
        prop_assert_eq!(out.alts.len(), 1);
        for entry in out.collate_writes(&db).unwrap().values() {
            prop_assert!(entry.is_simple());
        }
    }

    /// Reading through the `ReadSource` trait object works for both map kinds.
    #[test]
    fn read_source_impls_agree(v in 0i64..100) {
        let mut em: Db = BTreeMap::new();
        em.insert(ItemId(0), Entry::Simple(Value::Int(v)));
        let mut vm: BTreeMap<ItemId, Value> = BTreeMap::new();
        vm.insert(ItemId(0), Value::Int(v));
        prop_assert_eq!(em.read_entry(ItemId(0)), vm.read_entry(ItemId(0)));
    }
}
