//! Property tests: polyvalues denote functions from outcome assignments to
//! values, and every operation preserves that denotation.

use proptest::prelude::*;
use pv_core::{Entry, TxnId, Value};
use std::collections::BTreeMap;

const VARS: u64 = 4;

/// A history of in-doubt updates: each step stacks `{⟨new, T⟩, ⟨old, ¬T⟩}`
/// on the current entry. This is exactly how polyvalues arise in the system,
/// so entries generated this way always satisfy the invariant.
fn entry_history() -> impl Strategy<Value = Vec<(i64, u64)>> {
    prop::collection::vec((0i64..6, 0..VARS), 0..5)
}

fn build_entry(initial: i64, history: &[(i64, u64)]) -> Entry<Value> {
    let mut entry = Entry::Simple(Value::Int(initial));
    for (new, txn) in history {
        entry = Entry::in_doubt(Entry::Simple(Value::Int(*new)), entry, TxnId(*txn));
    }
    entry
}

fn all_assignments() -> Vec<BTreeMap<TxnId, bool>> {
    (0u32..(1 << VARS))
        .map(|bits| {
            (0..VARS)
                .map(|v| (TxnId(v), bits & (1 << v) != 0))
                .collect()
        })
        .collect()
}

/// The reference denotation: replay the history under an assignment.
fn reference(initial: i64, history: &[(i64, u64)], a: &BTreeMap<TxnId, bool>) -> i64 {
    let mut v = initial;
    for (new, txn) in history {
        if a[&TxnId(*txn)] {
            v = *new;
        }
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Entries built from in-doubt histories always satisfy the §3 invariant
    /// (complete, disjoint, minimal).
    #[test]
    fn in_doubt_histories_are_valid(initial in 0i64..6, history in entry_history()) {
        let entry = build_entry(initial, &history);
        entry.validate().unwrap();
    }

    /// The entry resolves to exactly the replayed value on every assignment.
    #[test]
    fn resolve_matches_replay(initial in 0i64..6, history in entry_history()) {
        let entry = build_entry(initial, &history);
        for a in all_assignments() {
            let expect = Value::Int(reference(initial, &history, &a));
            prop_assert_eq!(entry.resolve(&a), Some(&expect));
        }
    }

    /// Substituting outcomes one at a time, in any order, converges to the
    /// same simple value as direct resolution.
    #[test]
    fn outcome_substitution_commutes_with_resolution(
        initial in 0i64..6,
        history in entry_history(),
        order in Just(()).prop_perturb(|_, mut rng| {
            let mut order: Vec<u64> = (0..VARS).collect();
            for i in (1..order.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
            order
        }),
        bits in 0u32..(1 << VARS),
    ) {
        let entry = build_entry(initial, &history);
        let a: BTreeMap<TxnId, bool> =
            (0..VARS).map(|v| (TxnId(v), bits & (1 << v) != 0)).collect();
        let mut reduced = entry.clone();
        for v in order {
            reduced = reduced.assign_outcome(TxnId(v), a[&TxnId(v)]);
            reduced.validate().unwrap();
        }
        let expect = Value::Int(reference(initial, &history, &a));
        prop_assert_eq!(reduced, Entry::Simple(expect));
    }

    /// Partial substitution never grows the pair count and never loses the
    /// values consistent with the remaining uncertainty.
    #[test]
    fn partial_substitution_shrinks(
        initial in 0i64..6,
        history in entry_history(),
        var in 0..VARS,
        value: bool,
    ) {
        let entry = build_entry(initial, &history);
        let after = entry.assign_outcome(TxnId(var), value);
        prop_assert!(after.pair_count() <= entry.pair_count());
        prop_assert!(!after.deps().contains(&TxnId(var)));
        // Every remaining assignment agrees with the original entry.
        for mut a in all_assignments() {
            a.insert(TxnId(var), value);
            prop_assert_eq!(after.resolve(&a), entry.resolve(&a));
        }
    }

    /// `map` distributes over resolution: resolve-then-apply equals
    /// apply-then-resolve.
    #[test]
    fn map_commutes_with_resolve(
        initial in 0i64..6,
        history in entry_history(),
        offset in -5i64..5,
    ) {
        let entry = build_entry(initial, &history);
        let mapped = entry.map(|v| {
            Value::Int(v.as_int().expect("ints only") + offset)
        });
        mapped.validate().unwrap();
        for a in all_assignments() {
            let direct = Value::Int(reference(initial, &history, &a) + offset);
            prop_assert_eq!(mapped.resolve(&a), Some(&direct));
        }
    }

    /// min/max bound every possible resolution.
    #[test]
    fn min_max_bound_resolutions(initial in 0i64..6, history in entry_history()) {
        let entry = build_entry(initial, &history);
        for a in all_assignments() {
            let v = entry.resolve(&a).unwrap().clone();
            prop_assert!(*entry.min_value() <= v);
            prop_assert!(v <= *entry.max_value());
        }
    }

    /// Pair count never exceeds the number of distinct values in the history
    /// plus the initial value.
    #[test]
    fn pair_count_is_bounded_by_distinct_values(initial in 0i64..6, history in entry_history()) {
        let entry = build_entry(initial, &history);
        let mut distinct: Vec<i64> = history.iter().map(|(v, _)| *v).collect();
        distinct.push(initial);
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert!(entry.pair_count() <= distinct.len());
    }
}
