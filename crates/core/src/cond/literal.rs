//! Literals: a transaction identifier or its negation.

use crate::txn::TxnId;
use std::fmt;

/// A literal in a condition: a transaction variable, possibly negated.
///
/// A positive literal `T` is true if transaction `T` completed; a negative
/// literal `¬T` is true if it aborted.
///
/// # Examples
///
/// ```
/// use pv_core::cond::Literal;
/// use pv_core::txn::TxnId;
///
/// let pos = Literal::positive(TxnId(1));
/// let neg = pos.negated();
/// assert_eq!(neg, Literal::negative(TxnId(1)));
/// assert!(pos.is_positive());
/// assert!(!neg.is_positive());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Literal {
    txn: TxnId,
    positive: bool,
}

impl Literal {
    /// A positive literal: true iff `txn` completed.
    pub fn positive(txn: TxnId) -> Self {
        Literal {
            txn,
            positive: true,
        }
    }

    /// A negative literal: true iff `txn` aborted.
    pub fn negative(txn: TxnId) -> Self {
        Literal {
            txn,
            positive: false,
        }
    }

    /// The transaction variable of this literal.
    pub fn txn(self) -> TxnId {
        self.txn
    }

    /// Whether the literal is positive (un-negated).
    pub fn is_positive(self) -> bool {
        self.positive
    }

    /// The complementary literal over the same variable.
    pub fn negated(self) -> Self {
        Literal {
            txn: self.txn,
            positive: !self.positive,
        }
    }

    /// Evaluates the literal under a truth assignment for its variable.
    pub fn eval(self, txn_completed: bool) -> bool {
        self.positive == txn_completed
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "{}", self.txn)
        } else {
            write!(f, "¬{}", self.txn)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negation_is_involutive() {
        let l = Literal::positive(TxnId(3));
        assert_eq!(l.negated().negated(), l);
    }

    #[test]
    fn eval_matches_polarity() {
        let p = Literal::positive(TxnId(1));
        let n = Literal::negative(TxnId(1));
        assert!(p.eval(true));
        assert!(!p.eval(false));
        assert!(!n.eval(true));
        assert!(n.eval(false));
    }

    #[test]
    fn display_uses_negation_sign() {
        assert_eq!(Literal::positive(TxnId(5)).to_string(), "T5");
        assert_eq!(Literal::negative(TxnId(5)).to_string(), "¬T5");
    }
}
