//! Parsing conditions from text.
//!
//! The grammar accepts both the ASCII operators (`!`, `&`, `|`) and the
//! Unicode ones this crate's `Display` produces (`¬`, `∧`, `∨`), so any
//! rendered condition parses back to an equal value:
//!
//! ```text
//! cond   := term ( ('|' | '∨') term )*
//! term   := factor ( ('&' | '∧') factor )*
//! factor := ('!' | '¬') factor | '(' cond ')' | 'true' | 'false' | 'T' digits
//! ```

use super::dnf::Condition;
use crate::txn::TxnId;
use std::fmt;

/// A parse failure, with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser { input, pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.input.len() - trimmed.len();
    }

    /// Consumes one of the given literal alternatives, if present.
    fn eat(&mut self, alternatives: &[&str]) -> bool {
        self.skip_ws();
        for alt in alternatives {
            if self.rest().starts_with(alt) {
                self.pos += alt.len();
                return true;
            }
        }
        false
    }

    fn parse_cond(&mut self) -> Result<Condition, ParseError> {
        let mut acc = self.parse_term()?;
        while self.eat(&["∨", "|"]) {
            let rhs = self.parse_term()?;
            acc = acc.or(&rhs);
        }
        Ok(acc)
    }

    fn parse_term(&mut self) -> Result<Condition, ParseError> {
        let mut acc = self.parse_factor()?;
        while self.eat(&["∧", "&"]) {
            let rhs = self.parse_factor()?;
            acc = acc.and(&rhs);
        }
        Ok(acc)
    }

    fn parse_factor(&mut self) -> Result<Condition, ParseError> {
        if self.eat(&["¬", "!"]) {
            return Ok(self.parse_factor()?.not());
        }
        if self.eat(&["("]) {
            let inner = self.parse_cond()?;
            if !self.eat(&[")"]) {
                return Err(self.error("expected ')'"));
            }
            return Ok(inner);
        }
        if self.eat(&["true"]) {
            return Ok(Condition::tru());
        }
        if self.eat(&["false"]) {
            return Ok(Condition::fls());
        }
        if self.eat(&["T"]) {
            let digits: String = self
                .rest()
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect();
            if digits.is_empty() {
                return Err(self.error("expected digits after 'T'"));
            }
            self.pos += digits.len();
            let raw: u64 = digits
                .parse()
                .map_err(|_| self.error("transaction id out of range"))?;
            return Ok(Condition::var(TxnId(raw)));
        }
        Err(self.error("expected '!', '(', 'true', 'false', or a transaction id"))
    }
}

/// Parses a condition; the entire input must be consumed.
pub fn parse_condition(input: &str) -> Result<Condition, ParseError> {
    let mut p = Parser::new(input);
    let cond = p.parse_cond()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.error("trailing input"));
    }
    Ok(cond)
}

impl std::str::FromStr for Condition {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        parse_condition(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Condition {
        parse_condition(s).unwrap()
    }

    #[test]
    fn atoms() {
        assert_eq!(p("true"), Condition::tru());
        assert_eq!(p("false"), Condition::fls());
        assert_eq!(p("T7"), Condition::var(TxnId(7)));
        assert_eq!(p("!T7"), Condition::not_var(TxnId(7)));
        assert_eq!(p("¬T7"), Condition::not_var(TxnId(7)));
        assert_eq!(p("  T7  "), Condition::var(TxnId(7)));
    }

    #[test]
    fn operators_ascii_and_unicode_agree() {
        assert_eq!(p("T1 & T2"), p("T1 ∧ T2"));
        assert_eq!(p("T1 | T2"), p("T1 ∨ T2"));
        assert_eq!(p("!T1"), p("¬T1"));
    }

    #[test]
    fn precedence_and_binds_tighter_than_or() {
        // T1 | T2 & T3 == T1 | (T2 & T3).
        assert_eq!(p("T1 | T2 & T3"), p("T1 | (T2 & T3)"));
        assert_ne!(p("T1 | T2 & T3"), p("(T1 | T2) & T3"));
    }

    #[test]
    fn parentheses_and_nesting() {
        let c = p("T1 & (T2 | T3)");
        assert_eq!(
            c,
            Condition::var(TxnId(1)).and(&Condition::var(TxnId(2)).or(&Condition::var(TxnId(3))))
        );
        assert_eq!(p("!(T1 & T2)"), p("!T1 | !T2"));
        assert_eq!(p("((T1))"), p("T1"));
    }

    #[test]
    fn display_round_trips() {
        for c in [
            Condition::tru(),
            Condition::fls(),
            Condition::var(TxnId(3)),
            Condition::not_var(TxnId(3)),
            Condition::var(TxnId(1)).and(&Condition::var(TxnId(2))),
            Condition::var(TxnId(1))
                .and(&Condition::var(TxnId(2)))
                .or(&Condition::not_var(TxnId(3))),
        ] {
            let rendered = c.to_string();
            assert_eq!(p(&rendered), c, "round-trip failed for {rendered}");
        }
    }

    #[test]
    fn from_str_works() {
        let c: Condition = "T1 & !T2".parse().unwrap();
        assert_eq!(
            c,
            Condition::var(TxnId(1)).and(&Condition::not_var(TxnId(2)))
        );
        assert!("T1 &".parse::<Condition>().is_err());
    }

    #[test]
    fn errors_carry_positions() {
        let e = parse_condition("T1 & ?").unwrap_err();
        assert_eq!(e.at, 5);
        assert!(e.to_string().contains("byte 5"));
        let e = parse_condition("(T1").unwrap_err();
        assert!(e.message.contains("')'"));
        let e = parse_condition("T").unwrap_err();
        assert!(e.message.contains("digits"));
        let e = parse_condition("T1 T2").unwrap_err();
        assert!(e.message.contains("trailing"));
        let e = parse_condition("T99999999999999999999999").unwrap_err();
        assert!(e.message.contains("out of range"));
        assert!(parse_condition("").is_err());
    }

    #[test]
    fn double_negation_parses() {
        assert_eq!(p("!!T1"), p("T1"));
        assert_eq!(p("¬¬¬T1"), p("!T1"));
    }
}
