//! Boolean condition algebra over transaction identifiers.
//!
//! The conditions attached to polyvalue pairs (§3 of the paper) are
//! predicates whose variables stand for transactions: a variable is true if
//! the transaction completed and false if it aborted. This module provides
//! the algebra the polyvalue mechanism needs:
//!
//! * [`Literal`] — a transaction variable or its negation,
//! * [`Product`] — a contradiction-free conjunction of literals,
//! * [`Condition`] — a canonical sum-of-products predicate supporting
//!   conjunction, disjunction, negation, outcome substitution, and the
//!   completeness/disjointness checks that form the polyvalue invariant.

mod dnf;
mod literal;
mod parse;
mod product;

pub use dnf::Condition;
pub use literal::Literal;
pub use parse::{parse_condition, ParseError};
pub use product::Product;
