//! Conditions in sum-of-products (disjunctive normal form).
//!
//! The paper (§3) keeps each polyvalue pair's predicate "reduced to
//! sum-of-products form"; this module implements that normal form together
//! with the boolean operations the mechanism needs: conjunction (partitioning
//! alternative transactions), disjunction (merging pairs with equal values),
//! outcome substitution (failure recovery), and the completeness/disjointness
//! checks that are the polyvalue invariant.

use super::literal::Literal;
use super::product::Product;
use crate::txn::TxnId;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// Per-outcome memo table: condition → substituted condition.
type AssignMemo = HashMap<Condition, Condition>;

/// Cap on conditions memoized per `(txn, outcome)` key; the table is cleared
/// when full, so a pathological workload degrades to the uncached path
/// instead of growing without bound.
const ASSIGN_MEMO_CONDS: usize = 1024;

/// Cap on distinct `(txn, outcome)` keys kept; decided transactions stop
/// being substituted once their outcome has propagated, so old keys are dead
/// weight and the whole cache is dropped when this many accumulate.
const ASSIGN_MEMO_KEYS: usize = 256;

thread_local! {
    /// Memo for [`Condition::assign`]. Outcome substitution is the engine's
    /// hottest condition operation — when a decision propagates, a site
    /// substitutes the same `(txn, outcome)` into every entry it holds, and
    /// entries overwhelmingly share conditions — so a hit rate near 1 is
    /// typical. Thread-local (no locks) and bounded; purely a speed cache,
    /// results are identical to [`Condition::assign_uncached`].
    static ASSIGN_MEMO: RefCell<HashMap<(TxnId, bool), AssignMemo>> =
        RefCell::new(HashMap::new());
}

/// A boolean predicate over transaction identifiers, kept in canonical
/// sum-of-products form.
///
/// The canonical form stores a sorted, duplicate-free set of non-contradictory
/// [`Product`]s with absorption applied (no product subsumes another). The
/// constant `false` is the empty sum; the constant `true` is the sum
/// containing only the empty product.
///
/// # Examples
///
/// ```
/// use pv_core::cond::Condition;
/// use pv_core::txn::TxnId;
///
/// let t1 = Condition::var(TxnId(1));
/// let t2 = Condition::var(TxnId(2));
/// // The paper's example: T1 ∧ (T2 ∨ T3) is true when T1 and at least one
/// // of T2, T3 completed.
/// let t3 = Condition::var(TxnId(3));
/// let c = t1.and(&t2.or(&t3));
/// assert!(!c.is_false());
/// // Once T1 is known to have aborted the condition is false:
/// assert!(c.assign(TxnId(1), false).is_false());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Condition {
    /// Sorted, absorbed set of products. Invariant: no product subsumes
    /// another, no duplicates, and every product is non-contradictory.
    products: Vec<Product>,
}

impl Condition {
    /// The constant `true` condition.
    pub fn tru() -> Self {
        Condition {
            products: vec![Product::top()],
        }
    }

    /// The constant `false` condition.
    pub fn fls() -> Self {
        Condition {
            products: Vec::new(),
        }
    }

    /// The condition "transaction `txn` completed".
    pub fn var(txn: TxnId) -> Self {
        Condition {
            products: vec![Product::unit(Literal::positive(txn))],
        }
    }

    /// The condition "transaction `txn` aborted".
    pub fn not_var(txn: TxnId) -> Self {
        Condition {
            products: vec![Product::unit(Literal::negative(txn))],
        }
    }

    /// The condition consisting of a single literal.
    pub fn literal(lit: Literal) -> Self {
        Condition {
            products: vec![Product::unit(lit)],
        }
    }

    /// Builds a condition from an arbitrary collection of products,
    /// canonicalising along the way.
    pub fn from_products<I: IntoIterator<Item = Product>>(products: I) -> Self {
        let mut c = Condition {
            products: products.into_iter().collect(),
        };
        c.canonicalise();
        c
    }

    /// The products of the canonical sum.
    pub fn products(&self) -> &[Product] {
        &self.products
    }

    /// Whether the condition is the constant `false`.
    ///
    /// Because every stored product is satisfiable and the form is a
    /// disjunction, this syntactic check is also semantically exact.
    pub fn is_false(&self) -> bool {
        self.products.is_empty()
    }

    /// Whether the condition is a tautology (true under every outcome
    /// assignment).
    ///
    /// The stored form is the Blake canonical form (all prime implicants),
    /// so a tautology is represented exactly by the single empty product and
    /// the check is syntactic.
    pub fn is_true(&self) -> bool {
        self.products.first().is_some_and(Product::is_empty)
    }

    /// Conjunction of two conditions (cross product of terms).
    pub fn and(&self, other: &Condition) -> Condition {
        let mut products = Vec::with_capacity(self.products.len() * other.products.len());
        for a in &self.products {
            for b in &other.products {
                if let Some(p) = a.and(b) {
                    products.push(p);
                }
            }
        }
        Condition::from_products(products)
    }

    /// Disjunction of two conditions (union of terms).
    pub fn or(&self, other: &Condition) -> Condition {
        let mut products = self.products.clone();
        products.extend(other.products.iter().cloned());
        Condition::from_products(products)
    }

    /// Negation, computed by Shannon expansion:
    /// `¬f = (x ∧ ¬f|x) ∨ (¬x ∧ ¬f|¬x)`.
    pub fn not(&self) -> Condition {
        if self.is_false() {
            return Condition::tru();
        }
        if self.products.iter().any(|p| p.is_empty()) {
            // Contains the constant-true product, so the whole sum is true.
            return Condition::fls();
        }
        let var = self.products[0]
            .vars()
            .next()
            .expect("non-empty product has a variable");
        let hi = self.assign(var, true).not().and(&Condition::var(var));
        let lo = self.assign(var, false).not().and(&Condition::not_var(var));
        hi.or(&lo)
    }

    /// Substitutes a known outcome for transaction `txn` and re-simplifies.
    ///
    /// Memoized per thread: repeated substitution of the same outcome into
    /// the same condition (the shape of outcome propagation across a site's
    /// entries) is answered from a bounded cache. Semantically identical to
    /// [`Condition::assign_uncached`].
    pub fn assign(&self, txn: TxnId, completed: bool) -> Condition {
        // Constants and conditions that don't mention the variable are
        // returned directly — cheaper than hashing into the memo.
        if self.is_false() || self.is_true() {
            return self.clone();
        }
        if !self.products.iter().any(|p| p.polarity_of(txn).is_some()) {
            return self.clone();
        }
        ASSIGN_MEMO.with(|memo| {
            let mut memo = memo.borrow_mut();
            if memo.len() >= ASSIGN_MEMO_KEYS {
                memo.clear();
            }
            let table = memo.entry((txn, completed)).or_default();
            if let Some(hit) = table.get(self) {
                return hit.clone();
            }
            let result = self.assign_uncached(txn, completed);
            if table.len() >= ASSIGN_MEMO_CONDS {
                table.clear();
            }
            table.insert(self.clone(), result.clone());
            result
        })
    }

    /// The uncached reference implementation of [`Condition::assign`].
    ///
    /// Exposed so differential tests can check the memoized path against a
    /// direct recomputation; production code should call `assign`.
    pub fn assign_uncached(&self, txn: TxnId, completed: bool) -> Condition {
        let products = self
            .products
            .iter()
            .filter_map(|p| p.assign(txn, completed))
            .collect::<Vec<_>>();
        Condition::from_products(products)
    }

    /// Evaluates the condition under a (possibly partial) truth assignment;
    /// missing variables are treated as `false` (aborted).
    pub fn eval(&self, assignment: &BTreeMap<TxnId, bool>) -> bool {
        self.products.iter().any(|p| p.eval(assignment))
    }

    /// The set of transaction variables mentioned.
    pub fn vars(&self) -> BTreeSet<TxnId> {
        self.products.iter().flat_map(|p| p.vars()).collect()
    }

    /// Whether `self ∧ other` is unsatisfiable.
    pub fn disjoint_with(&self, other: &Condition) -> bool {
        self.and(other).is_false()
    }

    /// Whether `self` implies `other` (every assignment satisfying `self`
    /// satisfies `other`).
    pub fn implies(&self, other: &Condition) -> bool {
        self.and(&other.not()).is_false()
    }

    /// Whether a family of conditions is *complete*: their disjunction is a
    /// tautology.
    pub fn complete<'a, I: IntoIterator<Item = &'a Condition>>(conds: I) -> bool {
        let mut acc = Condition::fls();
        for c in conds {
            acc = acc.or(c);
        }
        acc.is_true()
    }

    /// Whether a family of conditions is pairwise *disjoint*.
    pub fn pairwise_disjoint(conds: &[&Condition]) -> bool {
        for (i, a) in conds.iter().enumerate() {
            for b in &conds[i + 1..] {
                if !a.disjoint_with(b) {
                    return false;
                }
            }
        }
        true
    }

    /// Total number of literals across all products (a size measure used by
    /// the benchmarks).
    pub fn literal_count(&self) -> usize {
        self.products.iter().map(Product::len).sum()
    }

    /// Restores the canonical form: the **Blake canonical form**, i.e. the
    /// set of all prime implicants, computed by iterated consensus and
    /// absorption. The Blake form is unique per boolean function, which makes
    /// `==` on conditions *semantic* equality and keeps the sum-of-products
    /// representation minimal, as §3.1's simplification rule 3 requires.
    fn canonicalise(&mut self) {
        loop {
            if self.products.iter().any(|p| p.is_empty()) {
                self.products = vec![Product::top()];
                return;
            }
            self.absorb();
            // Consensus closure: add every consensus term not already
            // subsumed; repeat (with absorption) until a fixed point.
            let mut fresh: Vec<Product> = Vec::new();
            for (i, p) in self.products.iter().enumerate() {
                for q in &self.products[i + 1..] {
                    if let Some(c) = p.consensus(q) {
                        let subsumed = self.products.iter().any(|r| r.subsumes(&c))
                            || fresh.iter().any(|r| r.subsumes(&c));
                        if !subsumed {
                            fresh.push(c);
                        }
                    }
                }
            }
            if fresh.is_empty() {
                return;
            }
            self.products.extend(fresh);
        }
    }

    /// Sorts, deduplicates, and drops any product subsumed by another.
    fn absorb(&mut self) {
        self.products.sort();
        self.products.dedup();
        // After dedup, subsumption is a strict partial order, so checking
        // only against *kept* products is exact: anything that subsumed a
        // dropped product is itself subsumed by a kept one (transitivity).
        let ps = std::mem::take(&mut self.products);
        let mut keep = vec![true; ps.len()];
        for i in 0..ps.len() {
            for (j, q) in ps.iter().enumerate() {
                if i != j && keep[j] && q.subsumes(&ps[i]) {
                    keep[i] = false;
                    break;
                }
            }
        }
        self.products = ps
            .into_iter()
            .zip(keep)
            .filter_map(|(p, k)| k.then_some(p))
            .collect();
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_false() {
            return write!(f, "false");
        }
        if self.products.len() == 1 {
            return write!(f, "{}", self.products[0]);
        }
        let mut first = true;
        for p in &self.products {
            if !first {
                write!(f, " ∨ ")?;
            }
            if p.len() > 1 {
                write!(f, "({p})")?;
            } else {
                write!(f, "{p}")?;
            }
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: u64) -> Condition {
        Condition::var(TxnId(n))
    }

    fn nv(n: u64) -> Condition {
        Condition::not_var(TxnId(n))
    }

    #[test]
    fn constants() {
        assert!(Condition::fls().is_false());
        assert!(!Condition::fls().is_true());
        assert!(Condition::tru().is_true());
        assert!(!Condition::tru().is_false());
    }

    #[test]
    fn excluded_middle_is_tautology() {
        let c = v(1).or(&nv(1));
        assert!(c.is_true());
    }

    #[test]
    fn contradiction_is_false() {
        let c = v(1).and(&nv(1));
        assert!(c.is_false());
    }

    #[test]
    fn and_distributes_over_or() {
        // T1 ∧ (T2 ∨ T3) = T1∧T2 ∨ T1∧T3.
        let c = v(1).and(&v(2).or(&v(3)));
        assert_eq!(c.products().len(), 2);
        let mut a = BTreeMap::new();
        a.insert(TxnId(1), true);
        a.insert(TxnId(2), false);
        a.insert(TxnId(3), true);
        assert!(c.eval(&a));
        a.insert(TxnId(1), false);
        assert!(!c.eval(&a));
    }

    #[test]
    fn absorption_removes_subsumed_products() {
        // T1 ∨ (T1 ∧ T2) = T1.
        let c = v(1).or(&v(1).and(&v(2)));
        assert_eq!(c, v(1));
    }

    #[test]
    fn or_with_true_is_true() {
        assert!(v(1).or(&Condition::tru()).is_true());
    }

    #[test]
    fn not_of_var() {
        assert_eq!(v(1).not(), nv(1));
        assert_eq!(nv(1).not(), v(1));
        assert!(Condition::tru().not().is_false());
        assert!(Condition::fls().not().is_true());
    }

    #[test]
    fn de_morgan() {
        let lhs = v(1).and(&v(2)).not();
        let rhs = nv(1).or(&nv(2));
        // Compare semantically: equivalent iff each implies the other.
        assert!(lhs.implies(&rhs) && rhs.implies(&lhs));
    }

    #[test]
    fn assign_collapses_outcomes() {
        let c = v(1).and(&v(2).or(&v(3)));
        let after = c.assign(TxnId(1), true);
        assert_eq!(after, v(2).or(&v(3)));
        assert!(c.assign(TxnId(1), false).is_false());
        let done = after.assign(TxnId(2), true);
        assert!(done.is_true());
    }

    #[test]
    fn eval_defaults_missing_to_aborted() {
        let c = v(1);
        assert!(!c.eval(&BTreeMap::new()));
        let c = nv(1);
        assert!(c.eval(&BTreeMap::new()));
    }

    #[test]
    fn vars_collects_all_variables() {
        let c = v(1).and(&v(2).or(&nv(3)));
        let vars: Vec<u64> = c.vars().into_iter().map(|t| t.raw()).collect();
        assert_eq!(vars, vec![1, 2, 3]);
    }

    #[test]
    fn disjointness_and_completeness_of_in_doubt_pair() {
        // The paper's in-doubt polyvalue conditions {T, ¬T}.
        let a = v(7);
        let b = nv(7);
        assert!(a.disjoint_with(&b));
        assert!(Condition::complete([&a, &b]));
        assert!(Condition::pairwise_disjoint(&[&a, &b]));
    }

    #[test]
    fn incomplete_family_detected() {
        let a = v(1).and(&v(2));
        let b = nv(1);
        assert!(!Condition::complete([&a, &b]));
    }

    #[test]
    fn overlapping_family_detected() {
        let a = v(1);
        let b = v(1).and(&v(2));
        assert!(!Condition::pairwise_disjoint(&[&a, &b]));
    }

    #[test]
    fn implies_basic() {
        assert!(v(1).and(&v(2)).implies(&v(1)));
        assert!(!v(1).implies(&v(1).and(&v(2))));
        assert!(Condition::fls().implies(&v(1)));
        assert!(v(1).implies(&Condition::tru()));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Condition::tru().to_string(), "true");
        assert_eq!(Condition::fls().to_string(), "false");
        assert_eq!(v(1).to_string(), "T1");
        let c = v(1).and(&v(2)).or(&nv(3));
        assert_eq!(c.to_string(), "(T1∧T2) ∨ ¬T3");
    }

    #[test]
    fn idempotence_of_canonical_form() {
        let c = v(1).or(&v(1)).or(&v(1).and(&v(2)));
        assert_eq!(c, v(1));
        assert_eq!(c.literal_count(), 1);
    }
}
