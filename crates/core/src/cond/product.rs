//! Products: conjunctions of literals over distinct transaction variables.

use super::literal::Literal;
use crate::txn::TxnId;
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;
use std::hash::{Hash, Hasher};

/// How many literals a product stores inline before spilling to the heap.
///
/// Real polyvalue conditions are tiny — an in-doubt pair is one literal, and
/// even chained uncertainty rarely conjoins more than three — so four inline
/// slots make the overwhelmingly common case allocation-free.
const INLINE: usize = 4;

/// The literal storage: a sorted, duplicate-free run of `(variable,
/// polarity)` pairs, inline up to [`INLINE`] entries.
///
/// The pair order is ascending by variable, which makes slice comparison
/// agree with the lexicographic `(key, value)` order a `BTreeMap` would give
/// — the canonical product order is therefore representation-independent.
#[derive(Debug, Clone)]
enum Lits {
    /// Up to [`INLINE`] literals stored in place.
    Inline {
        /// Number of live pairs in `buf`.
        len: u8,
        /// The pairs; only `buf[..len]` is meaningful.
        buf: [(TxnId, bool); INLINE],
    },
    /// More than [`INLINE`] literals, spilled to a heap vector.
    Heap(Vec<(TxnId, bool)>),
}

const EMPTY_BUF: [(TxnId, bool); INLINE] = [(TxnId(0), false); INLINE];

impl Lits {
    fn empty() -> Lits {
        Lits::Inline {
            len: 0,
            buf: EMPTY_BUF,
        }
    }

    fn as_slice(&self) -> &[(TxnId, bool)] {
        match self {
            Lits::Inline { len, buf } => &buf[..*len as usize],
            Lits::Heap(v) => v,
        }
    }
}

/// Accumulates sorted pairs, staying inline while they fit.
struct Builder {
    len: usize,
    buf: [(TxnId, bool); INLINE],
    spill: Vec<(TxnId, bool)>,
}

impl Builder {
    fn new() -> Builder {
        Builder {
            len: 0,
            buf: EMPTY_BUF,
            spill: Vec::new(),
        }
    }

    /// Appends a pair; the caller pushes in ascending variable order.
    fn push(&mut self, pair: (TxnId, bool)) {
        if self.spill.is_empty() && self.len < INLINE {
            self.buf[self.len] = pair;
            self.len += 1;
        } else {
            if self.spill.is_empty() {
                self.spill.reserve(self.len + 4);
                self.spill.extend_from_slice(&self.buf[..self.len]);
            }
            self.spill.push(pair);
        }
    }

    fn finish(self) -> Lits {
        if self.spill.is_empty() {
            Lits::Inline {
                len: self.len as u8,
                buf: self.buf,
            }
        } else {
            Lits::Heap(self.spill)
        }
    }
}

/// A conjunction of literals, each over a distinct transaction variable.
///
/// A product is the "term" of a sum-of-products (disjunctive normal form)
/// condition. The empty product is the constant `true`. A product can never
/// contain both a variable and its negation: conjunction with a complementary
/// literal yields `None` (the constant `false`), so contradictory products are
/// unrepresentable.
///
/// Literals are kept as a sorted small-vector (inline up to four pairs), so
/// the common one- and two-literal products of in-doubt conditions are
/// allocation-free and all set operations are linear merges.
///
/// # Examples
///
/// ```
/// use pv_core::cond::{Literal, Product};
/// use pv_core::txn::TxnId;
///
/// let t1 = Literal::positive(TxnId(1));
/// let not_t2 = Literal::negative(TxnId(2));
/// let p = Product::from_literals([t1, not_t2]).unwrap();
/// assert_eq!(p.len(), 2);
/// // Conjoining with ¬T1 contradicts T1:
/// assert!(p.and_literal(t1.negated()).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct Product {
    /// Sorted `(variable, polarity)` pairs (`true` = positive literal).
    literals: Lits,
}

impl PartialEq for Product {
    fn eq(&self, other: &Self) -> bool {
        self.pairs() == other.pairs()
    }
}

impl Eq for Product {}

impl PartialOrd for Product {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Product {
    fn cmp(&self, other: &Self) -> Ordering {
        self.pairs().cmp(other.pairs())
    }
}

impl Hash for Product {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.pairs().hash(state);
    }
}

impl Default for Product {
    fn default() -> Self {
        Product::top()
    }
}

impl Product {
    /// The empty product, the constant `true`.
    pub fn top() -> Self {
        Product {
            literals: Lits::empty(),
        }
    }

    /// A product consisting of a single literal.
    pub fn unit(lit: Literal) -> Self {
        let mut buf = EMPTY_BUF;
        buf[0] = (lit.txn(), lit.is_positive());
        Product {
            literals: Lits::Inline { len: 1, buf },
        }
    }

    /// Builds a product from literals; `None` if any pair is contradictory.
    pub fn from_literals<I: IntoIterator<Item = Literal>>(lits: I) -> Option<Self> {
        let mut p = Product::top();
        for lit in lits {
            p = p.and_literal(lit)?;
        }
        Some(p)
    }

    /// The sorted `(variable, polarity)` pairs.
    fn pairs(&self) -> &[(TxnId, bool)] {
        self.literals.as_slice()
    }

    /// Number of literals in the product.
    pub fn len(&self) -> usize {
        self.pairs().len()
    }

    /// Whether this is the empty product (the constant `true`).
    pub fn is_empty(&self) -> bool {
        self.pairs().is_empty()
    }

    /// Iterates over the literals in variable order.
    pub fn literals(&self) -> impl Iterator<Item = Literal> + '_ {
        self.pairs().iter().map(|&(txn, pos)| {
            if pos {
                Literal::positive(txn)
            } else {
                Literal::negative(txn)
            }
        })
    }

    /// The polarity of `txn` in this product, if present.
    pub fn polarity_of(&self, txn: TxnId) -> Option<bool> {
        let pairs = self.pairs();
        pairs
            .binary_search_by_key(&txn, |&(t, _)| t)
            .ok()
            .map(|i| pairs[i].1)
    }

    /// Conjoins a literal; `None` if the result is contradictory.
    pub fn and_literal(&self, lit: Literal) -> Option<Self> {
        let pairs = self.pairs();
        match pairs.binary_search_by_key(&lit.txn(), |&(t, _)| t) {
            Ok(i) if pairs[i].1 != lit.is_positive() => None,
            Ok(_) => Some(self.clone()),
            Err(at) => {
                let mut b = Builder::new();
                for &p in &pairs[..at] {
                    b.push(p);
                }
                b.push((lit.txn(), lit.is_positive()));
                for &p in &pairs[at..] {
                    b.push(p);
                }
                Some(Product {
                    literals: b.finish(),
                })
            }
        }
    }

    /// Conjoins two products; `None` if the result is contradictory.
    pub fn and(&self, other: &Product) -> Option<Self> {
        let (a, b) = (self.pairs(), other.pairs());
        if b.is_empty() {
            return Some(self.clone());
        }
        if a.is_empty() {
            return Some(other.clone());
        }
        // Sorted two-pointer merge; a polarity clash on a shared variable is
        // the contradiction case.
        let mut out = Builder::new();
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                Ordering::Equal => {
                    if a[i].1 != b[j].1 {
                        return None;
                    }
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        for &p in &a[i..] {
            out.push(p);
        }
        for &p in &b[j..] {
            out.push(p);
        }
        Some(Product {
            literals: out.finish(),
        })
    }

    /// Whether this product subsumes `other`: every literal of `self` appears
    /// in `other`, so `other` implies `self` and `self ∨ other = self`.
    pub fn subsumes(&self, other: &Product) -> bool {
        let (a, b) = (self.pairs(), other.pairs());
        if a.len() > b.len() {
            return false;
        }
        // Sorted subset check, two pointers.
        let mut j = 0;
        'outer: for &(txn, pos) in a {
            while j < b.len() {
                match b[j].0.cmp(&txn) {
                    Ordering::Less => j += 1,
                    Ordering::Equal => {
                        if b[j].1 != pos {
                            return false;
                        }
                        j += 1;
                        continue 'outer;
                    }
                    Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Evaluates the product under a complete truth assignment.
    ///
    /// Variables missing from `assignment` are treated as `false` (aborted).
    pub fn eval(&self, assignment: &BTreeMap<TxnId, bool>) -> bool {
        self.pairs()
            .iter()
            .all(|&(txn, pos)| assignment.get(&txn).copied().unwrap_or(false) == pos)
    }

    /// Substitutes a truth value for `txn`.
    ///
    /// Returns `Some(product)` with the literal removed if the substitution is
    /// consistent, or `None` if it falsifies the product.
    pub fn assign(&self, txn: TxnId, value: bool) -> Option<Self> {
        let pairs = self.pairs();
        match pairs.binary_search_by_key(&txn, |&(t, _)| t) {
            Err(_) => Some(self.clone()),
            Ok(i) if pairs[i].1 == value => {
                let mut b = Builder::new();
                for (k, &p) in pairs.iter().enumerate() {
                    if k != i {
                        b.push(p);
                    }
                }
                Some(Product {
                    literals: b.finish(),
                })
            }
            Ok(_) => None,
        }
    }

    /// The set of variables mentioned by the product, in order.
    pub fn vars(&self) -> impl Iterator<Item = TxnId> + '_ {
        self.pairs().iter().map(|&(txn, _)| txn)
    }

    /// The consensus of two products, if defined.
    ///
    /// When the products clash on *exactly one* variable `x` (one contains
    /// `x`, the other `¬x`), the consensus is the conjunction of all their
    /// other literals: `p ∨ q` implies it. Iterated consensus plus absorption
    /// yields the Blake canonical form (the set of all prime implicants),
    /// which [`super::Condition`] uses as its unique normal form.
    pub fn consensus(&self, other: &Product) -> Option<Product> {
        let (a, b) = (self.pairs(), other.pairs());
        // First pass: find the unique clashing variable, if any.
        let mut clash: Option<TxnId> = None;
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                Ordering::Less => i += 1,
                Ordering::Greater => j += 1,
                Ordering::Equal => {
                    if a[i].1 != b[j].1 {
                        if clash.is_some() {
                            return None;
                        }
                        clash = Some(a[i].0);
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        let clash = clash?;
        // Second pass: merge both sides, skipping the clash variable. No
        // polarity conflicts remain by construction.
        let mut out = Builder::new();
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                Ordering::Less => {
                    if a[i].0 != clash {
                        out.push(a[i]);
                    }
                    i += 1;
                }
                Ordering::Greater => {
                    if b[j].0 != clash {
                        out.push(b[j]);
                    }
                    j += 1;
                }
                Ordering::Equal => {
                    if a[i].0 != clash {
                        out.push(a[i]);
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        for &p in &a[i..] {
            if p.0 != clash {
                out.push(p);
            }
        }
        for &p in &b[j..] {
            if p.0 != clash {
                out.push(p);
            }
        }
        Some(Product {
            literals: out.finish(),
        })
    }
}

impl fmt::Display for Product {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "true");
        }
        let mut first = true;
        for lit in self.literals() {
            if !first {
                write!(f, "∧")?;
            }
            write!(f, "{lit}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pos(n: u64) -> Literal {
        Literal::positive(TxnId(n))
    }

    fn neg(n: u64) -> Literal {
        Literal::negative(TxnId(n))
    }

    #[test]
    fn top_is_empty_and_true() {
        let t = Product::top();
        assert!(t.is_empty());
        assert!(t.eval(&BTreeMap::new()));
        assert_eq!(t.to_string(), "true");
    }

    #[test]
    fn contradiction_is_unrepresentable() {
        assert!(Product::from_literals([pos(1), neg(1)]).is_none());
        let p = Product::unit(pos(1));
        assert!(p.and_literal(neg(1)).is_none());
    }

    #[test]
    fn duplicate_literal_is_idempotent() {
        let p = Product::from_literals([pos(1), pos(1)]).unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn and_merges_and_detects_conflict() {
        let a = Product::from_literals([pos(1), neg(2)]).unwrap();
        let b = Product::from_literals([pos(3)]).unwrap();
        let ab = a.and(&b).unwrap();
        assert_eq!(ab.len(), 3);
        let c = Product::from_literals([pos(2)]).unwrap();
        assert!(a.and(&c).is_none());
    }

    #[test]
    fn subsumption() {
        let small = Product::from_literals([pos(1)]).unwrap();
        let large = Product::from_literals([pos(1), neg(2)]).unwrap();
        assert!(small.subsumes(&large));
        assert!(!large.subsumes(&small));
        assert!(small.subsumes(&small));
        assert!(Product::top().subsumes(&large));
    }

    #[test]
    fn eval_with_missing_vars_defaults_to_aborted() {
        let p = Product::from_literals([neg(1)]).unwrap();
        assert!(p.eval(&BTreeMap::new()));
        let q = Product::from_literals([pos(1)]).unwrap();
        assert!(!q.eval(&BTreeMap::new()));
    }

    #[test]
    fn assign_removes_or_falsifies() {
        let p = Product::from_literals([pos(1), neg(2)]).unwrap();
        let after = p.assign(TxnId(1), true).unwrap();
        assert_eq!(after.len(), 1);
        assert!(p.assign(TxnId(1), false).is_none());
        // Assigning an absent variable is a no-op.
        assert_eq!(p.assign(TxnId(9), true).unwrap(), p);
    }

    #[test]
    fn display_orders_by_variable() {
        let p = Product::from_literals([neg(2), pos(1)]).unwrap();
        assert_eq!(p.to_string(), "T1∧¬T2");
    }

    #[test]
    fn spill_to_heap_preserves_semantics() {
        // Six literals exceed the inline capacity; every operation must agree
        // with the inline representation's behaviour.
        let lits: Vec<Literal> = (0..6).map(|n| if n % 2 == 0 { pos(n) } else { neg(n) }).collect();
        let p = Product::from_literals(lits.clone()).unwrap();
        assert_eq!(p.len(), 6);
        assert_eq!(p.polarity_of(TxnId(2)), Some(true));
        assert_eq!(p.polarity_of(TxnId(3)), Some(false));
        let q = p.assign(TxnId(0), true).unwrap();
        assert_eq!(q.len(), 5);
        assert!(p.assign(TxnId(0), false).is_none());
        // Round-trip through literals() preserves order and content.
        let round = Product::from_literals(p.literals()).unwrap();
        assert_eq!(round, p);
        // A small product subsumes the big one when its literals agree.
        let small = Product::from_literals([pos(0), neg(1)]).unwrap();
        assert!(small.subsumes(&p));
        assert!(!p.subsumes(&small));
    }

    #[test]
    fn ordering_matches_pairwise_lexicographic() {
        // The canonical product order must be the (variable, polarity)
        // lexicographic order a BTreeMap iteration would produce.
        let a = Product::from_literals([pos(1)]).unwrap();
        let b = Product::from_literals([pos(1), neg(2)]).unwrap();
        let c = Product::from_literals([pos(2)]).unwrap();
        assert!(a < b, "prefix sorts before its extension");
        assert!(b < c, "variable order dominates");
        let mut v = vec![c.clone(), b.clone(), a.clone()];
        v.sort();
        assert_eq!(v, vec![a, b, c]);
    }

    #[test]
    fn consensus_on_heap_products() {
        // (T0∧T1∧T2∧T3∧T4) and (¬T0∧T1∧T2∧T3∧T5) clash only on T0.
        let a = Product::from_literals([pos(0), pos(1), pos(2), pos(3), pos(4)]).unwrap();
        let b = Product::from_literals([neg(0), pos(1), pos(2), pos(3), pos(5)]).unwrap();
        let c = a.consensus(&b).unwrap();
        assert_eq!(c.len(), 5);
        assert_eq!(c.polarity_of(TxnId(0)), None);
        assert_eq!(c.polarity_of(TxnId(4)), Some(true));
        assert_eq!(c.polarity_of(TxnId(5)), Some(true));
        // Two clashes → no consensus.
        let d = Product::from_literals([neg(0), neg(1), pos(2)]).unwrap();
        assert!(a.consensus(&d).is_none());
    }
}
