//! Products: conjunctions of literals over distinct transaction variables.

use super::literal::Literal;
use crate::txn::TxnId;
use std::collections::BTreeMap;
use std::fmt;

/// A conjunction of literals, each over a distinct transaction variable.
///
/// A product is the "term" of a sum-of-products (disjunctive normal form)
/// condition. The empty product is the constant `true`. A product can never
/// contain both a variable and its negation: conjunction with a complementary
/// literal yields `None` (the constant `false`), so contradictory products are
/// unrepresentable.
///
/// # Examples
///
/// ```
/// use pv_core::cond::{Literal, Product};
/// use pv_core::txn::TxnId;
///
/// let t1 = Literal::positive(TxnId(1));
/// let not_t2 = Literal::negative(TxnId(2));
/// let p = Product::from_literals([t1, not_t2]).unwrap();
/// assert_eq!(p.len(), 2);
/// // Conjoining with ¬T1 contradicts T1:
/// assert!(p.and_literal(t1.negated()).is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Product {
    /// Map from variable to polarity (`true` = positive literal).
    literals: BTreeMap<TxnId, bool>,
}

impl Product {
    /// The empty product, the constant `true`.
    pub fn top() -> Self {
        Product::default()
    }

    /// A product consisting of a single literal.
    pub fn unit(lit: Literal) -> Self {
        let mut literals = BTreeMap::new();
        literals.insert(lit.txn(), lit.is_positive());
        Product { literals }
    }

    /// Builds a product from literals; `None` if any pair is contradictory.
    pub fn from_literals<I: IntoIterator<Item = Literal>>(lits: I) -> Option<Self> {
        let mut p = Product::top();
        for lit in lits {
            p = p.and_literal(lit)?;
        }
        Some(p)
    }

    /// Number of literals in the product.
    pub fn len(&self) -> usize {
        self.literals.len()
    }

    /// Whether this is the empty product (the constant `true`).
    pub fn is_empty(&self) -> bool {
        self.literals.is_empty()
    }

    /// Iterates over the literals in variable order.
    pub fn literals(&self) -> impl Iterator<Item = Literal> + '_ {
        self.literals.iter().map(|(&txn, &pos)| {
            if pos {
                Literal::positive(txn)
            } else {
                Literal::negative(txn)
            }
        })
    }

    /// The polarity of `txn` in this product, if present.
    pub fn polarity_of(&self, txn: TxnId) -> Option<bool> {
        self.literals.get(&txn).copied()
    }

    /// Conjoins a literal; `None` if the result is contradictory.
    pub fn and_literal(&self, lit: Literal) -> Option<Self> {
        match self.literals.get(&lit.txn()) {
            Some(&pos) if pos != lit.is_positive() => None,
            Some(_) => Some(self.clone()),
            None => {
                let mut next = self.clone();
                next.literals.insert(lit.txn(), lit.is_positive());
                Some(next)
            }
        }
    }

    /// Conjoins two products; `None` if the result is contradictory.
    pub fn and(&self, other: &Product) -> Option<Self> {
        // Iterate over the smaller product for efficiency.
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut out = large.clone();
        for (&txn, &pos) in &small.literals {
            match out.literals.get(&txn) {
                Some(&existing) if existing != pos => return None,
                Some(_) => {}
                None => {
                    out.literals.insert(txn, pos);
                }
            }
        }
        Some(out)
    }

    /// Whether this product subsumes `other`: every literal of `self` appears
    /// in `other`, so `other` implies `self` and `self ∨ other = self`.
    pub fn subsumes(&self, other: &Product) -> bool {
        if self.len() > other.len() {
            return false;
        }
        self.literals
            .iter()
            .all(|(txn, pos)| other.literals.get(txn) == Some(pos))
    }

    /// Evaluates the product under a complete truth assignment.
    ///
    /// Variables missing from `assignment` are treated as `false` (aborted).
    pub fn eval(&self, assignment: &BTreeMap<TxnId, bool>) -> bool {
        self.literals
            .iter()
            .all(|(txn, &pos)| assignment.get(txn).copied().unwrap_or(false) == pos)
    }

    /// Substitutes a truth value for `txn`.
    ///
    /// Returns `Some(product)` with the literal removed if the substitution is
    /// consistent, or `None` if it falsifies the product.
    pub fn assign(&self, txn: TxnId, value: bool) -> Option<Self> {
        match self.literals.get(&txn) {
            None => Some(self.clone()),
            Some(&pos) if pos == value => {
                let mut next = self.clone();
                next.literals.remove(&txn);
                Some(next)
            }
            Some(_) => None,
        }
    }

    /// The set of variables mentioned by the product, in order.
    pub fn vars(&self) -> impl Iterator<Item = TxnId> + '_ {
        self.literals.keys().copied()
    }

    /// The consensus of two products, if defined.
    ///
    /// When the products clash on *exactly one* variable `x` (one contains
    /// `x`, the other `¬x`), the consensus is the conjunction of all their
    /// other literals: `p ∨ q` implies it. Iterated consensus plus absorption
    /// yields the Blake canonical form (the set of all prime implicants),
    /// which [`super::Condition`] uses as its unique normal form.
    pub fn consensus(&self, other: &Product) -> Option<Product> {
        let mut clash: Option<TxnId> = None;
        for (txn, pos) in &self.literals {
            if let Some(&opos) = other.literals.get(txn) {
                if opos != *pos {
                    if clash.is_some() {
                        return None;
                    }
                    clash = Some(*txn);
                }
            }
        }
        let clash = clash?;
        let mut literals = self.literals.clone();
        literals.remove(&clash);
        for (&txn, &pos) in &other.literals {
            if txn != clash {
                literals.insert(txn, pos);
            }
        }
        Some(Product { literals })
    }
}

impl fmt::Display for Product {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "true");
        }
        let mut first = true;
        for lit in self.literals() {
            if !first {
                write!(f, "∧")?;
            }
            write!(f, "{lit}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pos(n: u64) -> Literal {
        Literal::positive(TxnId(n))
    }

    fn neg(n: u64) -> Literal {
        Literal::negative(TxnId(n))
    }

    #[test]
    fn top_is_empty_and_true() {
        let t = Product::top();
        assert!(t.is_empty());
        assert!(t.eval(&BTreeMap::new()));
        assert_eq!(t.to_string(), "true");
    }

    #[test]
    fn contradiction_is_unrepresentable() {
        assert!(Product::from_literals([pos(1), neg(1)]).is_none());
        let p = Product::unit(pos(1));
        assert!(p.and_literal(neg(1)).is_none());
    }

    #[test]
    fn duplicate_literal_is_idempotent() {
        let p = Product::from_literals([pos(1), pos(1)]).unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn and_merges_and_detects_conflict() {
        let a = Product::from_literals([pos(1), neg(2)]).unwrap();
        let b = Product::from_literals([pos(3)]).unwrap();
        let ab = a.and(&b).unwrap();
        assert_eq!(ab.len(), 3);
        let c = Product::from_literals([pos(2)]).unwrap();
        assert!(a.and(&c).is_none());
    }

    #[test]
    fn subsumption() {
        let small = Product::from_literals([pos(1)]).unwrap();
        let large = Product::from_literals([pos(1), neg(2)]).unwrap();
        assert!(small.subsumes(&large));
        assert!(!large.subsumes(&small));
        assert!(small.subsumes(&small));
        assert!(Product::top().subsumes(&large));
    }

    #[test]
    fn eval_with_missing_vars_defaults_to_aborted() {
        let p = Product::from_literals([neg(1)]).unwrap();
        assert!(p.eval(&BTreeMap::new()));
        let q = Product::from_literals([pos(1)]).unwrap();
        assert!(!q.eval(&BTreeMap::new()));
    }

    #[test]
    fn assign_removes_or_falsifies() {
        let p = Product::from_literals([pos(1), neg(2)]).unwrap();
        let after = p.assign(TxnId(1), true).unwrap();
        assert_eq!(after.len(), 1);
        assert!(p.assign(TxnId(1), false).is_none());
        // Assigning an absent variable is a no-op.
        assert_eq!(p.assign(TxnId(9), true).unwrap(), p);
    }

    #[test]
    fn display_orders_by_variable() {
        let p = Product::from_literals([neg(2), pos(1)]).unwrap();
        assert_eq!(p.to_string(), "T1∧¬T2");
    }
}
