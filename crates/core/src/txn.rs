//! Transaction identifiers.
//!
//! A [`TxnId`] names a transaction in the distributed system. Polyvalue
//! conditions (see [`crate::cond`]) are boolean predicates whose variables are
//! transaction identifiers: a variable is *true* if the transaction was
//! completed and *false* if it was aborted.

use std::fmt;

/// A globally unique transaction identifier.
///
/// The identifier is an opaque 64-bit value. The engine layer encodes the
/// coordinator site in the upper bits (see `pv-engine`), but nothing in the
/// core algebra depends on that encoding.
///
/// # Examples
///
/// ```
/// use pv_core::txn::TxnId;
///
/// let t = TxnId(7);
/// assert_eq!(t.raw(), 7);
/// assert_eq!(format!("{t}"), "T7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u64);

impl TxnId {
    /// Returns the raw 64-bit representation.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl From<u64> for TxnId {
    fn from(raw: u64) -> Self {
        TxnId(raw)
    }
}

/// The outcome of a transaction, once known.
///
/// `Completed` corresponds to the coordinator deciding *complete* (commit) and
/// `Aborted` to *abort*. Substituting an outcome for a transaction identifier
/// in a condition replaces the variable with `true` or `false` respectively.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// The transaction was completed: its updates are the correct values.
    Completed,
    /// The transaction was aborted: its updates never took effect.
    Aborted,
}

impl Outcome {
    /// The truth value this outcome assigns to the transaction's variable.
    pub fn as_bool(self) -> bool {
        matches!(self, Outcome::Completed)
    }

    /// Builds an outcome from a truth value (`true` = completed).
    pub fn from_bool(b: bool) -> Self {
        if b {
            Outcome::Completed
        } else {
            Outcome::Aborted
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Completed => write!(f, "completed"),
            Outcome::Aborted => write!(f, "aborted"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_id_display_and_raw() {
        let t = TxnId(42);
        assert_eq!(t.raw(), 42);
        assert_eq!(t.to_string(), "T42");
        assert_eq!(TxnId::from(42u64), t);
    }

    #[test]
    fn txn_id_ordering_follows_raw_value() {
        assert!(TxnId(1) < TxnId(2));
        assert!(TxnId(100) > TxnId(99));
    }

    #[test]
    fn outcome_bool_round_trip() {
        assert!(Outcome::Completed.as_bool());
        assert!(!Outcome::Aborted.as_bool());
        assert_eq!(Outcome::from_bool(true), Outcome::Completed);
        assert_eq!(Outcome::from_bool(false), Outcome::Aborted);
    }

    #[test]
    fn outcome_display() {
        assert_eq!(Outcome::Completed.to_string(), "completed");
        assert_eq!(Outcome::Aborted.to_string(), "aborted");
    }
}
