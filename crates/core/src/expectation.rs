//! Probability-weighted views of uncertain entries.
//!
//! §3.4 gives a system two choices for an uncertain output: present it or
//! withhold it. A natural extension — decision support over polyvalues — is
//! to weight the alternatives by the *probability that each in-doubt
//! transaction will complete* (e.g. from historical commit rates after
//! failures) and summarise the polyvalue numerically: the probability of a
//! predicate, or the expected value of a numeric item.

use crate::cond::Condition;
use crate::entry::Entry;
use crate::txn::TxnId;
use crate::value::Value;
use std::collections::BTreeSet;

/// A prior over in-doubt transaction outcomes: maps each transaction to the
/// probability that it *completed*. Implemented for closures and maps.
pub trait OutcomePrior {
    /// Probability in `[0, 1]` that `txn` completed.
    fn completion_probability(&self, txn: TxnId) -> f64;
}

impl<F: Fn(TxnId) -> f64> OutcomePrior for F {
    fn completion_probability(&self, txn: TxnId) -> f64 {
        self(txn)
    }
}

impl OutcomePrior for std::collections::BTreeMap<TxnId, f64> {
    fn completion_probability(&self, txn: TxnId) -> f64 {
        self.get(&txn).copied().unwrap_or(0.5)
    }
}

/// The probability that `cond` holds, assuming independent transaction
/// outcomes distributed per `prior`.
///
/// Computed by summing over the (complete, disjoint by construction)
/// satisfying assignments of the condition's variables — exponential in the
/// number of distinct in-doubt transactions, which §4 shows is tiny.
pub fn condition_probability(cond: &Condition, prior: &impl OutcomePrior) -> f64 {
    let vars: Vec<TxnId> = cond.vars().into_iter().collect();
    assert!(
        vars.len() <= 20,
        "too many in-doubt transactions to enumerate"
    );
    let mut total = 0.0;
    for bits in 0u64..(1 << vars.len()) {
        let assignment: std::collections::BTreeMap<TxnId, bool> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, bits & (1 << i) != 0))
            .collect();
        if cond.eval(&assignment) {
            let mut p = 1.0;
            for (i, &v) in vars.iter().enumerate() {
                let pc = prior.completion_probability(v).clamp(0.0, 1.0);
                p *= if bits & (1 << i) != 0 { pc } else { 1.0 - pc };
            }
            total += p;
        }
    }
    total
}

/// Probability-weighted summaries of an uncertain entry.
pub trait EntryExpectation {
    /// The probability of each `(value, probability)` alternative under the
    /// prior. Probabilities sum to 1 (the conditions are complete and
    /// disjoint).
    fn distribution(&self, prior: &impl OutcomePrior) -> Vec<(Value, f64)>;

    /// The expected value of a numeric entry under the prior; `None` if any
    /// alternative is not an integer.
    fn expected_int(&self, prior: &impl OutcomePrior) -> Option<f64>;

    /// The probability that a boolean entry is `true` under the prior;
    /// `None` if any alternative is not a boolean.
    fn probability_true(&self, prior: &impl OutcomePrior) -> Option<f64>;
}

impl EntryExpectation for Entry<Value> {
    fn distribution(&self, prior: &impl OutcomePrior) -> Vec<(Value, f64)> {
        match self {
            Entry::Simple(v) => vec![(v.clone(), 1.0)],
            Entry::Poly(p) => p
                .pairs()
                .iter()
                .map(|(v, c)| (v.clone(), condition_probability(c, prior)))
                .collect(),
        }
    }

    fn expected_int(&self, prior: &impl OutcomePrior) -> Option<f64> {
        let mut acc = 0.0;
        for (v, p) in self.distribution(prior) {
            acc += v.as_int()? as f64 * p;
        }
        Some(acc)
    }

    fn probability_true(&self, prior: &impl OutcomePrior) -> Option<f64> {
        let mut acc = 0.0;
        for (v, p) in self.distribution(prior) {
            if v.as_bool()? {
                acc += p;
            }
        }
        Some(acc)
    }
}

/// The in-doubt transactions a caller needs priors for.
pub fn required_priors(entry: &Entry<Value>) -> BTreeSet<TxnId> {
    entry.deps()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doubt(new: i64, old: i64, t: u64) -> Entry<Value> {
        Entry::in_doubt(
            Entry::Simple(Value::Int(new)),
            Entry::Simple(Value::Int(old)),
            TxnId(t),
        )
    }

    #[test]
    fn simple_entries_are_certain() {
        let e = Entry::Simple(Value::Int(7));
        let prior = |_: TxnId| 0.3;
        assert_eq!(e.distribution(&prior), vec![(Value::Int(7), 1.0)]);
        assert_eq!(e.expected_int(&prior), Some(7.0));
        assert!(required_priors(&e).is_empty());
    }

    #[test]
    fn two_pair_expectation_interpolates() {
        // 90 if T1 completes (p = 0.8), 100 otherwise.
        let e = doubt(90, 100, 1);
        let prior = |_: TxnId| 0.8;
        let expected = e.expected_int(&prior).unwrap();
        assert!((expected - (0.8 * 90.0 + 0.2 * 100.0)).abs() < 1e-12);
        // Distribution sums to 1.
        let total: f64 = e.distribution(&prior).iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stacked_uncertainty_composes_independently() {
        // Layer T2 (p=0.5) over T1 (p=0.8): values 50 (T2), 90 (¬T2∧T1),
        // 100 (¬T2∧¬T1).
        let base = doubt(90, 100, 1);
        let e = Entry::in_doubt(Entry::Simple(Value::Int(50)), base, TxnId(2));
        let prior: std::collections::BTreeMap<TxnId, f64> =
            [(TxnId(1), 0.8), (TxnId(2), 0.5)].into();
        let expected = e.expected_int(&prior).unwrap();
        let want = 0.5 * 50.0 + 0.5 * (0.8 * 90.0 + 0.2 * 100.0);
        assert!((expected - want).abs() < 1e-12, "{expected} vs {want}");
        assert_eq!(required_priors(&e).len(), 2);
    }

    #[test]
    fn probability_true_for_uncertain_authorization() {
        // "authorized" is true iff T1 aborted (balance stayed high).
        let e = Entry::in_doubt(
            Entry::Simple(Value::Bool(false)),
            Entry::Simple(Value::Bool(true)),
            TxnId(1),
        );
        let p = e.probability_true(&|_: TxnId| 0.25).unwrap();
        assert!((p - 0.75).abs() < 1e-12);
        // Non-boolean alternatives yield None.
        assert_eq!(doubt(1, 2, 1).probability_true(&|_: TxnId| 0.5), None);
        assert_eq!(e.expected_int(&|_: TxnId| 0.5), None);
    }

    #[test]
    fn map_prior_defaults_to_half() {
        let prior: std::collections::BTreeMap<TxnId, f64> = std::collections::BTreeMap::new();
        let e = doubt(0, 10, 9);
        assert!((e.expected_int(&prior).unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn condition_probability_handles_compound_conditions() {
        // P(T1 ∧ (T2 ∨ T3)) with independent p = 0.5 each: 0.5 · 0.75.
        let c =
            Condition::var(TxnId(1)).and(&Condition::var(TxnId(2)).or(&Condition::var(TxnId(3))));
        let p = condition_probability(&c, &|_: TxnId| 0.5);
        assert!((p - 0.375).abs() < 1e-12);
        assert!((condition_probability(&Condition::tru(), &|_: TxnId| 0.9) - 1.0).abs() < 1e-12);
        assert_eq!(
            condition_probability(&Condition::fls(), &|_: TxnId| 0.9),
            0.0
        );
    }

    #[test]
    fn out_of_range_priors_are_clamped() {
        let e = doubt(0, 10, 1);
        assert!((e.expected_int(&|_: TxnId| 7.0).unwrap() - 0.0).abs() < 1e-12);
        assert!((e.expected_int(&|_: TxnId| -3.0).unwrap() - 10.0).abs() < 1e-12);
    }
}
