//! Transaction specifications.

use crate::expr::{Expr, ItemId};
use std::collections::BTreeSet;
use std::fmt;

/// A transaction, described as data.
///
/// A transaction reads items (implicitly, through the expressions), checks an
/// optional boolean *guard*, and if the guard holds applies its *updates* —
/// new values for items — atomically. *Outputs* are named expressions whose
/// values are returned to the client; they are computed whether or not the
/// guard holds (so a denied request can still report why).
///
/// # Examples
///
/// ```
/// use pv_core::spec::TransactionSpec;
/// use pv_core::expr::{Expr, ItemId};
///
/// // Transfer 10 from account 0 to account 1 if funds suffice.
/// let from = ItemId(0);
/// let to = ItemId(1);
/// let spec = TransactionSpec::new()
///     .guard(Expr::read(from).ge(Expr::int(10)))
///     .update(from, Expr::read(from).sub(Expr::int(10)))
///     .update(to, Expr::read(to).add(Expr::int(10)))
///     .output("granted", Expr::read(from).ge(Expr::int(10)));
/// assert_eq!(spec.write_set().len(), 2);
/// assert_eq!(spec.read_set().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TransactionSpec {
    /// Optional boolean guard; if it evaluates to `false` the transaction
    /// makes no updates (it is *denied*, not aborted).
    pub guard: Option<Expr>,
    /// New values for items, applied atomically when the guard holds.
    pub updates: Vec<(ItemId, Expr)>,
    /// Named expressions returned to the client.
    pub outputs: Vec<(String, Expr)>,
}

impl TransactionSpec {
    /// An empty specification (no guard, no updates, no outputs).
    pub fn new() -> Self {
        TransactionSpec::default()
    }

    /// Sets the guard expression.
    pub fn guard(mut self, guard: Expr) -> Self {
        self.guard = Some(guard);
        self
    }

    /// Adds an update: `item` takes the value of `expr`.
    pub fn update(mut self, item: ItemId, expr: Expr) -> Self {
        self.updates.push((item, expr));
        self
    }

    /// Adds a named output.
    pub fn output(mut self, name: &str, expr: Expr) -> Self {
        self.outputs.push((name.to_owned(), expr));
        self
    }

    /// Items written by this transaction.
    pub fn write_set(&self) -> BTreeSet<ItemId> {
        self.updates.iter().map(|(item, _)| *item).collect()
    }

    /// Items this transaction could read (static over-approximation).
    pub fn read_set(&self) -> BTreeSet<ItemId> {
        let mut out = BTreeSet::new();
        if let Some(g) = &self.guard {
            out.extend(g.read_set());
        }
        for (_, e) in &self.updates {
            out.extend(e.read_set());
        }
        for (_, e) in &self.outputs {
            out.extend(e.read_set());
        }
        out
    }

    /// All items the transaction touches (reads or writes).
    pub fn access_set(&self) -> BTreeSet<ItemId> {
        let mut out = self.read_set();
        out.extend(self.write_set());
        out
    }

    /// Whether the transaction writes nothing (a pure query).
    pub fn is_read_only(&self) -> bool {
        self.updates.is_empty()
    }
}

impl fmt::Display for TransactionSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(g) = &self.guard {
            writeln!(f, "guard {g}")?;
        }
        for (item, e) in &self.updates {
            writeln!(f, "set {item} = {e}")?;
        }
        for (name, e) in &self.outputs {
            writeln!(f, "out {name} = {e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_sets() {
        let spec = TransactionSpec::new()
            .guard(Expr::read(ItemId(1)).gt(Expr::int(0)))
            .update(ItemId(2), Expr::read(ItemId(3)))
            .output("x", Expr::read(ItemId(4)));
        assert_eq!(
            spec.read_set().into_iter().map(|i| i.0).collect::<Vec<_>>(),
            vec![1, 3, 4]
        );
        assert_eq!(
            spec.write_set()
                .into_iter()
                .map(|i| i.0)
                .collect::<Vec<_>>(),
            vec![2]
        );
        assert_eq!(
            spec.access_set()
                .into_iter()
                .map(|i| i.0)
                .collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
        assert!(!spec.is_read_only());
    }

    #[test]
    fn read_only_detection() {
        let spec = TransactionSpec::new().output("x", Expr::read(ItemId(1)));
        assert!(spec.is_read_only());
    }

    #[test]
    fn item_written_and_read_appears_in_both_sets() {
        let spec =
            TransactionSpec::new().update(ItemId(1), Expr::read(ItemId(1)).add(Expr::int(1)));
        assert!(spec.read_set().contains(&ItemId(1)));
        assert!(spec.write_set().contains(&ItemId(1)));
    }

    #[test]
    fn display_lists_parts() {
        let spec = TransactionSpec::new()
            .guard(Expr::bool(true))
            .update(ItemId(1), Expr::int(2))
            .output("ok", Expr::bool(true));
        let s = spec.to_string();
        assert!(s.contains("guard true"));
        assert!(s.contains("set item1 = 2"));
        assert!(s.contains("out ok = true"));
    }
}
