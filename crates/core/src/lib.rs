//! # pv-core — the polyvalue mechanism
//!
//! This crate implements the primary contribution of Montgomery's SOSP '79
//! paper *Polyvalues: A Tool for Implementing Atomic Updates to Distributed
//! Data*:
//!
//! * a boolean **condition algebra** over transaction identifiers
//!   ([`cond`]) — the predicates attached to polyvalue pairs, kept in
//!   sum-of-products form with completeness/disjointness checks;
//! * **polyvalues** ([`poly`], [`entry`]) — sets of `⟨value, condition⟩`
//!   pairs representing every value an item could hold given the outcomes of
//!   transactions delayed by failures, with the paper's three simplification
//!   rules;
//! * a transaction **expression language** and the **polytransaction
//!   evaluator** ([`expr`], [`spec`]) — transactions that read uncertain
//!   items are partitioned into alternative transactions whose results carry
//!   the conditions of the inputs they consumed (§3.2), including the lazy
//!   partitioning optimisation.
//!
//! The distributed engine that drives this machinery over a simulated network
//! lives in `pv-engine`; the analytic model and stochastic simulation from §4
//! of the paper live in `pv-model` and `pv-stochsim`.
//!
//! ## Quick example
//!
//! ```
//! use pv_core::{Entry, TxnId, Value};
//!
//! // A transfer left a balance in doubt under transaction T1:
//! let balance = Entry::in_doubt(
//!     Entry::Simple(Value::Int(90)),
//!     Entry::Simple(Value::Int(100)),
//!     TxnId(1),
//! );
//! // Either way there is at least 50 available, so a credit authorization
//! // for 50 can proceed — this is the paper's headline property.
//! assert!(*balance.min_value() >= Value::Int(50));
//! // When the failure recovers and T1 turns out to have aborted:
//! assert_eq!(balance.assign_outcome(TxnId(1), false), Entry::Simple(Value::Int(100)));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cond;
pub mod entry;
pub mod expectation;
pub mod expr;
pub mod poly;
pub mod spec;
pub mod txn;
pub mod value;

pub use cond::{Condition, Literal, Product};
pub use entry::Entry;
pub use expectation::{condition_probability, EntryExpectation, OutcomePrior};
pub use expr::{evaluate, EvalOutcome, Expr, ItemId, SplitMode};
pub use poly::{PolyError, Polyvalue};
pub use spec::TransactionSpec;
pub use txn::{Outcome, TxnId};
pub use value::{CmpOp, Value, ValueError};
