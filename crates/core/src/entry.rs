//! Database entries: a simple value or a polyvalue.

use crate::cond::Condition;
use crate::poly::{PolyError, Polyvalue};
use crate::txn::TxnId;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The current content of a database item: either an exact (*simple*) value
/// or a [`Polyvalue`] describing the possible values under the outcomes of
/// in-doubt transactions.
///
/// All polyvalue construction funnels through [`Entry::assemble`], which
/// applies the paper's three simplification rules (§3.1):
///
/// 1. **flatten** nested polyvalues into pairs with conjoined conditions,
/// 2. **merge** pairs with equal values by disjoining their conditions,
/// 3. **drop** pairs whose condition reduces to `false`,
///
/// and collapses a single surviving pair into `Entry::Simple`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Entry<V> {
    /// An exact value: the item's value is known.
    Simple(V),
    /// Several possible values, conditioned on transaction outcomes.
    Poly(Polyvalue<V>),
}

impl<V: Clone + Eq> Entry<V> {
    /// Assembles an entry from `(entry, condition)` alternatives.
    ///
    /// The input conditions must be complete and disjoint *as a family*
    /// (guaranteed by the polytransaction partitioning rules of §3.2 and by
    /// the in-doubt constructor); this is re-checked and an error returned if
    /// violated. Nested polyvalues in the input entries are flattened.
    pub fn assemble(alternatives: Vec<(Entry<V>, Condition)>) -> Result<Entry<V>, PolyError> {
        // Rule 1: flatten nesting.
        let mut flat: Vec<(V, Condition)> = Vec::with_capacity(alternatives.len());
        for (entry, cond) in alternatives {
            match entry {
                Entry::Simple(v) => flat.push((v, cond)),
                Entry::Poly(p) => {
                    for (v, inner) in p.pairs() {
                        flat.push((v.clone(), cond.and(inner)));
                    }
                }
            }
        }
        // Rule 3: drop unsatisfiable pairs (conditions are canonical
        // sum-of-products, so falsity is syntactic).
        flat.retain(|(_, c)| !c.is_false());
        // Rule 2: merge pairs with equal values.
        let mut merged: Vec<(V, Condition)> = Vec::with_capacity(flat.len());
        for (v, c) in flat {
            match merged.iter_mut().find(|(mv, _)| *mv == v) {
                Some((_, mc)) => *mc = mc.or(&c),
                None => merged.push((v, c)),
            }
        }
        // Canonical pair order: sort by condition (conditions are themselves
        // canonical), so structurally equal entries are `==`.
        merged.sort_by(|(_, a), (_, b)| a.cmp(b));
        match merged.len() {
            0 => Err(PolyError::Empty),
            1 => {
                let (v, c) = merged.into_iter().next().expect("one pair");
                if c.is_true() {
                    Ok(Entry::Simple(v))
                } else {
                    Err(PolyError::NotComplete)
                }
            }
            _ => {
                let p = Polyvalue::from_invariant_pairs(merged);
                p.validate()?;
                Ok(Entry::Poly(p))
            }
        }
    }

    /// Builds the in-doubt entry of §3.1: `{⟨new, T⟩, ⟨old, ¬T⟩}`.
    ///
    /// `new` is the value computed by the delayed transaction `txn` and `old`
    /// the previous entry. Either may itself be a polyvalue; nesting is
    /// flattened. If new and old turn out equal the result is simple.
    pub fn in_doubt(new: Entry<V>, old: Entry<V>, txn: TxnId) -> Entry<V> {
        Entry::assemble(vec![
            (new, Condition::var(txn)),
            (old, Condition::not_var(txn)),
        ])
        .expect("{T, ¬T} is complete and disjoint")
    }

    /// Whether this entry is an exact value.
    pub fn is_simple(&self) -> bool {
        matches!(self, Entry::Simple(_))
    }

    /// Whether this entry is a polyvalue.
    pub fn is_poly(&self) -> bool {
        matches!(self, Entry::Poly(_))
    }

    /// The exact value, if simple.
    pub fn as_simple(&self) -> Option<&V> {
        match self {
            Entry::Simple(v) => Some(v),
            Entry::Poly(_) => None,
        }
    }

    /// The polyvalue, if uncertain.
    pub fn as_poly(&self) -> Option<&Polyvalue<V>> {
        match self {
            Entry::Simple(_) => None,
            Entry::Poly(p) => Some(p),
        }
    }

    /// The `(value, condition)` alternatives of this entry; a simple value is
    /// a single alternative under `true`.
    pub fn alternatives(&self) -> Vec<(V, Condition)> {
        match self {
            Entry::Simple(v) => vec![(v.clone(), Condition::tru())],
            Entry::Poly(p) => p.pairs().to_vec(),
        }
    }

    /// Number of alternatives (1 for a simple value).
    pub fn pair_count(&self) -> usize {
        match self {
            Entry::Simple(_) => 1,
            Entry::Poly(p) => p.len(),
        }
    }

    /// Transactions whose outcomes this entry depends on (empty if simple).
    pub fn deps(&self) -> BTreeSet<TxnId> {
        match self {
            Entry::Simple(_) => BTreeSet::new(),
            Entry::Poly(p) => p.deps(),
        }
    }

    /// Substitutes a known outcome, possibly collapsing to a simple value.
    pub fn assign_outcome(&self, txn: TxnId, completed: bool) -> Entry<V> {
        match self {
            Entry::Simple(_) => self.clone(),
            Entry::Poly(p) => p.assign_outcome(txn, completed),
        }
    }

    /// Substitutes several outcomes at once.
    pub fn assign_outcomes<I: IntoIterator<Item = (TxnId, bool)>>(&self, outcomes: I) -> Entry<V> {
        let mut e = self.clone();
        for (txn, completed) in outcomes {
            e = e.assign_outcome(txn, completed);
        }
        e
    }

    /// The value selected by a complete outcome assignment.
    pub fn resolve(&self, assignment: &BTreeMap<TxnId, bool>) -> Option<&V> {
        match self {
            Entry::Simple(v) => Some(v),
            Entry::Poly(p) => p.resolve(assignment),
        }
    }

    /// Applies `f` to every alternative, preserving conditions.
    pub fn map<W: Clone + Eq>(&self, mut f: impl FnMut(&V) -> W) -> Entry<W> {
        match self {
            Entry::Simple(v) => Entry::Simple(f(v)),
            Entry::Poly(p) => p.map(f),
        }
    }

    /// Checks the polyvalue invariant (trivially true for simple entries).
    pub fn validate(&self) -> Result<(), PolyError> {
        match self {
            Entry::Simple(_) => Ok(()),
            Entry::Poly(p) => p.validate(),
        }
    }
}

impl<V: Clone + Eq + Ord> Entry<V> {
    /// The smallest possible value of the entry.
    ///
    /// For applications like the paper's reservation example, decisions can
    /// often be made from the range of an uncertain value alone.
    pub fn min_value(&self) -> &V {
        match self {
            Entry::Simple(v) => v,
            Entry::Poly(p) => p.values().min().expect("polyvalue is non-empty"),
        }
    }

    /// The largest possible value of the entry.
    pub fn max_value(&self) -> &V {
        match self {
            Entry::Simple(v) => v,
            Entry::Poly(p) => p.values().max().expect("polyvalue is non-empty"),
        }
    }
}

impl<V: fmt::Display> fmt::Display for Entry<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Entry::Simple(v) => write!(f, "{v}"),
            Entry::Poly(p) => write!(f, "{p}"),
        }
    }
}

impl<V> From<V> for Entry<V> {
    fn from(v: V) -> Self {
        Entry::Simple(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> TxnId {
        TxnId(n)
    }

    #[test]
    fn assemble_single_true_pair_is_simple() {
        let e = Entry::assemble(vec![(Entry::Simple(5), Condition::tru())]).unwrap();
        assert_eq!(e, Entry::Simple(5));
    }

    #[test]
    fn assemble_empty_is_error() {
        let e: Result<Entry<i64>, _> = Entry::assemble(vec![]);
        assert_eq!(e, Err(PolyError::Empty));
    }

    #[test]
    fn assemble_incomplete_is_error() {
        let e = Entry::assemble(vec![(Entry::Simple(5), Condition::var(t(1)))]);
        assert_eq!(e, Err(PolyError::NotComplete));
    }

    #[test]
    fn assemble_overlapping_is_error() {
        let e = Entry::assemble(vec![
            (Entry::Simple(1), Condition::tru()),
            (Entry::Simple(2), Condition::var(t(1))),
        ]);
        assert_eq!(e, Err(PolyError::NotDisjoint));
    }

    #[test]
    fn assemble_merges_equal_values_across_entries() {
        // {⟨5, T1⟩, ⟨5, ¬T1⟩} → 5.
        let e = Entry::assemble(vec![
            (Entry::Simple(5), Condition::var(t(1))),
            (Entry::Simple(5), Condition::not_var(t(1))),
        ])
        .unwrap();
        assert_eq!(e, Entry::Simple(5));
    }

    #[test]
    fn assemble_drops_false_conditions() {
        let contradiction = Condition::var(t(1)).and(&Condition::not_var(t(1)));
        let e = Entry::assemble(vec![
            (Entry::Simple(1), Condition::tru()),
            (Entry::Simple(2), contradiction),
        ])
        .unwrap();
        assert_eq!(e, Entry::Simple(1));
    }

    #[test]
    fn alternatives_of_simple_is_true_pair() {
        let e = Entry::Simple(3);
        assert_eq!(e.alternatives(), vec![(3, Condition::tru())]);
        assert_eq!(e.pair_count(), 1);
        assert!(e.deps().is_empty());
    }

    #[test]
    fn accessors() {
        let s = Entry::Simple(1);
        assert!(s.is_simple() && !s.is_poly());
        assert_eq!(s.as_simple(), Some(&1));
        assert!(s.as_poly().is_none());
        let p = Entry::in_doubt(Entry::Simple(1), Entry::Simple(2), t(1));
        assert!(p.is_poly() && !p.is_simple());
        assert!(p.as_simple().is_none());
        assert!(p.as_poly().is_some());
        assert_eq!(p.pair_count(), 2);
    }

    #[test]
    fn assign_outcomes_resolves_chains() {
        let first = Entry::in_doubt(Entry::Simple(90), Entry::Simple(100), t(1));
        let second = Entry::in_doubt(Entry::Simple(50), first, t(2));
        assert_eq!(
            second.assign_outcomes([(t(2), false), (t(1), true)]),
            Entry::Simple(90)
        );
        assert_eq!(
            second.assign_outcomes([(t(2), false), (t(1), false)]),
            Entry::Simple(100)
        );
        assert_eq!(second.assign_outcomes([(t(2), true)]), Entry::Simple(50));
    }

    #[test]
    fn min_max_values() {
        let e = Entry::in_doubt(Entry::Simple(90), Entry::Simple(100), t(1));
        assert_eq!(*e.min_value(), 90);
        assert_eq!(*e.max_value(), 100);
        let s = Entry::Simple(7);
        assert_eq!(*s.min_value(), 7);
        assert_eq!(*s.max_value(), 7);
    }

    #[test]
    fn map_on_simple() {
        let s = Entry::Simple(3);
        assert_eq!(s.map(|v| v + 1), Entry::Simple(4));
    }

    #[test]
    fn resolve_on_simple_ignores_assignment() {
        let s = Entry::Simple(3);
        assert_eq!(s.resolve(&BTreeMap::new()), Some(&3));
    }

    #[test]
    fn display() {
        let s: Entry<i64> = Entry::Simple(3);
        assert_eq!(s.to_string(), "3");
        let p = Entry::in_doubt(Entry::Simple(1), Entry::Simple(2), t(1));
        assert_eq!(p.to_string(), "{⟨2, ¬T1⟩, ⟨1, T1⟩}");
    }

    #[test]
    fn from_value() {
        let e: Entry<i64> = 5.into();
        assert_eq!(e, Entry::Simple(5));
    }
}
