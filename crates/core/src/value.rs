//! Runtime values stored in database items.
//!
//! The polyvalue mechanism itself is value-agnostic ([`crate::poly`] is
//! generic), but the transaction expression language ([`crate::expr`]) and
//! the engine operate on this concrete, dynamically typed [`Value`].

use std::fmt;

/// A dynamically typed database value.
///
/// Arithmetic is checked: overflow and division by zero are reported as
/// [`ValueError`]s rather than panicking, so a malformed transaction aborts
/// instead of taking down a site.
///
/// # Examples
///
/// ```
/// use pv_core::value::Value;
///
/// let a = Value::Int(40);
/// let b = Value::Int(2);
/// assert_eq!(a.add(&b).unwrap(), Value::Int(42));
/// assert!(a.add(&Value::Bool(true)).is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// A 64-bit signed integer (account balances in cents, seat counts, …).
    Int(i64),
    /// A boolean (authorization decisions, flags).
    Bool(bool),
    /// A UTF-8 string (names, status labels).
    Str(String),
}

/// Errors produced by value operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValueError {
    /// The operands' types do not fit the operation.
    TypeMismatch {
        /// The operation that failed, e.g. `"add"`.
        op: &'static str,
        /// Rendered left-hand operand.
        lhs: String,
        /// Rendered right-hand operand (empty for unary operations).
        rhs: String,
    },
    /// Integer overflow in checked arithmetic.
    Overflow {
        /// The operation that overflowed.
        op: &'static str,
    },
    /// Division (or remainder) by zero.
    DivideByZero,
}

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueError::TypeMismatch { op, lhs, rhs } => {
                if rhs.is_empty() {
                    write!(f, "type mismatch in {op}: {lhs}")
                } else {
                    write!(f, "type mismatch in {op}: {lhs} vs {rhs}")
                }
            }
            ValueError::Overflow { op } => write!(f, "integer overflow in {op}"),
            ValueError::DivideByZero => write!(f, "division by zero"),
        }
    }
}

impl std::error::Error for ValueError {}

/// Result alias for value operations.
pub type ValueResult = Result<Value, ValueError>;

impl Value {
    /// Reads the value as an integer, if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Reads the value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Reads the value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for the value's type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Bool(_) => "bool",
            Value::Str(_) => "str",
        }
    }

    fn mismatch(op: &'static str, lhs: &Value, rhs: &Value) -> ValueError {
        ValueError::TypeMismatch {
            op,
            lhs: lhs.to_string(),
            rhs: rhs.to_string(),
        }
    }

    fn int_op(
        op: &'static str,
        lhs: &Value,
        rhs: &Value,
        f: impl FnOnce(i64, i64) -> Option<i64>,
    ) -> ValueResult {
        match (lhs, rhs) {
            (Value::Int(a), Value::Int(b)) => {
                f(*a, *b).map(Value::Int).ok_or(ValueError::Overflow { op })
            }
            _ => Err(Value::mismatch(op, lhs, rhs)),
        }
    }

    /// Checked addition (ints only).
    pub fn add(&self, rhs: &Value) -> ValueResult {
        Value::int_op("add", self, rhs, i64::checked_add)
    }

    /// Checked subtraction (ints only).
    pub fn sub(&self, rhs: &Value) -> ValueResult {
        Value::int_op("sub", self, rhs, i64::checked_sub)
    }

    /// Checked multiplication (ints only).
    pub fn mul(&self, rhs: &Value) -> ValueResult {
        Value::int_op("mul", self, rhs, i64::checked_mul)
    }

    /// Checked division (ints only); division by zero is an error.
    pub fn div(&self, rhs: &Value) -> ValueResult {
        match (self, rhs) {
            (Value::Int(_), Value::Int(0)) => Err(ValueError::DivideByZero),
            (Value::Int(a), Value::Int(b)) => a
                .checked_div(*b)
                .map(Value::Int)
                .ok_or(ValueError::Overflow { op: "div" }),
            _ => Err(Value::mismatch("div", self, rhs)),
        }
    }

    /// Minimum of two values of the same type.
    pub fn min_v(&self, rhs: &Value) -> ValueResult {
        if self.type_name() != rhs.type_name() {
            return Err(Value::mismatch("min", self, rhs));
        }
        Ok(if self <= rhs {
            self.clone()
        } else {
            rhs.clone()
        })
    }

    /// Maximum of two values of the same type.
    pub fn max_v(&self, rhs: &Value) -> ValueResult {
        if self.type_name() != rhs.type_name() {
            return Err(Value::mismatch("max", self, rhs));
        }
        Ok(if self >= rhs {
            self.clone()
        } else {
            rhs.clone()
        })
    }

    /// Arithmetic negation (ints only).
    pub fn neg(&self) -> ValueResult {
        match self {
            Value::Int(n) => n
                .checked_neg()
                .map(Value::Int)
                .ok_or(ValueError::Overflow { op: "neg" }),
            _ => Err(ValueError::TypeMismatch {
                op: "neg",
                lhs: self.to_string(),
                rhs: String::new(),
            }),
        }
    }

    /// Logical negation (bools only).
    pub fn not(&self) -> ValueResult {
        match self {
            Value::Bool(b) => Ok(Value::Bool(!b)),
            _ => Err(ValueError::TypeMismatch {
                op: "not",
                lhs: self.to_string(),
                rhs: String::new(),
            }),
        }
    }

    /// Logical conjunction (bools only).
    pub fn and_v(&self, rhs: &Value) -> ValueResult {
        match (self, rhs) {
            (Value::Bool(a), Value::Bool(b)) => Ok(Value::Bool(*a && *b)),
            _ => Err(Value::mismatch("and", self, rhs)),
        }
    }

    /// Logical disjunction (bools only).
    pub fn or_v(&self, rhs: &Value) -> ValueResult {
        match (self, rhs) {
            (Value::Bool(a), Value::Bool(b)) => Ok(Value::Bool(*a || *b)),
            _ => Err(Value::mismatch("or", self, rhs)),
        }
    }

    /// Typed comparison; comparing different types is an error.
    pub fn compare(&self, op: CmpOp, rhs: &Value) -> ValueResult {
        if self.type_name() != rhs.type_name() {
            return Err(Value::mismatch(op.name(), self, rhs));
        }
        let r = match op {
            CmpOp::Eq => self == rhs,
            CmpOp::Ne => self != rhs,
            CmpOp::Lt => self < rhs,
            CmpOp::Le => self <= rhs,
            CmpOp::Gt => self > rhs,
            CmpOp::Ge => self >= rhs,
        };
        Ok(Value::Bool(r))
    }
}

/// Comparison operators for [`Value::compare`] and the expression language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// The operator's short name, used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_happy_path() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)).unwrap(), Value::Int(5));
        assert_eq!(Value::Int(2).sub(&Value::Int(3)).unwrap(), Value::Int(-1));
        assert_eq!(Value::Int(2).mul(&Value::Int(3)).unwrap(), Value::Int(6));
        assert_eq!(Value::Int(7).div(&Value::Int(2)).unwrap(), Value::Int(3));
        assert_eq!(Value::Int(5).neg().unwrap(), Value::Int(-5));
    }

    #[test]
    fn overflow_is_reported_not_panicked() {
        assert_eq!(
            Value::Int(i64::MAX).add(&Value::Int(1)),
            Err(ValueError::Overflow { op: "add" })
        );
        assert_eq!(
            Value::Int(i64::MIN).neg(),
            Err(ValueError::Overflow { op: "neg" })
        );
        assert_eq!(
            Value::Int(i64::MIN).div(&Value::Int(-1)),
            Err(ValueError::Overflow { op: "div" })
        );
    }

    #[test]
    fn divide_by_zero() {
        assert_eq!(
            Value::Int(1).div(&Value::Int(0)),
            Err(ValueError::DivideByZero)
        );
    }

    #[test]
    fn type_mismatch_is_an_error() {
        assert!(Value::Int(1).add(&Value::Bool(true)).is_err());
        assert!(Value::Bool(true).and_v(&Value::Int(1)).is_err());
        assert!(Value::Int(1)
            .compare(CmpOp::Lt, &Value::Str("x".into()))
            .is_err());
        assert!(Value::Str("x".into()).neg().is_err());
        assert!(Value::Int(0).not().is_err());
    }

    #[test]
    fn min_max() {
        assert_eq!(Value::Int(1).min_v(&Value::Int(2)).unwrap(), Value::Int(1));
        assert_eq!(Value::Int(1).max_v(&Value::Int(2)).unwrap(), Value::Int(2));
        assert!(Value::Int(1).min_v(&Value::Bool(false)).is_err());
    }

    #[test]
    fn boolean_logic() {
        let t = Value::Bool(true);
        let f = Value::Bool(false);
        assert_eq!(t.and_v(&f).unwrap(), f);
        assert_eq!(t.or_v(&f).unwrap(), t);
        assert_eq!(f.not().unwrap(), t);
    }

    #[test]
    fn comparisons() {
        let a = Value::Int(1);
        let b = Value::Int(2);
        assert_eq!(a.compare(CmpOp::Lt, &b).unwrap(), Value::Bool(true));
        assert_eq!(a.compare(CmpOp::Ge, &b).unwrap(), Value::Bool(false));
        assert_eq!(a.compare(CmpOp::Eq, &a).unwrap(), Value::Bool(true));
        assert_eq!(a.compare(CmpOp::Ne, &b).unwrap(), Value::Bool(true));
        let s1 = Value::Str("a".into());
        let s2 = Value::Str("b".into());
        assert_eq!(s1.compare(CmpOp::Le, &s2).unwrap(), Value::Bool(true));
    }

    #[test]
    fn accessors_and_conversions() {
        assert_eq!(Value::from(3i64).as_int(), Some(3));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from("hi").as_str(), Some("hi"));
        assert_eq!(Value::Int(1).as_bool(), None);
        assert_eq!(Value::Bool(true).as_int(), None);
        assert_eq!(Value::Int(1).as_str(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(Value::Str("x".into()).to_string(), "\"x\"");
    }
}
