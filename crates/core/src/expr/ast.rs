//! The transaction expression language.
//!
//! Transactions are *data*: a [`TransactionSpec`](crate::spec::TransactionSpec)
//! carries expressions over database items rather than opaque closures. This
//! is what lets the polytransaction evaluator (§3.2) re-run the same
//! computation under each alternative database state, and lets the engine
//! ship computations between sites.

use crate::value::{CmpOp, Value};
use std::collections::BTreeSet;
use std::fmt;

/// Identifies a database item.
///
/// Items are the unit of storage and locking; in the engine each item lives
/// at exactly one site (a replicated item is modelled, as in the paper, as a
/// set of per-site items).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ItemId(pub u64);

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "item{}", self.0)
    }
}

impl From<u64> for ItemId {
    fn from(raw: u64) -> Self {
        ItemId(raw)
    }
}

/// Binary operators of the expression language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Checked integer addition.
    Add,
    /// Checked integer subtraction.
    Sub,
    /// Checked integer multiplication.
    Mul,
    /// Checked integer division.
    Div,
    /// Minimum of two same-typed values.
    Min,
    /// Maximum of two same-typed values.
    Max,
    /// Boolean conjunction (short-circuiting).
    And,
    /// Boolean disjunction (short-circuiting).
    Or,
}

impl BinOp {
    /// The operator's rendering in [`fmt::Display`] output.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// An expression over database items and constants.
///
/// # Examples
///
/// ```
/// use pv_core::expr::{Expr, ItemId};
/// use pv_core::value::Value;
///
/// // balance(0) - 10, clamped at zero from below by a guard elsewhere.
/// let e = Expr::read(ItemId(0)).sub(Expr::int(10));
/// assert_eq!(e.read_set(), [ItemId(0)].into_iter().collect());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A constant value.
    Const(Value),
    /// The current value of a database item.
    Read(ItemId),
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// A comparison, producing a boolean.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Arithmetic negation.
    Neg(Box<Expr>),
    /// Boolean negation.
    Not(Box<Expr>),
    /// Conditional: evaluates the condition, then only the selected branch.
    ///
    /// Because the unselected branch is never evaluated, reads inside it do
    /// not force polytransaction partitioning (the §3.2 optimisation).
    If(Box<Expr>, Box<Expr>, Box<Expr>),
}

// Builder methods named `add`/`sub`/`mul`/`div`/`not`/`neg` intentionally
// mirror the expression language's operators; they build ASTs rather than
// computing, so implementing the std ops traits would be misleading.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// An integer constant.
    pub fn int(n: i64) -> Expr {
        Expr::Const(Value::Int(n))
    }

    /// A boolean constant.
    pub fn bool(b: bool) -> Expr {
        Expr::Const(Value::Bool(b))
    }

    /// A string constant.
    pub fn str(s: &str) -> Expr {
        Expr::Const(Value::Str(s.to_owned()))
    }

    /// Reads a database item.
    pub fn read(item: ItemId) -> Expr {
        Expr::Read(item)
    }

    /// `self + rhs`.
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Add, Box::new(self), Box::new(rhs))
    }

    /// `self - rhs`.
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Sub, Box::new(self), Box::new(rhs))
    }

    /// `self * rhs`.
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Mul, Box::new(self), Box::new(rhs))
    }

    /// `self / rhs`.
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Div, Box::new(self), Box::new(rhs))
    }

    /// `min(self, rhs)`.
    pub fn min(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Min, Box::new(self), Box::new(rhs))
    }

    /// `max(self, rhs)`.
    pub fn max(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Max, Box::new(self), Box::new(rhs))
    }

    /// `self && rhs` (short-circuiting).
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::And, Box::new(self), Box::new(rhs))
    }

    /// `self || rhs` (short-circuiting).
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Or, Box::new(self), Box::new(rhs))
    }

    /// A comparison producing a boolean.
    pub fn cmp(self, op: CmpOp, rhs: Expr) -> Expr {
        Expr::Cmp(op, Box::new(self), Box::new(rhs))
    }

    /// `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Expr {
        self.cmp(CmpOp::Lt, rhs)
    }

    /// `self <= rhs`.
    pub fn le(self, rhs: Expr) -> Expr {
        self.cmp(CmpOp::Le, rhs)
    }

    /// `self > rhs`.
    pub fn gt(self, rhs: Expr) -> Expr {
        self.cmp(CmpOp::Gt, rhs)
    }

    /// `self >= rhs`.
    pub fn ge(self, rhs: Expr) -> Expr {
        self.cmp(CmpOp::Ge, rhs)
    }

    /// `self == rhs`.
    pub fn eq_v(self, rhs: Expr) -> Expr {
        self.cmp(CmpOp::Eq, rhs)
    }

    /// `self != rhs`.
    pub fn ne_v(self, rhs: Expr) -> Expr {
        self.cmp(CmpOp::Ne, rhs)
    }

    /// Arithmetic negation.
    pub fn neg(self) -> Expr {
        Expr::Neg(Box::new(self))
    }

    /// Boolean negation.
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// `if cond { then } else { otherwise }`.
    pub fn ite(cond: Expr, then: Expr, otherwise: Expr) -> Expr {
        Expr::If(Box::new(cond), Box::new(then), Box::new(otherwise))
    }

    /// All items this expression *could* read (the static read set; lazy
    /// evaluation may read fewer).
    pub fn read_set(&self) -> BTreeSet<ItemId> {
        let mut out = BTreeSet::new();
        self.collect_reads(&mut out);
        out
    }

    fn collect_reads(&self, out: &mut BTreeSet<ItemId>) {
        match self {
            Expr::Const(_) => {}
            Expr::Read(item) => {
                out.insert(*item);
            }
            Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) => {
                a.collect_reads(out);
                b.collect_reads(out);
            }
            Expr::Neg(a) | Expr::Not(a) => a.collect_reads(out),
            Expr::If(c, t, e) => {
                c.collect_reads(out);
                t.collect_reads(out);
                e.collect_reads(out);
            }
        }
    }

    /// Number of AST nodes; a size measure for tests and benchmarks.
    pub fn size(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Read(_) => 1,
            Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) => 1 + a.size() + b.size(),
            Expr::Neg(a) | Expr::Not(a) => 1 + a.size(),
            Expr::If(c, t, e) => 1 + c.size() + t.size() + e.size(),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Read(item) => write!(f, "{item}"),
            Expr::Bin(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            Expr::Cmp(op, a, b) => write!(f, "({a} {} {b})", op.name()),
            Expr::Neg(a) => write!(f, "(-{a})"),
            Expr::Not(a) => write!(f, "(!{a})"),
            Expr::If(c, t, e) => write!(f, "(if {c} then {t} else {e})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_expected_shapes() {
        let e = Expr::read(ItemId(1)).add(Expr::int(2)).mul(Expr::int(3));
        assert_eq!(e.size(), 5);
        assert_eq!(e.to_string(), "((item1 + 2) * 3)");
    }

    #[test]
    fn read_set_collects_all_reads() {
        let e = Expr::ite(
            Expr::read(ItemId(1)).lt(Expr::int(0)),
            Expr::read(ItemId(2)),
            Expr::read(ItemId(3)).max(Expr::read(ItemId(1))),
        );
        let rs: Vec<u64> = e.read_set().into_iter().map(|i| i.0).collect();
        assert_eq!(rs, vec![1, 2, 3]);
    }

    #[test]
    fn display_covers_all_variants() {
        assert_eq!(Expr::bool(true).to_string(), "true");
        assert_eq!(Expr::str("a").to_string(), "\"a\"");
        assert_eq!(Expr::int(1).neg().to_string(), "(-1)");
        assert_eq!(Expr::bool(false).not().to_string(), "(!false)");
        assert_eq!(
            Expr::int(1)
                .le(Expr::int(2))
                .and(Expr::bool(true))
                .to_string(),
            "((1 le 2) && true)"
        );
        assert_eq!(Expr::int(1).min(Expr::int(2)).to_string(), "(1 min 2)");
        assert_eq!(
            Expr::ite(Expr::bool(true), Expr::int(1), Expr::int(2)).to_string(),
            "(if true then 1 else 2)"
        );
    }

    #[test]
    fn comparison_builders() {
        let a = Expr::int(1);
        for (e, s) in [
            (a.clone().lt(Expr::int(2)), "lt"),
            (a.clone().le(Expr::int(2)), "le"),
            (a.clone().gt(Expr::int(2)), "gt"),
            (a.clone().ge(Expr::int(2)), "ge"),
            (a.clone().eq_v(Expr::int(2)), "eq"),
            (a.clone().ne_v(Expr::int(2)), "ne"),
        ] {
            assert!(e.to_string().contains(s));
        }
    }

    #[test]
    fn item_id_display() {
        assert_eq!(ItemId(4).to_string(), "item4");
    }
}
