//! Transaction expressions and the polytransaction evaluator.

mod ast;
mod eval;

pub use ast::{BinOp, Expr, ItemId};
pub use eval::{
    evaluate, AltResult, CollateError, EvalError, EvalOutcome, EvalStats, ReadSource, SplitMode,
};
