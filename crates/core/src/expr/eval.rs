//! The polytransaction evaluator (§3.2 of the paper).
//!
//! A transaction that reads an item holding a polyvalue becomes a
//! *polytransaction*: it is partitioned into alternative transactions, one
//! per consistent combination of conditions on the polyvalues it reads. Each
//! alternative runs the same [`TransactionSpec`] against a different database
//! state; its results are tagged with the conjunction of the conditions of
//! the values it actually read.
//!
//! Two partitioning strategies are provided:
//!
//! * [`SplitMode::Lazy`] (the default) splits an alternative only when it
//!   actually reads a polyvalued item. Short-circuiting `&&`/`||` and `if`
//!   mean alternatives whose control flow never touches an uncertain item are
//!   not partitioned — the optimisation §3.2 describes ("one can also
//!   recognize cases where the actual value of an item ... need not cause
//!   partitioning").
//! * [`SplitMode::Eager`] partitions up front on every polyvalued item in the
//!   static read set, which is simpler but can create exponentially more
//!   alternatives. The `partitioning` benchmark quantifies the difference.

use crate::cond::Condition;
use crate::entry::Entry;
use crate::expr::{BinOp, Expr, ItemId};
use crate::poly::PolyError;
use crate::spec::TransactionSpec;
use crate::value::{Value, ValueError};
use std::collections::BTreeMap;
use std::fmt;

/// A source of current item values for evaluation.
pub trait ReadSource {
    /// Reads the current entry of `item`, or `None` if the item is unknown.
    fn read_entry(&self, item: ItemId) -> Option<Entry<Value>>;
}

impl ReadSource for BTreeMap<ItemId, Entry<Value>> {
    fn read_entry(&self, item: ItemId) -> Option<Entry<Value>> {
        self.get(&item).cloned()
    }
}

impl ReadSource for BTreeMap<ItemId, Value> {
    fn read_entry(&self, item: ItemId) -> Option<Entry<Value>> {
        self.get(&item).cloned().map(Entry::Simple)
    }
}

/// Errors aborting the evaluation of a transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A value operation failed (type mismatch, overflow, division by zero).
    Value(ValueError),
    /// The transaction read an item the source does not hold.
    MissingItem(ItemId),
    /// The guard expression did not evaluate to a boolean.
    GuardNotBool,
    /// A short-circuit operator's operand was not a boolean.
    OperandNotBool(&'static str),
    /// An `if` condition was not a boolean.
    ConditionNotBool,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Value(e) => write!(f, "value error: {e}"),
            EvalError::MissingItem(item) => write!(f, "missing item {item}"),
            EvalError::GuardNotBool => write!(f, "guard did not evaluate to a boolean"),
            EvalError::OperandNotBool(op) => write!(f, "operand of {op} is not a boolean"),
            EvalError::ConditionNotBool => write!(f, "if condition is not a boolean"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<ValueError> for EvalError {
    fn from(e: ValueError) -> Self {
        EvalError::Value(e)
    }
}

/// How alternatives are split on polyvalued reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitMode {
    /// Split only when a polyvalued item is actually read.
    #[default]
    Lazy,
    /// Split on every polyvalued item in the static read set, up front.
    Eager,
}

/// Counters describing how much partitioning an evaluation performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvalStats {
    /// Alternatives that finished evaluation.
    pub alternatives: usize,
    /// Number of split events (each replaces one alternative by several).
    pub splits: usize,
    /// Item reads served from the source (not from the alternative's cache).
    pub item_reads: usize,
}

/// The result of one alternative transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AltResult {
    /// The condition under which this alternative is the real execution.
    pub cond: Condition,
    /// Whether the guard held (always `true` when the spec has no guard).
    pub granted: bool,
    /// Values computed for updated items (empty when not granted).
    pub writes: BTreeMap<ItemId, Value>,
    /// Output values, in spec order.
    pub outputs: Vec<(String, Value)>,
}

/// The complete result of evaluating a transaction: one [`AltResult`] per
/// alternative, with conditions that are complete and disjoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalOutcome {
    /// The alternatives, in evaluation order.
    pub alts: Vec<AltResult>,
    /// Partitioning counters.
    pub stats: EvalStats,
}

impl EvalOutcome {
    /// Whether every alternative's guard held.
    pub fn all_granted(&self) -> bool {
        self.alts.iter().all(|a| a.granted)
    }

    /// Whether any alternative's guard held.
    pub fn any_granted(&self) -> bool {
        self.alts.iter().any(|a| a.granted)
    }

    /// Whether the transaction was partitioned at all.
    pub fn is_poly(&self) -> bool {
        self.alts.len() > 1
    }

    /// Collates the per-alternative writes into one [`Entry`] per item.
    ///
    /// For an alternative that does not write the item (e.g. its guard was
    /// denied), the item's *current* entry is used, per §3.2: "or is the
    /// previous value of the item if transaction `T_c` does not compute a new
    /// value for the item".
    pub fn collate_writes(
        &self,
        current: &impl ReadSource,
    ) -> Result<BTreeMap<ItemId, Entry<Value>>, CollateError> {
        let mut items: Vec<ItemId> = Vec::new();
        for alt in &self.alts {
            for item in alt.writes.keys() {
                if !items.contains(item) {
                    items.push(*item);
                }
            }
        }
        let mut out = BTreeMap::new();
        for item in items {
            let mut pairs: Vec<(Entry<Value>, Condition)> = Vec::with_capacity(self.alts.len());
            for alt in &self.alts {
                let entry = match alt.writes.get(&item) {
                    Some(v) => Entry::Simple(v.clone()),
                    None => current
                        .read_entry(item)
                        .ok_or(CollateError::MissingItem(item))?,
                };
                pairs.push((entry, alt.cond.clone()));
            }
            let entry = Entry::assemble(pairs).map_err(CollateError::Poly)?;
            out.insert(item, entry);
        }
        Ok(out)
    }

    /// Collates per-alternative outputs into one [`Entry`] per output name.
    ///
    /// An output whose value agrees across all alternatives collates to a
    /// simple entry — the §3.4 case where uncertainty in the database is not
    /// reflected in the system's outputs.
    pub fn collate_outputs(&self) -> Result<Vec<(String, Entry<Value>)>, CollateError> {
        let Some(first) = self.alts.first() else {
            return Ok(Vec::new());
        };
        let mut out = Vec::with_capacity(first.outputs.len());
        for (idx, (name, _)) in first.outputs.iter().enumerate() {
            let pairs = self
                .alts
                .iter()
                .map(|alt| {
                    let (_, v) = &alt.outputs[idx];
                    (Entry::Simple(v.clone()), alt.cond.clone())
                })
                .collect();
            let entry = Entry::assemble(pairs).map_err(CollateError::Poly)?;
            out.push((name.clone(), entry));
        }
        Ok(out)
    }

    /// Collates the guard decision across alternatives.
    pub fn collate_granted(&self) -> Result<Entry<Value>, CollateError> {
        let pairs = self
            .alts
            .iter()
            .map(|alt| (Entry::Simple(Value::Bool(alt.granted)), alt.cond.clone()))
            .collect();
        Entry::assemble(pairs).map_err(CollateError::Poly)
    }
}

/// Errors from collating alternative results into entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CollateError {
    /// The current value of an item was needed but unavailable.
    MissingItem(ItemId),
    /// The collated pairs violate the polyvalue invariant (indicates a bug in
    /// the partitioning rules; should not occur).
    Poly(PolyError),
}

impl fmt::Display for CollateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollateError::MissingItem(item) => write!(f, "missing current value for {item}"),
            CollateError::Poly(e) => write!(f, "collation produced invalid polyvalue: {e}"),
        }
    }
}

impl std::error::Error for CollateError {}

/// One in-progress alternative transaction.
#[derive(Debug, Clone)]
struct Alternative {
    cond: Condition,
    bindings: BTreeMap<ItemId, Value>,
}

/// Internal control flow: an alternative either needs splitting on an item or
/// hit a hard error.
enum EvalStop {
    Split(ItemId),
    Error(EvalError),
}

impl From<EvalError> for EvalStop {
    fn from(e: EvalError) -> Self {
        EvalStop::Error(e)
    }
}

impl From<ValueError> for EvalStop {
    fn from(e: ValueError) -> Self {
        EvalStop::Error(EvalError::Value(e))
    }
}

/// Evaluates `spec` against `source`, partitioning into alternative
/// transactions as polyvalued items are read.
///
/// # Examples
///
/// ```
/// use pv_core::expr::{evaluate, Expr, ItemId, SplitMode};
/// use pv_core::spec::TransactionSpec;
/// use pv_core::{Entry, TxnId, Value};
/// use std::collections::BTreeMap;
///
/// let seat_count = ItemId(0);
/// let mut db = BTreeMap::new();
/// // The count is in doubt: 5 if T1 completed, 4 otherwise.
/// db.insert(
///     seat_count,
///     Entry::in_doubt(
///         Entry::Simple(Value::Int(5)),
///         Entry::Simple(Value::Int(4)),
///         TxnId(1),
///     ),
/// );
/// // Grant a reservation if even the largest possible count is below 10.
/// let spec = TransactionSpec::new()
///     .guard(Expr::read(seat_count).lt(Expr::int(10)))
///     .update(seat_count, Expr::read(seat_count).add(Expr::int(1)));
/// let out = evaluate(&spec, &db, SplitMode::Lazy).unwrap();
/// assert!(out.all_granted()); // both alternatives grant
/// ```
pub fn evaluate(
    spec: &TransactionSpec,
    source: &impl ReadSource,
    mode: SplitMode,
) -> Result<EvalOutcome, EvalError> {
    let mut stats = EvalStats::default();
    let mut work: Vec<Alternative> = Vec::new();

    match mode {
        SplitMode::Lazy => {
            work.push(Alternative {
                cond: Condition::tru(),
                bindings: BTreeMap::new(),
            });
        }
        SplitMode::Eager => {
            // Partition up front on every polyvalued item in the read set.
            let mut alts = vec![Alternative {
                cond: Condition::tru(),
                bindings: BTreeMap::new(),
            }];
            for item in spec.read_set() {
                let entry = source
                    .read_entry(item)
                    .ok_or(EvalError::MissingItem(item))?;
                stats.item_reads += 1;
                match entry {
                    Entry::Simple(v) => {
                        for alt in &mut alts {
                            alt.bindings.insert(item, v.clone());
                        }
                    }
                    Entry::Poly(p) => {
                        stats.splits += 1;
                        let mut next = Vec::with_capacity(alts.len() * p.len());
                        for alt in alts {
                            for (v, c) in p.pairs() {
                                let cond = alt.cond.and(c);
                                if cond.is_false() {
                                    continue;
                                }
                                let mut bindings = alt.bindings.clone();
                                bindings.insert(item, v.clone());
                                next.push(Alternative { cond, bindings });
                            }
                        }
                        alts = next;
                    }
                }
            }
            work = alts;
        }
    }

    let mut done: Vec<AltResult> = Vec::new();
    while let Some(mut alt) = work.pop() {
        match run_alternative(spec, source, &mut alt, &mut stats) {
            Ok(result) => done.push(result),
            Err(EvalStop::Split(item)) => {
                let entry = source
                    .read_entry(item)
                    .ok_or(EvalError::MissingItem(item))?;
                let Entry::Poly(p) = entry else {
                    unreachable!("split is only requested for polyvalued items");
                };
                stats.splits += 1;
                for (v, c) in p.pairs() {
                    let cond = alt.cond.and(c);
                    if cond.is_false() {
                        continue;
                    }
                    let mut bindings = alt.bindings.clone();
                    bindings.insert(item, v.clone());
                    work.push(Alternative { cond, bindings });
                }
            }
            Err(EvalStop::Error(e)) => return Err(e),
        }
    }
    // Evaluation order (stack) produces a deterministic but arbitrary order;
    // sort by condition for reproducible output downstream.
    done.sort_by(|a, b| a.cond.cmp(&b.cond));
    stats.alternatives = done.len();
    Ok(EvalOutcome { alts: done, stats })
}

/// Runs the whole spec under one alternative; may request a split.
fn run_alternative(
    spec: &TransactionSpec,
    source: &impl ReadSource,
    alt: &mut Alternative,
    stats: &mut EvalStats,
) -> Result<AltResult, EvalStop> {
    let granted = match &spec.guard {
        None => true,
        Some(g) => eval_expr(g, source, alt, stats)?
            .as_bool()
            .ok_or(EvalError::GuardNotBool)?,
    };
    let mut writes = BTreeMap::new();
    if granted {
        for (item, expr) in &spec.updates {
            let v = eval_expr(expr, source, alt, stats)?;
            writes.insert(*item, v);
        }
    }
    let mut outputs = Vec::with_capacity(spec.outputs.len());
    for (name, expr) in &spec.outputs {
        let v = eval_expr(expr, source, alt, stats)?;
        outputs.push((name.clone(), v));
    }
    Ok(AltResult {
        cond: alt.cond.clone(),
        granted,
        writes,
        outputs,
    })
}

/// Evaluates an expression under an alternative's bindings, caching simple
/// reads and requesting a split on polyvalued reads.
fn eval_expr(
    expr: &Expr,
    source: &impl ReadSource,
    alt: &mut Alternative,
    stats: &mut EvalStats,
) -> Result<Value, EvalStop> {
    match expr {
        Expr::Const(v) => Ok(v.clone()),
        Expr::Read(item) => {
            if let Some(v) = alt.bindings.get(item) {
                return Ok(v.clone());
            }
            let entry = source
                .read_entry(*item)
                .ok_or(EvalError::MissingItem(*item))?;
            stats.item_reads += 1;
            match entry {
                Entry::Simple(v) => {
                    alt.bindings.insert(*item, v.clone());
                    Ok(v)
                }
                Entry::Poly(_) => Err(EvalStop::Split(*item)),
            }
        }
        Expr::Bin(BinOp::And, a, b) => {
            let lhs = eval_expr(a, source, alt, stats)?
                .as_bool()
                .ok_or(EvalError::OperandNotBool("&&"))?;
            if !lhs {
                return Ok(Value::Bool(false));
            }
            let rhs = eval_expr(b, source, alt, stats)?
                .as_bool()
                .ok_or(EvalError::OperandNotBool("&&"))?;
            Ok(Value::Bool(rhs))
        }
        Expr::Bin(BinOp::Or, a, b) => {
            let lhs = eval_expr(a, source, alt, stats)?
                .as_bool()
                .ok_or(EvalError::OperandNotBool("||"))?;
            if lhs {
                return Ok(Value::Bool(true));
            }
            let rhs = eval_expr(b, source, alt, stats)?
                .as_bool()
                .ok_or(EvalError::OperandNotBool("||"))?;
            Ok(Value::Bool(rhs))
        }
        Expr::Bin(op, a, b) => {
            let lhs = eval_expr(a, source, alt, stats)?;
            let rhs = eval_expr(b, source, alt, stats)?;
            let v = match op {
                BinOp::Add => lhs.add(&rhs),
                BinOp::Sub => lhs.sub(&rhs),
                BinOp::Mul => lhs.mul(&rhs),
                BinOp::Div => lhs.div(&rhs),
                BinOp::Min => lhs.min_v(&rhs),
                BinOp::Max => lhs.max_v(&rhs),
                BinOp::And | BinOp::Or => unreachable!("handled above"),
            }?;
            Ok(v)
        }
        Expr::Cmp(op, a, b) => {
            let lhs = eval_expr(a, source, alt, stats)?;
            let rhs = eval_expr(b, source, alt, stats)?;
            Ok(lhs.compare(*op, &rhs)?)
        }
        Expr::Neg(a) => Ok(eval_expr(a, source, alt, stats)?.neg()?),
        Expr::Not(a) => Ok(eval_expr(a, source, alt, stats)?.not()?),
        Expr::If(c, t, e) => {
            let cond = eval_expr(c, source, alt, stats)?
                .as_bool()
                .ok_or(EvalError::ConditionNotBool)?;
            if cond {
                eval_expr(t, source, alt, stats)
            } else {
                eval_expr(e, source, alt, stats)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::TxnId;

    fn int(n: i64) -> Entry<Value> {
        Entry::Simple(Value::Int(n))
    }

    fn doubt(new: i64, old: i64, t: u64) -> Entry<Value> {
        Entry::in_doubt(int(new), int(old), TxnId(t))
    }

    fn db(entries: Vec<(u64, Entry<Value>)>) -> BTreeMap<ItemId, Entry<Value>> {
        entries.into_iter().map(|(i, e)| (ItemId(i), e)).collect()
    }

    #[test]
    fn simple_values_yield_single_alternative() {
        let source = db(vec![(0, int(5))]);
        let spec = TransactionSpec::new()
            .update(ItemId(0), Expr::read(ItemId(0)).add(Expr::int(1)))
            .output("v", Expr::read(ItemId(0)));
        let out = evaluate(&spec, &source, SplitMode::Lazy).unwrap();
        assert_eq!(out.alts.len(), 1);
        assert!(!out.is_poly());
        assert_eq!(out.alts[0].writes[&ItemId(0)], Value::Int(6));
        assert_eq!(out.alts[0].outputs[0].1, Value::Int(5));
        assert_eq!(out.stats.splits, 0);
    }

    #[test]
    fn poly_read_partitions_into_alternatives() {
        let source = db(vec![(0, doubt(90, 100, 1))]);
        let spec =
            TransactionSpec::new().update(ItemId(0), Expr::read(ItemId(0)).sub(Expr::int(10)));
        let out = evaluate(&spec, &source, SplitMode::Lazy).unwrap();
        assert_eq!(out.alts.len(), 2);
        assert_eq!(out.stats.splits, 1);
        let writes = out.collate_writes(&source).unwrap();
        let entry = &writes[&ItemId(0)];
        let p = entry.as_poly().unwrap();
        assert_eq!(
            p.condition_for(&Value::Int(80)),
            Some(&Condition::var(TxnId(1)))
        );
        assert_eq!(
            p.condition_for(&Value::Int(90)),
            Some(&Condition::not_var(TxnId(1)))
        );
    }

    #[test]
    fn output_independent_of_uncertainty_is_simple() {
        // §3.4: uncertainty need not be reflected in outputs.
        let source = db(vec![(0, doubt(90, 100, 1))]);
        let spec = TransactionSpec::new().output("enough", Expr::read(ItemId(0)).ge(Expr::int(50)));
        let out = evaluate(&spec, &source, SplitMode::Lazy).unwrap();
        let outputs = out.collate_outputs().unwrap();
        assert_eq!(outputs[0].1, Entry::Simple(Value::Bool(true)));
    }

    #[test]
    fn lazy_mode_skips_unread_poly_items() {
        // Item 1 is poly but the if's taken branch never reads it.
        let source = db(vec![(0, int(1)), (1, doubt(5, 6, 1))]);
        let expr = Expr::ite(
            Expr::read(ItemId(0)).gt(Expr::int(0)),
            Expr::int(42),
            Expr::read(ItemId(1)),
        );
        let spec = TransactionSpec::new().output("v", expr);
        let lazy = evaluate(&spec, &source, SplitMode::Lazy).unwrap();
        assert_eq!(lazy.alts.len(), 1);
        assert_eq!(lazy.stats.splits, 0);
        let eager = evaluate(&spec, &source, SplitMode::Eager).unwrap();
        assert_eq!(eager.alts.len(), 2);
        assert_eq!(eager.stats.splits, 1);
        // Both collate to the same simple output.
        assert_eq!(
            lazy.collate_outputs().unwrap(),
            eager.collate_outputs().unwrap()
        );
    }

    #[test]
    fn short_circuit_and_skips_poly_read() {
        let source = db(vec![(0, int(0)), (1, doubt(5, 6, 1))]);
        let spec = TransactionSpec::new().output(
            "v",
            Expr::read(ItemId(0))
                .gt(Expr::int(0))
                .and(Expr::read(ItemId(1)).gt(Expr::int(0))),
        );
        let out = evaluate(&spec, &source, SplitMode::Lazy).unwrap();
        assert_eq!(out.alts.len(), 1);
        assert_eq!(out.alts[0].outputs[0].1, Value::Bool(false));
    }

    #[test]
    fn short_circuit_or_skips_poly_read() {
        let source = db(vec![(0, int(1)), (1, doubt(5, 6, 1))]);
        let spec = TransactionSpec::new().output(
            "v",
            Expr::read(ItemId(0))
                .gt(Expr::int(0))
                .or(Expr::read(ItemId(1)).gt(Expr::int(0))),
        );
        let out = evaluate(&spec, &source, SplitMode::Lazy).unwrap();
        assert_eq!(out.alts.len(), 1);
        assert_eq!(out.alts[0].outputs[0].1, Value::Bool(true));
    }

    #[test]
    fn two_poly_reads_partition_into_four() {
        let source = db(vec![(0, doubt(1, 2, 1)), (1, doubt(10, 20, 2))]);
        let spec =
            TransactionSpec::new().output("sum", Expr::read(ItemId(0)).add(Expr::read(ItemId(1))));
        let out = evaluate(&spec, &source, SplitMode::Lazy).unwrap();
        assert_eq!(out.alts.len(), 4);
        // Conditions are pairwise disjoint and complete.
        let conds: Vec<&Condition> = out.alts.iter().map(|a| &a.cond).collect();
        assert!(Condition::pairwise_disjoint(&conds));
        assert!(Condition::complete(conds.iter().copied()));
        let outputs = out.collate_outputs().unwrap();
        let p = outputs[0].1.as_poly().unwrap();
        assert_eq!(p.len(), 4); // 11, 21, 12, 22
    }

    #[test]
    fn correlated_poly_reads_share_conditions() {
        // Two items in doubt under the *same* transaction: only two
        // consistent alternatives exist, not four.
        let source = db(vec![(0, doubt(1, 2, 1)), (1, doubt(10, 20, 1))]);
        let spec =
            TransactionSpec::new().output("sum", Expr::read(ItemId(0)).add(Expr::read(ItemId(1))));
        let out = evaluate(&spec, &source, SplitMode::Lazy).unwrap();
        assert_eq!(out.alts.len(), 2);
        let outputs = out.collate_outputs().unwrap();
        let p = outputs[0].1.as_poly().unwrap();
        // 1+10=11 under T1, 2+20=22 under ¬T1.
        assert_eq!(
            p.condition_for(&Value::Int(11)),
            Some(&Condition::var(TxnId(1)))
        );
        assert_eq!(
            p.condition_for(&Value::Int(22)),
            Some(&Condition::not_var(TxnId(1)))
        );
    }

    #[test]
    fn guard_denied_alternative_writes_nothing() {
        let source = db(vec![(0, doubt(5, 100, 1))]);
        // Withdraw 50 if balance covers it.
        let spec = TransactionSpec::new()
            .guard(Expr::read(ItemId(0)).ge(Expr::int(50)))
            .update(ItemId(0), Expr::read(ItemId(0)).sub(Expr::int(50)))
            .output("granted", Expr::read(ItemId(0)).ge(Expr::int(50)));
        let out = evaluate(&spec, &source, SplitMode::Lazy).unwrap();
        assert_eq!(out.alts.len(), 2);
        assert!(out.any_granted());
        assert!(!out.all_granted());
        // Collated write: 50 if ¬T1 (granted from 100), otherwise previous
        // value (the in-doubt polyvalue's T1 branch: 5).
        let writes = out.collate_writes(&source).unwrap();
        let p = writes[&ItemId(0)].as_poly().unwrap();
        assert_eq!(
            p.condition_for(&Value::Int(50)),
            Some(&Condition::not_var(TxnId(1)))
        );
        assert_eq!(
            p.condition_for(&Value::Int(5)),
            Some(&Condition::var(TxnId(1)))
        );
        // The granted flag itself is uncertain.
        let granted = out.collate_granted().unwrap();
        assert!(granted.is_poly());
    }

    #[test]
    fn missing_item_is_an_error() {
        let source = db(vec![]);
        let spec = TransactionSpec::new().output("v", Expr::read(ItemId(9)));
        assert_eq!(
            evaluate(&spec, &source, SplitMode::Lazy),
            Err(EvalError::MissingItem(ItemId(9)))
        );
        assert_eq!(
            evaluate(&spec, &source, SplitMode::Eager),
            Err(EvalError::MissingItem(ItemId(9)))
        );
    }

    #[test]
    fn type_errors_abort_evaluation() {
        let source = db(vec![(0, int(1))]);
        let bad_guard = TransactionSpec::new().guard(Expr::read(ItemId(0)));
        assert_eq!(
            evaluate(&bad_guard, &source, SplitMode::Lazy),
            Err(EvalError::GuardNotBool)
        );
        let bad_add = TransactionSpec::new().output("v", Expr::int(1).add(Expr::bool(true)));
        assert!(matches!(
            evaluate(&bad_add, &source, SplitMode::Lazy),
            Err(EvalError::Value(_))
        ));
        let bad_if =
            TransactionSpec::new().output("v", Expr::ite(Expr::int(1), Expr::int(2), Expr::int(3)));
        assert_eq!(
            evaluate(&bad_if, &source, SplitMode::Lazy),
            Err(EvalError::ConditionNotBool)
        );
        let bad_and = TransactionSpec::new().output("v", Expr::int(1).and(Expr::bool(true)));
        assert_eq!(
            evaluate(&bad_and, &source, SplitMode::Lazy),
            Err(EvalError::OperandNotBool("&&"))
        );
        let bad_or = TransactionSpec::new().output("v", Expr::bool(false).or(Expr::int(1)));
        assert_eq!(
            evaluate(&bad_or, &source, SplitMode::Lazy),
            Err(EvalError::OperandNotBool("||"))
        );
    }

    #[test]
    fn eager_and_lazy_agree_semantically() {
        let source = db(vec![
            (0, doubt(1, 2, 1)),
            (1, doubt(10, 20, 2)),
            (2, int(100)),
        ]);
        let spec = TransactionSpec::new()
            .guard(Expr::read(ItemId(2)).gt(Expr::int(0)))
            .update(
                ItemId(2),
                Expr::read(ItemId(0))
                    .add(Expr::read(ItemId(1)))
                    .add(Expr::read(ItemId(2))),
            )
            .output("x", Expr::read(ItemId(0)));
        let lazy = evaluate(&spec, &source, SplitMode::Lazy).unwrap();
        let eager = evaluate(&spec, &source, SplitMode::Eager).unwrap();
        assert_eq!(
            lazy.collate_writes(&source).unwrap(),
            eager.collate_writes(&source).unwrap()
        );
        assert_eq!(
            lazy.collate_outputs().unwrap(),
            eager.collate_outputs().unwrap()
        );
    }

    #[test]
    fn reading_same_poly_item_twice_splits_once() {
        let source = db(vec![(0, doubt(1, 2, 1))]);
        let spec = TransactionSpec::new()
            .output("double", Expr::read(ItemId(0)).add(Expr::read(ItemId(0))));
        let out = evaluate(&spec, &source, SplitMode::Lazy).unwrap();
        assert_eq!(out.alts.len(), 2);
        assert_eq!(out.stats.splits, 1);
        let outputs = out.collate_outputs().unwrap();
        let p = outputs[0].1.as_poly().unwrap();
        assert!(p.condition_for(&Value::Int(2)).is_some());
        assert!(p.condition_for(&Value::Int(4)).is_some());
    }

    #[test]
    fn collate_writes_with_missing_current_value_errors() {
        // Alternative 2 does not write item 0 and the source lacks it.
        let mut source = db(vec![(0, doubt(5, 100, 1))]);
        let spec = TransactionSpec::new()
            .guard(Expr::read(ItemId(0)).ge(Expr::int(50)))
            .update(ItemId(0), Expr::int(0));
        let out = evaluate(&spec, &source, SplitMode::Lazy).unwrap();
        source.clear();
        assert_eq!(
            out.collate_writes(&source),
            Err(CollateError::MissingItem(ItemId(0)))
        );
    }

    #[test]
    fn value_map_read_source() {
        let mut m: BTreeMap<ItemId, Value> = BTreeMap::new();
        m.insert(ItemId(0), Value::Int(9));
        assert_eq!(m.read_entry(ItemId(0)), Some(Entry::Simple(Value::Int(9))));
        assert_eq!(m.read_entry(ItemId(1)), None);
    }

    #[test]
    fn error_display() {
        assert!(EvalError::MissingItem(ItemId(3))
            .to_string()
            .contains("item3"));
        assert!(EvalError::GuardNotBool.to_string().contains("guard"));
        assert!(CollateError::MissingItem(ItemId(3))
            .to_string()
            .contains("item3"));
    }
}
