//! Polyvalues: sets of `⟨value, condition⟩` pairs (§3 of the paper).

use crate::cond::Condition;
use crate::entry::Entry;
use crate::txn::TxnId;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A polyvalue: the set of values an item could currently have, depending on
/// the outcomes of transactions delayed by failures.
///
/// A polyvalue is a set of pairs `⟨v, c⟩` where `v` is a simple value and `c`
/// is a [`Condition`] over transaction identifiers indicating when `v` is the
/// correct value. The invariant from §3 of the paper holds at all times:
///
/// * the conditions are **complete** — exactly one is true under any outcome
///   assignment — and
/// * **disjoint** — no two can be true simultaneously — and
/// * the representation is **minimal** — values are pairwise distinct, every
///   condition is satisfiable, and each is in sum-of-products form.
///
/// Construct polyvalues through [`Entry::assemble`] or [`Entry::in_doubt`],
/// which apply the paper's three simplification rules (flatten nesting, merge
/// equal values, drop false conditions) and enforce the invariant.
///
/// # Examples
///
/// ```
/// use pv_core::{Condition, Entry, TxnId};
///
/// // A transfer of 10 from a balance of 100 is in doubt under T9:
/// let e = Entry::in_doubt(Entry::Simple(90), Entry::Simple(100), TxnId(9));
/// let p = e.as_poly().unwrap();
/// assert_eq!(p.len(), 2);
/// assert_eq!(p.condition_for(&90), Some(&Condition::var(TxnId(9))));
/// // Learning that T9 completed collapses the polyvalue:
/// assert_eq!(e.assign_outcome(TxnId(9), true), Entry::Simple(90));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Polyvalue<V> {
    /// Invariant: ≥ 2 pairs, complete & disjoint conditions, distinct values,
    /// no unsatisfiable conditions.
    pairs: Vec<(V, Condition)>,
}

/// Errors detected when constructing or validating a polyvalue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolyError {
    /// No pair survived simplification (all conditions were false).
    Empty,
    /// The conditions do not cover every outcome assignment.
    NotComplete,
    /// Two conditions can hold simultaneously.
    NotDisjoint,
    /// Two pairs carry the same value (the representation is not minimal).
    DuplicateValue,
    /// A pair carries an unsatisfiable condition.
    FalseCondition,
}

impl fmt::Display for PolyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolyError::Empty => write!(f, "polyvalue has no satisfiable pairs"),
            PolyError::NotComplete => write!(f, "polyvalue conditions are not complete"),
            PolyError::NotDisjoint => write!(f, "polyvalue conditions are not disjoint"),
            PolyError::DuplicateValue => write!(f, "polyvalue has duplicate values"),
            PolyError::FalseCondition => write!(f, "polyvalue has an unsatisfiable condition"),
        }
    }
}

impl std::error::Error for PolyError {}

impl<V: Clone + Eq> Polyvalue<V> {
    /// Builds a polyvalue from pairs already known to satisfy the invariant.
    ///
    /// Callers outside this crate should use [`Entry::assemble`]. This
    /// constructor still debug-asserts minimality cheaply.
    pub(crate) fn from_invariant_pairs(pairs: Vec<(V, Condition)>) -> Self {
        debug_assert!(pairs.len() >= 2);
        Polyvalue { pairs }
    }

    /// The `⟨value, condition⟩` pairs, in insertion order.
    pub fn pairs(&self) -> &[(V, Condition)] {
        &self.pairs
    }

    /// Number of pairs (always ≥ 2).
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Polyvalues are never empty; provided for clippy-conventional pairing
    /// with [`Polyvalue::len`].
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates over the possible values.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.pairs.iter().map(|(v, _)| v)
    }

    /// The condition under which `value` is correct, if `value` is one of the
    /// possibilities.
    pub fn condition_for(&self, value: &V) -> Option<&Condition> {
        self.pairs.iter().find(|(v, _)| v == value).map(|(_, c)| c)
    }

    /// All transactions whose outcomes this polyvalue depends on.
    pub fn deps(&self) -> BTreeSet<TxnId> {
        self.pairs.iter().flat_map(|(_, c)| c.vars()).collect()
    }

    /// Substitutes a known outcome for `txn` and re-simplifies; the result
    /// may collapse to a simple value.
    pub fn assign_outcome(&self, txn: TxnId, completed: bool) -> Entry<V> {
        let pairs = self
            .pairs
            .iter()
            .map(|(v, c)| (Entry::Simple(v.clone()), c.assign(txn, completed)))
            .collect();
        Entry::assemble(pairs).expect("outcome substitution preserves the invariant")
    }

    /// The value selected by a complete outcome assignment, if any condition
    /// is satisfied. For a valid polyvalue with a total assignment over its
    /// dependencies this is always `Some`.
    pub fn resolve(&self, assignment: &BTreeMap<TxnId, bool>) -> Option<&V> {
        self.pairs
            .iter()
            .find(|(_, c)| c.eval(assignment))
            .map(|(v, _)| v)
    }

    /// Applies `f` to every possible value, keeping the conditions. Equal
    /// outputs are re-merged, so the result may collapse to a simple entry.
    pub fn map<W: Clone + Eq>(&self, mut f: impl FnMut(&V) -> W) -> Entry<W> {
        let pairs = self
            .pairs
            .iter()
            .map(|(v, c)| (Entry::Simple(f(v)), c.clone()))
            .collect();
        Entry::assemble(pairs).expect("mapping preserves completeness and disjointness")
    }

    /// Checks the full §3 invariant; used by tests and debug assertions.
    pub fn validate(&self) -> Result<(), PolyError> {
        if self.pairs.is_empty() {
            return Err(PolyError::Empty);
        }
        for (i, (v, c)) in self.pairs.iter().enumerate() {
            if c.is_false() {
                return Err(PolyError::FalseCondition);
            }
            for (v2, c2) in &self.pairs[i + 1..] {
                if v == v2 {
                    return Err(PolyError::DuplicateValue);
                }
                if !c.disjoint_with(c2) {
                    return Err(PolyError::NotDisjoint);
                }
            }
        }
        if !Condition::complete(self.pairs.iter().map(|(_, c)| c)) {
            return Err(PolyError::NotComplete);
        }
        Ok(())
    }
}

impl<V: fmt::Display> fmt::Display for Polyvalue<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (v, c) in &self.pairs {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "⟨{v}, {c}⟩")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::Condition;

    fn in_doubt_int(new: i64, old: i64, t: u64) -> Entry<i64> {
        Entry::in_doubt(Entry::Simple(new), Entry::Simple(old), TxnId(t))
    }

    #[test]
    fn in_doubt_builds_two_pair_polyvalue() {
        let e = in_doubt_int(90, 100, 1);
        let p = e.as_poly().unwrap();
        assert_eq!(p.len(), 2);
        p.validate().unwrap();
        assert_eq!(p.condition_for(&90), Some(&Condition::var(TxnId(1))));
        assert_eq!(p.condition_for(&100), Some(&Condition::not_var(TxnId(1))));
        assert_eq!(p.condition_for(&5), None);
    }

    #[test]
    fn equal_new_and_old_collapse_to_simple() {
        // Rule 2: the same value under both outcomes is certain.
        let e = in_doubt_int(100, 100, 1);
        assert_eq!(e, Entry::Simple(100));
    }

    #[test]
    fn assign_outcome_collapses() {
        let e = in_doubt_int(90, 100, 1);
        let p = e.as_poly().unwrap();
        assert_eq!(p.assign_outcome(TxnId(1), true), Entry::Simple(90));
        assert_eq!(p.assign_outcome(TxnId(1), false), Entry::Simple(100));
    }

    #[test]
    fn assign_unrelated_outcome_is_identity() {
        let e = in_doubt_int(90, 100, 1);
        let p = e.as_poly().unwrap();
        assert_eq!(p.assign_outcome(TxnId(99), true), e);
    }

    #[test]
    fn nested_in_doubt_flattens() {
        // Item in doubt under T1, then a second in-doubt update under T2
        // stacks on top: rule 1 flattens the nesting.
        let first = in_doubt_int(90, 100, 1);
        let second = Entry::in_doubt(Entry::Simple(50), first.clone(), TxnId(2));
        let p = second.as_poly().unwrap();
        p.validate().unwrap();
        assert_eq!(p.len(), 3);
        // ⟨50, T2⟩, ⟨90, ¬T2∧T1⟩, ⟨100, ¬T2∧¬T1⟩.
        assert_eq!(p.condition_for(&50), Some(&Condition::var(TxnId(2))));
        assert_eq!(
            p.condition_for(&90),
            Some(&Condition::not_var(TxnId(2)).and(&Condition::var(TxnId(1))))
        );
        // Resolving both outcomes picks the right value.
        assert_eq!(p.assign_outcome(TxnId(2), true), Entry::Simple(50));
        let after = p.assign_outcome(TxnId(2), false);
        assert_eq!(after, first);
    }

    #[test]
    fn deps_lists_all_transactions() {
        let first = in_doubt_int(90, 100, 1);
        let second = Entry::in_doubt(Entry::Simple(50), first, TxnId(2));
        let p = second.as_poly().unwrap();
        let deps: Vec<u64> = p.deps().into_iter().map(|t| t.raw()).collect();
        assert_eq!(deps, vec![1, 2]);
    }

    #[test]
    fn resolve_selects_by_assignment() {
        let e = in_doubt_int(90, 100, 1);
        let p = e.as_poly().unwrap();
        let mut a = BTreeMap::new();
        a.insert(TxnId(1), true);
        assert_eq!(p.resolve(&a), Some(&90));
        a.insert(TxnId(1), false);
        assert_eq!(p.resolve(&a), Some(&100));
    }

    #[test]
    fn map_preserves_conditions_and_may_collapse() {
        let e = in_doubt_int(90, 100, 1);
        let p = e.as_poly().unwrap();
        // Distinct outputs stay poly.
        let doubled = p.map(|v| v * 2);
        let dp = doubled.as_poly().unwrap();
        assert_eq!(dp.condition_for(&180), Some(&Condition::var(TxnId(1))));
        // Constant map collapses to a simple value.
        assert_eq!(p.map(|_| 7), Entry::Simple(7));
    }

    #[test]
    fn validate_rejects_bad_polyvalues() {
        // Hand-built invalid polyvalues to exercise each error.
        let t1 = Condition::var(TxnId(1));
        let n1 = Condition::not_var(TxnId(1));
        let not_disjoint = Polyvalue {
            pairs: vec![(1i64, Condition::tru()), (2, t1.clone())],
        };
        assert_eq!(not_disjoint.validate(), Err(PolyError::NotDisjoint));
        // A pair whose condition is unsatisfiable.
        let has_false = Polyvalue {
            pairs: vec![(1i64, t1.clone()), (2, t1.and(&n1))],
        };
        assert_eq!(has_false.validate(), Err(PolyError::FalseCondition));
        let dup = Polyvalue {
            pairs: vec![(1i64, t1.clone()), (1, n1.clone())],
        };
        assert_eq!(dup.validate(), Err(PolyError::DuplicateValue));
        let incomplete = Polyvalue {
            pairs: vec![(1i64, t1.and(&Condition::var(TxnId(2)))), (2, n1)],
        };
        assert_eq!(incomplete.validate(), Err(PolyError::NotComplete));
        let empty: Polyvalue<i64> = Polyvalue { pairs: vec![] };
        assert_eq!(empty.validate(), Err(PolyError::Empty));
    }

    #[test]
    fn display_renders_pairs() {
        let e = in_doubt_int(90, 100, 1);
        let p = e.as_poly().unwrap();
        assert_eq!(p.to_string(), "{⟨100, ¬T1⟩, ⟨90, T1⟩}");
    }

    #[test]
    fn error_display() {
        assert!(PolyError::Empty.to_string().contains("no satisfiable"));
        assert!(PolyError::NotComplete.to_string().contains("complete"));
        assert!(PolyError::NotDisjoint.to_string().contains("disjoint"));
    }
}
