//! Criterion bench: cost of the condition algebra (Blake canonical form).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pv_core::{Condition, TxnId};

/// A condition shaped like real polyvalue conditions: a conjunction of `n`
/// literals with alternating polarity.
fn chain(n: u64) -> Condition {
    let mut c = Condition::tru();
    for v in 0..n {
        let lit = if v % 2 == 0 {
            Condition::var(TxnId(v))
        } else {
            Condition::not_var(TxnId(v))
        };
        c = c.and(&lit);
    }
    c
}

/// A disjunction of `n` single-literal products — the worst common case for
/// consensus closure.
fn fan(n: u64) -> Condition {
    let mut c = Condition::fls();
    for v in 0..n {
        c = c.or(&Condition::var(TxnId(v)));
    }
    c
}

fn bench_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("condition");
    for n in [2u64, 4, 8] {
        let a = chain(n);
        let b = fan(n);
        group.bench_with_input(BenchmarkId::new("and_chain_fan", n), &n, |bench, _| {
            bench.iter(|| black_box(a.and(&b)))
        });
        group.bench_with_input(BenchmarkId::new("or_chain_fan", n), &n, |bench, _| {
            bench.iter(|| black_box(a.or(&b)))
        });
        group.bench_with_input(BenchmarkId::new("not_fan", n), &n, |bench, _| {
            bench.iter(|| black_box(b.not()))
        });
        group.bench_with_input(BenchmarkId::new("assign_chain", n), &n, |bench, _| {
            bench.iter(|| black_box(a.assign(TxnId(0), true)))
        });
        group.bench_with_input(BenchmarkId::new("tautology_check", n), &n, |bench, _| {
            let taut = b.or(&b.not());
            bench.iter(|| black_box(taut.is_true()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
