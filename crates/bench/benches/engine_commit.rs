//! Criterion bench: end-to-end engine throughput (simulated cluster, no
//! failures) — how expensive a distributed commit is per protocol.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pv_engine::{
    ClientConfig, ClusterBuilder, CommitProtocol, Directory, EngineConfig, RandomTransfers,
};
use pv_simnet::{NetConfig, SimTime};

/// Builds and runs a cluster through `txns` transfers; returns commits (so
/// the optimiser cannot elide the run).
fn run_batch(protocol: CommitProtocol, txns: u64, seed: u64) -> u64 {
    let mut builder = ClusterBuilder::new(4, Directory::Mod(4))
        .seed(seed)
        .net(NetConfig::instant())
        .engine(EngineConfig::with_protocol(protocol))
        .uniform_items(64, 1_000);
    builder = builder.client(
        ClientConfig {
            record_results: false,
            ..ClientConfig::default()
        },
        Box::new(RandomTransfers::new(64, 10_000.0, 50).with_limit(txns)),
    );
    let mut cluster = builder.build();
    cluster.run_until(SimTime::from_secs(30));
    cluster.world.metrics().counter("txn.committed")
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_commit");
    group.sample_size(10);
    for protocol in [
        CommitProtocol::Polyvalue,
        CommitProtocol::Blocking2pc,
        CommitProtocol::Relaxed { complete_prob: 1.0 },
    ] {
        group.bench_with_input(
            BenchmarkId::new("500_transfers", protocol.label()),
            &protocol,
            |b, &p| b.iter(|| black_box(run_batch(p, 500, 42))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
