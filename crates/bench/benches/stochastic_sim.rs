//! Criterion bench: throughput of the §4.2 stochastic simulation (events per
//! second of wall time), sized so a full Table 2 row is cheap to regenerate.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pv_model::ModelParams;
use pv_stochsim::{SimConfig, Simulation};

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("stochsim");
    group.sample_size(10);
    for (label, params) in [
        (
            "u10_d1",
            ModelParams {
                u: 10.0,
                f: 0.01,
                i: 1e4,
                r: 0.01,
                y: 0.0,
                d: 1.0,
            },
        ),
        (
            "u10_d5",
            ModelParams {
                u: 10.0,
                f: 0.01,
                i: 1e4,
                r: 0.01,
                y: 0.0,
                d: 5.0,
            },
        ),
    ] {
        group.bench_with_input(BenchmarkId::new("run_400s", label), &params, |b, &p| {
            b.iter(|| {
                let cfg = SimConfig::new(p, 7).with_horizon(400.0);
                black_box(Simulation::new(cfg).run().mean_poly)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
