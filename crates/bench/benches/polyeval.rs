//! Criterion bench: the polytransaction evaluator, lazy vs. eager.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pv_core::expr::{evaluate, SplitMode};
use pv_core::{Entry, Expr, ItemId, TransactionSpec, TxnId, Value};
use std::collections::BTreeMap;

fn db(total: u64, poly: u64) -> BTreeMap<ItemId, Entry<Value>> {
    (0..total)
        .map(|i| {
            let entry = if i < poly {
                Entry::in_doubt(
                    Entry::Simple(Value::Int(i as i64 + 100)),
                    Entry::Simple(Value::Int(i as i64)),
                    TxnId(i),
                )
            } else {
                Entry::Simple(Value::Int(i as i64))
            };
            (ItemId(i), entry)
        })
        .collect()
}

/// A transfer-shaped spec over the first two items.
fn transfer_spec() -> TransactionSpec {
    let (f, t) = (ItemId(0), ItemId(1));
    TransactionSpec::new()
        .guard(Expr::read(f).ge(Expr::int(10)))
        .update(f, Expr::read(f).sub(Expr::int(10)))
        .update(t, Expr::read(t).add(Expr::int(10)))
        .output("granted", Expr::read(f).ge(Expr::int(10)))
}

/// A sum over the first `n` items.
fn sum_spec(n: u64) -> TransactionSpec {
    let mut sum = Expr::int(0);
    for i in 0..n {
        sum = sum.add(Expr::read(ItemId(i)));
    }
    TransactionSpec::new().output("sum", sum)
}

fn bench_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("polyeval");
    for poly in [0u64, 1, 2, 4] {
        let source = db(8, poly);
        let transfer = transfer_spec();
        let sum = sum_spec(6);
        group.bench_with_input(BenchmarkId::new("transfer_lazy", poly), &poly, |b, _| {
            b.iter(|| black_box(evaluate(&transfer, &source, SplitMode::Lazy).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("transfer_eager", poly), &poly, |b, _| {
            b.iter(|| black_box(evaluate(&transfer, &source, SplitMode::Eager).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("sum_lazy", poly), &poly, |b, _| {
            b.iter(|| black_box(evaluate(&sum, &source, SplitMode::Lazy).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("collate_writes", poly), &poly, |b, _| {
            let out = evaluate(&transfer, &source, SplitMode::Lazy).unwrap();
            b.iter(|| black_box(out.collate_writes(&source).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_eval);
criterion_main!(benches);
