//! Criterion bench: polyvalue construction, simplification, and reduction.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pv_core::{Entry, TxnId, Value};

/// Stacks `depth` in-doubt updates (distinct transactions, distinct values):
/// the worst case where nothing merges.
fn stacked(depth: u64) -> Entry<Value> {
    let mut e = Entry::Simple(Value::Int(0));
    for t in 0..depth {
        e = Entry::in_doubt(Entry::Simple(Value::Int(t as i64 + 1)), e, TxnId(t));
    }
    e
}

fn bench_poly(c: &mut Criterion) {
    let mut group = c.benchmark_group("polyvalue");
    for depth in [1u64, 3, 6] {
        group.bench_with_input(
            BenchmarkId::new("stack_in_doubt", depth),
            &depth,
            |b, &d| b.iter(|| black_box(stacked(d))),
        );
        let e = stacked(depth);
        group.bench_with_input(BenchmarkId::new("assign_outcome", depth), &depth, |b, _| {
            b.iter(|| black_box(e.assign_outcome(TxnId(0), true)))
        });
        group.bench_with_input(BenchmarkId::new("validate", depth), &depth, |b, _| {
            b.iter(|| black_box(e.validate()))
        });
        group.bench_with_input(BenchmarkId::new("deps", depth), &depth, |b, _| {
            b.iter(|| black_box(e.deps()))
        });
        group.bench_with_input(
            BenchmarkId::new("full_resolution", depth),
            &depth,
            |b, &d| {
                b.iter(|| {
                    let mut x = e.clone();
                    for t in 0..d {
                        x = x.assign_outcome(TxnId(t), t % 2 == 0);
                    }
                    black_box(x)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_poly);
criterion_main!(benches);
