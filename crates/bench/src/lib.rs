//! # pv-bench — benchmark harness
//!
//! Binaries regenerate every table and figure of the paper (plus extension
//! experiments); Criterion benches measure the mechanism's costs. See
//! `EXPERIMENTS.md` at the repository root for the index.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod report;

/// Parses an optional `--seed N` pair from the command line, defaulting to
/// the given value, so table generators are reproducible but steerable.
pub fn seed_from_args(default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|w| w[0] == "--seed")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    #[test]
    fn default_seed_without_flag() {
        assert_eq!(super::seed_from_args(7), 7);
    }
}
