//! Extension experiment: **the parameter-space exploration the paper could
//! not fit** ("Space limitations in this paper prevent a thorough
//! exploration of the parameter space").
//!
//! Prints per-parameter sweeps around the typical database, the log-log
//! elasticity of the steady state with respect to each parameter, and the
//! stability boundary in (U, D).
//!
//! Run with `cargo run -p pv-bench --bin sensitivity`.

use pv_model::sensitivity::{elasticity, stability_boundary_d, stability_boundary_u, sweep, Axis};
use pv_model::{ModelParams, Prediction};

fn fmt_pred(p: Prediction) -> String {
    match p {
        Prediction::Stable(v) => format!("{v:.2}"),
        Prediction::Unstable => "UNSTABLE".into(),
    }
}

fn main() {
    let base = ModelParams::typical();
    println!("Parameter-space exploration around the typical database ({base})");
    println!();

    println!("per-parameter sweeps (steady-state P):");
    let sweeps: [(&str, Axis, Vec<f64>); 6] = [
        ("U", Axis::U, vec![1.0, 10.0, 100.0, 500.0, 900.0]),
        ("F", Axis::F, vec![1e-5, 1e-4, 1e-3, 1e-2]),
        ("I", Axis::I, vec![1e4, 1e5, 1e6, 1e7]),
        ("R", Axis::R, vec![1e-5, 1e-4, 1e-3, 1e-2]),
        ("Y", Axis::Y, vec![0.0, 0.25, 0.5, 1.0]),
        ("D", Axis::D, vec![0.0, 1.0, 10.0, 50.0, 99.0, 101.0]),
    ];
    for (name, axis, values) in &sweeps {
        let row: Vec<String> = sweep(&base, *axis, values)
            .into_iter()
            .map(|(v, p)| format!("{v}→{}", fmt_pred(p)))
            .collect();
        println!("  {name:>2}: {}", row.join("  "));
    }
    println!();

    println!("elasticities d ln P / d ln x at the typical point:");
    for axis in Axis::all() {
        match elasticity(&base, axis) {
            Some(e) => println!("  {:>2}: {e:+.4}", axis.name()),
            None => println!("  {:>2}: n/a (zero parameter or unstable)", axis.name()),
        }
    }
    println!();

    println!("stability boundary (where polytransaction creation outruns recovery):");
    for i in [1e4, 1e5, 1e6] {
        let p = base.with_i(i);
        println!(
            "  I = {i:>9}: D* = {:>8.1} at U = 10;  U* = {:>9.1} at D = 5",
            stability_boundary_d(&p),
            stability_boundary_u(&p.with_d(5.0)).unwrap_or(f64::INFINITY),
        );
    }
    println!();
    println!("Expected shape: P scales linearly in F, ~linearly in U, inversely in R;");
    println!("Y and D matter only near the stability boundary D* = (IR + UY)/U, far");
    println!("above realistic dependency fan-ins for the paper's typical parameters.");
}
