//! Extension experiment: **polyvalue size and stacking**.
//!
//! Part 1 deterministically stacks uncertainty: transfers into one account
//! are repeatedly cut off from their coordinators at the moment of decision,
//! so the account accumulates nested in-doubt polyvalues; the item's entry
//! is printed after each step, then after resolution. This exhibits the §3.1
//! flattening rules on real protocol state.
//!
//! Part 2 measures the size distribution of every polyvalue that appears
//! during a randomized chaos run, supporting the paper's claim that "the
//! extra storage and processing required to support this mechanism are
//! small".
//!
//! Run with `cargo run -p pv-bench --bin polysize [--seed N]`.

use pv_core::{Entry, ItemId};
use pv_engine::{
    ClientConfig, Cluster, ClusterBuilder, CommitProtocol, Directory, EngineConfig, Msg,
    RandomTransfers,
};
use pv_simnet::{FailureConfig, FailurePlan, NetConfig, NodeId, SimDuration, SimRng, SimTime};
use std::collections::BTreeMap;

/// Runs the world until the cluster-wide committed counter reaches `n`.
fn run_until_committed(cluster: &mut Cluster, n: u64) {
    let mut guard = 0u64;
    while cluster.world.metrics().counter("txn.committed") < n {
        let t = SimTime(cluster.world.now().as_micros() + 1);
        cluster.run_until(t);
        guard += 1;
        assert!(guard < 10_000_000, "target commit count never reached");
    }
}

fn show(step: &str, entry: &Entry<pv_core::Value>) {
    println!(
        "{step:<34} pairs={} deps={} entry={}",
        entry.pair_count(),
        entry.deps().len(),
        entry
    );
}

/// Part 1: deterministic uncertainty staircase on one account.
fn staircase() {
    println!("Part 1: stacking uncertainty on one account");
    println!();
    // Site i holds item i (4 sites, 4 items). Item 1 is the hot account.
    let mut cluster = ClusterBuilder::new(4, Directory::Mod(4))
        .seed(11)
        .net(NetConfig::instant())
        .engine(EngineConfig::with_protocol(CommitProtocol::Polyvalue))
        .uniform_items(4, 100)
        .build();
    let hot = ItemId(1);
    show("initial", &cluster.item_entry(hot).unwrap());

    // Three transfers into the hot account, each coordinated at a different
    // site and each cut off right after its coordinator decided complete.
    for (step, from) in [0u64, 2, 3].iter().enumerate() {
        let spec = RandomTransfers::transfer_spec(ItemId(*from), hot, 10 + step as i64);
        let coordinator = NodeId(*from as u32);
        cluster.world.send_from_env(
            coordinator,
            Msg::Submit {
                req_id: 100 + step as u64,
                spec,
            },
        );
        run_until_committed(&mut cluster, step as u64 + 1);
        // Cut coordinator ↔ hot site before the decision is delivered.
        let now = cluster.world.now();
        cluster
            .world
            .schedule_partition(now, coordinator, NodeId(1));
        // Let the wait timeout install the in-doubt polyvalue.
        cluster.run_until(now + SimDuration::from_secs(1));
        show(
            &format!("after in-doubt transfer #{}", step + 1),
            &cluster.item_entry(hot).unwrap(),
        );
    }

    // Heal: outcomes propagate, the polyvalue collapses step by step.
    let now = cluster.world.now();
    for from in [0u32, 2, 3] {
        cluster.world.schedule_heal(now, NodeId(from), NodeId(1));
    }
    cluster.run_until(now + SimDuration::from_secs(10));
    show("after recovery", &cluster.item_entry(hot).unwrap());
    assert_eq!(
        cluster.total_poly_count(),
        0,
        "all uncertainty must resolve"
    );
    println!();
}

/// Part 2: statistical census under chaos.
fn census(seed: u64) {
    println!("Part 2: polyvalue size census under randomized chaos (seed {seed})");
    println!();
    const SITES: u32 = 4;
    const ACCOUNTS: u64 = 24;
    let mut builder = ClusterBuilder::new(SITES, Directory::Mod(SITES))
        .seed(seed)
        .net(NetConfig::default())
        .engine(EngineConfig {
            // Slow inquiries keep uncertainty alive long enough to observe.
            inquire_interval: SimDuration::from_secs(3),
            ..EngineConfig::with_protocol(CommitProtocol::Polyvalue)
        })
        .uniform_items(ACCOUNTS, 1_000);
    for _ in 0..3 {
        builder = builder.client(
            ClientConfig {
                record_results: false,
                ..ClientConfig::default()
            },
            Box::new(RandomTransfers::new(ACCOUNTS, 20.0, 50).with_limit(600)),
        );
    }
    let mut cluster = builder.build();
    FailurePlan::poisson(
        FailureConfig {
            crash_rate_per_sec: 0.3,
            mean_downtime_secs: 1.0,
            horizon: SimTime::from_secs(25),
        },
        SITES,
        &mut SimRng::new(seed ^ 0x517E),
    )
    .apply(&mut cluster.world);
    let mut prng = SimRng::new(seed ^ 0x9A27);
    let mut t = 0.0f64;
    while t < 25.0 {
        t += prng.exponential(0.4);
        let a = prng.below(u64::from(SITES)) as u32;
        let mut b = prng.below(u64::from(SITES)) as u32;
        if a == b {
            b = (b + 1) % SITES;
        }
        let start = SimTime::from_millis((t * 1000.0) as u64);
        let end = start + SimDuration::from_secs_f64(prng.exponential(1.5).max(0.1));
        cluster
            .world
            .schedule_partition(start, NodeId(a), NodeId(b));
        cluster.world.schedule_heal(end, NodeId(a), NodeId(b));
    }

    let mut pair_histogram: BTreeMap<usize, u64> = BTreeMap::new();
    let mut dep_histogram: BTreeMap<usize, u64> = BTreeMap::new();
    let mut observed = 0u64;
    for step in 1..=120u64 {
        cluster.run_until(SimTime::from_millis(step * 250));
        for s in 0..SITES {
            for (_, entry) in cluster.site(s).expect("site in range").store().iter_items() {
                if let Entry::Poly(p) = entry {
                    observed += 1;
                    *pair_histogram.entry(p.len()).or_insert(0) += 1;
                    *dep_histogram.entry(p.deps().len()).or_insert(0) += 1;
                }
            }
        }
    }
    let m = cluster.world.metrics();
    println!(
        "{observed} polyvalue-snapshots; {} in-doubt installs, {} polytransactions, {} commits",
        m.counter("txn.in_doubt"),
        m.counter("txn.polytransactions"),
        m.counter("txn.committed"),
    );
    println!("pairs per polyvalue:");
    for (pairs, count) in &pair_histogram {
        println!("  {pairs:>3} pairs: {count:>6}");
    }
    println!("distinct in-doubt transactions per polyvalue:");
    for (deps, count) in &dep_histogram {
        println!("  {deps:>3} deps: {count:>6}");
    }
    println!();
    println!("phase latencies over the census run:");
    println!("{}", pv_bench::report::phase_table(m));
    println!("Expected shape: part 1 shows pairs doubling 2 → 4 → 8 — each stacked");
    println!("transfer reads the uncertain balance (a polytransaction) and is itself");
    println!("left in doubt — then collapsing to one value on recovery. Part 2 shows");
    println!("the census dominated by 2-pair single-dependency polyvalues with a thin");
    println!("stacked tail — per-item overhead is a handful of values, as claimed.");
}

fn main() {
    let seed = pv_bench::seed_from_args(1979);
    staircase();
    census(seed);
}
