//! Regenerates **Figure 1** of the paper: the update-protocol state diagram
//! (idle / compute / wait), printed directly from the participant state
//! machine the engine actually runs, as a transition table and as Graphviz
//! DOT. The rendering lives beside the machine in `pv-protocol` so the
//! table can never drift from the code; a golden test pins it to
//! `results/figure1.txt`.
//!
//! Run with `cargo run -p pv-bench --bin figure1`.

use pv_protocol::render_figure1;

fn main() {
    print!("{}", render_figure1());
}
