//! Regenerates **Figure 1** of the paper: the update-protocol state diagram
//! (idle / compute / wait), printed directly from the participant state
//! machine the engine actually runs, as a transition table and as Graphviz
//! DOT.
//!
//! Run with `cargo run -p pv-bench --bin figure1`.

use pv_engine::participant::all_transitions;

fn main() {
    println!("Figure 1: The Update Protocol States");
    println!();
    println!("{:<8} | {:<32} | {:<8} | action", "state", "event", "next");
    println!("{}", "-".repeat(80));
    for (from, event, to, action) in all_transitions() {
        // Pad via strings: Display impls that use `write!` ignore width.
        println!(
            "{:<8} | {:<32} | {:<8} | {}",
            from.to_string(),
            event.to_string(),
            to.to_string(),
            action
        );
    }
    println!();
    println!("digraph figure1 {{");
    println!("  rankdir=LR;");
    for state in ["idle", "compute", "wait"] {
        println!("  {state} [shape=circle];");
    }
    for (from, event, to, action) in all_transitions() {
        println!("  {from} -> {to} [label=\"{event}\\n({action})\"];");
    }
    println!("}}");
}
