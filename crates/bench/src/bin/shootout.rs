//! Four-way commit-protocol **availability shootout**: Polyvalue, blocking
//! 2PC, relaxed, and Paxos Commit under the same seeded transfer workload
//! across a sweep of crash rates.
//!
//! Where `availability` prints a human-readable table over the three §2
//! protocols, this binary measures the quantities the protocols actually
//! trade against each other and writes them to `BENCH_shootout.json`:
//!
//! * **blocked time** — the `phase.prepared_decided` histogram: how long a
//!   committing transaction sat between its last vote and its decision.
//!   Blocking 2PC pays here when a coordinator dies mid-protocol; Paxos
//!   Commit bounds it by electing a takeover leader.
//! * **polyvalue count** — `poly.installed_items`: the paper's availability
//!   currency. Only the polyvalue protocol spends it; Paxos Commit buys the
//!   same non-blocking behaviour with acceptor messages instead.
//! * **message cost** — `net.delivered` per committed transaction. Paxos
//!   Commit's 2F+1 acceptors make its fault-free round trip strictly more
//!   expensive; the shootout quantifies by how much.
//!
//! Modes:
//!
//! * default — full sweep, writes `BENCH_shootout.json` at the repo root
//!   (the committed artifact);
//! * `--test` — CI smoke: a reduced workload, written to
//!   `target/bench-smoke/BENCH_shootout.json`, never the committed file;
//! * `--seed N` — override the workload seed.

use pv_core::ItemId;
use pv_engine::{
    ClientConfig, Cluster, ClusterBuilder, CommitProtocol, Directory, EngineConfig, RandomTransfers,
};
use pv_simnet::{FailureConfig, FailurePlan, NetConfig, SimRng, SimTime};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

const SITES: u32 = 4;
const ACCOUNTS: u64 = 24;
const INITIAL: i64 = 1_000;
const CRASH_RATES: [f64; 4] = [0.0, 0.1, 0.2, 0.4];

/// Workload scale; the smoke run shrinks it so CI finishes in seconds.
#[derive(Clone, Copy)]
struct Scale {
    clients: u32,
    per_client: u64,
    chaos_secs: u64,
}

const FULL: Scale = Scale {
    clients: 3,
    per_client: 250,
    chaos_secs: 15,
};
const SMOKE: Scale = Scale {
    clients: 2,
    per_client: 40,
    chaos_secs: 5,
};

struct Cell {
    protocol: &'static str,
    crash_rate: f64,
    prompt_frac: f64,
    committed: u64,
    in_doubt: u64,
    stalls: u64,
    takeovers: u64,
    polyvalue_items: u64,
    messages: u64,
    msgs_per_commit: f64,
    blocked_ms_mean: f64,
    blocked_ms_p99: f64,
    blocked_ms_max: f64,
    conserved: bool,
}

fn run(protocol: CommitProtocol, crash_rate: f64, seed: u64, scale: Scale) -> Cell {
    let label = protocol.label();
    let mut builder = ClusterBuilder::new(SITES, Directory::Mod(SITES))
        .seed(seed)
        .net(NetConfig::default())
        .engine(EngineConfig::with_protocol(protocol))
        .uniform_items(ACCOUNTS, INITIAL);
    for _ in 0..scale.clients {
        builder = builder.client(
            ClientConfig {
                record_results: false,
                ..ClientConfig::default()
            },
            Box::new(RandomTransfers::new(ACCOUNTS, 20.0, 50).with_limit(scale.per_client)),
        );
    }
    let mut cluster: Cluster = builder.build();
    let plan = FailurePlan::poisson(
        FailureConfig {
            crash_rate_per_sec: crash_rate,
            mean_downtime_secs: 0.8,
            horizon: SimTime::from_secs(scale.chaos_secs),
        },
        SITES,
        &mut SimRng::new(seed ^ 0xC4A5),
    );
    plan.apply(&mut cluster.world);
    // Link partitions at the same intensity (same schedule as the
    // `availability` bench): cross-site commits through the cut link are
    // left in doubt — the polyvalue mechanism's home turf, and exactly
    // where Paxos Commit's takeover path earns its message overhead.
    let mut prng = SimRng::new(seed ^ 0x9A27);
    if crash_rate > 0.0 {
        let mut t = 0.0f64;
        loop {
            t += prng.exponential(1.0 / (crash_rate * f64::from(SITES)));
            if t >= scale.chaos_secs as f64 {
                break;
            }
            let a = prng.below(u64::from(SITES)) as u32;
            let mut b = prng.below(u64::from(SITES)) as u32;
            if a == b {
                b = (b + 1) % SITES;
            }
            let start = SimTime::from_millis((t * 1000.0) as u64);
            let dur = prng.exponential(0.8).max(0.05);
            let end = start + pv_simnet::SimDuration::from_secs_f64(dur);
            cluster
                .world
                .schedule_partition(start, pv_simnet::NodeId(a), pv_simnet::NodeId(b));
            cluster
                .world
                .schedule_heal(end, pv_simnet::NodeId(a), pv_simnet::NodeId(b));
        }
    }
    cluster.run_until(SimTime::from_secs(scale.chaos_secs));
    let prompt = cluster.world.metrics().counter("client.committed");
    cluster.run_until(SimTime::from_secs(scale.chaos_secs + 25));
    let m = cluster.world.metrics();
    let committed = m.counter("client.committed");
    let messages = m.counter("net.delivered");
    let blocked = m.histogram("phase.prepared_decided");
    let ms = |v: Option<f64>| v.map_or(0.0, |s| s * 1000.0);
    let conserved = cluster.total_poly_count() == 0
        && cluster.sum_items((0..ACCOUNTS).map(ItemId)) == Ok(ACCOUNTS as i64 * INITIAL);
    Cell {
        protocol: label,
        crash_rate,
        prompt_frac: prompt as f64 / (u64::from(scale.clients) * scale.per_client) as f64,
        committed,
        in_doubt: m.counter("txn.in_doubt"),
        stalls: m.counter("blocking.stalls"),
        takeovers: m.counter("pc.takeovers"),
        polyvalue_items: m.counter("poly.installed_items"),
        messages,
        msgs_per_commit: if committed > 0 {
            messages as f64 / committed as f64
        } else {
            0.0
        },
        blocked_ms_mean: ms(blocked.and_then(|h| h.mean())),
        blocked_ms_p99: ms(blocked.and_then(|h| h.quantile(0.99))),
        blocked_ms_max: ms(blocked.and_then(|h| h.max())),
        conserved,
    }
}

fn protocols() -> [CommitProtocol; 4] {
    [
        CommitProtocol::Polyvalue,
        CommitProtocol::Blocking2pc,
        CommitProtocol::Relaxed { complete_prob: 0.5 },
        CommitProtocol::PaxosCommit,
    ]
}

fn to_json(seed: u64, scale: Scale, cells: &[Cell]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"suite\": \"four-way commit-protocol availability shootout\",\n");
    out.push_str("  \"invocation\": \"cargo run --release -p pv-bench --bin shootout\",\n");
    let _ = writeln!(
        out,
        "  \"workload\": {{\"seed\": {seed}, \"sites\": {SITES}, \"accounts\": {ACCOUNTS}, \
         \"clients\": {}, \"transfers_per_client\": {}, \"chaos_secs\": {}}},",
        scale.clients, scale.per_client, scale.chaos_secs
    );
    out.push_str("  \"rows\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"protocol\": \"{}\", \"crash_rate\": {:.2}, \"prompt_frac\": {:.4}, \
             \"committed\": {}, \"in_doubt\": {}, \"stalls\": {}, \"takeovers\": {}, \
             \"polyvalue_items\": {}, \"messages\": {}, \"msgs_per_commit\": {:.2}, \
             \"blocked_ms_mean\": {:.3}, \"blocked_ms_p99\": {:.3}, \"blocked_ms_max\": {:.3}, \
             \"conserved\": {}}}",
            c.protocol,
            c.crash_rate,
            c.prompt_frac,
            c.committed,
            c.in_doubt,
            c.stalls,
            c.takeovers,
            c.polyvalue_items,
            c.messages,
            c.msgs_per_commit,
            c.blocked_ms_mean,
            c.blocked_ms_p99,
            c.blocked_ms_max,
            c.conserved,
        );
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let test_mode = args.iter().any(|a| a == "--test");
    let seed = pv_bench::seed_from_args(1979);
    let scale = if test_mode { SMOKE } else { FULL };
    let out_path = if test_mode {
        let d = repo_root().join("target/bench-smoke");
        std::fs::create_dir_all(&d).expect("create bench-smoke dir");
        d.join("BENCH_shootout.json")
    } else {
        repo_root().join("BENCH_shootout.json")
    };

    println!(
        "shootout: {} clients x {} transfers, {SITES} sites, {}s failure window, seed {seed}{}",
        scale.clients,
        scale.per_client,
        scale.chaos_secs,
        if test_mode { " (smoke)" } else { "" }
    );
    println!();
    println!(
        "{:<13} {:>7} {:>7} {:>9} {:>9} {:>9} {:>10} {:>9} {:>10} {:>10} {:>9}",
        "protocol",
        "crash/s",
        "prompt",
        "in-doubt",
        "stalls",
        "takeover",
        "polyitems",
        "msg/cmt",
        "blk-mean",
        "blk-p99",
        "conserved"
    );
    let mut cells = Vec::new();
    let mut bad = false;
    for &crash_rate in &CRASH_RATES {
        for protocol in protocols() {
            let cell = run(protocol, crash_rate, seed, scale);
            println!(
                "{:<13} {:>7.2} {:>6.1}% {:>9} {:>9} {:>9} {:>10} {:>9.1} {:>8.1}ms {:>8.1}ms {:>9}",
                cell.protocol,
                cell.crash_rate,
                cell.prompt_frac * 100.0,
                cell.in_doubt,
                cell.stalls,
                cell.takeovers,
                cell.polyvalue_items,
                cell.msgs_per_commit,
                cell.blocked_ms_mean,
                cell.blocked_ms_p99,
                if cell.conserved { "yes" } else { "NO" },
            );
            // Every protocol except relaxed guarantees conservation; a NO
            // there is a bug, not a data point.
            if !cell.conserved && cell.protocol != "relaxed" {
                bad = true;
            }
            cells.push(cell);
        }
        println!();
    }
    std::fs::write(&out_path, to_json(seed, scale, &cells)).expect("write shootout json");
    println!("wrote {}", out_path.display());
    if bad {
        eprintln!("shootout: conservation violated by an atomic protocol");
        std::process::exit(1);
    }
}
