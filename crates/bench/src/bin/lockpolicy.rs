//! Extension experiment: **lock-conflict policy ablation** — no-wait vs.
//! wound-wait under increasing contention.
//!
//! The paper assumes *some* serializability mechanism under the polyvalue
//! protocol; this experiment shows the engine is a real transaction engine
//! by comparing the two classic no-deadlock policies on the same workload:
//! client-visible retries, commits within the run, queueing/wounding
//! activity, and conservation.
//!
//! Run with `cargo run -p pv-bench --bin lockpolicy [--seed N]`.

use pv_core::ItemId;
use pv_engine::{
    ClientConfig, ClusterBuilder, CommitProtocol, Directory, EngineConfig, LockPolicy,
    RandomTransfers,
};
use pv_simnet::{NetConfig, SimTime};

const SITES: u32 = 3;
const INITIAL: i64 = 1_000;

fn run(policy: LockPolicy, accounts: u64, seed: u64) -> (u64, u64, u64, u64, u64, bool) {
    let mut builder = ClusterBuilder::new(SITES, Directory::Mod(SITES))
        .seed(seed)
        .net(NetConfig::default())
        .engine(EngineConfig {
            lock_policy: policy,
            ..EngineConfig::with_protocol(CommitProtocol::Polyvalue)
        })
        .uniform_items(accounts, INITIAL);
    for _ in 0..3 {
        builder = builder.client(
            ClientConfig {
                record_results: false,
                ..ClientConfig::default()
            },
            Box::new(RandomTransfers::new(accounts, 30.0, 50).with_limit(250)),
        );
    }
    let mut cluster = builder.build();
    cluster.run_until(SimTime::from_secs(40));
    let m = cluster.world.metrics();
    let conserved =
        cluster.sum_items((0..accounts).map(ItemId)) == Ok(accounts as i64 * INITIAL);
    (
        m.counter("client.committed"),
        m.counter("client.retries"),
        m.counter("lock.conflicts"),
        m.counter("lock.queue_served"),
        m.counter("lock.wounds"),
        conserved,
    )
}

fn main() {
    let seed = pv_bench::seed_from_args(1979);
    println!("Lock policy ablation: 3 clients x 250 transfers over N hot accounts");
    println!("(3 sites, no failures, seed {seed})");
    println!();
    println!(
        "{:>9} {:<11} {:>9} {:>8} {:>10} {:>12} {:>7} {:>10}",
        "accounts",
        "policy",
        "commits",
        "retries",
        "conflicts",
        "queue-served",
        "wounds",
        "conserved"
    );
    for accounts in [4u64, 8, 16, 48] {
        for policy in [LockPolicy::NoWait, LockPolicy::WoundWait] {
            let (commits, retries, conflicts, served, wounds, conserved) =
                run(policy, accounts, seed);
            println!(
                "{:>9} {:<11} {:>9} {:>8} {:>10} {:>12} {:>7} {:>10}",
                accounts,
                policy.label(),
                commits,
                retries,
                conflicts,
                served,
                wounds,
                if conserved { "yes" } else { "NO" },
            );
        }
        println!();
    }
    println!("Expected shape: as accounts shrink (contention rises), no-wait burns");
    println!("retries on client-visible aborts while wound-wait absorbs conflicts in");
    println!("its queue; both always conserve money exactly.");
}
