//! Extension experiment: **transient decay** of a polyvalue burst versus the
//! §4.1 model's exponential solution — the paper's stability claim ("a
//! serious failure … does not cause the number of polyvalues to grow without
//! limit").
//!
//! Injects a 200-polyvalue burst into the §4.2 simulation and prints the
//! measured census next to the model's `P(t) = P∞ + (P₀ − P∞)e^(−λt)`.
//!
//! Run with `cargo run -p pv-bench --bin transient [--seed N]`.

use pv_model::{decay_rate, population_at, steady_state, ModelParams, Prediction};
use pv_stochsim::{SimConfig, Simulation};

fn main() {
    let seed = pv_bench::seed_from_args(1979);
    let params = ModelParams {
        u: 10.0,
        f: 0.01,
        i: 1e4,
        r: 0.02,
        y: 0.0,
        d: 1.0,
    };
    let burst = 200u64;
    let horizon = 400.0;
    let pinf = match steady_state(&params) {
        Prediction::Stable(p) => p,
        Prediction::Unstable => unreachable!("chosen parameters are stable"),
    };
    println!("Transient decay of a {burst}-polyvalue burst ({params}, seed {seed})");
    println!(
        "steady state P = {pinf:.2}, decay rate lambda = {:.4}/s",
        decay_rate(&params)
    );
    println!();

    let mut sim = Simulation::new(SimConfig::new(params, seed).with_horizon(horizon));
    sim.inject_burst(burst);
    let result = sim.run();

    println!("{:>8} {:>12} {:>12}", "t (s)", "model P(t)", "measured P");
    for &(t, p) in result.samples.iter().step_by(4) {
        let model = population_at(&params, burst as f64, t);
        println!("{t:>8.0} {model:>12.2} {p:>12}");
    }
    println!();
    println!("Expected shape: both columns decay from {burst} toward ~{pinf:.1} with");
    println!(
        "time constant ~{:.0}s, never diverging.",
        1.0 / decay_rate(&params)
    );
}
