//! `readpath` — snapshot reads versus locked reads on the live runtime.
//!
//! The motivating workload for coordination-free snapshot reads is the
//! read-heavy authorization check: most operations only *look* at hot
//! items while a trickle of transfers keeps mutating them. A locked
//! read-only transaction must win the same lock-table race as the writers
//! — under contention it conflicts, queues, or aborts and retries. A
//! snapshot read pins an MVCC sequence number and scans a consistent
//! view without touching the lock table or emitting a single protocol
//! message, so writer traffic cannot slow it down.
//!
//! The suite runs a 90/10 hot-item mix (90% reads of a two-item hot set,
//! 10% transfers over the same items) twice on a two-site
//! [`NetCluster`](pv_net::NetCluster) — real event-loop threads, real
//! localhost TCP, wall-clock time — while a background contender thread
//! (its own client connection) streams transfers over the hot items to
//! keep their locks busy:
//!
//!   * `locked_mix_90_10`   — reads issued as read-only transactions
//!     through the full commit protocol (lock table, evaluation, reply),
//!     retried on conflict like a real client.
//!   * `snapshot_mix_90_10` — the same mix with reads served by
//!     [`NetCluster::snapshot_read`](pv_net::NetCluster) over the wire.
//!
//! Results go to `BENCH_store.json` (repo root; `target/bench-smoke/` with
//! `--test`). The binary always gates on the acceptance ratio: the
//! snapshot mix must beat the locked mix by at least 1.5× or it exits
//! non-zero.
//!
//! Modes mirror `hotpath`: default re-measures against the committed
//! baselines, `--record-baseline` rewrites them, `--test` is the CI smoke
//! run (reduced op count, JSON to `target/bench-smoke/`).

use pv_core::{Expr, ItemId, TransactionSpec};
use pv_engine::{Directory, EngineConfig, Topology};
use pv_net::NetCluster;
use pv_simnet::SimDuration;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The two hot items, one homed at each site under `Directory::Mod(2)`.
const HOT: [u64; 2] = [0, 1];
const ITEMS: u64 = 8;
const INITIAL: i64 = 1_000_000;
/// Acceptance bar: snapshot mix throughput ÷ locked mix throughput.
const REQUIRED_SPEEDUP: f64 = 1.5;

struct BenchResult {
    name: &'static str,
    description: &'static str,
    unit: &'static str,
    value: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let test_mode = args.iter().any(|a| a == "--test");
    let record_baseline = args.iter().any(|a| a == "--record-baseline");
    let root = repo_root();
    let out_dir = if test_mode {
        let d = root.join("target/bench-smoke");
        std::fs::create_dir_all(&d).expect("create bench-smoke dir");
        d
    } else {
        root.clone()
    };
    let ops = if test_mode { 200 } else { 1_000 };

    println!(
        "readpath: mode = {}, {} ops per mix",
        if test_mode {
            "smoke (--test)"
        } else if record_baseline {
            "record-baseline"
        } else {
            "measure vs baseline"
        },
        ops
    );

    let locked = run_mix(ReadMode::Locked, ops);
    let snapshot = run_mix(ReadMode::Snapshot, ops);
    let speedup = snapshot / locked;
    println!("  locked_mix_90_10:   {locked:.0} ops/sec");
    println!("  snapshot_mix_90_10: {snapshot:.0} ops/sec");
    println!("  snapshot over locked: {speedup:.2}x (required >= {REQUIRED_SPEEDUP}x)");

    let results = vec![
        BenchResult {
            name: "locked_mix_90_10",
            description: "90/10 hot-item mix, reads as locked read-only transactions under writer contention (ops/sec)",
            unit: "ops/sec",
            value: locked,
        },
        BenchResult {
            name: "snapshot_mix_90_10",
            description: "90/10 hot-item mix, reads as coordination-free MVCC snapshot reads under writer contention (ops/sec)",
            unit: "ops/sec",
            value: snapshot,
        },
        BenchResult {
            name: "snapshot_over_locked",
            description: "snapshot mix throughput over locked mix throughput (gate: >= 1.5)",
            unit: "ratio",
            value: speedup,
        },
    ];
    write_suite(
        &out_dir.join("BENCH_store.json"),
        &root.join("BENCH_store.json"),
        "pv-store read path: snapshot vs locked reads (socket cluster)",
        &results,
        record_baseline,
    );

    assert!(
        speedup >= REQUIRED_SPEEDUP,
        "snapshot reads must beat locked reads by >= {REQUIRED_SPEEDUP}x, got {speedup:.2}x"
    );
}

#[derive(Clone, Copy, PartialEq)]
enum ReadMode {
    Locked,
    Snapshot,
}

fn transfer(from: u64, to: u64, amt: i64) -> TransactionSpec {
    let (f, t) = (ItemId(from), ItemId(to));
    TransactionSpec::new()
        .guard(Expr::read(f).ge(Expr::int(amt)))
        .update(f, Expr::read(f).sub(Expr::int(amt)))
        .update(t, Expr::read(t).add(Expr::int(amt)))
}

fn balance_query(item: u64) -> TransactionSpec {
    TransactionSpec::new().output("balance", Expr::read(ItemId(item)))
}

/// Short protocol timeouts keep conflicted attempts quick so the locked
/// mix measures retry pressure, not timeout stalls.
fn topology() -> Topology {
    let engine = EngineConfig {
        read_timeout: SimDuration::from_millis(200),
        ready_timeout: SimDuration::from_millis(200),
        wait_timeout: SimDuration::from_millis(50),
        read_lease: SimDuration::from_millis(500),
        inquire_interval: SimDuration::from_millis(100),
        ..EngineConfig::default()
    };
    Topology::new(2, Directory::Mod(2))
        .engine(engine)
        .uniform_items(ITEMS, INITIAL)
}

/// Runs one 90/10 mix of `ops` operations and returns ops/sec. A
/// background contender thread (its own client connection, so replies
/// never cross wires) streams hot-item transfers for the whole
/// measurement so the hot locks are busy in both modes.
fn run_mix(mode: ReadMode, ops: u64) -> f64 {
    let cluster = Arc::new(NetCluster::from_topology(topology()).expect("start net cluster"));
    let deadline = Duration::from_secs(10);

    let stop = Arc::new(AtomicBool::new(false));
    let contender = {
        let mut client = cluster.client(0).expect("contender connection");
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut k = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let (a, b) = (HOT[(k % 2) as usize], HOT[((k + 1) % 2) as usize]);
                // Conflicted or timed-out transfers are part of the load.
                let _ = client.submit(&transfer(a, b, 1), Duration::from_secs(2));
                k += 1;
            }
        })
    };

    let start = Instant::now();
    for k in 0..ops {
        if k % 10 == 9 {
            // The 10%: a transfer over the hot pair from the main client.
            let (a, b) = (HOT[(k % 2) as usize], HOT[((k + 1) % 2) as usize]);
            let _ = cluster.submit(1, &transfer(a, b, 1), deadline);
            continue;
        }
        // The 90%: read one hot item at its home site.
        let item = HOT[(k % 2) as usize];
        let site = (item % 2) as u32;
        match mode {
            ReadMode::Snapshot => {
                let (_, entries) = cluster
                    .snapshot_read(site, &[ItemId(item)], deadline)
                    .expect("snapshot read");
                assert_eq!(entries.len(), 1, "hot item missing from snapshot");
            }
            ReadMode::Locked => {
                // A real client retries conflicted reads; cap the retries so
                // a pathological schedule cannot wedge the bench.
                let mut done = false;
                for _ in 0..20 {
                    match cluster.submit(site, &balance_query(item), deadline) {
                        Ok(r) if r.is_committed() => {
                            done = true;
                            break;
                        }
                        _ => continue,
                    }
                }
                let _ = done; // an exhausted retry budget still consumed time
            }
        }
    }
    let elapsed = start.elapsed().as_secs_f64();

    stop.store(true, Ordering::Relaxed);
    contender.join().expect("contender thread");
    if mode == ReadMode::Snapshot {
        let snapshot_reads = cluster
            .metrics(deadline)
            .expect("metrics")
            .counter("store.snapshot_reads");
        assert!(snapshot_reads > 0, "snapshot mix never hit the MVCC path");
    }
    Arc::try_unwrap(cluster)
        .ok()
        .expect("all clones joined")
        .shutdown()
        .expect("clean shutdown");
    ops as f64 / elapsed
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root")
}

/// Writes the suite JSON, merging the committed `baseline` column unless
/// `record_baseline` is set (same format as the `hotpath` suites).
fn write_suite(
    out_path: &Path,
    baseline_path: &Path,
    suite: &str,
    results: &[BenchResult],
    record_baseline: bool,
) {
    let committed = std::fs::read_to_string(baseline_path).unwrap_or_default();
    let baselines = parse_baselines(&committed);
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str(&format!("  \"suite\": \"{suite}\",\n"));
    body.push_str("  \"invocation\": \"cargo run --release -p pv-bench --bin readpath\",\n");
    body.push_str("  \"benches\": [\n");
    for (idx, r) in results.iter().enumerate() {
        let baseline = if record_baseline {
            r.value
        } else {
            baselines
                .iter()
                .find(|(n, _)| n == r.name)
                .map(|(_, b)| *b)
                .unwrap_or(r.value)
        };
        let speedup = if r.value > 0.0 { baseline / r.value } else { 1.0 };
        body.push_str("    {\n");
        body.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        body.push_str(&format!("      \"description\": \"{}\",\n", r.description));
        body.push_str(&format!("      \"unit\": \"{}\",\n", r.unit));
        body.push_str(&format!("      \"baseline\": {baseline:.2},\n"));
        body.push_str(&format!("      \"current\": {:.2},\n", r.value));
        body.push_str(&format!("      \"speedup\": {speedup:.3}\n"));
        body.push_str(if idx + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    body.push_str("  ]\n}\n");
    std::fs::write(out_path, body).expect("write bench json");
    println!("wrote {}", out_path.display());
}

/// Extracts `(name, baseline)` pairs from a previously written suite file.
fn parse_baselines(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(i) = rest.find("\"name\": \"") {
        rest = &rest[i + 9..];
        let Some(end) = rest.find('"') else { break };
        let name = rest[..end].to_string();
        let Some(j) = rest.find("\"baseline\": ") else { break };
        rest = &rest[j + 12..];
        let num: String = rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            out.push((name, v));
        }
    }
    out
}
