//! `hotpath` — the machine-readable hot-path benchmark suite.
//!
//! Unlike the Criterion benches (which print human-oriented ns/iter lines),
//! this binary measures the repository's profiled hot paths and writes the
//! results to `BENCH_core.json` and `BENCH_engine.json` at the repository
//! root, so the performance trajectory is committed alongside the code.
//!
//! Micro benches (→ `BENCH_core.json`):
//!   * `condition_substitution` — outcome substitution ([`Condition::assign`])
//!     swept over a family of DNF conditions, the §3.3 failure-recovery path.
//!   * `condition_simplify`     — DNF canonicalisation (Blake form) of raw
//!     product collections ([`Condition::from_products`]).
//!   * `entry_assemble`         — the §3.1 flatten/merge/drop rules
//!     ([`Entry::assemble`]) over nested polyvalue alternatives.
//!   * `partitioning`           — polytransaction evaluation (§3.2) in both
//!     split modes, including write collation.
//!
//! Macro benches (→ `BENCH_engine.json`): wall-clock of an end-to-end seeded
//! [`Cluster`](pv_engine::Cluster) run (polyvalue protocol, lossy network) at
//! 3, 10, and 50 sites.
//!
//! Modes:
//!   * default             — re-measure, keep the committed `baseline` column,
//!     update `current` and `speedup` (baseline ÷ current).
//!   * `--record-baseline` — overwrite the `baseline` column too (run this
//!     *before* an optimisation to lock in the "before" numbers).
//!   * `--test`            — smoke mode for CI: one iteration per bench, and
//!     the JSON goes to `target/bench-smoke/` instead of the repo root so a
//!     smoke run never dirties the committed baselines.

use pv_core::cond::{Condition, Literal, Product};
use pv_core::expr::{evaluate, Expr, SplitMode};
use pv_core::spec::TransactionSpec;
use pv_core::{Entry, ItemId, TxnId, Value};
use pv_engine::{ClientConfig, ClusterBuilder, CommitProtocol, Directory, EngineConfig, RandomTransfers};
use pv_simnet::{NetConfig, SimTime};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// One measured benchmark row.
struct BenchResult {
    name: &'static str,
    description: &'static str,
    unit: &'static str,
    value: f64,
}

/// A tiny deterministic generator so workloads are identical across runs.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let test_mode = args.iter().any(|a| a == "--test");
    let record_baseline = args.iter().any(|a| a == "--record-baseline");
    let root = repo_root();
    let out_dir = if test_mode {
        let d = root.join("target/bench-smoke");
        std::fs::create_dir_all(&d).expect("create bench-smoke dir");
        d
    } else {
        root.clone()
    };

    println!(
        "hotpath: mode = {}",
        if test_mode {
            "smoke (--test)"
        } else if record_baseline {
            "record-baseline"
        } else {
            "measure vs baseline"
        }
    );

    let core = vec![
        micro(
            "condition_substitution",
            "Condition::assign sweep over a 12-condition DNF family (ns per full sweep)",
            test_mode,
            bench_condition_substitution,
        ),
        micro(
            "condition_simplify",
            "Condition::from_products canonicalisation of raw product sets (ns per batch)",
            test_mode,
            bench_condition_simplify,
        ),
        micro(
            "entry_assemble",
            "Entry::assemble flatten/merge/drop over nested alternatives (ns per batch)",
            test_mode,
            bench_entry_assemble,
        ),
        micro(
            "partitioning",
            "polytransaction evaluate + collate, lazy and eager modes (ns per evaluation pair)",
            test_mode,
            bench_partitioning,
        ),
    ];
    write_suite(
        &out_dir.join("BENCH_core.json"),
        &root.join("BENCH_core.json"),
        "pv-core hot paths",
        &core,
        record_baseline,
    );

    let engine = vec![
        macro_run("cluster_3_sites", 3, 24, 150, test_mode),
        macro_run("cluster_10_sites", 10, 80, 400, test_mode),
        macro_run("cluster_50_sites", 50, 200, 500, test_mode),
    ];
    write_suite(
        &out_dir.join("BENCH_engine.json"),
        &root.join("BENCH_engine.json"),
        "pv-engine end-to-end seeded cluster runs",
        &engine,
        record_baseline,
    );
}

/// The repository root, resolved relative to this crate's manifest so the
/// binary works from any working directory.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root")
}

// ---------------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------------

/// Times `f` (which returns a sink value so the optimiser cannot elide it).
/// Smoke mode runs a single iteration; otherwise iterations repeat until a
/// 300 ms budget elapses and the mean ns/iter is reported.
fn micro(
    name: &'static str,
    description: &'static str,
    test_mode: bool,
    mut f: impl FnMut() -> u64,
) -> BenchResult {
    let mut sink = 0u64;
    let value = if test_mode {
        let start = Instant::now();
        sink ^= f();
        start.elapsed().as_nanos() as f64
    } else {
        // Warm up (fills caches, triggers lazy allocation).
        let warm = Instant::now();
        while warm.elapsed().as_millis() < 50 {
            sink ^= f();
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed().as_millis() < 300 || iters == 0 {
            sink ^= f();
            iters += 1;
        }
        start.elapsed().as_nanos() as f64 / iters as f64
    };
    black_box(sink);
    println!("  {name}: {value:.0} ns/iter");
    BenchResult {
        name,
        description,
        unit: "ns/iter",
        value,
    }
}

/// Wall-clock of one seeded cluster run (minimum of 3 runs, 1 in smoke mode).
fn macro_run(
    name: &'static str,
    sites: u32,
    items: u64,
    transfers: u64,
    test_mode: bool,
) -> BenchResult {
    let reps = if test_mode { 1 } else { 3 };
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let commits = run_cluster(sites, items, transfers);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        assert!(commits > 0, "{name}: the seeded run must commit work");
        best = best.min(ms);
    }
    println!("  {name}: {best:.2} ms/run");
    BenchResult {
        name,
        description: match sites {
            3 => "seed-42 polyvalue cluster, 3 sites, 150 transfers (ms wall-clock)",
            10 => "seed-42 polyvalue cluster, 10 sites, 400 transfers (ms wall-clock)",
            _ => "seed-42 polyvalue cluster, 50 sites, 500 transfers (ms wall-clock)",
        },
        unit: "ms/run",
        value: best,
    }
}

fn run_cluster(sites: u32, items: u64, transfers: u64) -> u64 {
    let mut cluster = ClusterBuilder::new(sites, Directory::Mod(sites))
        .seed(42)
        .net(NetConfig::default())
        .engine(EngineConfig::with_protocol(CommitProtocol::Polyvalue))
        .uniform_items(items, 1_000)
        .client(
            ClientConfig {
                record_results: false,
                ..ClientConfig::default()
            },
            Box::new(RandomTransfers::new(items, 200.0, 50).with_limit(transfers)),
        )
        .build();
    cluster.run_until(SimTime::from_secs(60));
    cluster.world.metrics().counter("txn.committed")
}

// ---------------------------------------------------------------------------
// Micro bench bodies
// ---------------------------------------------------------------------------

/// A deterministic family of moderate DNF conditions over 12 variables.
fn condition_family() -> Vec<Condition> {
    let mut lcg = Lcg(0x5eed);
    let mut conds = Vec::with_capacity(12);
    for _ in 0..12 {
        let mut products = Vec::new();
        for _ in 0..6 {
            let width = 2 + (lcg.next() % 3) as usize;
            let lits: Vec<Literal> = (0..width)
                .map(|_| {
                    let var = TxnId(lcg.next() % 12);
                    if lcg.next().is_multiple_of(2) {
                        Literal::positive(var)
                    } else {
                        Literal::negative(var)
                    }
                })
                .collect();
            if let Some(p) = Product::from_literals(lits) {
                products.push(p);
            }
        }
        conds.push(Condition::from_products(products));
    }
    conds
}

/// Sweeps outcome substitution over the family: each condition learns the
/// outcome of every variable in turn, exactly what a site does when decisions
/// propagate after a failure.
fn bench_condition_substitution() -> u64 {
    let conds = condition_family();
    let mut sink = 0u64;
    for c in &conds {
        let mut c = c.clone();
        for v in 0..12u64 {
            c = c.assign(TxnId(v), v % 2 == 0);
            sink = sink.wrapping_add(c.literal_count() as u64);
            if c.is_false() || c.is_true() {
                break;
            }
        }
    }
    sink
}

/// Canonicalises raw (unsorted, overlapping, redundant) product collections.
fn bench_condition_simplify() -> u64 {
    let mut lcg = Lcg(0xbeef);
    let mut sink = 0u64;
    for _ in 0..8 {
        let mut products = Vec::new();
        for _ in 0..10 {
            let width = 1 + (lcg.next() % 4) as usize;
            let lits: Vec<Literal> = (0..width)
                .map(|_| {
                    let var = TxnId(lcg.next() % 8);
                    if lcg.next().is_multiple_of(2) {
                        Literal::positive(var)
                    } else {
                        Literal::negative(var)
                    }
                })
                .collect();
            if let Some(p) = Product::from_literals(lits) {
                products.push(p);
            }
        }
        let c = Condition::from_products(products);
        sink = sink.wrapping_add(c.products().len() as u64);
    }
    sink
}

/// Assembles nested alternatives: in-doubt entries stacked two deep plus
/// duplicate values whose conditions must merge (§3.1 rules 1–3).
fn bench_entry_assemble() -> u64 {
    let mut sink = 0u64;
    for base in 0..8u64 {
        let t1 = TxnId(base * 3 + 1);
        let t2 = TxnId(base * 3 + 2);
        let t3 = TxnId(base * 3 + 3);
        let inner = Entry::in_doubt(
            Entry::Simple(Value::Int(10)),
            Entry::Simple(Value::Int(20)),
            t1,
        );
        let nested = Entry::in_doubt(inner, Entry::Simple(Value::Int(30)), t2);
        let pairs = vec![
            (nested, Condition::var(t3)),
            (Entry::Simple(Value::Int(10)), Condition::not_var(t3)),
        ];
        let e = Entry::assemble(pairs).expect("valid alternatives");
        sink = sink.wrapping_add(e.pair_count() as u64);
    }
    sink
}

/// Evaluates a guarded multi-item transaction against a database with three
/// in-doubt items, in both split modes, and collates the writes.
fn bench_partitioning() -> u64 {
    let mut db: BTreeMap<ItemId, Entry<Value>> = BTreeMap::new();
    for i in 0..6u64 {
        let entry = if i % 2 == 0 {
            Entry::in_doubt(
                Entry::Simple(Value::Int(100 + i as i64)),
                Entry::Simple(Value::Int(50 + i as i64)),
                TxnId(100 + i),
            )
        } else {
            Entry::Simple(Value::Int(75))
        };
        db.insert(ItemId(i), entry);
    }
    let mut spec = TransactionSpec::new().guard(
        Expr::read(ItemId(0))
            .add(Expr::read(ItemId(2)))
            .add(Expr::read(ItemId(4)))
            .ge(Expr::int(200)),
    );
    for i in 0..6u64 {
        spec = spec.update(ItemId(i), Expr::read(ItemId(i)).add(Expr::int(1)));
    }
    let mut sink = 0u64;
    for mode in [SplitMode::Lazy, SplitMode::Eager] {
        let out = evaluate(&spec, &db, mode).expect("evaluation succeeds");
        let writes = out.collate_writes(&db).expect("collation succeeds");
        sink = sink.wrapping_add(out.stats.alternatives as u64 + writes.len() as u64);
    }
    sink
}

// ---------------------------------------------------------------------------
// JSON emit / baseline merge
// ---------------------------------------------------------------------------

/// Writes the suite JSON to `out_path`, merging the `baseline` column from
/// `baseline_path` (the committed file) unless `record_baseline` is set.
fn write_suite(
    out_path: &Path,
    baseline_path: &Path,
    suite: &str,
    results: &[BenchResult],
    record_baseline: bool,
) {
    let committed = std::fs::read_to_string(baseline_path).unwrap_or_default();
    let baselines = parse_baselines(&committed);
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str(&format!("  \"suite\": \"{suite}\",\n"));
    body.push_str(
        "  \"invocation\": \"cargo run --release -p pv-bench --bin hotpath\",\n",
    );
    body.push_str("  \"benches\": [\n");
    for (idx, r) in results.iter().enumerate() {
        let baseline = if record_baseline {
            r.value
        } else {
            baselines
                .iter()
                .find(|(n, _)| n == r.name)
                .map(|(_, b)| *b)
                .unwrap_or(r.value)
        };
        let speedup = if r.value > 0.0 { baseline / r.value } else { 1.0 };
        body.push_str("    {\n");
        body.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        body.push_str(&format!("      \"description\": \"{}\",\n", r.description));
        body.push_str(&format!("      \"unit\": \"{}\",\n", r.unit));
        body.push_str(&format!("      \"baseline\": {:.2},\n", baseline));
        body.push_str(&format!("      \"current\": {:.2},\n", r.value));
        body.push_str(&format!("      \"speedup\": {:.3}\n", speedup));
        body.push_str(if idx + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    body.push_str("  ]\n}\n");
    std::fs::write(out_path, body).expect("write bench json");
    println!("wrote {}", out_path.display());
}

/// Extracts `(name, baseline)` pairs from a previously written suite file.
/// The format is our own, so a two-key scan is exact — no JSON library needed.
fn parse_baselines(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(i) = rest.find("\"name\": \"") {
        rest = &rest[i + 9..];
        let Some(end) = rest.find('"') else { break };
        let name = rest[..end].to_string();
        let Some(j) = rest.find("\"baseline\": ") else { break };
        rest = &rest[j + 12..];
        let num: String = rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            out.push((name, v));
        }
    }
    out
}
