//! Regenerates **Table 2** of the paper: the §4.2 stochastic simulation
//! versus the model prediction, for the paper's six parameter sets.
//!
//! Run with `cargo run -p pv-bench --bin table2 [--seed N]`. Each row
//! simulates 4,000 virtual seconds; expect a few seconds of wall time.

fn main() {
    let seed = pv_bench::seed_from_args(1979);
    print!("{}", pv_stochsim::table2::render(seed));
    println!();
    println!("'Pred P' is the closed form; 'Paper actual' is the paper's measured");
    println!("column; 'Ours' is this implementation's stable-period mean (seed {seed}).");
    println!("See EXPERIMENTS.md for the shape comparison notes.");
}
