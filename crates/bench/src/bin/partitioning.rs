//! Extension experiment: **lazy vs. eager partitioning** of
//! polytransactions — quantifying the §3.2 optimisation ("one can also
//! recognize cases where the actual value of an item … need not cause
//! partitioning").
//!
//! Builds databases with an increasing number of in-doubt items and
//! evaluates control-flow-heavy transactions both ways, reporting
//! alternatives created, split events, and item reads.
//!
//! Run with `cargo run -p pv-bench --bin partitioning`.

use pv_core::expr::{evaluate, SplitMode};
use pv_core::{Entry, Expr, ItemId, TransactionSpec, TxnId, Value};
use std::collections::BTreeMap;

type Db = BTreeMap<ItemId, Entry<Value>>;

/// A database where the first `poly_items` items are in doubt (distinct
/// transactions) and the rest are simple.
fn db(total: u64, poly_items: u64) -> Db {
    (0..total)
        .map(|i| {
            let entry = if i < poly_items {
                Entry::in_doubt(
                    Entry::Simple(Value::Int(i as i64 + 100)),
                    Entry::Simple(Value::Int(i as i64)),
                    TxnId(i),
                )
            } else {
                Entry::Simple(Value::Int(i as i64))
            };
            (ItemId(i), entry)
        })
        .collect()
}

/// A guarded read-modify-write whose `if` only touches the uncertain items
/// on one branch: the lazy evaluator can usually avoid them entirely.
fn guarded_spec(total: u64) -> TransactionSpec {
    let switch = ItemId(total - 1); // simple item
    let mut uncertain_sum = Expr::int(0);
    for i in 0..(total / 2) {
        uncertain_sum = uncertain_sum.add(Expr::read(ItemId(i)));
    }
    TransactionSpec::new().output(
        "v",
        Expr::ite(
            Expr::read(switch).ge(Expr::int(0)), // always true: branch not taken below
            Expr::read(switch).mul(Expr::int(2)),
            uncertain_sum,
        ),
    )
}

/// A sum over every item: both modes must split on all uncertain inputs.
fn sum_spec(total: u64) -> TransactionSpec {
    let mut sum = Expr::int(0);
    for i in 0..total {
        sum = sum.add(Expr::read(ItemId(i)));
    }
    TransactionSpec::new().output("sum", sum)
}

fn report(name: &str, spec: &TransactionSpec, source: &Db) {
    let lazy = evaluate(spec, source, SplitMode::Lazy).expect("evaluates");
    let eager = evaluate(spec, source, SplitMode::Eager).expect("evaluates");
    assert_eq!(
        lazy.collate_outputs().expect("valid"),
        eager.collate_outputs().expect("valid"),
        "modes must agree semantically"
    );
    println!(
        "{name:<28} lazy: {:>6} alts {:>6} splits {:>6} reads   eager: {:>6} alts {:>6} splits {:>6} reads",
        lazy.stats.alternatives,
        lazy.stats.splits,
        lazy.stats.item_reads,
        eager.stats.alternatives,
        eager.stats.splits,
        eager.stats.item_reads,
    );
}

fn main() {
    println!("Lazy vs. eager polytransaction partitioning (the §3.2 optimisation)");
    println!();
    for poly_items in [0u64, 1, 2, 4, 8] {
        let total = 10;
        let source = db(total, poly_items);
        println!("-- {poly_items} of {total} items in doubt --");
        report(
            "guarded (branch avoids them)",
            &guarded_spec(total),
            &source,
        );
        if poly_items <= 4 {
            // The sum genuinely needs every input; alternatives grow as 2^n.
            report("sum (reads everything)", &sum_spec(total), &source);
        } else {
            println!("sum (reads everything)       skipped: 2^{poly_items} alternatives");
        }
        println!();
    }
    println!("Expected shape: the guarded transaction stays at 1 alternative under");
    println!("lazy evaluation regardless of how many items are in doubt, while eager");
    println!("partitioning doubles per uncertain item; for the sum both modes match.");
}
