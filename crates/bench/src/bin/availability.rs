//! Extension experiment: **availability under failures**, per protocol.
//!
//! Sweeps the site crash rate and runs the same transfer workload under the
//! three §2 protocols (polyvalue, blocking 2PC, relaxed). Reports the
//! fraction of requests committed *promptly* (by the end of the failure
//! window), lock conflicts, blocking stalls, and — for relaxed — atomicity
//! violations and whether money was conserved.
//!
//! Run with `cargo run -p pv-bench --bin availability [--seed N]`.

use pv_core::ItemId;
use pv_engine::{
    ClientConfig, Cluster, ClusterBuilder, CommitProtocol, Directory, EngineConfig, RandomTransfers,
};
use pv_simnet::{FailureConfig, FailurePlan, NetConfig, SimRng, SimTime};

const SITES: u32 = 4;
const ACCOUNTS: u64 = 24;
const INITIAL: i64 = 1_000;
const CLIENTS: u32 = 3;
const PER_CLIENT: u64 = 250;
const CHAOS_SECS: u64 = 15;

struct Row {
    protocol: &'static str,
    crash_rate: f64,
    prompt_frac: f64,
    in_doubt: u64,
    stalls: u64,
    conflicts: u64,
    violations: u64,
    conserved: bool,
}

fn run(protocol: CommitProtocol, crash_rate: f64, seed: u64, trace: bool) -> (Row, Cluster) {
    let mut builder = ClusterBuilder::new(SITES, Directory::Mod(SITES))
        .seed(seed)
        .net(NetConfig::default())
        .engine(EngineConfig::with_protocol(protocol))
        .uniform_items(ACCOUNTS, INITIAL);
    if trace {
        builder = builder.collect_trace();
    }
    for _ in 0..CLIENTS {
        builder = builder.client(
            ClientConfig {
                record_results: false,
                ..ClientConfig::default()
            },
            Box::new(RandomTransfers::new(ACCOUNTS, 20.0, 50).with_limit(PER_CLIENT)),
        );
    }
    let mut cluster: Cluster = builder.build();
    let plan = FailurePlan::poisson(
        FailureConfig {
            crash_rate_per_sec: crash_rate,
            mean_downtime_secs: 0.8,
            horizon: SimTime::from_secs(CHAOS_SECS),
        },
        SITES,
        &mut SimRng::new(seed ^ 0xC4A5),
    );
    plan.apply(&mut cluster.world);
    // Link partitions at the same intensity: both endpoints stay alive, but
    // cross-site commits through the cut link are left in doubt — the case
    // the polyvalue mechanism is built for.
    let mut prng = SimRng::new(seed ^ 0x9A27);
    if crash_rate > 0.0 {
        let mut t = 0.0f64;
        loop {
            t += prng.exponential(1.0 / (crash_rate * f64::from(SITES)));
            if t >= CHAOS_SECS as f64 {
                break;
            }
            let a = prng.below(u64::from(SITES)) as u32;
            let mut b = prng.below(u64::from(SITES)) as u32;
            if a == b {
                b = (b + 1) % SITES;
            }
            let start = SimTime::from_millis((t * 1000.0) as u64);
            let dur = prng.exponential(0.8).max(0.05);
            let end = start + pv_simnet::SimDuration::from_secs_f64(dur);
            cluster
                .world
                .schedule_partition(start, pv_simnet::NodeId(a), pv_simnet::NodeId(b));
            cluster
                .world
                .schedule_heal(end, pv_simnet::NodeId(a), pv_simnet::NodeId(b));
        }
    }
    cluster.run_until(SimTime::from_secs(CHAOS_SECS));
    let prompt = cluster.world.metrics().counter("client.committed");
    cluster.run_until(SimTime::from_secs(CHAOS_SECS + 25));
    let m = cluster.world.metrics();
    let conserved = cluster.total_poly_count() == 0
        && cluster.sum_items((0..ACCOUNTS).map(ItemId)) == Ok(ACCOUNTS as i64 * INITIAL);
    let row = Row {
        protocol: protocol.label(),
        crash_rate,
        prompt_frac: prompt as f64 / (CLIENTS as u64 * PER_CLIENT) as f64,
        in_doubt: m.counter("txn.in_doubt"),
        stalls: m.counter("blocking.stalls"),
        conflicts: m.counter("lock.conflicts"),
        violations: m.counter("relaxed.violations"),
        conserved,
    };
    (row, cluster)
}

fn main() {
    let seed = pv_bench::seed_from_args(1979);
    println!("Availability under failures: {CLIENTS} clients x {PER_CLIENT} transfers,");
    println!("{SITES} sites, {ACCOUNTS} accounts, {CHAOS_SECS}s failure window, seed {seed}.");
    println!("'prompt' = fraction of requests committed within the failure window.");
    println!();
    println!(
        "{:<13} {:>11} {:>8} {:>9} {:>8} {:>10} {:>11} {:>10}",
        "protocol",
        "crash/s",
        "prompt",
        "in-doubt",
        "stalls",
        "conflicts",
        "violations",
        "conserved"
    );
    for &crash_rate in &[0.0, 0.1, 0.2, 0.4] {
        for protocol in [
            CommitProtocol::Polyvalue,
            CommitProtocol::Blocking2pc,
            CommitProtocol::Relaxed { complete_prob: 0.5 },
        ] {
            let (row, _) = run(protocol, crash_rate, seed, false);
            println!(
                "{:<13} {:>11.2} {:>7.1}% {:>9} {:>8} {:>10} {:>11} {:>10}",
                row.protocol,
                row.crash_rate,
                row.prompt_frac * 100.0,
                row.in_doubt,
                row.stalls,
                row.conflicts,
                row.violations,
                if row.conserved { "yes" } else { "NO" },
            );
        }
        println!();
    }
    println!("Expected shape: prompt fraction degrades fastest for blocking-2pc as the");
    println!("crash rate rises; polyvalue keeps processing (in-doubt > 0, conserved);");
    println!("relaxed stays available but may print conserved = NO with violations > 0.");

    // One traced polyvalue run at a representative crash rate, reported in
    // full: phase latencies, the trace digest, and both metric exports.
    println!();
    println!("== observability: polyvalue @ 0.2 crash/s, seed {seed} ==");
    println!();
    let (_, cluster) = run(CommitProtocol::Polyvalue, 0.2, seed, true);
    println!("{}", pv_bench::report::trace_summary(cluster.trace()));
    pv_bench::report::print_observability(cluster.world.metrics());
}
