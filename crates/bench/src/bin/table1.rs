//! Regenerates **Table 1** of the paper: model predictions of the expected
//! number of polyvalues for a one-at-a-time parameter sweep.
//!
//! Run with `cargo run -p pv-bench --bin table1`.

fn main() {
    print!("{}", pv_model::table1::render());
    println!();
    println!("Every row is computed from the paper's closed form P = UFI/(IR+UY-UD);");
    println!("the P(paper) column is the value printed in the original table.");
}
