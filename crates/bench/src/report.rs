//! Shared reporting helpers for the table generators: per-phase latency
//! tables, trace summaries, and the JSON / Prometheus metric exports.
//!
//! The engine observes each protocol phase into a latency histogram (see
//! `DESIGN.md` for the vocabulary): `phase.submit_prepared` (read phase and
//! evaluation), `phase.prepared_decided` (vote phase), `phase.submit_decided`
//! (client-visible decision latency), and `poly.lifetime` (how long an
//! in-doubt polyvalue lived before its outcome collapsed it). The helpers
//! here turn those histograms into the tables the binaries print.

use pv_simnet::{Metrics, Trace};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The phases every report tabulates, in presentation order:
/// `(histogram name, human-readable label)`.
pub const PHASES: &[(&str, &str)] = &[
    ("phase.submit_prepared", "submit -> prepared"),
    ("phase.prepared_decided", "prepared -> decided"),
    ("phase.submit_decided", "submit -> decided"),
    ("poly.lifetime", "install -> collapse"),
];

/// Formats the per-phase latency table: count, p50, p99, and max in
/// milliseconds, one row per [`PHASES`] entry. Phases with no observations
/// print a dash so absent traffic is visible rather than silently omitted.
pub fn phase_table(metrics: &Metrics) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<20} {:>8} {:>10} {:>10} {:>10}",
        "phase", "count", "p50(ms)", "p99(ms)", "max(ms)"
    );
    for &(name, label) in PHASES {
        match metrics.histogram(name) {
            Some(h) if h.count() > 0 => {
                let _ = writeln!(
                    out,
                    "{:<20} {:>8} {:>10.2} {:>10.2} {:>10.2}",
                    label,
                    h.count(),
                    h.quantile(0.5).unwrap_or(0.0) * 1e3,
                    h.quantile(0.99).unwrap_or(0.0) * 1e3,
                    h.max().unwrap_or(0.0) * 1e3,
                );
            }
            _ => {
                let _ = writeln!(
                    out,
                    "{:<20} {:>8} {:>10} {:>10} {:>10}",
                    label, 0, "-", "-", "-"
                );
            }
        }
    }
    out
}

/// Counts trace records per event kind, in label order — a one-screen
/// digest of a protocol run.
pub fn trace_summary(trace: &Trace) -> String {
    let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    for r in trace.records() {
        *counts.entry(r.event.label()).or_insert(0) += 1;
    }
    let mut out = String::new();
    let _ = writeln!(out, "{} trace events:", trace.len());
    for (label, n) in counts {
        let _ = writeln!(out, "  {label:<22} {n:>7}");
    }
    out
}

/// Prints the full observability report for a finished run: the phase
/// table, then the metrics snapshot in both export formats (JSON first,
/// Prometheus text exposition second).
pub fn print_observability(metrics: &Metrics) {
    println!("{}", phase_table(metrics));
    let snapshot = metrics.snapshot();
    println!("-- metrics (json) --");
    println!("{}", snapshot.to_json());
    println!();
    println!("-- metrics (prometheus) --");
    print!("{}", snapshot.to_prometheus());
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_simnet::{NodeId, SimTime, TraceEvent};

    #[test]
    fn phase_table_lists_every_phase() {
        let mut m = Metrics::new();
        m.observe("phase.submit_decided", 0.010);
        m.observe("phase.submit_decided", 0.020);
        let table = phase_table(&m);
        for (_, label) in PHASES {
            assert!(table.contains(label), "missing row for {label}");
        }
        assert!(table.contains("submit -> decided"));
        // Unobserved phases render dashes, not zeros pretending to be data.
        assert!(table.contains("-"));
    }

    #[test]
    fn trace_summary_counts_by_label() {
        let mut trace = Trace::collecting();
        let at = SimTime::from_millis(1);
        trace.record(at, NodeId(0), TraceEvent::Prepared { txn: 1, site: 0 });
        trace.record(
            at,
            NodeId(0),
            TraceEvent::Decided {
                txn: 1,
                completed: true,
            },
        );
        trace.record(at, NodeId(1), TraceEvent::Prepared { txn: 2, site: 1 });
        let summary = trace_summary(&trace);
        assert!(summary.starts_with("3 trace events:"));
        assert!(summary.contains("prepared"));
        assert!(summary.contains("2"));
        assert!(summary.contains("decided"));
    }
}
