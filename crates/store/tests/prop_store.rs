//! Property tests: the store's recovery contract.
//!
//! Whatever sequence of operations a site performs, (1) a crash-and-replay
//! reproduces exactly the same materialised state, (2) the binary codec
//! round-trips the log bit-exactly, and (3) compaction never changes
//! observable state.

use proptest::prelude::*;
use pv_core::{Entry, ItemId, TxnId, Value};
use pv_store::{FaultConfig, FaultyStorage, FsyncPolicy, SiteStore};

/// Operations a site can perform against its store.
#[derive(Debug, Clone)]
enum Op {
    Set { item: u64, value: i64 },
    Stage { txn: u64, item: u64, value: i64 },
    InstallInDoubt { txn: u64 },
    Decide { txn: u64, completed: bool },
    NoteSent { txn: u64, site: u32 },
    RecordDecision { txn: u64, completed: bool },
    BumpEpoch,
    Compact,
}

const ITEMS: u64 = 4;
const TXNS: u64 = 6;

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..ITEMS, -50i64..50).prop_map(|(item, value)| Op::Set { item, value }),
        (0..TXNS, 0..ITEMS, -50i64..50).prop_map(|(txn, item, value)| Op::Stage {
            txn,
            item,
            value
        }),
        (0..TXNS).prop_map(|txn| Op::InstallInDoubt { txn }),
        (0..TXNS, any::<bool>()).prop_map(|(txn, completed)| Op::Decide { txn, completed }),
        (0..TXNS, 0..5u32).prop_map(|(txn, site)| Op::NoteSent { txn, site }),
        (0..TXNS, any::<bool>()).prop_map(|(txn, completed)| Op::RecordDecision { txn, completed }),
        Just(Op::BumpEpoch),
        Just(Op::Compact),
    ]
}

/// Applies an op; staging is only legal for not-currently-staged txns whose
/// items exist, so the driver filters as a real site would.
fn apply(store: &mut SiteStore, op: &Op) {
    match op {
        Op::Set { item, value } => {
            store.set_entry(ItemId(*item), Entry::Simple(Value::Int(*value)));
        }
        Op::Stage { txn, item, value } => {
            if store.pending(TxnId(*txn)).is_none() && store.contains(ItemId(*item)) {
                store.stage(
                    TxnId(*txn),
                    0,
                    vec![(ItemId(*item), Entry::Simple(Value::Int(*value)))],
                );
            }
        }
        Op::InstallInDoubt { txn } => {
            store.install_in_doubt(TxnId(*txn));
        }
        Op::Decide { txn, completed } => {
            store.apply_decision(TxnId(*txn), *completed);
        }
        Op::NoteSent { txn, site } => store.note_sent(TxnId(*txn), *site),
        Op::RecordDecision { txn, completed } => {
            if store.decision_of(TxnId(*txn)).is_none() {
                store.record_decision(TxnId(*txn), *completed);
            }
        }
        Op::BumpEpoch => {
            store.bump_epoch();
        }
        Op::Compact => store.compact(),
    }
}

/// The observable state of a store, for equality checks.
fn observe(store: &SiteStore) -> impl PartialEq + std::fmt::Debug {
    (
        store
            .iter_items()
            .map(|(i, e)| (i, e.clone()))
            .collect::<Vec<_>>(),
        store.pending_txns(),
        store.tracked_txns(),
        store
            .tracked_txns()
            .iter()
            .map(|&t| store.dep_entry(t).cloned())
            .collect::<Vec<_>>(),
        (0..TXNS)
            .map(|t| store.decision_of(TxnId(t)))
            .collect::<Vec<_>>(),
        store.epoch(),
        store.poly_count(),
    )
}

fn seeded_store() -> SiteStore {
    let mut store = SiteStore::new();
    for item in 0..ITEMS {
        store.seed_item(ItemId(item), Value::Int(item as i64));
    }
    store
}

/// Replays of the shrunk inputs recorded in
/// `prop_store.proptest-regressions`. The vendored proptest shim does not
/// read that file, so the historical failure cases are reconstructed here as
/// plain tests — they run in CI regardless of `PROPTEST_CASES`.
mod regressions {
    use super::*;

    /// Runs one op sequence through the replay and compaction invariants the
    /// property suite checks.
    fn replay_and_compact(ops: &[Op]) {
        let mut store = seeded_store();
        for op in ops {
            apply(&mut store, op);
        }
        let before = observe(&store);
        store.crash_and_recover();
        assert_eq!(&before, &observe(&store), "replay must reproduce state");
        store.crash_and_recover();
        assert_eq!(&before, &observe(&store), "replay must be idempotent");
        let mut compacted = store.clone();
        compacted.compact();
        assert_eq!(&before, &observe(&compacted), "compaction must be invisible");
        compacted.crash_and_recover();
        assert_eq!(&before, &observe(&compacted), "compacted log must replay");
    }

    /// Shrunk input: ops = [Stage{txn:1, item:1, value:2},
    /// InstallInDoubt{txn:1}, Set{item:1, value:0}] — a direct overwrite of
    /// an item holding an in-doubt polyvalue.
    #[test]
    fn overwrite_of_in_doubt_item() {
        replay_and_compact(&[
            Op::Stage {
                txn: 1,
                item: 1,
                value: 2,
            },
            Op::InstallInDoubt { txn: 1 },
            Op::Set { item: 1, value: 0 },
        ]);
    }

    /// Shrunk input: ops = [Stage{txn:5, item:1, value:0},
    /// InstallInDoubt{txn:5}, Set{item:1, value:0}, Compact] — the same
    /// overwrite followed by a compaction of the still-tracked transaction.
    #[test]
    fn compaction_with_tracked_overwritten_txn() {
        replay_and_compact(&[
            Op::Stage {
                txn: 5,
                item: 1,
                value: 0,
            },
            Op::InstallInDoubt { txn: 5 },
            Op::Set { item: 1, value: 0 },
            Op::Compact,
        ]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Crash-and-replay at the end of any op sequence is a no-op on
    /// observable state.
    #[test]
    fn replay_reproduces_state(ops in prop::collection::vec(op_strategy(), 0..40)) {
        let mut store = seeded_store();
        for op in &ops {
            apply(&mut store, op);
        }
        let before = observe(&store);
        store.crash_and_recover();
        prop_assert_eq!(&before, &observe(&store));
        // And replay is idempotent.
        store.crash_and_recover();
        prop_assert_eq!(&before, &observe(&store));
    }

    /// Crashing after every single prefix also reproduces that prefix's
    /// state (the WAL never lags the materialised state).
    #[test]
    fn replay_at_every_prefix(ops in prop::collection::vec(op_strategy(), 0..16)) {
        for cut in 0..=ops.len() {
            let mut direct = seeded_store();
            for op in &ops[..cut] {
                apply(&mut direct, op);
            }
            let mut replayed = direct.clone();
            replayed.crash_and_recover();
            prop_assert_eq!(observe(&direct), observe(&replayed), "prefix {}", cut);
        }
    }

    /// The binary codec round-trips any reachable store exactly.
    #[test]
    fn codec_round_trips(ops in prop::collection::vec(op_strategy(), 0..40)) {
        let mut store = seeded_store();
        for op in &ops {
            apply(&mut store, op);
        }
        let image = store.export_wal();
        let restored = SiteStore::import_wal(&image).expect("intact image decodes");
        prop_assert_eq!(observe(&store), observe(&restored));
        // A second export is byte-identical (encoding is deterministic).
        prop_assert_eq!(image, restored.export_wal());
    }

    /// Truncating the image anywhere never panics and yields a prefix of
    /// the original records.
    #[test]
    fn torn_images_recover_a_prefix(
        ops in prop::collection::vec(op_strategy(), 0..20),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut store = seeded_store();
        for op in &ops {
            apply(&mut store, op);
        }
        let image = store.export_wal();
        let cut = ((image.len() as f64) * cut_frac) as usize;
        let (partial, _err) = SiteStore::import_wal_lossy(&image[..cut]);
        prop_assert!(partial.wal().len() <= store.wal().len());
        for (got, want) in partial.wal().iter().zip(store.wal().iter()) {
            prop_assert_eq!(got, want);
        }
    }

    /// Arbitrarily truncated AND bit-flipped images never panic the decoder
    /// and always yield a valid prefix: the consumed bytes re-decode
    /// strictly, and importing the corrupt image into a store is safe.
    #[test]
    fn corrupted_images_never_panic(
        ops in prop::collection::vec(op_strategy(), 0..20),
        cut_frac in 0.0f64..1.0,
        flips in prop::collection::vec((any::<usize>(), 0u32..8), 0..4),
    ) {
        let mut store = seeded_store();
        for op in &ops {
            apply(&mut store, op);
        }
        let image = store.export_wal();
        let cut = ((image.len() as f64) * cut_frac) as usize;
        let mut bytes = image[..cut].to_vec();
        for &(pos, bit) in &flips {
            if !bytes.is_empty() {
                let i = pos % bytes.len();
                bytes[i] ^= 1 << bit;
            }
        }
        let (wal, consumed, _err) = pv_store::codec::decode_wal_prefix(&bytes);
        prop_assert!(consumed <= bytes.len());
        // The consumed prefix is itself a fully valid image.
        let strict = pv_store::codec::decode_wal(&bytes[..consumed]);
        prop_assert!(strict.is_ok());
        prop_assert_eq!(strict.unwrap().len(), wal.len());
        // And a store rebuilt from the corrupt image never panics.
        let (recovered, _) = SiteStore::import_wal_lossy(&bytes);
        prop_assert_eq!(recovered.wal().len(), wal.len());
    }

    /// Any op sequence over `FaultyStorage` — crashes with torn tails and
    /// bit flips interleaved — never panics, and every recovery leaves a
    /// strictly-decodable image behind.
    #[test]
    fn faulty_storage_ops_never_panic(
        ops in prop::collection::vec(op_strategy(), 0..24),
        seed in any::<u64>(),
    ) {
        let storage = FaultyStorage::with_policy(
            FaultConfig { seed, torn_tail_prob: 0.5, bit_flip_prob: 0.25 },
            FsyncPolicy::EveryN(4),
        );
        let mut store = SiteStore::with_storage(Box::new(storage));
        for item in 0..ITEMS {
            store.seed_item(ItemId(item), Value::Int(item as i64));
        }
        for (i, op) in ops.iter().enumerate() {
            apply(&mut store, op);
            if i % 5 == 4 {
                store.crash_and_recover();
            }
        }
        store.crash_and_recover();
        prop_assert!(pv_store::codec::decode_wal(&store.export_wal()).is_ok());
    }

    /// Compaction preserves observable state and shrinks (or keeps) the log.
    #[test]
    fn compaction_preserves_state(ops in prop::collection::vec(op_strategy(), 0..40)) {
        let mut store = seeded_store();
        for op in &ops {
            apply(&mut store, op);
        }
        let before = observe(&store);
        let mut compacted = store.clone();
        compacted.compact();
        prop_assert_eq!(&before, &observe(&compacted));
        compacted.crash_and_recover();
        prop_assert_eq!(&before, &observe(&compacted));
    }
}
