//! MVCC property tests: any interleaving of versioned writes, held-open
//! snapshots, memtable flushes, size-tiered compactions, and
//! crash-recoveries yields reads consistent with the serial order of the
//! writes.
//!
//! The driver is single-threaded, so the serial order is the program
//! order; the property under test is that every snapshot observes exactly
//! the prefix of writes that preceded its acquisition — no more, no less —
//! regardless of how the keyspace reorganised itself (flush, compaction,
//! GC) or crashed and replayed in between. A snapshot that stays pinned
//! across compactions must keep resolving to the same values: the GC
//! horizon may never overtake a live pin.

use proptest::prelude::*;
use pv_core::{Entry, ItemId, Value};
use pv_store::{Keyspace, KeyspaceConfig, SeqNo, SiteStore};
use std::collections::BTreeMap;

const ITEMS: u64 = 5;

/// One step of the interleaving.
#[derive(Debug, Clone)]
enum Step {
    /// Install a new version (tiny thresholds make this flush/compact
    /// frequently as a side effect).
    Write { item: u64, value: i64 },
    /// Pin a snapshot and remember the model state it should observe.
    Acquire,
    /// Re-read every item through the oldest still-held snapshot and
    /// compare against the state remembered at its acquisition.
    ReadOldest,
    /// Release the oldest held snapshot (advances the GC horizon).
    ReleaseOldest,
    /// Crash and recover the store (WAL replay rebuilds the keyspace).
    /// Only meaningful in the `SiteStore` property; a bare keyspace is
    /// derived state with no log of its own, so there it is a no-op.
    Crash,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    // The vendored proptest has no weighted oneof; repeating the write arm
    // biases interleavings toward writes so flushes and compactions fire.
    prop_oneof![
        (0..ITEMS, -99i64..100).prop_map(|(item, value)| Step::Write { item, value }),
        (0..ITEMS, 100i64..299).prop_map(|(item, value)| Step::Write { item, value }),
        Just(Step::Acquire),
        Just(Step::ReadOldest),
        Just(Step::ReleaseOldest),
        Just(Step::Crash),
    ]
}

/// Tiny thresholds: flush every 2 versions per partition, compact at 2
/// runs — reorganisation happens constantly under the interleavings.
fn tiny_keyspace() -> Keyspace {
    Keyspace::new(KeyspaceConfig {
        partitions: 2,
        memtable_max_entries: 2,
        run_threshold: 2,
    })
}

/// Checks one held snapshot against the model state captured when it was
/// acquired: every item written before the pin reads back its value as of
/// the pin; items first written after the pin are invisible through it.
fn check_snapshot(ks: &Keyspace, snap: SeqNo, expected: &BTreeMap<u64, i64>) {
    for item in 0..ITEMS {
        let got = ks
            .get_at(ItemId(item), snap)
            .and_then(|e| e.as_simple())
            .and_then(|v| v.as_int());
        assert_eq!(
            got,
            expected.get(&item).copied(),
            "item {item} at snapshot {snap} diverged from serial order"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pure keyspace MVCC: snapshots held open across any interleaving of
    /// writes, flushes, and compactions keep observing the exact write
    /// prefix that preceded them.
    #[test]
    fn held_snapshots_observe_their_write_prefix(
        steps in prop::collection::vec(step_strategy(), 0..60),
    ) {
        let mut ks = tiny_keyspace();
        let mut model: BTreeMap<u64, i64> = BTreeMap::new();
        // Held pins, oldest first: (snapshot seq, model at acquisition).
        let mut held: Vec<(SeqNo, BTreeMap<u64, i64>)> = Vec::new();
        for step in &steps {
            match step {
                Step::Write { item, value } => {
                    ks.put(ItemId(*item), Entry::Simple(Value::Int(*value)));
                    model.insert(*item, *value);
                }
                Step::Acquire => {
                    let snap = ks.snapshot_acquire();
                    held.push((snap, model.clone()));
                }
                Step::ReadOldest | Step::Crash => {
                    // A bare keyspace has no WAL to crash-replay; both
                    // steps validate the oldest pin here.
                    if let Some((snap, expected)) = held.first() {
                        check_snapshot(&ks, *snap, expected);
                    }
                }
                Step::ReleaseOldest => {
                    if !held.is_empty() {
                        let (snap, _) = held.remove(0);
                        ks.snapshot_release(snap);
                    }
                }
            }
        }
        // Every pin must still resolve correctly at the end, after all the
        // reorganisation the trailing writes triggered.
        for (snap, expected) in &held {
            check_snapshot(&ks, *snap, expected);
        }
        // And the latest view is the full serial state.
        for (item, value) in &model {
            prop_assert_eq!(
                ks.latest(ItemId(*item)).and_then(|e| e.as_simple()).and_then(|v| v.as_int()),
                Some(*value)
            );
        }
    }

    /// Store-level MVCC with crashes: `snapshot_read` always returns the
    /// serial-order state, including immediately after a WAL replay
    /// rebuilt the keyspace from scratch.
    #[test]
    fn snapshot_reads_survive_crash_replay(
        steps in prop::collection::vec(step_strategy(), 0..40),
    ) {
        let mut store = SiteStore::new().with_lsm_thresholds(2, 2);
        let mut model: BTreeMap<u64, i64> = BTreeMap::new();
        let mut last_snap = 0u64;
        for step in &steps {
            match step {
                Step::Write { item, value } => {
                    store.set_entry(ItemId(*item), Entry::Simple(Value::Int(*value)));
                    model.insert(*item, *value);
                }
                Step::Crash => {
                    store.crash_and_recover();
                    // Replay re-installs every surviving write; snapshot
                    // sequence numbers restart with the rebuilt keyspace.
                    last_snap = 0;
                }
                // The remaining steps all reduce to "read now" against a
                // store whose pins never outlive the call.
                Step::Acquire | Step::ReadOldest | Step::ReleaseOldest => {
                    let (snap, entries) = store.snapshot_read(&[]);
                    prop_assert!(
                        snap >= last_snap,
                        "snapshot seq regressed without a crash: {snap} < {last_snap}"
                    );
                    last_snap = snap;
                    let got: BTreeMap<u64, i64> = entries
                        .iter()
                        .filter_map(|(i, e)| {
                            e.as_simple().and_then(|v| v.as_int()).map(|n| (i.0, n))
                        })
                        .collect();
                    prop_assert_eq!(&got, &model, "snapshot read diverged from serial order");
                }
            }
        }
        // Terminal check: one last full-scan read equals the model.
        let (_, entries) = store.snapshot_read(&[]);
        let got: BTreeMap<u64, i64> = entries
            .iter()
            .filter_map(|(i, e)| e.as_simple().and_then(|v| v.as_int()).map(|n| (i.0, n)))
            .collect();
        prop_assert_eq!(got, model);
    }
}
