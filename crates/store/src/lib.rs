//! # pv-store — per-site durable storage
//!
//! Each site in the distributed system owns a [`SiteStore`]: an item table
//! holding simple values and polyvalues, staged wait-phase transactions, the
//! §3.3 outcome-dependency table, and coordinator decisions — all backed by a
//! write-ahead log ([`Wal`]) that survives simulated crashes. The paper
//! assumes sites remember in-doubt transactions across failures; the WAL is
//! that assumption made explicit.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod codec;
pub mod lsm;
mod outcomes;
mod site_store;
pub mod storage;
mod table;
mod wal;

pub use codec::CodecError;
pub use lsm::{Keyspace, KeyspaceConfig, KeyspaceStats, SeqNo, SnapshotTracker, Version};
pub use outcomes::{DepEntry, OutcomeTable};
pub use site_store::{PaxosState, PendingTxn, SiteStore, SnapshotView, StoreStats};
pub use storage::{
    DiskWal, FaultConfig, FaultyStorage, FsyncPolicy, MemStorage, Storage, StorageError,
    StorageStats,
};
pub use table::ItemTable;
pub use wal::{Record, SiteId, Wal};
