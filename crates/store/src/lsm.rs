//! The partitioned LSM keyspace: MVCC version chains behind the WAL.
//!
//! [`Keyspace`] replaces the flat latest-entry-only [`ItemTable`] as the
//! materialised table a site serves reads from. The layout follows the
//! classic memtable-plus-sorted-runs idiom (fjall-style):
//!
//! * items hash into a fixed set of **partitions**;
//! * each partition holds a **memtable** of version chains plus a stack of
//!   immutable sorted **runs**;
//! * a memtable that reaches its entry threshold is **flushed** into a new
//!   run; when a partition accumulates `run_threshold` runs they are
//!   **size-tiered compacted** into one, dropping versions no live snapshot
//!   can see.
//!
//! Every write is stamped with a monotone [`SeqNo`], so an entry's history
//! is a version chain: a polyvalue install is just another version whose
//! entry carries its condition, and the collapse that resolves it is the
//! next version up the chain — no special casing anywhere in the storage
//! layer. A [`SnapshotTracker`] pins the oldest sequence number any live
//! read-only transaction may still visit; compaction garbage-collects
//! versions strictly below every pin (keeping, per item, the newest version
//! at or below the horizon, which is exactly what any pinned snapshot
//! resolves to).
//!
//! **Durability split.** The WAL remains the commit log and the sole
//! recovery authority: the keyspace is derived state, rebuilt by WAL replay
//! on every recovery. When a data directory is attached, flushed and
//! compacted runs are additionally materialised as checksummed run files
//! (same `[len][checksum][payload]` framing as the WAL codec, written
//! temp-file-then-atomic-rename like [`DiskWal`](crate::DiskWal)
//! compaction), and [`Keyspace::set_dir`] wipes stale run and `.tmp` files
//! before the rebuild — so a crash at *any* point inside a flush or
//! compaction, including a torn rename, leaves nothing the next incarnation
//! can misread. The run mirror is deliberately non-authoritative: mirror IO
//! errors are counted ([`KeyspaceStats::mirror_errors`]), never fatal.

use crate::codec::{self, CodecError};
use crate::storage::sync_dir;
use bytes::{BufMut, BytesMut};
use pv_core::{Entry, ItemId, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// A monotone sequence number stamped on every version written to the
/// keyspace. Snapshot reads are "the newest version at or below this".
pub type SeqNo = u64;

/// One version in an item's chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Version {
    /// The write's position in the site's total version order.
    pub seq: SeqNo,
    /// The entry installed by that write (possibly a polyvalue).
    pub entry: Entry<Value>,
}

/// Tuning knobs of a [`Keyspace`].
///
/// Thresholds are counted in **entries**, not bytes: entry counts are a
/// pure function of the write sequence, so flush and compaction points are
/// byte-stable across same-seed runs regardless of value encoding width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyspaceConfig {
    /// Number of hash partitions items spread over.
    pub partitions: usize,
    /// Versions a partition's memtable holds before flushing into a run.
    pub memtable_max_entries: usize,
    /// Runs a partition accumulates before they are compacted into one.
    pub run_threshold: usize,
}

impl Default for KeyspaceConfig {
    fn default() -> Self {
        KeyspaceConfig {
            partitions: 4,
            memtable_max_entries: 512,
            run_threshold: 4,
        }
    }
}

/// Refcounted pins on snapshot sequence numbers.
///
/// Acquiring a snapshot pins the current [`SeqNo`]; compaction may only
/// drop versions invisible to the oldest pin. Releasing the last reference
/// on the oldest pin advances the GC horizon.
#[derive(Debug, Clone, Default)]
pub struct SnapshotTracker {
    pins: BTreeMap<SeqNo, usize>,
}

impl SnapshotTracker {
    /// Pins `seq` (reentrant: the same seq may be pinned many times).
    pub fn acquire(&mut self, seq: SeqNo) {
        *self.pins.entry(seq).or_insert(0) += 1;
    }

    /// Releases one reference on `seq`. Releasing a seq that was never
    /// acquired is a no-op (recovery may drop pins wholesale).
    pub fn release(&mut self, seq: SeqNo) {
        if let Some(n) = self.pins.get_mut(&seq) {
            *n -= 1;
            if *n == 0 {
                self.pins.remove(&seq);
            }
        }
    }

    /// The oldest pinned sequence number, if any snapshot is live.
    pub fn oldest(&self) -> Option<SeqNo> {
        self.pins.keys().next().copied()
    }

    /// Number of distinct pinned sequence numbers.
    pub fn pinned(&self) -> usize {
        self.pins.len()
    }

    /// Drops every pin (volatile state lost in a crash).
    pub fn clear(&mut self) {
        self.pins.clear();
    }
}

/// An immutable sorted run: versions ordered by `(item, seq)`.
#[derive(Debug, Clone)]
struct Run {
    id: u64,
    versions: Vec<(ItemId, Version)>,
}

impl Run {
    /// The newest version of `item` with `seq <= snap`, if any.
    fn get_at(&self, item: ItemId, snap: SeqNo) -> Option<&Version> {
        let start = self.versions.partition_point(|(i, _)| *i < item);
        let end = self.versions[start..].partition_point(|(i, _)| *i == item) + start;
        self.versions[start..end]
            .iter()
            .rev()
            .map(|(_, v)| v)
            .find(|v| v.seq <= snap)
    }
}

/// One hash partition: a mutable memtable of version chains plus a stack of
/// immutable sorted runs (newest last).
#[derive(Debug, Clone, Default)]
struct Partition {
    memtable: BTreeMap<ItemId, Vec<Version>>,
    memtable_versions: usize,
    memtable_bytes: u64,
    runs: Vec<Run>,
}

impl Partition {
    fn get_at(&self, item: ItemId, snap: SeqNo) -> Option<&Version> {
        if let Some(chain) = self.memtable.get(&item) {
            if let Some(v) = chain.iter().rev().find(|v| v.seq <= snap) {
                return Some(v);
            }
        }
        self.runs.iter().rev().find_map(|r| r.get_at(item, snap))
    }
}

/// Monotone counters and gauges of keyspace activity, surfaced as the
/// engine's `store.*` metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KeyspaceStats {
    /// Memtable flushes performed (each produced one run).
    pub flushes: u64,
    /// Size-tiered compactions performed.
    pub compactions: u64,
    /// Versions dropped by compaction GC (invisible to every pin).
    pub gc_dropped: u64,
    /// Run files written to the disk mirror.
    pub runs_written: u64,
    /// Best-effort mirror IO failures (the mirror is not authoritative).
    pub mirror_errors: u64,
}

/// The partitioned LSM keyspace. See the module docs for the layout and
/// durability contract.
#[derive(Debug, Clone)]
pub struct Keyspace {
    cfg: KeyspaceConfig,
    dir: Option<PathBuf>,
    parts: Vec<Partition>,
    /// The sequence number of the most recent write (0 = nothing written).
    seq: SeqNo,
    tracker: SnapshotTracker,
    /// Index of every item ever written (iteration order + O(log n) count).
    items: BTreeSet<ItemId>,
    /// Items whose *latest* version is a polyvalue — the paper's `P(t)`.
    poly_items: BTreeSet<ItemId>,
    next_run_id: u64,
    /// Counts every flush and compaction: the LSM's crash-coordinate
    /// counter, sampled by the crashpoint harness alongside the WAL's
    /// append counter.
    op_seq: u64,
    stats: KeyspaceStats,
}

impl Default for Keyspace {
    fn default() -> Self {
        Keyspace::new(KeyspaceConfig::default())
    }
}

impl Keyspace {
    /// An empty keyspace with the given tuning.
    pub fn new(cfg: KeyspaceConfig) -> Self {
        let partitions = cfg.partitions.max(1);
        Keyspace {
            cfg: KeyspaceConfig { partitions, ..cfg },
            dir: None,
            parts: vec![Partition::default(); partitions],
            seq: 0,
            tracker: SnapshotTracker::default(),
            items: BTreeSet::new(),
            poly_items: BTreeSet::new(),
            next_run_id: 0,
            op_seq: 0,
            stats: KeyspaceStats::default(),
        }
    }

    /// Replaces the tuning knobs (only meaningful before writes arrive;
    /// the partition count is fixed at construction and is not changed).
    pub fn set_thresholds(&mut self, memtable_max_entries: usize, run_threshold: usize) {
        self.cfg.memtable_max_entries = memtable_max_entries.max(1);
        self.cfg.run_threshold = run_threshold.max(2);
    }

    /// Attaches a disk mirror directory for run files, wiping anything a
    /// previous incarnation left behind (run files, torn `.tmp` files): the
    /// keyspace is derived state and is about to be rebuilt from the WAL,
    /// so stale runs must never be read.
    pub fn set_dir(&mut self, dir: &Path) {
        let _ = fs::create_dir_all(dir);
        if let Ok(entries) = fs::read_dir(dir) {
            for e in entries.flatten() {
                let name = e.file_name();
                let name = name.to_string_lossy();
                if name.starts_with("run-") && (name.ends_with(".run") || name.ends_with(".tmp")) {
                    let _ = fs::remove_file(e.path());
                }
            }
        }
        sync_dir(dir);
        self.dir = Some(dir.to_path_buf());
    }

    /// Detaches the disk mirror (clones must not write into the original's
    /// directory). Future flushes stay purely in memory.
    pub fn detach_dir(&mut self) {
        self.dir = None;
    }

    /// The active tuning.
    pub fn config(&self) -> KeyspaceConfig {
        self.cfg
    }

    fn part_of(&self, item: ItemId) -> usize {
        (item.0 % self.parts.len() as u64) as usize
    }

    /// Installs `entry` as the next version of `item`, returning its
    /// [`SeqNo`]. May flush the item's partition and trigger compaction.
    pub fn put(&mut self, item: ItemId, entry: Entry<Value>) -> SeqNo {
        self.seq += 1;
        let seq = self.seq;
        if entry.is_poly() {
            self.poly_items.insert(item);
        } else {
            self.poly_items.remove(&item);
        }
        self.items.insert(item);
        let bytes = encoded_len(item, seq, &entry);
        let p = self.part_of(item);
        let part = &mut self.parts[p];
        part.memtable.entry(item).or_default().push(Version { seq, entry });
        part.memtable_versions += 1;
        part.memtable_bytes += bytes;
        if part.memtable_versions >= self.cfg.memtable_max_entries {
            self.flush_partition(p);
        }
        seq
    }

    /// Flushes partition `p`'s memtable into a new run, then compacts the
    /// partition if it crossed the run threshold.
    fn flush_partition(&mut self, p: usize) {
        let part = &mut self.parts[p];
        if part.memtable.is_empty() {
            return;
        }
        let mut versions = Vec::with_capacity(part.memtable_versions);
        for (item, chain) in std::mem::take(&mut part.memtable) {
            for v in chain {
                versions.push((item, v));
            }
        }
        part.memtable_versions = 0;
        part.memtable_bytes = 0;
        let run = Run {
            id: self.next_run_id,
            versions,
        };
        self.next_run_id += 1;
        self.op_seq += 1;
        self.stats.flushes += 1;
        self.mirror_write(&run);
        self.parts[p].runs.push(run);
        if self.parts[p].runs.len() >= self.cfg.run_threshold {
            self.compact_partition(p);
        }
    }

    /// Size-tiered compaction: merges every run of partition `p` into one,
    /// dropping versions invisible to the oldest pinned snapshot. The GC
    /// horizon is `min(oldest pin, current seq)`; per item, every version
    /// above the horizon survives plus the newest at-or-below it (that one
    /// is what the oldest pin resolves the item to).
    fn compact_partition(&mut self, p: usize) {
        let horizon = self.tracker.oldest().unwrap_or(self.seq).min(self.seq);
        let part = &mut self.parts[p];
        let old_ids: Vec<u64> = part.runs.iter().map(|r| r.id).collect();
        let mut chains: BTreeMap<ItemId, Vec<Version>> = BTreeMap::new();
        for run in part.runs.drain(..) {
            for (item, v) in run.versions {
                chains.entry(item).or_default().push(v);
            }
        }
        let mut versions = Vec::new();
        let mut dropped = 0u64;
        for (item, mut chain) in chains {
            chain.sort_by_key(|v| v.seq);
            let keep_from = chain
                .iter()
                .rposition(|v| v.seq <= horizon)
                .unwrap_or(0);
            dropped += keep_from as u64;
            for v in chain.into_iter().skip(keep_from) {
                versions.push((item, v));
            }
        }
        let run = Run {
            id: self.next_run_id,
            versions,
        };
        self.next_run_id += 1;
        self.op_seq += 1;
        self.stats.compactions += 1;
        self.stats.gc_dropped += dropped;
        self.mirror_compact(&old_ids, &run);
        self.parts[p].runs = vec![run];
    }

    /// Mirrors a freshly flushed run to disk (best-effort).
    fn mirror_write(&mut self, run: &Run) {
        let Some(dir) = self.dir.clone() else { return };
        match write_run_file(&dir, run.id, &run.versions) {
            Ok(()) => self.stats.runs_written += 1,
            Err(_) => self.stats.mirror_errors += 1,
        }
    }

    /// Mirrors a compaction: writes the merged run (temp + atomic rename),
    /// then deletes the superseded run files. A crash between the rename
    /// and the deletes leaves stale files that [`Keyspace::set_dir`] wipes
    /// on the next open.
    fn mirror_compact(&mut self, old_ids: &[u64], merged: &Run) {
        let Some(dir) = self.dir.clone() else { return };
        match write_run_file(&dir, merged.id, &merged.versions) {
            Ok(()) => self.stats.runs_written += 1,
            Err(_) => self.stats.mirror_errors += 1,
        }
        for &id in old_ids {
            let _ = fs::remove_file(run_path(&dir, id));
        }
        sync_dir(&dir);
    }

    /// The newest entry of `item`.
    pub fn latest(&self, item: ItemId) -> Option<&Entry<Value>> {
        self.get_at(item, self.seq)
    }

    /// The newest entry of `item` visible at snapshot `snap`.
    pub fn get_at(&self, item: ItemId, snap: SeqNo) -> Option<&Entry<Value>> {
        self.parts[self.part_of(item)]
            .get_at(item, snap)
            .map(|v| &v.entry)
    }

    /// The sequence number of the most recent write.
    pub fn current_seq(&self) -> SeqNo {
        self.seq
    }

    /// Pins the current sequence number for a read-only transaction and
    /// returns it; pair with [`Keyspace::snapshot_release`].
    pub fn snapshot_acquire(&mut self) -> SeqNo {
        let seq = self.seq;
        self.tracker.acquire(seq);
        seq
    }

    /// Releases one pin on `seq`.
    pub fn snapshot_release(&mut self, seq: SeqNo) {
        self.tracker.release(seq);
    }

    /// The snapshot pin tracker.
    pub fn tracker(&self) -> &SnapshotTracker {
        &self.tracker
    }

    /// Number of distinct items ever written.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no item was ever written.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether `item` has any version.
    pub fn contains(&self, item: ItemId) -> bool {
        self.items.contains(&item)
    }

    /// Number of items whose latest version is a polyvalue.
    pub fn poly_count(&self) -> usize {
        self.poly_items.len()
    }

    /// Iterates `(item, latest entry)` in item order.
    pub fn iter_latest(&self) -> impl Iterator<Item = (ItemId, &Entry<Value>)> + '_ {
        self.items.iter().filter_map(move |&item| {
            self.latest(item).map(|e| (item, e))
        })
    }

    /// Total versions held across memtables and runs.
    pub fn version_count(&self) -> usize {
        self.parts
            .iter()
            .map(|p| p.memtable_versions + p.runs.iter().map(|r| r.versions.len()).sum::<usize>())
            .sum()
    }

    /// Total runs across all partitions.
    pub fn run_count(&self) -> usize {
        self.parts.iter().map(|p| p.runs.len()).sum()
    }

    /// Approximate bytes held in memtables (codec-encoded size).
    pub fn memtable_bytes(&self) -> u64 {
        self.parts.iter().map(|p| p.memtable_bytes).sum()
    }

    /// How many writes the oldest live snapshot lags the present by.
    pub fn snapshot_age(&self) -> u64 {
        self.tracker.oldest().map_or(0, |s| self.seq - s)
    }

    /// The flush/compaction operation counter (LSM crash coordinate).
    pub fn op_seq(&self) -> u64 {
        self.op_seq
    }

    /// Activity counters.
    pub fn stats(&self) -> KeyspaceStats {
        self.stats
    }

    /// Clears every version, chain index, and pin (crash of volatile
    /// state; the WAL replay that follows rebuilds the keyspace).
    pub fn clear(&mut self) {
        for part in &mut self.parts {
            part.memtable.clear();
            part.memtable_versions = 0;
            part.memtable_bytes = 0;
            part.runs.clear();
        }
        self.seq = 0;
        self.items.clear();
        self.poly_items.clear();
        self.tracker.clear();
        // next_run_id / op_seq / stats deliberately survive: op_seq is a
        // lifetime crash coordinate (like the WAL's append counter), and
        // run ids must not be reused while stale files may still exist.
    }
}

/// Codec-encoded size of one run-file frame for `(item, seq, entry)`.
fn encoded_len(item: ItemId, seq: SeqNo, entry: &Entry<Value>) -> u64 {
    let mut payload = BytesMut::new();
    payload.put_u64_le(item.0);
    payload.put_u64_le(seq);
    codec::put_entry(&mut payload, entry);
    8 + payload.len() as u64
}

fn run_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("run-{id:08}.run"))
}

/// Writes a run file: consecutive `[len][checksum][payload]` frames (one
/// per version, payload = `item u64 LE + seq u64 LE + entry`), written to a
/// `.tmp` sibling, synced, then atomically renamed into place.
fn write_run_file(
    dir: &Path,
    id: u64,
    versions: &[(ItemId, Version)],
) -> std::io::Result<()> {
    let mut buf = BytesMut::new();
    for (item, v) in versions {
        let mut payload = BytesMut::new();
        payload.put_u64_le(item.0);
        payload.put_u64_le(v.seq);
        codec::put_entry(&mut payload, &v.entry);
        buf.put_u32_le(payload.len() as u32);
        buf.put_u32_le(codec::checksum(&payload));
        buf.put_slice(&payload);
    }
    let final_path = run_path(dir, id);
    let tmp_path = dir.join(format!("run-{id:08}.tmp"));
    let mut f = fs::File::create(&tmp_path)?;
    f.write_all(&buf)?;
    f.sync_all()?;
    drop(f);
    fs::rename(&tmp_path, &final_path)?;
    sync_dir(dir);
    Ok(())
}

/// Decodes a run file written by [`write_run_file`], validating framing and
/// checksums. Used by tests and tooling; the keyspace itself never reads
/// run files back (the WAL is the recovery authority).
pub fn read_run_file(path: &Path) -> Result<Vec<(ItemId, SeqNo, Entry<Value>)>, CodecError> {
    let data = fs::read(path).map_err(|_| CodecError::Truncated)?;
    let mut buf: &[u8] = &data;
    let mut out = Vec::new();
    while !buf.is_empty() {
        let len = codec::get_u32(&mut buf)? as usize;
        let sum = codec::get_u32(&mut buf)?;
        if buf.len() < len {
            return Err(CodecError::Truncated);
        }
        let (payload, rest) = buf.split_at(len);
        if codec::checksum(payload) != sum {
            return Err(CodecError::BadChecksum);
        }
        let mut p = payload;
        let item = ItemId(codec::get_u64(&mut p)?);
        let seq = codec::get_u64(&mut p)?;
        let entry = codec::get_entry(&mut p)?;
        out.push((item, seq, entry));
        buf = rest;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_core::TxnId;

    fn simple(v: i64) -> Entry<Value> {
        Entry::Simple(Value::Int(v))
    }

    fn poly(a: i64, b: i64, t: u64) -> Entry<Value> {
        Entry::in_doubt(simple(a), simple(b), TxnId(t))
    }

    fn tiny() -> Keyspace {
        Keyspace::new(KeyspaceConfig {
            partitions: 2,
            memtable_max_entries: 4,
            run_threshold: 3,
        })
    }

    fn scratch(name: &str) -> PathBuf {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/tmp/lsm")
            .join(name);
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    #[test]
    fn put_then_latest_round_trips() {
        let mut ks = Keyspace::default();
        let s1 = ks.put(ItemId(1), simple(10));
        let s2 = ks.put(ItemId(1), simple(20));
        assert!(s2 > s1);
        assert_eq!(ks.latest(ItemId(1)), Some(&simple(20)));
        assert_eq!(ks.latest(ItemId(2)), None);
        assert_eq!(ks.len(), 1);
        assert!(ks.contains(ItemId(1)));
    }

    #[test]
    fn snapshot_reads_see_point_in_time_view() {
        let mut ks = tiny();
        ks.put(ItemId(1), simple(10));
        let snap = ks.snapshot_acquire();
        // Writes after the snapshot are invisible to it, across flushes.
        for i in 0..20 {
            ks.put(ItemId(1), simple(100 + i));
        }
        assert_eq!(ks.get_at(ItemId(1), snap), Some(&simple(10)));
        assert_eq!(ks.latest(ItemId(1)), Some(&simple(119)));
        ks.snapshot_release(snap);
    }

    #[test]
    fn flush_and_compaction_fire_at_thresholds() {
        let mut ks = tiny();
        // Partition 1 (odd item): 4 versions per flush, 3 runs compact.
        for i in 0..12 {
            ks.put(ItemId(1), simple(i));
        }
        let st = ks.stats();
        assert_eq!(st.flushes, 3);
        assert_eq!(st.compactions, 1);
        assert!(st.gc_dropped > 0);
        assert_eq!(ks.latest(ItemId(1)), Some(&simple(11)));
        // After GC with no pins, only the newest version survives the
        // compacted run.
        assert_eq!(ks.run_count(), 1);
    }

    #[test]
    fn compaction_preserves_pinned_versions() {
        let mut ks = tiny();
        ks.put(ItemId(1), simple(1));
        ks.put(ItemId(1), simple(2));
        let snap = ks.snapshot_acquire();
        for i in 3..30 {
            ks.put(ItemId(1), simple(i));
        }
        assert!(ks.stats().compactions >= 1);
        assert_eq!(ks.get_at(ItemId(1), snap), Some(&simple(2)));
        ks.snapshot_release(snap);
        // With the pin gone, further compactions may GC it.
        for i in 30..60 {
            ks.put(ItemId(1), simple(i));
        }
        assert_eq!(ks.latest(ItemId(1)), Some(&simple(59)));
    }

    #[test]
    fn polyvalue_versions_ride_the_chain() {
        let mut ks = tiny();
        ks.put(ItemId(1), simple(100));
        let snap = ks.snapshot_acquire();
        ks.put(ItemId(1), poly(90, 100, 7));
        assert_eq!(ks.poly_count(), 1);
        // The snapshot predates the install and still sees the simple value.
        assert_eq!(ks.get_at(ItemId(1), snap), Some(&simple(100)));
        // Collapse supersedes the polyvalue as the next version.
        ks.put(ItemId(1), simple(90));
        assert_eq!(ks.poly_count(), 0);
        assert_eq!(ks.latest(ItemId(1)), Some(&simple(90)));
        ks.snapshot_release(snap);
    }

    #[test]
    fn iter_latest_is_item_ordered_and_current() {
        let mut ks = tiny();
        ks.put(ItemId(3), simple(3));
        ks.put(ItemId(1), simple(1));
        ks.put(ItemId(2), simple(2));
        ks.put(ItemId(1), simple(10));
        let got: Vec<(u64, i64)> = ks
            .iter_latest()
            .map(|(i, e)| match e {
                Entry::Simple(Value::Int(n)) => (i.0, *n),
                other => panic!("unexpected entry {other:?}"),
            })
            .collect();
        assert_eq!(got, vec![(1, 10), (2, 2), (3, 3)]);
    }

    #[test]
    fn clear_resets_data_but_keeps_crash_coordinates() {
        let mut ks = tiny();
        for i in 0..12 {
            ks.put(ItemId(1), simple(i));
        }
        let ops = ks.op_seq();
        assert!(ops > 0);
        ks.clear();
        assert!(ks.is_empty());
        assert_eq!(ks.current_seq(), 0);
        assert_eq!(ks.version_count(), 0);
        assert_eq!(ks.op_seq(), ops);
    }

    #[test]
    fn run_files_round_trip_and_mirror_survives_compaction() {
        let dir = scratch("round_trip");
        let mut ks = tiny();
        ks.set_dir(&dir);
        for i in 0..12 {
            ks.put(ItemId(1), simple(i));
        }
        assert!(ks.stats().runs_written >= 4);
        assert_eq!(ks.stats().mirror_errors, 0);
        // Exactly the live runs exist on disk; every file decodes clean.
        let mut on_disk = 0;
        for e in fs::read_dir(&dir).unwrap().flatten() {
            let name = e.file_name().to_string_lossy().into_owned();
            assert!(name.ends_with(".run"), "stray file {name}");
            let versions = read_run_file(&e.path()).expect("valid run file");
            assert!(!versions.is_empty());
            on_disk += 1;
        }
        assert_eq!(on_disk, ks.run_count());
    }

    #[test]
    fn set_dir_wipes_stale_and_torn_files() {
        let dir = scratch("wipe_stale");
        fs::write(dir.join("run-00000007.run"), b"stale").unwrap();
        fs::write(dir.join("run-00000008.tmp"), b"torn").unwrap();
        fs::write(dir.join("keep.txt"), b"unrelated").unwrap();
        let mut ks = tiny();
        ks.set_dir(&dir);
        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["keep.txt"]);
        // And the rebuilt keyspace mirrors fresh runs cleanly.
        for i in 0..8 {
            ks.put(ItemId(1), simple(i));
        }
        assert!(ks.stats().runs_written > 0);
        assert_eq!(ks.stats().mirror_errors, 0);
    }

    #[test]
    fn snapshot_tracker_refcounts() {
        let mut t = SnapshotTracker::default();
        assert_eq!(t.oldest(), None);
        t.acquire(5);
        t.acquire(5);
        t.acquire(9);
        assert_eq!(t.oldest(), Some(5));
        t.release(5);
        assert_eq!(t.oldest(), Some(5));
        t.release(5);
        assert_eq!(t.oldest(), Some(9));
        t.release(9);
        assert_eq!(t.oldest(), None);
        // Releasing an unknown pin is a no-op.
        t.release(42);
    }
}
