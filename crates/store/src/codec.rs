//! Binary serialisation of the write-ahead log.
//!
//! The simulated stable storage keeps records as structured values; this
//! codec is the on-disk format a real deployment would use. Each record is
//! framed as
//!
//! ```text
//! [len: u32 LE] [payload: len bytes] [checksum: u32 LE over payload]
//! ```
//!
//! so a torn write (power loss mid-append) truncates cleanly: decoding stops
//! at the first incomplete or corrupt frame and returns everything before
//! it, exactly the recovery contract of a production WAL.

use crate::wal::{Record, Wal};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use pv_core::cond::{Condition, Literal, Product};
use pv_core::{Entry, ItemId, TxnId, Value};
use std::fmt;

/// Errors detected while decoding a WAL image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The data ended inside a frame (torn write).
    Truncated,
    /// A frame's checksum did not match its payload.
    BadChecksum,
    /// An unknown record or value tag.
    BadTag(u8),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A decoded polyvalue violated the §3 invariant.
    BadPolyvalue,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "log image truncated mid-frame"),
            CodecError::BadChecksum => write!(f, "frame checksum mismatch"),
            CodecError::BadTag(t) => write!(f, "unknown tag {t}"),
            CodecError::BadUtf8 => write!(f, "invalid UTF-8 in string field"),
            CodecError::BadPolyvalue => write!(f, "decoded polyvalue violates invariant"),
        }
    }
}

impl std::error::Error for CodecError {}

/// FNV-1a, 32-bit: fast, dependency-free integrity check for frames. (A
/// production log would use CRC32C; the recovery semantics are identical.)
///
/// Public because the network transport (`pv-net`) frames its wire messages
/// with the same checksum discipline as the WAL — one integrity story for
/// bytes at rest and bytes in flight.
pub fn checksum(data: &[u8]) -> u32 {
    let mut hash: u32 = 0x811C_9DC5;
    for &b in data {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

// ---- value / condition / entry encoding -----------------------------------
//
// These primitives are public: they are the single binary vocabulary for
// values, conditions, and entries, shared between the WAL framing here and
// the network wire format in `pv-net::wire`. Both sides framing differently
// (the WAL has no header; wire frames carry magic/version/kind) but agreeing
// on payload encoding is what lets a staged write read from disk and a
// `Prepare` read from a socket decode through the same code path.

/// Encodes a [`Value`] (tagged: int/bool/str).
pub fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Int(n) => {
            buf.put_u8(0);
            buf.put_i64_le(*n);
        }
        Value::Bool(b) => {
            buf.put_u8(1);
            buf.put_u8(u8::from(*b));
        }
        Value::Str(s) => {
            buf.put_u8(2);
            buf.put_u32_le(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
    }
}

/// Decodes a [`Value`] encoded by [`put_value`].
pub fn get_value(buf: &mut &[u8]) -> Result<Value, CodecError> {
    let tag = get_u8(buf)?;
    match tag {
        0 => Ok(Value::Int(get_i64(buf)?)),
        1 => Ok(Value::Bool(get_u8(buf)? != 0)),
        2 => {
            let len = get_u32(buf)? as usize;
            if buf.len() < len {
                return Err(CodecError::Truncated);
            }
            let (s, rest) = buf.split_at(len);
            *buf = rest;
            String::from_utf8(s.to_vec())
                .map(Value::Str)
                .map_err(|_| CodecError::BadUtf8)
        }
        t => Err(CodecError::BadTag(t)),
    }
}

/// Encodes a DNF [`Condition`] (products of transaction-outcome literals).
pub fn put_condition(buf: &mut BytesMut, c: &Condition) {
    buf.put_u32_le(c.products().len() as u32);
    for p in c.products() {
        buf.put_u32_le(p.len() as u32);
        for lit in p.literals() {
            buf.put_u64_le(lit.txn().raw());
            buf.put_u8(u8::from(lit.is_positive()));
        }
    }
}

/// Decodes a [`Condition`] encoded by [`put_condition`].
pub fn get_condition(buf: &mut &[u8]) -> Result<Condition, CodecError> {
    let n_products = get_u32(buf)? as usize;
    let mut products = Vec::with_capacity(n_products);
    for _ in 0..n_products {
        let n_lits = get_u32(buf)? as usize;
        let mut lits = Vec::with_capacity(n_lits);
        for _ in 0..n_lits {
            let txn = TxnId(get_u64(buf)?);
            let positive = get_u8(buf)? != 0;
            lits.push(if positive {
                Literal::positive(txn)
            } else {
                Literal::negative(txn)
            });
        }
        let product = Product::from_literals(lits).ok_or(CodecError::BadPolyvalue)?;
        products.push(product);
    }
    Ok(Condition::from_products(products))
}

/// Encodes an [`Entry`] — a simple value or a polyvalue with its conditions.
pub fn put_entry(buf: &mut BytesMut, e: &Entry<Value>) {
    match e {
        Entry::Simple(v) => {
            buf.put_u8(0);
            put_value(buf, v);
        }
        Entry::Poly(p) => {
            buf.put_u8(1);
            buf.put_u32_le(p.len() as u32);
            for (v, c) in p.pairs() {
                put_value(buf, v);
                put_condition(buf, c);
            }
        }
    }
}

/// Decodes an [`Entry`] encoded by [`put_entry`], re-checking the §3
/// polyvalue invariant via [`Entry::assemble`].
pub fn get_entry(buf: &mut &[u8]) -> Result<Entry<Value>, CodecError> {
    match get_u8(buf)? {
        0 => Ok(Entry::Simple(get_value(buf)?)),
        1 => {
            let n = get_u32(buf)? as usize;
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                let v = get_value(buf)?;
                let c = get_condition(buf)?;
                pairs.push((Entry::Simple(v), c));
            }
            // Assembling re-checks the §3 invariant, so a corrupted-but-
            // checksum-colliding image cannot smuggle in a bad polyvalue.
            Entry::assemble(pairs).map_err(|_| CodecError::BadPolyvalue)
        }
        t => Err(CodecError::BadTag(t)),
    }
}

// ---- primitive readers ------------------------------------------------------

/// Reads one byte, or [`CodecError::Truncated`].
pub fn get_u8(buf: &mut &[u8]) -> Result<u8, CodecError> {
    if buf.is_empty() {
        return Err(CodecError::Truncated);
    }
    Ok(buf.get_u8())
}

/// Reads a little-endian `u32`, or [`CodecError::Truncated`].
pub fn get_u32(buf: &mut &[u8]) -> Result<u32, CodecError> {
    if buf.len() < 4 {
        return Err(CodecError::Truncated);
    }
    Ok(buf.get_u32_le())
}

/// Reads a little-endian `u64`, or [`CodecError::Truncated`].
pub fn get_u64(buf: &mut &[u8]) -> Result<u64, CodecError> {
    if buf.len() < 8 {
        return Err(CodecError::Truncated);
    }
    Ok(buf.get_u64_le())
}

/// Reads a little-endian `i64`, or [`CodecError::Truncated`].
pub fn get_i64(buf: &mut &[u8]) -> Result<i64, CodecError> {
    if buf.len() < 8 {
        return Err(CodecError::Truncated);
    }
    Ok(buf.get_i64_le())
}

// ---- record framing ---------------------------------------------------------

/// Encodes one record into its framed wire form.
pub fn encode_record(record: &Record, out: &mut BytesMut) {
    let mut payload = BytesMut::new();
    match record {
        Record::SetItem { item, entry } => {
            payload.put_u8(1);
            payload.put_u64_le(item.0);
            put_entry(&mut payload, entry);
        }
        Record::PendingPrepare {
            txn,
            coordinator,
            writes,
        } => {
            payload.put_u8(2);
            payload.put_u64_le(txn.raw());
            payload.put_u32_le(*coordinator);
            payload.put_u32_le(writes.len() as u32);
            for (item, entry) in writes {
                payload.put_u64_le(item.0);
                put_entry(&mut payload, entry);
            }
        }
        Record::PendingResolved { txn } => {
            payload.put_u8(3);
            payload.put_u64_le(txn.raw());
        }
        Record::DepNoted { txn, item } => {
            payload.put_u8(4);
            payload.put_u64_le(txn.raw());
            payload.put_u64_le(item.0);
        }
        Record::DepSent { txn, site } => {
            payload.put_u8(5);
            payload.put_u64_le(txn.raw());
            payload.put_u32_le(*site);
        }
        Record::DepForgotten { txn } => {
            payload.put_u8(6);
            payload.put_u64_le(txn.raw());
        }
        Record::Decision { txn, completed } => {
            payload.put_u8(7);
            payload.put_u64_le(txn.raw());
            payload.put_u8(u8::from(*completed));
        }
        Record::Epoch { epoch } => {
            payload.put_u8(8);
            payload.put_u32_le(*epoch);
        }
        Record::PaxosVote {
            txn,
            part,
            parts,
            prepared,
        } => {
            payload.put_u8(9);
            payload.put_u64_le(txn.raw());
            payload.put_u32_le(*part);
            payload.put_u32_le(parts.len() as u32);
            for p in parts {
                payload.put_u32_le(*p);
            }
            payload.put_u8(u8::from(*prepared));
        }
        Record::PaxosPromise { txn, ballot } => {
            payload.put_u8(10);
            payload.put_u64_le(txn.raw());
            payload.put_u64_le(*ballot);
        }
        Record::PaxosAccept {
            txn,
            ballot,
            completed,
        } => {
            payload.put_u8(11);
            payload.put_u64_le(txn.raw());
            payload.put_u64_le(*ballot);
            payload.put_u8(u8::from(*completed));
        }
        Record::PaxosForgotten { txn } => {
            payload.put_u8(12);
            payload.put_u64_le(txn.raw());
        }
    }
    out.put_u32_le(payload.len() as u32);
    out.put_u32_le(checksum(&payload));
    out.put_slice(&payload);
}

/// Decodes one framed record from the front of `data`; advances `data`.
fn decode_record(data: &mut &[u8]) -> Result<Record, CodecError> {
    let len = get_u32(data)? as usize;
    let sum = get_u32(data)?;
    if data.len() < len {
        return Err(CodecError::Truncated);
    }
    let (payload, rest) = data.split_at(len);
    if checksum(payload) != sum {
        return Err(CodecError::BadChecksum);
    }
    *data = rest;
    let mut p = payload;
    let record = match get_u8(&mut p)? {
        1 => Record::SetItem {
            item: ItemId(get_u64(&mut p)?),
            entry: get_entry(&mut p)?,
        },
        2 => {
            let txn = TxnId(get_u64(&mut p)?);
            let coordinator = get_u32(&mut p)?;
            let n = get_u32(&mut p)? as usize;
            let mut writes = Vec::with_capacity(n);
            for _ in 0..n {
                let item = ItemId(get_u64(&mut p)?);
                writes.push((item, get_entry(&mut p)?));
            }
            Record::PendingPrepare {
                txn,
                coordinator,
                writes,
            }
        }
        3 => Record::PendingResolved {
            txn: TxnId(get_u64(&mut p)?),
        },
        4 => Record::DepNoted {
            txn: TxnId(get_u64(&mut p)?),
            item: ItemId(get_u64(&mut p)?),
        },
        5 => Record::DepSent {
            txn: TxnId(get_u64(&mut p)?),
            site: get_u32(&mut p)?,
        },
        6 => Record::DepForgotten {
            txn: TxnId(get_u64(&mut p)?),
        },
        7 => Record::Decision {
            txn: TxnId(get_u64(&mut p)?),
            completed: get_u8(&mut p)? != 0,
        },
        8 => Record::Epoch {
            epoch: get_u32(&mut p)?,
        },
        9 => {
            let txn = TxnId(get_u64(&mut p)?);
            let part = get_u32(&mut p)?;
            let n = get_u32(&mut p)? as usize;
            let mut parts = Vec::with_capacity(n);
            for _ in 0..n {
                parts.push(get_u32(&mut p)?);
            }
            Record::PaxosVote {
                txn,
                part,
                parts,
                prepared: get_u8(&mut p)? != 0,
            }
        }
        10 => Record::PaxosPromise {
            txn: TxnId(get_u64(&mut p)?),
            ballot: get_u64(&mut p)?,
        },
        11 => Record::PaxosAccept {
            txn: TxnId(get_u64(&mut p)?),
            ballot: get_u64(&mut p)?,
            completed: get_u8(&mut p)? != 0,
        },
        12 => Record::PaxosForgotten {
            txn: TxnId(get_u64(&mut p)?),
        },
        t => return Err(CodecError::BadTag(t)),
    };
    Ok(record)
}

/// Serialises a whole log.
pub fn encode_wal(wal: &Wal) -> Bytes {
    let mut out = BytesMut::new();
    for record in wal.iter() {
        encode_record(record, &mut out);
    }
    out.freeze()
}

/// Deserialises a log image, requiring every byte to parse.
pub fn decode_wal(mut data: &[u8]) -> Result<Wal, CodecError> {
    let mut records = Vec::new();
    while !data.is_empty() {
        records.push(decode_record(&mut data)?);
    }
    Ok(Wal::from_records(records))
}

/// Deserialises a possibly torn log image: returns every intact record and
/// the error that stopped decoding (if any). This is the crash-recovery
/// path — a torn tail is expected, not fatal.
pub fn decode_wal_lossy(data: &[u8]) -> (Wal, Option<CodecError>) {
    let (wal, _, error) = decode_wal_prefix(data);
    (wal, error)
}

/// Like [`decode_wal_lossy`], but also reports how many bytes the valid
/// prefix spans, so recovery can truncate stable storage at exactly the
/// first torn or corrupt frame.
pub fn decode_wal_prefix(data: &[u8]) -> (Wal, usize, Option<CodecError>) {
    let mut rest = data;
    let mut records = Vec::new();
    let mut error = None;
    while !rest.is_empty() {
        let before = rest;
        match decode_record(&mut rest) {
            Ok(r) => records.push(r),
            Err(e) => {
                error = Some(e);
                rest = before;
                break;
            }
        }
    }
    let consumed = data.len() - rest.len();
    (Wal::from_records(records), consumed, error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_core::Entry;

    fn sample_records() -> Vec<Record> {
        let poly = Entry::in_doubt(
            Entry::Simple(Value::Int(90)),
            Entry::in_doubt(
                Entry::Simple(Value::Str("busy".into())),
                Entry::Simple(Value::Str("idle".into())),
                TxnId(2),
            ),
            TxnId(1),
        );
        vec![
            Record::SetItem {
                item: ItemId(1),
                entry: Entry::Simple(Value::Int(-5)),
            },
            Record::SetItem {
                item: ItemId(2),
                entry: Entry::Simple(Value::Bool(true)),
            },
            Record::SetItem {
                item: ItemId(3),
                entry: poly.clone(),
            },
            Record::PendingPrepare {
                txn: TxnId(9),
                coordinator: 3,
                writes: vec![(ItemId(1), Entry::Simple(Value::Int(7))), (ItemId(3), poly)],
            },
            Record::PendingResolved { txn: TxnId(9) },
            Record::DepNoted {
                txn: TxnId(1),
                item: ItemId(3),
            },
            Record::DepSent {
                txn: TxnId(1),
                site: 2,
            },
            Record::DepForgotten { txn: TxnId(1) },
            Record::Decision {
                txn: TxnId(9),
                completed: true,
            },
            Record::Decision {
                txn: TxnId(10),
                completed: false,
            },
            Record::Epoch { epoch: 4 },
            Record::PaxosVote {
                txn: TxnId(11),
                part: 1,
                parts: vec![0, 1, 2],
                prepared: true,
            },
            Record::PaxosVote {
                txn: TxnId(11),
                part: 2,
                parts: vec![0, 1, 2],
                prepared: false,
            },
            Record::PaxosPromise {
                txn: TxnId(11),
                ballot: (2u64 << 16) | 1,
            },
            Record::PaxosAccept {
                txn: TxnId(11),
                ballot: (2u64 << 16) | 1,
                completed: false,
            },
            Record::PaxosForgotten { txn: TxnId(11) },
        ]
    }

    fn wal_of(records: Vec<Record>) -> Wal {
        Wal::from_records(records)
    }

    #[test]
    fn round_trip_every_record_kind() {
        let wal = wal_of(sample_records());
        let bytes = encode_wal(&wal);
        let decoded = decode_wal(&bytes).unwrap();
        assert_eq!(
            decoded.iter().collect::<Vec<_>>(),
            wal.iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_wal_round_trips() {
        let bytes = encode_wal(&Wal::new());
        assert!(bytes.is_empty());
        assert_eq!(decode_wal(&bytes).unwrap().len(), 0);
    }

    #[test]
    fn torn_tail_is_recovered_lossily() {
        let wal = wal_of(sample_records());
        let bytes = encode_wal(&wal);
        // Chop the image at every possible byte boundary: decoding never
        // panics and never yields more records than were fully written.
        for cut in 0..bytes.len() {
            let (recovered, err) = decode_wal_lossy(&bytes[..cut]);
            assert!(recovered.len() <= wal.len());
            if cut < bytes.len() {
                // Anything but the exact full image should usually stop with
                // Truncated; intermediate frame boundaries decode cleanly.
                if recovered.len() < wal.len() && cut > 0 {
                    // If decoding stopped early mid-frame there must be an
                    // error; at an exact boundary there is none.
                    let consumed_exactly = err.is_none();
                    if !consumed_exactly {
                        assert_eq!(err, Some(CodecError::Truncated));
                    }
                }
                // Every record that did decode matches the original prefix.
                for (got, want) in recovered.iter().zip(wal.iter()) {
                    assert_eq!(got, want);
                }
            }
        }
    }

    #[test]
    fn prefix_decode_reports_consumed_bytes() {
        let wal = wal_of(sample_records());
        let bytes = encode_wal(&wal);
        let (full, consumed, err) = decode_wal_prefix(&bytes);
        assert_eq!(consumed, bytes.len());
        assert!(err.is_none());
        assert_eq!(full.len(), wal.len());
        // A torn tail: consumed stops at the last intact frame boundary, and
        // re-decoding exactly that prefix is clean.
        let torn = &bytes[..bytes.len() - 2];
        let (some, consumed, err) = decode_wal_prefix(torn);
        assert!(err.is_some());
        assert!(consumed < torn.len());
        let (again, consumed2, err2) = decode_wal_prefix(&torn[..consumed]);
        assert_eq!(consumed2, consumed);
        assert!(err2.is_none());
        assert_eq!(again.len(), some.len());
    }

    #[test]
    fn corrupted_payload_is_rejected() {
        let wal = wal_of(sample_records());
        let bytes = encode_wal(&wal);
        let mut corrupt = bytes.to_vec();
        // Flip a byte inside the first frame's payload.
        corrupt[9] ^= 0xFF;
        let (recovered, err) = decode_wal_lossy(&corrupt);
        assert_eq!(recovered.len(), 0);
        assert_eq!(err, Some(CodecError::BadChecksum));
        assert!(decode_wal(&corrupt).is_err());
    }

    #[test]
    fn unknown_tag_is_rejected() {
        // Hand-craft a frame with tag 99 and a valid checksum.
        let mut out = BytesMut::new();
        let payload = [99u8];
        out.put_u32_le(1);
        out.put_u32_le(checksum(&payload));
        out.put_slice(&payload);
        assert!(matches!(decode_wal(&out), Err(CodecError::BadTag(99))));
    }

    #[test]
    fn strict_decode_fails_on_any_trailing_garbage() {
        let wal = wal_of(vec![Record::Epoch { epoch: 1 }]);
        let mut bytes = encode_wal(&wal).to_vec();
        bytes.push(0x01);
        assert!(decode_wal(&bytes).is_err());
        let (recovered, err) = decode_wal_lossy(&bytes);
        assert_eq!(recovered.len(), 1);
        assert_eq!(err, Some(CodecError::Truncated));
    }

    #[test]
    fn invalid_polyvalue_images_are_rejected() {
        // Encode a "polyvalue" whose single pair is conditioned on T1 only —
        // incomplete, so assembly must refuse it.
        let mut payload = BytesMut::new();
        payload.put_u8(1); // SetItem
        payload.put_u64_le(1); // item
        payload.put_u8(1); // Entry::Poly
        payload.put_u32_le(1); // one pair
        put_value(&mut payload, &Value::Int(5));
        put_condition(&mut payload, &Condition::var(TxnId(1)));
        let mut out = BytesMut::new();
        out.put_u32_le(payload.len() as u32);
        out.put_u32_le(checksum(&payload));
        out.put_slice(&payload);
        assert!(matches!(decode_wal(&out), Err(CodecError::BadPolyvalue)));
    }

    #[test]
    fn error_display() {
        assert!(CodecError::Truncated.to_string().contains("truncated"));
        assert!(CodecError::BadChecksum.to_string().contains("checksum"));
        assert!(CodecError::BadTag(7).to_string().contains('7'));
        assert!(CodecError::BadUtf8.to_string().contains("UTF-8"));
        assert!(CodecError::BadPolyvalue.to_string().contains("invariant"));
    }
}
