//! The per-site storage engine.
//!
//! A [`SiteStore`] owns one site's durable state: the item table, staged
//! wait-phase transactions, the §3.3 outcome-dependency table, and (when the
//! site acts as coordinator) decided outcomes. Every mutation is logged to
//! stable storage (a pluggable [`Storage`] backend) first;
//! [`SiteStore::crash_and_recover`] discards the materialised state and
//! rebuilds it by replaying whatever image survived the crash, which is
//! exactly what the engine's sites do when the failure injector crashes them.

use crate::lsm::{Keyspace, KeyspaceStats, SeqNo};
use crate::outcomes::{DepEntry, OutcomeTable};
use crate::storage::{MemStorage, Storage, StorageStats};
use crate::wal::{Record, SiteId, Wal};
use pv_core::expr::ReadSource;
use pv_core::{Entry, ItemId, TxnId, Value};
use std::collections::BTreeMap;

/// What a snapshot read returns: the pinned sequence number and the
/// `(item, entry)` pairs observed at exactly that point in time.
pub type SnapshotView = (SeqNo, Vec<(ItemId, Entry<Value>)>);

/// A transaction staged in the wait phase: values computed, outcome unknown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingTxn {
    /// The coordinator to ask about the outcome.
    pub coordinator: SiteId,
    /// The writes this site will install if the transaction completes.
    pub writes: Vec<(ItemId, Entry<Value>)>,
}

/// Durable Paxos Commit acceptor state for one transaction: the ballot-0
/// votes this acceptor has accepted, its phase-1 promise, and the
/// highest-ballot phase-2 verdict it has accepted. Rebuilt from
/// `PaxosVote`/`PaxosPromise`/`PaxosAccept` records on recovery; discarded by
/// `PaxosForgotten` once the decision is durable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PaxosState {
    /// Highest ballot promised in phase 1 (0 = none; ballot 0 needs no
    /// promise — it belongs to the participants themselves).
    pub promised: u64,
    /// Accepted ballot-0 votes, per participant.
    pub votes: BTreeMap<SiteId, bool>,
    /// The registered participant set (carried by every vote).
    pub parts: Vec<SiteId>,
    /// The highest-ballot verdict accepted in phase 2, as
    /// `(ballot, completed)`.
    pub accepted: Option<(u64, bool)>,
}

/// Storage and recovery activity since the last [`SiteStore::take_stats`]
/// call — the bridge from the storage layer to the metrics registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StoreStats {
    /// Framed bytes appended to the log.
    pub wal_bytes: u64,
    /// Records appended to the log.
    pub wal_appends: u64,
    /// Effective storage syncs.
    pub wal_syncs: u64,
    /// Segments created (rotations and compaction targets).
    pub wal_segments: u64,
    /// Compactions performed.
    pub wal_compactions: u64,
    /// Records replayed by recoveries.
    pub recovery_replay_records: u64,
    /// Recoveries that had to truncate a torn or corrupt tail.
    pub recovery_truncations: u64,
    /// Wall-clock duration of each recovery, in seconds.
    pub recovery_durations: Vec<f64>,
    /// Keyspace memtable flushes (each produced a sorted run).
    pub lsm_flushes: u64,
    /// Keyspace size-tiered compactions.
    pub lsm_compactions: u64,
    /// Versions garbage-collected by keyspace compactions.
    pub lsm_gc_dropped: u64,
    /// Run files written to the keyspace's disk mirror.
    pub lsm_runs_written: u64,
    /// Snapshot read transactions served.
    pub snapshot_reads: u64,
}

impl StoreStats {
    /// Whether anything happened since the last drain.
    pub fn is_empty(&self) -> bool {
        *self == StoreStats::default()
    }
}

/// Durable per-site storage with WAL-based crash recovery.
///
/// # Examples
///
/// ```
/// use pv_store::SiteStore;
/// use pv_core::{Entry, ItemId, TxnId, Value};
///
/// let mut store = SiteStore::new();
/// store.seed_item(ItemId(1), Value::Int(100));
/// // Stage a wait-phase transaction, then time out into a polyvalue:
/// store.stage(TxnId(7), 0, vec![(ItemId(1), Entry::Simple(Value::Int(90)))]);
/// store.install_in_doubt(TxnId(7));
/// assert_eq!(store.poly_count(), 1);
/// // A crash loses nothing: state is rebuilt from the WAL.
/// store.crash_and_recover();
/// assert_eq!(store.poly_count(), 1);
/// // Learning the outcome collapses the polyvalue.
/// store.apply_decision(TxnId(7), true);
/// assert_eq!(store.get(ItemId(1)), Some(Entry::Simple(Value::Int(90))));
/// assert_eq!(store.poly_count(), 0);
/// ```
#[derive(Debug)]
pub struct SiteStore {
    storage: Box<dyn Storage>,
    /// In-memory mirror of the appended records (may run ahead of what the
    /// backend has made durable; recovery re-reads the backend).
    wal: Wal,
    /// The materialised table: a partitioned LSM keyspace of MVCC version
    /// chains, derived state rebuilt from the WAL on every recovery.
    keyspace: Keyspace,
    pending: BTreeMap<TxnId, PendingTxn>,
    outcomes: OutcomeTable,
    decisions: BTreeMap<TxnId, bool>,
    paxos: BTreeMap<TxnId, PaxosState>,
    epoch: u32,
    compact_threshold: usize,
    /// Monotonic count of records ever appended; unlike the WAL length it is
    /// never reset by compaction, so it names crash points stably.
    append_seq: u64,
    /// Storage counters at the last [`SiteStore::take_stats`] drain.
    drained: StorageStats,
    /// Keyspace counters at the last [`SiteStore::take_stats`] drain.
    drained_lsm: KeyspaceStats,
    /// Snapshot reads served since the last drain.
    snapshot_reads: u64,
    /// Recovery activity since the last drain.
    recovery: StoreStats,
}

impl Default for SiteStore {
    fn default() -> Self {
        SiteStore::new()
    }
}

impl Clone for SiteStore {
    /// Clones snapshot into a fresh, fully-synced in-memory backend: clones
    /// serve inspection and tests, never share a disk, and carry no pending
    /// fault state.
    fn clone(&self) -> Self {
        let image = crate::codec::encode_wal(&self.wal);
        let mut keyspace = self.keyspace.clone();
        // A clone must never mirror runs into the original's directory.
        keyspace.detach_dir();
        SiteStore {
            storage: Box::new(MemStorage::from_image(image.to_vec())),
            wal: self.wal.clone(),
            keyspace,
            pending: self.pending.clone(),
            outcomes: self.outcomes.clone(),
            decisions: self.decisions.clone(),
            paxos: self.paxos.clone(),
            epoch: self.epoch,
            compact_threshold: self.compact_threshold,
            append_seq: self.append_seq,
            drained: StorageStats::default(),
            drained_lsm: KeyspaceStats::default(),
            snapshot_reads: 0,
            recovery: StoreStats::default(),
        }
    }
}

impl SiteStore {
    /// An empty store over an always-durable in-memory backend.
    pub fn new() -> Self {
        SiteStore::with_storage(Box::new(MemStorage::new()))
    }

    /// An empty store over an arbitrary storage backend.
    pub fn with_storage(storage: Box<dyn Storage>) -> Self {
        SiteStore {
            storage,
            wal: Wal::new(),
            keyspace: Keyspace::default(),
            pending: BTreeMap::new(),
            outcomes: OutcomeTable::new(),
            decisions: BTreeMap::new(),
            paxos: BTreeMap::new(),
            epoch: 0,
            compact_threshold: 4096,
            append_seq: 0,
            drained: StorageStats::default(),
            drained_lsm: KeyspaceStats::default(),
            snapshot_reads: 0,
            recovery: StoreStats::default(),
        }
    }

    /// Opens a store over a backend that may already hold a log image (a
    /// site restarting from its data directory): the image is replayed —
    /// dropping any torn tail — and the materialised state rebuilt.
    pub fn open(storage: Box<dyn Storage>) -> Self {
        let mut store = SiteStore::with_storage(storage);
        store.recover_from_storage();
        store
    }

    /// Sets how many WAL appends trigger [`SiteStore::maybe_compact`].
    pub fn with_compact_threshold(mut self, threshold: usize) -> Self {
        self.compact_threshold = threshold;
        self
    }

    /// Sets the keyspace's memtable flush threshold (entries per partition
    /// memtable) and run-compaction threshold (runs per partition).
    pub fn with_lsm_thresholds(mut self, memtable_max_entries: usize, run_threshold: usize) -> Self {
        self.keyspace.set_thresholds(memtable_max_entries, run_threshold);
        self
    }

    /// Attaches a disk mirror directory for keyspace run files (wiping any
    /// stale runs a previous incarnation left — the keyspace is derived
    /// state, rebuilt from the WAL, so old run files must never be read).
    pub fn attach_keyspace_dir(&mut self, dir: &std::path::Path) {
        self.keyspace.set_dir(dir);
    }

    /// Appends a record to stable storage and mirrors it in memory.
    ///
    /// # Panics
    /// On a real I/O failure of the backend: the protocol has no story for a
    /// site whose stable storage is broken (the paper assumes it reliable).
    fn log(&mut self, record: Record) {
        self.storage
            .append(&record)
            .expect("stable storage append failed");
        self.wal.append(record);
        self.append_seq += 1;
    }

    /// Forces everything appended so far to stable storage. Called
    /// internally at protocol-critical points; public so owners can sync on
    /// clean shutdown.
    pub fn sync(&mut self) {
        self.storage.sync().expect("stable storage sync failed");
    }

    /// Monotonic count of records ever appended (never reset by
    /// compaction) — the crash-point coordinate system.
    pub fn append_seq(&self) -> u64 {
        self.append_seq
    }

    /// Drains storage and recovery activity since the last call.
    pub fn take_stats(&mut self) -> StoreStats {
        let now = self.storage.stats();
        let lsm = self.keyspace.stats();
        let mut out = std::mem::take(&mut self.recovery);
        out.wal_bytes = now.bytes_appended - self.drained.bytes_appended;
        out.wal_appends = now.appends - self.drained.appends;
        out.wal_syncs = now.syncs - self.drained.syncs;
        out.wal_segments = now.segments_created - self.drained.segments_created;
        out.wal_compactions = now.compactions - self.drained.compactions;
        out.lsm_flushes = lsm.flushes - self.drained_lsm.flushes;
        out.lsm_compactions = lsm.compactions - self.drained_lsm.compactions;
        out.lsm_gc_dropped = lsm.gc_dropped - self.drained_lsm.gc_dropped;
        out.lsm_runs_written = lsm.runs_written - self.drained_lsm.runs_written;
        out.snapshot_reads = std::mem::take(&mut self.snapshot_reads);
        self.drained = now;
        self.drained_lsm = lsm;
        out
    }

    // ---- items -----------------------------------------------------------

    /// Creates an item with an initial simple value (bypasses no protocol:
    /// used to load the database before a run).
    pub fn seed_item(&mut self, item: ItemId, value: Value) {
        self.set_entry(item, Entry::Simple(value));
    }

    /// Durably installs `entry` as the current value of `item`, maintaining
    /// the outcome-dependency table.
    pub fn set_entry(&mut self, item: ItemId, entry: Entry<Value>) {
        self.log(Record::SetItem {
            item,
            entry: entry.clone(),
        });
        self.materialise_set(item, entry);
    }

    /// The current (newest-version) entry of `item`.
    pub fn get(&self, item: ItemId) -> Option<Entry<Value>> {
        self.keyspace.latest(item).cloned()
    }

    /// Whether this site holds `item`.
    pub fn contains(&self, item: ItemId) -> bool {
        self.keyspace.contains(item)
    }

    /// Number of items held.
    pub fn item_count(&self) -> usize {
        self.keyspace.len()
    }

    /// Number of items currently holding polyvalues (the paper's `P(t)`
    /// restricted to this site).
    pub fn poly_count(&self) -> usize {
        self.keyspace.poly_count()
    }

    /// Iterates over `(item, entry)` pairs in item order, yielding the
    /// newest version of each item.
    pub fn iter_items(&self) -> impl Iterator<Item = (ItemId, Entry<Value>)> + '_ {
        self.keyspace.iter_latest().map(|(i, e)| (i, e.clone()))
    }

    // ---- MVCC snapshots ----------------------------------------------------

    /// The entry of `item` visible at snapshot `snap` (the newest version
    /// with sequence number at or below it).
    pub fn get_at(&self, item: ItemId, snap: SeqNo) -> Option<Entry<Value>> {
        self.keyspace.get_at(item, snap).cloned()
    }

    /// The sequence number of the most recent versioned write.
    pub fn current_seq(&self) -> SeqNo {
        self.keyspace.current_seq()
    }

    /// Pins the current sequence number for a read-only transaction;
    /// compaction will not GC any version the pin can see. Pair with
    /// [`SiteStore::snapshot_release`].
    pub fn snapshot_acquire(&mut self) -> SeqNo {
        self.keyspace.snapshot_acquire()
    }

    /// Releases one pin on `snap`.
    pub fn snapshot_release(&mut self, snap: SeqNo) {
        self.keyspace.snapshot_release(snap);
    }

    /// Serves a coordination-free read-only transaction: acquires a
    /// snapshot, reads every requested item (all of them if `items` is
    /// empty) at that single point in time, releases the pin, and returns
    /// `(snapshot, entries)`. Touches no lock table, stages nothing, and
    /// appends nothing to the WAL.
    pub fn snapshot_read(&mut self, items: &[ItemId]) -> SnapshotView {
        let snap = self.keyspace.snapshot_acquire();
        let entries = if items.is_empty() {
            self.keyspace
                .iter_latest()
                .map(|(i, _)| i)
                .collect::<Vec<_>>()
                .into_iter()
                .filter_map(|i| self.keyspace.get_at(i, snap).cloned().map(|e| (i, e)))
                .collect()
        } else {
            items
                .iter()
                .filter_map(|&i| self.keyspace.get_at(i, snap).cloned().map(|e| (i, e)))
                .collect()
        };
        self.keyspace.snapshot_release(snap);
        self.snapshot_reads += 1;
        (snap, entries)
    }

    /// Total MVCC versions held across memtables and runs.
    pub fn mvcc_versions(&self) -> usize {
        self.keyspace.version_count()
    }

    /// Sorted runs currently held across all keyspace partitions.
    pub fn lsm_runs(&self) -> usize {
        self.keyspace.run_count()
    }

    /// Approximate codec-encoded bytes held in keyspace memtables.
    pub fn lsm_memtable_bytes(&self) -> u64 {
        self.keyspace.memtable_bytes()
    }

    /// How many writes the oldest live snapshot lags the present by.
    pub fn snapshot_age(&self) -> u64 {
        self.keyspace.snapshot_age()
    }

    /// The keyspace's flush/compaction operation counter — the LSM
    /// crash-point coordinate, analogous to [`SiteStore::append_seq`].
    pub fn lsm_op_seq(&self) -> u64 {
        self.keyspace.op_seq()
    }

    /// The keyspace's activity counters (lifetime totals, not deltas).
    pub fn keyspace_stats(&self) -> KeyspaceStats {
        self.keyspace.stats()
    }

    // ---- wait-phase staging (§3.1) ----------------------------------------

    /// Stages the writes of a transaction entering the wait phase.
    ///
    /// Synced before returning under every fsync policy: the site is about
    /// to send `Ready`, and a coordinator may commit on the strength of it —
    /// the staged writes must not be lost to a crash after that.
    pub fn stage(&mut self, txn: TxnId, coordinator: SiteId, writes: Vec<(ItemId, Entry<Value>)>) {
        self.log(Record::PendingPrepare {
            txn,
            coordinator,
            writes: writes.clone(),
        });
        self.sync();
        self.pending.insert(
            txn,
            PendingTxn {
                coordinator,
                writes,
            },
        );
    }

    /// The staged transaction, if any.
    pub fn pending(&self, txn: TxnId) -> Option<&PendingTxn> {
        self.pending.get(&txn)
    }

    /// All staged transactions, in id order.
    pub fn pending_txns(&self) -> Vec<TxnId> {
        self.pending.keys().copied().collect()
    }

    /// §3.1 timeout path: converts a staged transaction into in-doubt
    /// polyvalues `{⟨new, T⟩, ⟨old, ¬T⟩}` for each staged write and releases
    /// the staging. Returns the items updated.
    pub fn install_in_doubt(&mut self, txn: TxnId) -> Vec<ItemId> {
        let Some(p) = self.pending.remove(&txn) else {
            return Vec::new();
        };
        self.log(Record::PendingResolved { txn });
        let mut installed = Vec::with_capacity(p.writes.len());
        for (item, new) in p.writes {
            let old = self
                .keyspace
                .latest(item)
                .expect("staged writes target existing items")
                .clone();
            let entry = Entry::in_doubt(new, old, txn);
            self.set_entry(item, entry);
            installed.push(item);
        }
        installed
    }

    // ---- outcomes (§3.3) ---------------------------------------------------

    /// This site learns the outcome of `txn`: installs or discards any staged
    /// writes, reduces every dependent polyvalue, and forgets the §3.3 table
    /// entry. Returns the entry's `sent_to` set so the caller can forward the
    /// outcome.
    pub fn apply_decision(&mut self, txn: TxnId, completed: bool) -> DepEntry {
        // Resolve staging first: a late Decision may arrive before (or
        // instead of) the in-doubt timeout.
        if let Some(p) = self.pending.remove(&txn) {
            self.log(Record::PendingResolved { txn });
            if completed {
                for (item, entry) in p.writes {
                    self.set_entry(item, entry);
                }
            }
        }
        // Reduce dependent polyvalues and forget the table entry.
        let Some(dep) = self.outcomes.take(txn) else {
            return DepEntry::default();
        };
        self.log(Record::DepForgotten { txn });
        for &item in &dep.items {
            let Some(entry) = self.keyspace.latest(item) else {
                continue;
            };
            if entry.deps().contains(&txn) {
                let reduced = entry.assign_outcome(txn, completed);
                self.set_entry(item, reduced);
            }
        }
        dep
    }

    /// Records that a polyvalue dependent on `txn` was sent to `site`, so the
    /// outcome can be forwarded there later (§3.3).
    pub fn note_sent(&mut self, txn: TxnId, site: SiteId) {
        self.log(Record::DepSent { txn, site });
        self.outcomes.note_sent(txn, site);
    }

    /// The transactions whose outcomes this site is waiting to learn.
    pub fn tracked_txns(&self) -> Vec<TxnId> {
        self.outcomes.pending().collect()
    }

    /// The §3.3 entry for `txn`, if tracked.
    pub fn dep_entry(&self, txn: TxnId) -> Option<&DepEntry> {
        self.outcomes.get(txn)
    }

    /// Whether the site still tracks any in-doubt transaction (bounded-state
    /// check: after full recovery this must be false).
    pub fn has_tracked_txns(&self) -> bool {
        !self.outcomes.is_empty()
    }

    // ---- epochs --------------------------------------------------------------

    /// The current epoch (0 until the first [`SiteStore::bump_epoch`]).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Durably starts a new epoch and returns it. Called by the site on
    /// every recovery so freshly minted transaction ids cannot collide with
    /// pre-crash ones. Synced under every fsync policy — losing an epoch
    /// bump could reissue a transaction id.
    pub fn bump_epoch(&mut self) -> u32 {
        self.epoch += 1;
        self.log(Record::Epoch { epoch: self.epoch });
        self.sync();
        self.epoch
    }

    // ---- coordinator decisions ---------------------------------------------

    /// Durably records this site's decision as coordinator of `txn`.
    ///
    /// Synced before returning under every fsync policy: participants act
    /// irreversibly on `Decision` messages, and a recovered coordinator
    /// answers inquiries by presumed abort — so a completion it once
    /// announced must never be lost.
    pub fn record_decision(&mut self, txn: TxnId, completed: bool) {
        self.log(Record::Decision { txn, completed });
        self.sync();
        self.decisions.insert(txn, completed);
    }

    /// The recorded decision for `txn`, if this site coordinated it.
    pub fn decision_of(&self, txn: TxnId) -> Option<bool> {
        self.decisions.get(&txn).copied()
    }

    // ---- Paxos Commit acceptor state ---------------------------------------
    //
    // Every mutation here is synced before returning: the protocol's safety
    // rests on acknowledged acceptor state surviving crashes. An acceptor
    // that replied, crashed, and forgot would let a ballot-0 vote and a
    // higher-ballot takeover both "win" with disjoint-looking quorums.

    /// Durably accepts `part`'s ballot-0 vote for `txn` (phase 2 of that
    /// participant's own Paxos instance). Synced before returning; the
    /// caller replies `PcVoteAck` only afterwards.
    pub fn pc_record_vote(&mut self, txn: TxnId, part: SiteId, parts: Vec<SiteId>, prepared: bool) {
        self.log(Record::PaxosVote {
            txn,
            part,
            parts: parts.clone(),
            prepared,
        });
        self.sync();
        self.materialise_paxos_vote(txn, part, parts, prepared);
    }

    /// Durably promises ballot `ballot` for `txn`'s verdict instance. Synced
    /// before returning; the caller replies `PcPhase1b` only afterwards.
    pub fn pc_promise(&mut self, txn: TxnId, ballot: u64) {
        self.log(Record::PaxosPromise { txn, ballot });
        self.sync();
        let st = self.paxos.entry(txn).or_default();
        st.promised = st.promised.max(ballot);
    }

    /// Durably accepts the verdict `completed` at `ballot` for `txn` (which
    /// implies the promise). Synced before returning; the caller replies
    /// `PcPhase2b` only afterwards.
    pub fn pc_accept(&mut self, txn: TxnId, ballot: u64, completed: bool) {
        self.log(Record::PaxosAccept {
            txn,
            ballot,
            completed,
        });
        self.sync();
        let st = self.paxos.entry(txn).or_default();
        st.promised = st.promised.max(ballot);
        if st.accepted.is_none_or(|(b, _)| b <= ballot) {
            st.accepted = Some((ballot, completed));
        }
    }

    /// Drops the acceptor state for a decided transaction. Not synced — the
    /// decision record preceding it is, and replaying a lost `PaxosForgotten`
    /// merely re-creates prunable state.
    pub fn pc_forget(&mut self, txn: TxnId) {
        if self.paxos.remove(&txn).is_some() {
            self.log(Record::PaxosForgotten { txn });
        }
    }

    /// The acceptor state for `txn`, if any survives.
    pub fn pc_state(&self, txn: TxnId) -> Option<&PaxosState> {
        self.paxos.get(&txn)
    }

    /// Transactions with live acceptor state, in id order (bounded-state
    /// check: quiescent clusters must have pruned them all).
    pub fn pc_txns(&self) -> Vec<TxnId> {
        self.paxos.keys().copied().collect()
    }

    fn materialise_paxos_vote(&mut self, txn: TxnId, part: SiteId, parts: Vec<SiteId>, prepared: bool) {
        let st = self.paxos.entry(txn).or_default();
        st.votes.insert(part, prepared);
        for p in parts {
            if !st.parts.contains(&p) {
                st.parts.push(p);
            }
        }
        st.parts.sort_unstable();
    }

    // ---- crash recovery & compaction ---------------------------------------

    /// Simulates a crash: the storage backend applies its crash semantics
    /// (losing un-synced appends, possibly injecting faults), then all
    /// materialised state is discarded and rebuilt from the surviving image.
    pub fn crash_and_recover(&mut self) {
        self.storage.crash();
        self.recover_from_storage();
    }

    /// Rebuilds every table from the backend's current image, truncating
    /// storage at the first torn or corrupt frame.
    fn recover_from_storage(&mut self) {
        let started = std::time::Instant::now();
        let image = self
            .storage
            .read_image()
            .expect("stable storage read failed");
        let (wal, consumed, error) = crate::codec::decode_wal_prefix(&image);
        if consumed < image.len() {
            self.storage
                .truncate(consumed as u64)
                .expect("stable storage truncate failed");
        }
        self.keyspace.clear();
        self.pending.clear();
        self.outcomes = OutcomeTable::new();
        self.decisions.clear();
        self.paxos.clear();
        self.epoch = 0;
        for record in wal.iter() {
            self.replay(record.clone());
        }
        // A durable decision makes the acceptor state for that transaction
        // dead weight: `pc_forget` is logged un-synced (see its doc), so a
        // crash can keep the synced decision yet lose the forget. Re-prune
        // here — otherwise the leftover entry keeps the recovered site
        // arming inquiry ticks for a transaction that is already settled.
        let decisions = &self.decisions;
        self.paxos.retain(|txn, _| !decisions.contains_key(txn));
        self.recovery.recovery_replay_records += wal.len() as u64;
        if error.is_some() {
            self.recovery.recovery_truncations += 1;
        }
        self.recovery
            .recovery_durations
            .push(started.elapsed().as_secs_f64());
        self.wal = wal;
    }

    fn replay(&mut self, record: Record) {
        match record {
            Record::SetItem { item, entry } => self.materialise_set(item, entry),
            Record::PendingPrepare {
                txn,
                coordinator,
                writes,
            } => {
                self.pending.insert(
                    txn,
                    PendingTxn {
                        coordinator,
                        writes,
                    },
                );
            }
            Record::PendingResolved { txn } => {
                self.pending.remove(&txn);
            }
            Record::DepNoted { txn, item } => self.outcomes.note_item(txn, item),
            Record::DepSent { txn, site } => self.outcomes.note_sent(txn, site),
            Record::DepForgotten { txn } => {
                self.outcomes.take(txn);
            }
            Record::Decision { txn, completed } => {
                self.decisions.insert(txn, completed);
            }
            Record::Epoch { epoch } => self.epoch = self.epoch.max(epoch),
            Record::PaxosVote {
                txn,
                part,
                parts,
                prepared,
            } => self.materialise_paxos_vote(txn, part, parts, prepared),
            Record::PaxosPromise { txn, ballot } => {
                let st = self.paxos.entry(txn).or_default();
                st.promised = st.promised.max(ballot);
            }
            Record::PaxosAccept {
                txn,
                ballot,
                completed,
            } => {
                let st = self.paxos.entry(txn).or_default();
                st.promised = st.promised.max(ballot);
                if st.accepted.is_none_or(|(b, _)| b <= ballot) {
                    st.accepted = Some((ballot, completed));
                }
            }
            Record::PaxosForgotten { txn } => {
                self.paxos.remove(&txn);
            }
        }
    }

    /// Compacts the WAL into a snapshot if enough has been appended since the
    /// last compaction. Returns whether compaction ran.
    pub fn maybe_compact(&mut self) -> bool {
        if self.wal.appended_since_compaction() < self.compact_threshold {
            return false;
        }
        self.compact();
        true
    }

    /// Unconditionally rewrites the WAL as a snapshot of the current state.
    pub fn compact(&mut self) {
        let mut records = Vec::new();
        for (item, entry) in self.keyspace.iter_latest() {
            records.push(Record::SetItem {
                item,
                entry: entry.clone(),
            });
        }
        for txn in self.outcomes.pending() {
            let entry = self.outcomes.get(txn).expect("pending txn has entry");
            // Items are re-derived from SetItem replay; only sent_to needs
            // explicit records.
            for &site in &entry.sent_to {
                records.push(Record::DepSent { txn, site });
            }
        }
        for (txn, p) in &self.pending {
            records.push(Record::PendingPrepare {
                txn: *txn,
                coordinator: p.coordinator,
                writes: p.writes.clone(),
            });
        }
        for (&txn, &completed) in &self.decisions {
            records.push(Record::Decision { txn, completed });
        }
        for (&txn, st) in &self.paxos {
            for (&part, &prepared) in &st.votes {
                records.push(Record::PaxosVote {
                    txn,
                    part,
                    parts: st.parts.clone(),
                    prepared,
                });
            }
            if st.promised > 0 {
                records.push(Record::PaxosPromise {
                    txn,
                    ballot: st.promised,
                });
            }
            if let Some((ballot, completed)) = st.accepted {
                records.push(Record::PaxosAccept {
                    txn,
                    ballot,
                    completed,
                });
            }
        }
        if self.epoch > 0 {
            records.push(Record::Epoch { epoch: self.epoch });
        }
        self.storage
            .reset(&records)
            .expect("stable storage compaction failed");
        self.wal.replace_with(records);
    }

    /// Read access to the WAL mirror (tests and diagnostics).
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    /// Deterministic view of the materialised (replayed) state, for model
    /// checkers that deduplicate states. Two stores whose logs differ only
    /// in the order of independent records replay to the same tables and so
    /// render identically here, while the raw log bytes would not. Excludes
    /// the log itself, compaction bookkeeping, and stats counters — none of
    /// which affect future protocol-visible behaviour.
    pub fn logical_view(&self) -> impl std::fmt::Debug + '_ {
        // Render only the *latest* visible entry per item, never sequence
        // numbers or the physical memtable/run layout: different record
        // interleavings assign different SeqNos yet materialise identical
        // latest-entry maps, and deduplication must treat them as equal.
        let items: BTreeMap<ItemId, Entry<Value>> = self
            .keyspace
            .iter_latest()
            .map(|(i, e)| (i, e.clone()))
            .collect();
        (
            items,
            &self.pending,
            &self.outcomes,
            &self.decisions,
            &self.paxos,
            self.epoch,
        )
    }

    /// Serialises the WAL to its binary on-disk form.
    pub fn export_wal(&self) -> bytes::Bytes {
        crate::codec::encode_wal(&self.wal)
    }

    /// Rebuilds a store from a binary WAL image (strict: the image must
    /// parse completely). Use [`SiteStore::import_wal_lossy`] for a
    /// possibly-torn image from a crashed disk.
    pub fn import_wal(data: &[u8]) -> Result<SiteStore, crate::codec::CodecError> {
        crate::codec::decode_wal(data)?;
        Ok(SiteStore::open(Box::new(MemStorage::from_image(
            data.to_vec(),
        ))))
    }

    /// Rebuilds a store from a possibly-torn WAL image, dropping the torn
    /// tail (the crash-recovery contract of a real log).
    pub fn import_wal_lossy(data: &[u8]) -> (SiteStore, Option<crate::codec::CodecError>) {
        let (_, _, err) = crate::codec::decode_wal_prefix(data);
        let store = SiteStore::open(Box::new(MemStorage::from_image(data.to_vec())));
        (store, err)
    }

    /// Applies a `SetItem` to the materialised state, keeping the outcome
    /// table consistent: the item's dependencies are recomputed from the new
    /// entry.
    fn materialise_set(&mut self, item: ItemId, entry: Entry<Value>) {
        self.outcomes.clear_item(item);
        for txn in entry.deps() {
            self.outcomes.note_item(txn, item);
        }
        self.keyspace.put(item, entry);
    }
}

impl ReadSource for SiteStore {
    fn read_entry(&self, item: ItemId) -> Option<Entry<Value>> {
        self.keyspace.latest(item).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{DiskWal, FaultConfig, FaultyStorage, FsyncPolicy};

    fn simple(v: i64) -> Entry<Value> {
        Entry::Simple(Value::Int(v))
    }

    fn store_with_item(item: u64, v: i64) -> SiteStore {
        let mut s = SiteStore::new();
        s.seed_item(ItemId(item), Value::Int(v));
        s
    }

    #[test]
    fn seed_and_get() {
        let s = store_with_item(1, 100);
        assert_eq!(s.get(ItemId(1)), Some(simple(100)));
        assert!(s.contains(ItemId(1)));
        assert_eq!(s.item_count(), 1);
        assert_eq!(s.poly_count(), 0);
        assert_eq!(s.read_entry(ItemId(1)), Some(simple(100)));
        assert_eq!(s.read_entry(ItemId(9)), None);
    }

    #[test]
    fn stage_complete_installs_writes() {
        let mut s = store_with_item(1, 100);
        s.stage(TxnId(5), 2, vec![(ItemId(1), simple(90))]);
        assert!(s.pending(TxnId(5)).is_some());
        assert_eq!(s.pending_txns(), vec![TxnId(5)]);
        s.apply_decision(TxnId(5), true);
        assert_eq!(s.get(ItemId(1)), Some(simple(90)));
        assert!(s.pending(TxnId(5)).is_none());
    }

    #[test]
    fn stage_abort_discards_writes() {
        let mut s = store_with_item(1, 100);
        s.stage(TxnId(5), 2, vec![(ItemId(1), simple(90))]);
        s.apply_decision(TxnId(5), false);
        assert_eq!(s.get(ItemId(1)), Some(simple(100)));
        assert!(s.pending(TxnId(5)).is_none());
    }

    #[test]
    fn in_doubt_then_complete() {
        let mut s = store_with_item(1, 100);
        s.stage(TxnId(5), 2, vec![(ItemId(1), simple(90))]);
        let installed = s.install_in_doubt(TxnId(5));
        assert_eq!(installed, vec![ItemId(1)]);
        assert_eq!(s.poly_count(), 1);
        assert!(s.pending(TxnId(5)).is_none());
        assert_eq!(s.tracked_txns(), vec![TxnId(5)]);
        // Late decision reduces the polyvalue through the same path.
        s.apply_decision(TxnId(5), true);
        assert_eq!(s.get(ItemId(1)), Some(simple(90)));
        assert_eq!(s.poly_count(), 0);
        assert!(!s.has_tracked_txns());
    }

    #[test]
    fn in_doubt_then_abort() {
        let mut s = store_with_item(1, 100);
        s.stage(TxnId(5), 2, vec![(ItemId(1), simple(90))]);
        s.install_in_doubt(TxnId(5));
        s.apply_decision(TxnId(5), false);
        assert_eq!(s.get(ItemId(1)), Some(simple(100)));
        assert_eq!(s.poly_count(), 0);
    }

    #[test]
    fn install_in_doubt_without_staging_is_noop() {
        let mut s = store_with_item(1, 100);
        assert!(s.install_in_doubt(TxnId(9)).is_empty());
        assert_eq!(s.poly_count(), 0);
    }

    #[test]
    fn apply_decision_returns_sent_to() {
        let mut s = store_with_item(1, 100);
        s.stage(TxnId(5), 2, vec![(ItemId(1), simple(90))]);
        s.install_in_doubt(TxnId(5));
        s.note_sent(TxnId(5), 7);
        s.note_sent(TxnId(5), 8);
        let dep = s.apply_decision(TxnId(5), true);
        assert_eq!(dep.sent_to.into_iter().collect::<Vec<_>>(), vec![7, 8]);
        // Applying again yields nothing (entry forgotten, §3.3).
        let dep2 = s.apply_decision(TxnId(5), true);
        assert!(dep2.is_empty());
    }

    #[test]
    fn overwriting_poly_with_simple_clears_dependency() {
        let mut s = store_with_item(1, 100);
        s.stage(TxnId(5), 2, vec![(ItemId(1), simple(90))]);
        s.install_in_doubt(TxnId(5));
        assert_eq!(s.dep_entry(TxnId(5)).unwrap().items.len(), 1);
        // A later transaction writes a simple value (Y in the paper's model):
        // the dependency entry empties out and is pruned (§3.3 cleanup).
        s.set_entry(ItemId(1), simple(55));
        assert_eq!(s.poly_count(), 0);
        assert!(s.dep_entry(TxnId(5)).is_none());
        // Learning the outcome now changes nothing.
        s.apply_decision(TxnId(5), true);
        assert_eq!(s.get(ItemId(1)), Some(simple(55)));
    }

    #[test]
    fn crash_recovery_rebuilds_everything() {
        let mut s = store_with_item(1, 100);
        s.seed_item(ItemId(2), Value::Int(200));
        s.stage(TxnId(5), 2, vec![(ItemId(1), simple(90))]);
        s.install_in_doubt(TxnId(5));
        s.note_sent(TxnId(5), 7);
        s.stage(TxnId(6), 3, vec![(ItemId(2), simple(42))]);
        s.record_decision(TxnId(9), true);

        let before_items: Vec<_> = s.iter_items().map(|(i, e)| (i, e.clone())).collect();
        let before_pending = s.pending_txns();
        let before_tracked = s.tracked_txns();

        s.crash_and_recover();

        let after_items: Vec<_> = s.iter_items().map(|(i, e)| (i, e.clone())).collect();
        assert_eq!(before_items, after_items);
        assert_eq!(before_pending, s.pending_txns());
        assert_eq!(before_tracked, s.tracked_txns());
        assert_eq!(s.dep_entry(TxnId(5)).unwrap().sent_to.len(), 1);
        assert_eq!(s.decision_of(TxnId(9)), Some(true));
        assert_eq!(s.decision_of(TxnId(5)), None);
        assert_eq!(s.poly_count(), 1);
    }

    #[test]
    fn recovery_is_idempotent() {
        let mut s = store_with_item(1, 100);
        s.stage(TxnId(5), 2, vec![(ItemId(1), simple(90))]);
        s.install_in_doubt(TxnId(5));
        s.crash_and_recover();
        let once: Vec<_> = s.iter_items().map(|(i, e)| (i, e.clone())).collect();
        s.crash_and_recover();
        let twice: Vec<_> = s.iter_items().map(|(i, e)| (i, e.clone())).collect();
        assert_eq!(once, twice);
    }

    #[test]
    fn compaction_preserves_state_and_shrinks_log() {
        let mut s = SiteStore::new().with_compact_threshold(8);
        s.seed_item(ItemId(1), Value::Int(0));
        for i in 0..20 {
            s.set_entry(ItemId(1), simple(i));
        }
        assert!(s.wal().len() > 8);
        assert!(s.maybe_compact());
        assert_eq!(s.wal().len(), 1);
        s.crash_and_recover();
        assert_eq!(s.get(ItemId(1)), Some(simple(19)));
        // Below threshold → no compaction.
        assert!(!s.maybe_compact());
    }

    #[test]
    fn compaction_keeps_pending_and_outcomes() {
        let mut s = store_with_item(1, 100);
        s.stage(TxnId(5), 2, vec![(ItemId(1), simple(90))]);
        s.install_in_doubt(TxnId(5));
        s.note_sent(TxnId(5), 7);
        s.stage(TxnId(6), 3, vec![(ItemId(1), simple(1))]);
        s.record_decision(TxnId(9), false);
        s.compact();
        s.crash_and_recover();
        assert_eq!(s.poly_count(), 1);
        assert_eq!(s.pending_txns(), vec![TxnId(6)]);
        assert_eq!(s.dep_entry(TxnId(5)).unwrap().sent_to.len(), 1);
        assert!(s.dep_entry(TxnId(5)).unwrap().items.contains(&ItemId(1)));
        assert_eq!(s.decision_of(TxnId(9)), Some(false));
    }

    #[test]
    fn epoch_bumps_survive_recovery_and_compaction() {
        let mut s = SiteStore::new();
        assert_eq!(s.epoch(), 0);
        assert_eq!(s.bump_epoch(), 1);
        assert_eq!(s.bump_epoch(), 2);
        s.crash_and_recover();
        assert_eq!(s.epoch(), 2);
        s.compact();
        s.crash_and_recover();
        assert_eq!(s.epoch(), 2);
    }

    #[test]
    fn export_import_round_trip() {
        let mut s = store_with_item(1, 100);
        s.stage(TxnId(5), 2, vec![(ItemId(1), simple(90))]);
        s.install_in_doubt(TxnId(5));
        s.note_sent(TxnId(5), 7);
        s.record_decision(TxnId(9), true);
        s.bump_epoch();
        let image = s.export_wal();
        let restored = SiteStore::import_wal(&image).unwrap();
        assert_eq!(
            restored
                .iter_items()
                .map(|(i, e)| (i, e.clone()))
                .collect::<Vec<_>>(),
            s.iter_items()
                .map(|(i, e)| (i, e.clone()))
                .collect::<Vec<_>>()
        );
        assert_eq!(restored.tracked_txns(), s.tracked_txns());
        assert_eq!(restored.decision_of(TxnId(9)), Some(true));
        assert_eq!(restored.epoch(), s.epoch());
        // A torn image keeps the intact prefix.
        let torn = &image[..image.len() - 3];
        let (partial, err) = SiteStore::import_wal_lossy(torn);
        assert!(err.is_some());
        assert!(partial.wal().len() < s.wal().len());
    }

    #[test]
    fn decision_recording() {
        let mut s = SiteStore::new();
        assert_eq!(s.decision_of(TxnId(1)), None);
        s.record_decision(TxnId(1), true);
        assert_eq!(s.decision_of(TxnId(1)), Some(true));
    }

    #[test]
    fn poly_write_from_polytransaction_tracks_all_deps() {
        // A staged write that is itself a polyvalue (computed by a
        // polytransaction) must register dependencies on its conditions too.
        let mut s = store_with_item(1, 100);
        let poly_write = Entry::in_doubt(simple(1), simple(2), TxnId(3));
        s.stage(TxnId(5), 2, vec![(ItemId(1), poly_write)]);
        s.install_in_doubt(TxnId(5));
        let tracked = s.tracked_txns();
        assert!(tracked.contains(&TxnId(3)));
        assert!(tracked.contains(&TxnId(5)));
        // Resolving the outer transaction leaves dependency on the inner.
        s.apply_decision(TxnId(5), true);
        assert_eq!(s.tracked_txns(), vec![TxnId(3)]);
        s.apply_decision(TxnId(3), false);
        assert_eq!(s.get(ItemId(1)), Some(simple(2)));
        assert!(!s.has_tracked_txns());
    }

    #[test]
    fn paxos_state_survives_recovery_and_compaction() {
        let mut s = SiteStore::new();
        s.pc_record_vote(TxnId(5), 0, vec![0, 1], true);
        s.pc_record_vote(TxnId(5), 1, vec![0, 1], false);
        s.pc_promise(TxnId(5), (2 << 16) | 1);
        s.pc_accept(TxnId(5), (2 << 16) | 1, false);
        let before = s.pc_state(TxnId(5)).unwrap().clone();
        assert!(before.votes[&0]);
        assert!(!before.votes[&1]);
        assert_eq!(before.parts, vec![0, 1]);
        assert_eq!(before.promised, (2 << 16) | 1);
        assert_eq!(before.accepted, Some(((2 << 16) | 1, false)));

        s.crash_and_recover();
        assert_eq!(s.pc_state(TxnId(5)), Some(&before));
        s.compact();
        s.crash_and_recover();
        assert_eq!(s.pc_state(TxnId(5)), Some(&before));
        assert_eq!(s.pc_txns(), vec![TxnId(5)]);

        s.pc_forget(TxnId(5));
        assert!(s.pc_state(TxnId(5)).is_none());
        s.crash_and_recover();
        assert!(s.pc_state(TxnId(5)).is_none());
        assert!(s.pc_txns().is_empty());
        // Forgetting twice is a no-op and logs nothing.
        let len = s.wal().len();
        s.pc_forget(TxnId(5));
        assert_eq!(s.wal().len(), len);
    }

    #[test]
    fn paxos_promise_and_accept_keep_maxima() {
        let mut s = SiteStore::new();
        s.pc_promise(TxnId(1), 100);
        s.pc_promise(TxnId(1), 50); // stale: ignored
        assert_eq!(s.pc_state(TxnId(1)).unwrap().promised, 100);
        s.pc_accept(TxnId(1), 200, true);
        let st = s.pc_state(TxnId(1)).unwrap();
        assert_eq!(st.promised, 200);
        assert_eq!(st.accepted, Some((200, true)));
        s.pc_accept(TxnId(1), 150, false); // lower ballot: accepted stays
        assert_eq!(s.pc_state(TxnId(1)).unwrap().accepted, Some((200, true)));
    }

    #[test]
    fn paxos_vote_is_synced_under_lax_policy() {
        // Like staging: an acknowledged vote must survive a crash even when
        // the background fsync policy would not have flushed it yet.
        let mut s = SiteStore::with_storage(Box::new(MemStorage::with_policy(
            FsyncPolicy::EveryN(10_000),
        )));
        s.pc_record_vote(TxnId(5), 1, vec![0, 1], true);
        s.pc_promise(TxnId(6), 7);
        s.pc_accept(TxnId(6), 7, true);
        s.crash_and_recover();
        assert!(s.pc_state(TxnId(5)).unwrap().votes[&1]);
        assert_eq!(s.pc_state(TxnId(6)).unwrap().accepted, Some((7, true)));
    }

    // ---- storage-backend integration ----------------------------------------

    #[test]
    fn append_seq_is_monotonic_across_compaction() {
        let mut s = store_with_item(1, 0);
        for i in 0..10 {
            s.set_entry(ItemId(1), simple(i));
        }
        let before = s.append_seq();
        s.compact();
        assert_eq!(s.append_seq(), before, "compaction appends nothing");
        s.set_entry(ItemId(1), simple(99));
        assert_eq!(s.append_seq(), before + 1);
    }

    #[test]
    fn periodic_policy_staging_survives_crash_via_explicit_sync() {
        // Under a lax policy, background appends can be lost — but a staged
        // wait-phase transaction never is, because stage() syncs explicitly.
        let mut s = SiteStore::with_storage(Box::new(MemStorage::with_policy(
            FsyncPolicy::EveryN(10_000),
        )));
        s.seed_item(ItemId(1), Value::Int(100));
        s.sync();
        s.stage(TxnId(5), 2, vec![(ItemId(1), simple(90))]);
        s.record_decision(TxnId(8), true);
        s.crash_and_recover();
        assert_eq!(s.pending_txns(), vec![TxnId(5)]);
        assert_eq!(s.decision_of(TxnId(8)), Some(true));
    }

    #[test]
    fn periodic_policy_can_lose_background_appends() {
        let mut s = SiteStore::with_storage(Box::new(MemStorage::with_policy(
            FsyncPolicy::EveryN(10_000),
        )));
        s.seed_item(ItemId(1), Value::Int(100));
        s.sync();
        s.set_entry(ItemId(1), simple(55)); // background: not synced
        s.crash_and_recover();
        assert_eq!(s.get(ItemId(1)), Some(simple(100)));
    }

    #[test]
    fn faulty_storage_recovery_never_panics_and_keeps_prefix() {
        for seed in 0..50 {
            let storage = FaultyStorage::with_policy(
                FaultConfig {
                    seed,
                    torn_tail_prob: 0.8,
                    bit_flip_prob: 0.4,
                },
                FsyncPolicy::EveryN(3),
            );
            let mut s = SiteStore::with_storage(Box::new(storage));
            s.seed_item(ItemId(1), Value::Int(100));
            for i in 0..6 {
                s.set_entry(ItemId(1), simple(i));
                if i % 2 == 0 {
                    s.crash_and_recover();
                }
            }
            s.crash_and_recover();
            // Whatever survived is a coherent prefix of what was written:
            // the recovered mirror decodes strictly (the corrupt tail was
            // truncated away), and any surviving value is one we wrote.
            crate::codec::decode_wal(&s.export_wal()).expect("recovered image is clean");
            if let Some(entry) = s.get(ItemId(1)) {
                let legal: Vec<Entry<Value>> = (0..6)
                    .map(simple)
                    .chain(std::iter::once(simple(100)))
                    .collect();
                assert!(legal.contains(&entry), "unexpected survivor {entry:?}");
            }
        }
    }

    #[test]
    fn disk_backed_store_recovers_across_instances() {
        let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/tmp/storage-tests/site-store-disk");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let storage = DiskWal::open(&dir, FsyncPolicy::PerDecision).unwrap();
            let mut s = SiteStore::open(Box::new(storage));
            s.seed_item(ItemId(1), Value::Int(100));
            s.stage(TxnId(5), 2, vec![(ItemId(1), simple(90))]);
            s.install_in_doubt(TxnId(5));
            s.note_sent(TxnId(5), 7);
            s.record_decision(TxnId(9), true);
            s.sync();
        }
        let storage = DiskWal::open(&dir, FsyncPolicy::PerDecision).unwrap();
        let s = SiteStore::open(Box::new(storage));
        assert_eq!(s.poly_count(), 1);
        assert_eq!(s.tracked_txns(), vec![TxnId(5)]);
        assert_eq!(s.dep_entry(TxnId(5)).unwrap().sent_to.len(), 1);
        assert_eq!(s.decision_of(TxnId(9)), Some(true));
    }

    #[test]
    fn take_stats_reports_deltas() {
        let mut s = store_with_item(1, 100);
        let first = s.take_stats();
        assert!(first.wal_bytes > 0);
        assert_eq!(first.wal_appends, 1);
        let quiet = s.take_stats();
        assert!(quiet.is_empty());
        s.set_entry(ItemId(1), simple(1));
        s.crash_and_recover();
        s.compact();
        let busy = s.take_stats();
        assert!(busy.wal_bytes > 0);
        assert_eq!(busy.wal_compactions, 1);
        assert_eq!(busy.recovery_replay_records, 2);
        assert_eq!(busy.recovery_durations.len(), 1);
    }
}
