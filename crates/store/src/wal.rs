//! Write-ahead log records and replay.

use pv_core::{Entry, ItemId, TxnId, Value};
use std::fmt;

/// Identifies a site (node) without depending on the simulation crate.
pub type SiteId = u32;

/// One durable log record.
///
/// Everything a site must remember across a crash is expressed as a record:
/// installed item values (simple or poly), staged wait-phase transactions,
/// the §3.3 outcome-dependency bookkeeping, and coordinator decisions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// An item's current entry was installed.
    SetItem {
        /// The item updated.
        item: ItemId,
        /// Its new entry (simple value or polyvalue).
        entry: Entry<Value>,
    },
    /// A transaction entered the wait phase with these staged writes.
    PendingPrepare {
        /// The staged transaction.
        txn: TxnId,
        /// The transaction's coordinator site.
        coordinator: SiteId,
        /// Values computed for the items this site holds.
        writes: Vec<(ItemId, Entry<Value>)>,
    },
    /// A staged transaction was resolved (installed, aborted, or converted to
    /// polyvalues) and needs no further staging.
    PendingResolved {
        /// The resolved transaction.
        txn: TxnId,
    },
    /// An item at this site depends on the outcome of `txn` (§3.3 table).
    DepNoted {
        /// The in-doubt transaction.
        txn: TxnId,
        /// The dependent item.
        item: ItemId,
    },
    /// A polyvalue depending on `txn` was sent to `site` (§3.3 table).
    DepSent {
        /// The in-doubt transaction.
        txn: TxnId,
        /// The site the dependent polyvalue was sent to.
        site: SiteId,
    },
    /// The outcome of `txn` was learned and its table entry discarded.
    DepForgotten {
        /// The resolved transaction.
        txn: TxnId,
    },
    /// This site, as coordinator of `txn`, durably decided its outcome.
    Decision {
        /// The decided transaction.
        txn: TxnId,
        /// `true` = complete, `false` = abort.
        completed: bool,
    },
    /// The site started a new epoch (after a recovery). Epochs are embedded
    /// in transaction identifiers so a recovered coordinator never reuses an
    /// id from before its crash.
    Epoch {
        /// The new epoch number.
        epoch: u32,
    },
    /// Paxos Commit: this site, as acceptor, accepted `part`'s ballot-0 vote
    /// for `txn`. Durable *before* the acknowledgement is sent — the
    /// quorum-intersection argument needs every acknowledged vote to survive
    /// the acceptor's crash.
    PaxosVote {
        /// The transaction being committed.
        txn: TxnId,
        /// The participant whose vote this is.
        part: SiteId,
        /// The registered participant set the vote carried.
        parts: Vec<SiteId>,
        /// The vote value (`true` = prepared).
        prepared: bool,
    },
    /// Paxos Commit: this site, as acceptor, promised ballot `ballot` for
    /// `txn`'s verdict instance and will reject anything lower. Durable
    /// before the phase-1b reply.
    PaxosPromise {
        /// The transaction.
        txn: TxnId,
        /// The promised ballot.
        ballot: u64,
    },
    /// Paxos Commit: this site, as acceptor, accepted the verdict `completed`
    /// at `ballot` (phase 2). Durable before the phase-2b reply.
    PaxosAccept {
        /// The transaction.
        txn: TxnId,
        /// The ballot the verdict was accepted at.
        ballot: u64,
        /// The accepted verdict.
        completed: bool,
    },
    /// Paxos Commit: the decision for `txn` is durable, so the acceptor
    /// state above is no longer needed and compaction may drop it.
    PaxosForgotten {
        /// The decided transaction.
        txn: TxnId,
    },
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Record::SetItem { item, entry } => write!(f, "set {item} = {entry}"),
            Record::PendingPrepare {
                txn,
                coordinator,
                writes,
            } => {
                write!(
                    f,
                    "prepare {txn} coord=s{coordinator} writes={}",
                    writes.len()
                )
            }
            Record::PendingResolved { txn } => write!(f, "resolved {txn}"),
            Record::DepNoted { txn, item } => write!(f, "dep {txn} -> {item}"),
            Record::DepSent { txn, site } => write!(f, "dep {txn} sent to s{site}"),
            Record::DepForgotten { txn } => write!(f, "dep {txn} forgotten"),
            Record::Decision { txn, completed } => {
                write!(
                    f,
                    "decision {txn} = {}",
                    if *completed { "complete" } else { "abort" }
                )
            }
            Record::Epoch { epoch } => write!(f, "epoch {epoch}"),
            Record::PaxosVote {
                txn,
                part,
                parts,
                prepared,
            } => write!(
                f,
                "paxos vote {txn} part=s{part} parts={} {}",
                parts.len(),
                if *prepared { "prepared" } else { "abort" }
            ),
            Record::PaxosPromise { txn, ballot } => {
                write!(f, "paxos promise {txn} ballot={ballot}")
            }
            Record::PaxosAccept {
                txn,
                ballot,
                completed,
            } => write!(
                f,
                "paxos accept {txn} ballot={ballot} = {}",
                if *completed { "complete" } else { "abort" }
            ),
            Record::PaxosForgotten { txn } => write!(f, "paxos {txn} forgotten"),
        }
    }
}

/// An append-only write-ahead log.
///
/// The log is the site's *stable storage*: on a crash everything else is
/// discarded and the site's state is rebuilt by replaying it. Compaction
/// rewrites the log from a state snapshot.
#[derive(Debug, Clone, Default)]
pub struct Wal {
    records: Vec<Record>,
    appended_since_compaction: usize,
}

impl Wal {
    /// An empty log.
    pub fn new() -> Self {
        Wal::default()
    }

    /// Builds a log from already-materialised records (codec decode path).
    pub fn from_records(records: Vec<Record>) -> Self {
        Wal {
            records,
            appended_since_compaction: 0,
        }
    }

    /// Appends one record.
    pub fn append(&mut self, r: Record) {
        self.records.push(r);
        self.appended_since_compaction += 1;
    }

    /// Number of records currently in the log.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records appended since the last compaction (compaction policy input).
    pub fn appended_since_compaction(&self) -> usize {
        self.appended_since_compaction
    }

    /// Iterates the records in append order.
    pub fn iter(&self) -> impl Iterator<Item = &Record> {
        self.records.iter()
    }

    /// Replaces the log wholesale with a snapshot (compaction).
    pub fn replace_with(&mut self, records: Vec<Record>) {
        self.records = records;
        self.appended_since_compaction = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(item: u64, v: i64) -> Record {
        Record::SetItem {
            item: ItemId(item),
            entry: Entry::Simple(Value::Int(v)),
        }
    }

    #[test]
    fn append_and_iterate_in_order() {
        let mut wal = Wal::new();
        assert!(wal.is_empty());
        wal.append(set(1, 10));
        wal.append(set(2, 20));
        assert_eq!(wal.len(), 2);
        assert!(!wal.is_empty());
        let items: Vec<&Record> = wal.iter().collect();
        assert_eq!(items[0], &set(1, 10));
        assert_eq!(items[1], &set(2, 20));
    }

    #[test]
    fn compaction_resets_counter() {
        let mut wal = Wal::new();
        wal.append(set(1, 10));
        wal.append(set(1, 11));
        assert_eq!(wal.appended_since_compaction(), 2);
        wal.replace_with(vec![set(1, 11)]);
        assert_eq!(wal.len(), 1);
        assert_eq!(wal.appended_since_compaction(), 0);
    }

    #[test]
    fn record_display() {
        assert_eq!(set(1, 10).to_string(), "set item1 = 10");
        assert_eq!(
            Record::Decision {
                txn: TxnId(3),
                completed: true
            }
            .to_string(),
            "decision T3 = complete"
        );
        assert_eq!(
            Record::Decision {
                txn: TxnId(3),
                completed: false
            }
            .to_string(),
            "decision T3 = abort"
        );
        assert_eq!(
            Record::PendingPrepare {
                txn: TxnId(1),
                coordinator: 2,
                writes: vec![]
            }
            .to_string(),
            "prepare T1 coord=s2 writes=0"
        );
        assert_eq!(
            Record::PendingResolved { txn: TxnId(1) }.to_string(),
            "resolved T1"
        );
        assert_eq!(
            Record::DepNoted {
                txn: TxnId(1),
                item: ItemId(4)
            }
            .to_string(),
            "dep T1 -> item4"
        );
        assert_eq!(
            Record::DepSent {
                txn: TxnId(1),
                site: 9
            }
            .to_string(),
            "dep T1 sent to s9"
        );
        assert_eq!(
            Record::DepForgotten { txn: TxnId(1) }.to_string(),
            "dep T1 forgotten"
        );
        assert_eq!(Record::Epoch { epoch: 3 }.to_string(), "epoch 3");
    }

    #[test]
    fn paxos_record_display() {
        assert_eq!(
            Record::PaxosVote {
                txn: TxnId(5),
                part: 1,
                parts: vec![0, 1],
                prepared: true,
            }
            .to_string(),
            "paxos vote T5 part=s1 parts=2 prepared"
        );
        assert_eq!(
            Record::PaxosVote {
                txn: TxnId(5),
                part: 0,
                parts: vec![0],
                prepared: false,
            }
            .to_string(),
            "paxos vote T5 part=s0 parts=1 abort"
        );
        assert_eq!(
            Record::PaxosPromise {
                txn: TxnId(5),
                ballot: 65538,
            }
            .to_string(),
            "paxos promise T5 ballot=65538"
        );
        assert_eq!(
            Record::PaxosAccept {
                txn: TxnId(5),
                ballot: 65538,
                completed: true,
            }
            .to_string(),
            "paxos accept T5 ballot=65538 = complete"
        );
        assert_eq!(
            Record::PaxosForgotten { txn: TxnId(5) }.to_string(),
            "paxos T5 forgotten"
        );
    }
}
