//! The §3.3 outcome-dependency table.
//!
//! "Each site maintains a table recording, for each transaction T whose
//! outcome is unknown, a list of the polyvalues held by the site that depend
//! on T, and a list of other sites to which polyvalues dependent on T have
//! been sent. […] Once this is done, that site can forget the outcome of T
//! and the table entry for T."

use crate::wal::SiteId;
use pv_core::{ItemId, TxnId};
use std::collections::{BTreeMap, BTreeSet};

/// What one site knows about who depends on an in-doubt transaction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DepEntry {
    /// Local items whose polyvalues depend on the transaction.
    pub items: BTreeSet<ItemId>,
    /// Other sites to which dependent polyvalues have been sent.
    pub sent_to: BTreeSet<SiteId>,
}

impl DepEntry {
    /// Whether the entry carries no information.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty() && self.sent_to.is_empty()
    }
}

/// Per-site table: in-doubt transaction → dependent items and sites.
#[derive(Debug, Clone, Default)]
pub struct OutcomeTable {
    map: BTreeMap<TxnId, DepEntry>,
}

impl OutcomeTable {
    /// An empty table.
    pub fn new() -> Self {
        OutcomeTable::default()
    }

    /// Records that a local item depends on `txn`.
    pub fn note_item(&mut self, txn: TxnId, item: ItemId) {
        self.map.entry(txn).or_default().items.insert(item);
    }

    /// Records that a polyvalue dependent on `txn` was sent to `site`.
    pub fn note_sent(&mut self, txn: TxnId, site: SiteId) {
        self.map.entry(txn).or_default().sent_to.insert(site);
    }

    /// Removes a resolved item from every transaction entry (used when an
    /// item is overwritten and no longer depends on a transaction). Entries
    /// left with no items *and* no send-list carry no information and are
    /// pruned — §3.3's "quickly deleted when no longer needed".
    pub fn clear_item(&mut self, item: ItemId) {
        self.map.retain(|_, entry| {
            entry.items.remove(&item);
            !entry.is_empty()
        });
    }

    /// Takes (and forgets) the entry for `txn`, per §3.3.
    pub fn take(&mut self, txn: TxnId) -> Option<DepEntry> {
        self.map.remove(&txn)
    }

    /// Whether the site is tracking `txn`.
    pub fn contains(&self, txn: TxnId) -> bool {
        self.map.contains_key(&txn)
    }

    /// The entry for `txn`, if tracked.
    pub fn get(&self, txn: TxnId) -> Option<&DepEntry> {
        self.map.get(&txn)
    }

    /// Iterates over the tracked transactions in id order.
    pub fn pending(&self) -> impl Iterator<Item = TxnId> + '_ {
        self.map.keys().copied()
    }

    /// Number of tracked transactions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table is empty (the bounded-state property: once all
    /// outcomes are propagated, nothing remains).
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn note_and_take() {
        let mut t = OutcomeTable::new();
        t.note_item(TxnId(1), ItemId(10));
        t.note_item(TxnId(1), ItemId(11));
        t.note_sent(TxnId(1), 3);
        assert!(t.contains(TxnId(1)));
        assert_eq!(t.len(), 1);
        let e = t.take(TxnId(1)).unwrap();
        assert_eq!(e.items.len(), 2);
        assert_eq!(e.sent_to.len(), 1);
        assert!(!t.contains(TxnId(1)));
        assert!(t.is_empty());
        assert!(t.take(TxnId(1)).is_none());
    }

    #[test]
    fn duplicate_notes_are_idempotent() {
        let mut t = OutcomeTable::new();
        t.note_item(TxnId(1), ItemId(10));
        t.note_item(TxnId(1), ItemId(10));
        t.note_sent(TxnId(1), 3);
        t.note_sent(TxnId(1), 3);
        let e = t.get(TxnId(1)).unwrap();
        assert_eq!(e.items.len(), 1);
        assert_eq!(e.sent_to.len(), 1);
    }

    #[test]
    fn clear_item_prunes_everywhere() {
        let mut t = OutcomeTable::new();
        t.note_item(TxnId(1), ItemId(10));
        t.note_item(TxnId(2), ItemId(10));
        t.note_item(TxnId(2), ItemId(11));
        t.clear_item(ItemId(10));
        // T1's entry became empty and was pruned; T2 keeps item 11.
        assert!(!t.contains(TxnId(1)));
        assert_eq!(t.get(TxnId(2)).unwrap().items.len(), 1);
        // An entry with a send-list survives clearing its last item.
        t.note_sent(TxnId(3), 7);
        t.note_item(TxnId(3), ItemId(11));
        t.clear_item(ItemId(11));
        assert!(t.get(TxnId(3)).unwrap().items.is_empty());
        assert!(!t.contains(TxnId(2)), "T2 lost its last item too");
    }

    #[test]
    fn pending_lists_in_order() {
        let mut t = OutcomeTable::new();
        t.note_item(TxnId(5), ItemId(1));
        t.note_item(TxnId(2), ItemId(1));
        let ids: Vec<u64> = t.pending().map(|t| t.raw()).collect();
        assert_eq!(ids, vec![2, 5]);
    }

    #[test]
    fn dep_entry_is_empty() {
        assert!(DepEntry::default().is_empty());
        let mut e = DepEntry::default();
        e.sent_to.insert(1);
        assert!(!e.is_empty());
    }
}
