//! Pluggable stable-storage backends for the write-ahead log.
//!
//! The paper assumes every site owns *stable storage* that survives crashes
//! (§3.3); [`Storage`] is that assumption as a trait. Three backends ship:
//!
//! * [`MemStorage`] — the historical in-memory log, now split into a synced
//!   and an un-synced byte region so fsync policies are meaningful even in
//!   the simulator;
//! * [`DiskWal`] — a real file-backed log: append-only segments framed by
//!   the [`crate::codec`] format, segment rotation, and compaction that
//!   rewrites the state into a fresh segment with an atomic rename;
//! * [`FaultyStorage`] — an adversarial in-memory backend that injects
//!   torn tails at byte granularity, bit flips, and loss of the un-synced
//!   suffix at crash time, deterministically from a seed.
//!
//! All backends speak bytes in the codec's framed format, so recovery is the
//! same everywhere: read the image, decode the longest valid prefix, truncate
//! the rest.

use crate::codec;
use crate::wal::Record;
use bytes::BytesMut;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// When a backend forces appended records to stable storage on its own.
///
/// Independent of the policy, [`SiteStore`](crate::SiteStore) explicitly
/// syncs at the protocol-critical points (staging before `Ready`, decisions
/// before `Decision` messages, epoch bumps) — the policy only governs how
/// long *background* records (item installs, §3.3 bookkeeping) may sit in
/// the un-synced tail, which is exactly the state a crash can lose.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum FsyncPolicy {
    /// Sync after every append (the historical always-durable behaviour).
    #[default]
    PerAppend,
    /// Sync only when a decision or epoch record is appended.
    PerDecision,
    /// Sync once every `n` appends.
    EveryN(usize),
}

impl FsyncPolicy {
    /// Whether appending `record` with `unsynced_appends` already pending
    /// should trigger an automatic sync.
    fn wants_sync(self, record: &Record, unsynced_appends: usize) -> bool {
        match self {
            FsyncPolicy::PerAppend => true,
            FsyncPolicy::PerDecision => {
                matches!(record, Record::Decision { .. } | Record::Epoch { .. })
            }
            FsyncPolicy::EveryN(n) => unsynced_appends >= n.max(1),
        }
    }
}

/// A storage-layer failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// An I/O error from a file-backed backend.
    Io(String),
    /// The stable image failed to decode where a decode was required.
    Codec(codec::CodecError),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::Codec(e) => write!(f, "storage codec error: {e}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e.to_string())
    }
}

/// Cumulative I/O counters a backend maintains; consumers read deltas.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageStats {
    /// Framed bytes appended to the log.
    pub bytes_appended: u64,
    /// Records appended.
    pub appends: u64,
    /// Effective syncs (calls that actually flushed un-synced bytes).
    pub syncs: u64,
    /// Segments created (initial, rotations, and compaction targets).
    pub segments_created: u64,
    /// Compactions performed ([`Storage::reset`] calls).
    pub compactions: u64,
}

/// One site's stable storage: an append-only, checksummed-framed log.
///
/// The contract mirrors a production WAL: [`Storage::append`] may buffer,
/// [`Storage::sync`] makes everything appended so far durable,
/// [`Storage::crash`] discards whatever a real power loss would discard, and
/// [`Storage::read_image`] returns the surviving bytes for replay.
pub trait Storage: Send + fmt::Debug {
    /// Appends one record to the log. Durability is governed by the
    /// backend's fsync policy until [`Storage::sync`] is called.
    fn append(&mut self, record: &Record) -> Result<(), StorageError>;

    /// Forces every appended record to stable storage.
    fn sync(&mut self) -> Result<(), StorageError>;

    /// Applies crash semantics: un-synced appends may be lost (backends may
    /// also inject corruption here). Infallible — a crash cannot fail.
    fn crash(&mut self);

    /// The current log image (synced prefix plus any surviving un-synced
    /// tail). Recovery decodes the longest valid prefix of this.
    fn read_image(&mut self) -> Result<Vec<u8>, StorageError>;

    /// Truncates the log to its first `len` bytes (recovery drops a torn or
    /// corrupt tail).
    fn truncate(&mut self, len: u64) -> Result<(), StorageError>;

    /// Atomically replaces the whole log with a snapshot (compaction).
    fn reset(&mut self, records: &[Record]) -> Result<(), StorageError>;

    /// Cumulative I/O statistics.
    fn stats(&self) -> StorageStats;
}

fn encode_frame(record: &Record) -> BytesMut {
    let mut buf = BytesMut::new();
    codec::encode_record(record, &mut buf);
    buf
}

// ---- in-memory backend ------------------------------------------------------

/// The in-memory backend: a synced byte region plus an un-synced tail.
///
/// Under [`FsyncPolicy::PerAppend`] (the default) every append is immediately
/// durable, which reproduces the original simulator semantics exactly.
#[derive(Debug, Default)]
pub struct MemStorage {
    synced: Vec<u8>,
    unsynced: Vec<u8>,
    policy: FsyncPolicy,
    unsynced_appends: usize,
    stats: StorageStats,
}

impl MemStorage {
    /// An empty always-durable in-memory log.
    pub fn new() -> Self {
        MemStorage::with_policy(FsyncPolicy::PerAppend)
    }

    /// An empty in-memory log with the given fsync policy.
    pub fn with_policy(policy: FsyncPolicy) -> Self {
        MemStorage {
            policy,
            stats: StorageStats {
                segments_created: 1,
                ..StorageStats::default()
            },
            ..MemStorage::default()
        }
    }

    /// A log whose synced region already holds `image` (restore path).
    pub fn from_image(image: Vec<u8>) -> Self {
        MemStorage {
            synced: image,
            ..MemStorage::with_policy(FsyncPolicy::PerAppend)
        }
    }

    /// Bytes currently in the un-synced tail.
    pub fn unsynced_len(&self) -> usize {
        self.unsynced.len()
    }

    /// Bytes currently in the synced region.
    pub fn synced_len(&self) -> usize {
        self.synced.len()
    }

    /// Moves the first `n` un-synced bytes into the synced region and drops
    /// the rest — the torn-tail primitive: a crash caught part of the tail
    /// on its way to the platter.
    pub fn promote_unsynced_prefix(&mut self, n: usize) {
        let n = n.min(self.unsynced.len());
        self.synced.extend_from_slice(&self.unsynced[..n]);
        self.unsynced.clear();
        self.unsynced_appends = 0;
    }

    /// Flips one bit of the synced image (media-corruption primitive).
    pub fn flip_bit(&mut self, bit: u64) {
        let byte = (bit / 8) as usize;
        if byte < self.synced.len() {
            self.synced[byte] ^= 1 << (bit % 8);
        }
    }
}

impl Storage for MemStorage {
    fn append(&mut self, record: &Record) -> Result<(), StorageError> {
        let frame = encode_frame(record);
        self.stats.bytes_appended += frame.len() as u64;
        self.stats.appends += 1;
        self.unsynced.extend_from_slice(&frame);
        self.unsynced_appends += 1;
        if self.policy.wants_sync(record, self.unsynced_appends) {
            self.sync()?;
        }
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        if !self.unsynced.is_empty() {
            self.synced.append(&mut self.unsynced);
            self.stats.syncs += 1;
        }
        self.unsynced_appends = 0;
        Ok(())
    }

    fn crash(&mut self) {
        self.unsynced.clear();
        self.unsynced_appends = 0;
    }

    fn read_image(&mut self) -> Result<Vec<u8>, StorageError> {
        let mut image = self.synced.clone();
        image.extend_from_slice(&self.unsynced);
        Ok(image)
    }

    fn truncate(&mut self, len: u64) -> Result<(), StorageError> {
        let len = len as usize;
        if len <= self.synced.len() {
            self.synced.truncate(len);
            self.unsynced.clear();
            self.unsynced_appends = 0;
        } else {
            self.unsynced.truncate(len - self.synced.len());
        }
        Ok(())
    }

    fn reset(&mut self, records: &[Record]) -> Result<(), StorageError> {
        let mut image = BytesMut::new();
        for record in records {
            codec::encode_record(record, &mut image);
        }
        self.synced = image.to_vec();
        self.unsynced.clear();
        self.unsynced_appends = 0;
        self.stats.compactions += 1;
        self.stats.segments_created += 1;
        self.stats.syncs += 1;
        Ok(())
    }

    fn stats(&self) -> StorageStats {
        self.stats
    }
}

// ---- file-backed backend ----------------------------------------------------

/// Default segment-rotation threshold for [`DiskWal`].
pub const DEFAULT_SEGMENT_BYTES: u64 = 256 * 1024;

/// A file-backed WAL: append-only segment files under one directory.
///
/// Segments are named `wal-NNNNNN.seg` and replayed in index order; only the
/// highest-indexed segment is appended to. Rotation seals the active segment
/// (after a final sync) and opens the next index. Compaction writes the
/// state snapshot to a temporary file, syncs it, atomically renames it into
/// place as the next segment, and deletes every older segment.
///
/// [`Storage::crash`] models losing the OS write-back cache: the active
/// segment is truncated to its last synced length.
#[derive(Debug)]
pub struct DiskWal {
    dir: PathBuf,
    file: fs::File,
    active_index: u64,
    active_len: u64,
    synced_len: u64,
    /// Earlier, fully-synced segments: `(index, length)` in replay order.
    sealed: Vec<(u64, u64)>,
    max_segment_bytes: u64,
    policy: FsyncPolicy,
    unsynced_appends: usize,
    stats: StorageStats,
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("wal-{index:06}.seg"))
}

fn parse_segment_index(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".seg")?
        .parse()
        .ok()
}

impl DiskWal {
    /// Opens (or creates) a log under `dir` with the default segment size.
    pub fn open(dir: impl Into<PathBuf>, policy: FsyncPolicy) -> Result<Self, StorageError> {
        DiskWal::open_with_segment_bytes(dir, policy, DEFAULT_SEGMENT_BYTES)
    }

    /// Opens (or creates) a log under `dir`, rotating segments at
    /// `max_segment_bytes`.
    pub fn open_with_segment_bytes(
        dir: impl Into<PathBuf>,
        policy: FsyncPolicy,
        max_segment_bytes: u64,
    ) -> Result<Self, StorageError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut indices: Vec<u64> = fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| parse_segment_index(&e.file_name().to_string_lossy()))
            .collect();
        indices.sort_unstable();
        let mut stats = StorageStats::default();
        let (active_index, sealed) = match indices.last() {
            Some(&last) => {
                let mut sealed = Vec::with_capacity(indices.len() - 1);
                for &idx in &indices[..indices.len() - 1] {
                    let len = fs::metadata(segment_path(&dir, idx))?.len();
                    sealed.push((idx, len));
                }
                (last, sealed)
            }
            None => {
                stats.segments_created = 1;
                (0, Vec::new())
            }
        };
        let path = segment_path(&dir, active_index);
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        let active_len = file.metadata()?.len();
        Ok(DiskWal {
            dir,
            file,
            active_index,
            active_len,
            // Whatever a previous process left on disk is, by definition,
            // what stable storage holds now.
            synced_len: active_len,
            sealed,
            max_segment_bytes: max_segment_bytes.max(1),
            policy,
            unsynced_appends: 0,
            stats,
        })
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of segment files currently on disk.
    pub fn segment_count(&self) -> usize {
        self.sealed.len() + 1
    }

    fn rotate(&mut self) -> Result<(), StorageError> {
        self.file.sync_data()?;
        self.synced_len = self.active_len;
        self.sealed.push((self.active_index, self.active_len));
        self.active_index += 1;
        let path = segment_path(&self.dir, self.active_index);
        self.file = fs::OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&path)?;
        self.active_len = 0;
        self.synced_len = 0;
        self.stats.segments_created += 1;
        sync_dir(&self.dir);
        Ok(())
    }

    /// Re-opens the active segment for appending (after a truncate).
    fn reopen_active(&mut self) -> Result<(), StorageError> {
        let path = segment_path(&self.dir, self.active_index);
        self.file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        Ok(())
    }
}

/// Best-effort directory fsync so renames and creations are durable. Errors
/// are ignored: not every filesystem supports it, and the data files
/// themselves are already synced.
pub(crate) fn sync_dir(dir: &Path) {
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
}

impl Storage for DiskWal {
    fn append(&mut self, record: &Record) -> Result<(), StorageError> {
        let frame = encode_frame(record);
        if self.active_len > 0 && self.active_len + frame.len() as u64 > self.max_segment_bytes {
            self.rotate()?;
        }
        self.file.write_all(&frame)?;
        self.active_len += frame.len() as u64;
        self.unsynced_appends += 1;
        self.stats.bytes_appended += frame.len() as u64;
        self.stats.appends += 1;
        if self.policy.wants_sync(record, self.unsynced_appends) {
            self.sync()?;
        }
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        if self.synced_len < self.active_len {
            self.file.sync_data()?;
            self.synced_len = self.active_len;
            self.stats.syncs += 1;
        }
        self.unsynced_appends = 0;
        Ok(())
    }

    fn crash(&mut self) {
        // Model the loss of the OS write-back cache: everything after the
        // last sync is gone. Truncation failure leaves the un-synced tail in
        // place, which recovery tolerates anyway (it decodes a prefix).
        if self.synced_len < self.active_len && self.file.set_len(self.synced_len).is_ok() {
            self.active_len = self.synced_len;
        }
        self.unsynced_appends = 0;
    }

    fn read_image(&mut self) -> Result<Vec<u8>, StorageError> {
        let mut image = Vec::new();
        for &(idx, _) in &self.sealed {
            image.extend_from_slice(&fs::read(segment_path(&self.dir, idx))?);
        }
        image.extend_from_slice(&fs::read(segment_path(&self.dir, self.active_index))?);
        Ok(image)
    }

    fn truncate(&mut self, len: u64) -> Result<(), StorageError> {
        // Map the global image offset onto the segment chain: keep segments
        // wholly before the cut, shorten the one containing it, delete the
        // rest.
        let mut segments = self.sealed.clone();
        segments.push((self.active_index, self.active_len));
        let mut cum = 0u64;
        let mut cut = None;
        for (pos, &(_, seg_len)) in segments.iter().enumerate() {
            if len <= cum + seg_len {
                cut = Some((pos, len - cum));
                break;
            }
            cum += seg_len;
        }
        let Some((pos, local)) = cut else {
            return Ok(()); // len beyond the image: nothing to drop
        };
        for &(idx, _) in &segments[pos + 1..] {
            let _ = fs::remove_file(segment_path(&self.dir, idx));
        }
        let (idx, _) = segments[pos];
        let f = fs::OpenOptions::new()
            .write(true)
            .open(segment_path(&self.dir, idx))?;
        f.set_len(local)?;
        f.sync_data()?;
        self.sealed = segments[..pos].to_vec();
        self.active_index = idx;
        self.active_len = local;
        self.synced_len = local;
        self.reopen_active()?;
        sync_dir(&self.dir);
        Ok(())
    }

    fn reset(&mut self, records: &[Record]) -> Result<(), StorageError> {
        let mut image = BytesMut::new();
        for record in records {
            codec::encode_record(record, &mut image);
        }
        let next = self.active_index + 1;
        let tmp = self.dir.join(format!("wal-{next:06}.seg.tmp"));
        let final_path = segment_path(&self.dir, next);
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&image)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, &final_path)?;
        sync_dir(&self.dir);
        // The snapshot is durably in place; the old segments are garbage.
        for &(idx, _) in &self.sealed {
            let _ = fs::remove_file(segment_path(&self.dir, idx));
        }
        let _ = fs::remove_file(segment_path(&self.dir, self.active_index));
        self.sealed.clear();
        self.active_index = next;
        self.active_len = image.len() as u64;
        self.synced_len = self.active_len;
        self.unsynced_appends = 0;
        self.reopen_active()?;
        self.stats.compactions += 1;
        self.stats.segments_created += 1;
        self.stats.syncs += 1;
        Ok(())
    }

    fn stats(&self) -> StorageStats {
        self.stats
    }
}

// ---- fault-injecting backend ------------------------------------------------

/// What [`FaultyStorage`] may do to the log at crash time.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Seed for the backend's private deterministic RNG.
    pub seed: u64,
    /// Probability that a crash keeps a *random byte-length prefix* of the
    /// un-synced tail instead of dropping it whole (a torn write).
    pub torn_tail_prob: f64,
    /// Probability that a crash flips one random bit of the surviving image
    /// (media corruption; recovery must truncate at the corrupt frame).
    pub bit_flip_prob: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            torn_tail_prob: 0.0,
            bit_flip_prob: 0.0,
        }
    }
}

/// An in-memory backend that injects storage faults at crash time,
/// deterministically under [`FaultConfig::seed`].
///
/// Between crashes it behaves exactly like [`MemStorage`]; every crash may
/// tear the un-synced tail at an arbitrary byte boundary and/or flip a bit
/// in the surviving image. Recovery must cope by decoding the longest valid
/// prefix — never by panicking.
#[derive(Debug)]
pub struct FaultyStorage {
    inner: MemStorage,
    config: FaultConfig,
    rng_state: u64,
    torn_tails: u64,
    bit_flips: u64,
}

impl FaultyStorage {
    /// A faulty log over the always-durable policy (faults only bite the
    /// window between appends and crashes, so pair this with a laxer policy
    /// for interesting runs).
    pub fn new(config: FaultConfig) -> Self {
        FaultyStorage::with_policy(config, FsyncPolicy::PerAppend)
    }

    /// A faulty log with an explicit fsync policy.
    pub fn with_policy(config: FaultConfig, policy: FsyncPolicy) -> Self {
        FaultyStorage {
            inner: MemStorage::with_policy(policy),
            rng_state: config.seed,
            config,
            torn_tails: 0,
            bit_flips: 0,
        }
    }

    /// How many crashes tore the tail instead of dropping it whole.
    pub fn injected_torn_tails(&self) -> u64 {
        self.torn_tails
    }

    /// How many crashes flipped a bit in the surviving image.
    pub fn injected_bit_flips(&self) -> u64 {
        self.bit_flips
    }

    /// splitmix64: tiny, seedable, and good enough for fault placement.
    fn next_u64(&mut self) -> u64 {
        self.rng_state = self.rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl Storage for FaultyStorage {
    fn append(&mut self, record: &Record) -> Result<(), StorageError> {
        self.inner.append(record)
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        self.inner.sync()
    }

    fn crash(&mut self) {
        let tail = self.inner.unsynced_len();
        if tail > 0 && self.chance(self.config.torn_tail_prob) {
            // Keep an arbitrary byte-length prefix of the tail, as if the
            // crash caught the write partway to the platter.
            let keep = (self.next_u64() % (tail as u64 + 1)) as usize;
            self.inner.promote_unsynced_prefix(keep);
            self.torn_tails += 1;
        }
        self.inner.crash();
        if self.chance(self.config.bit_flip_prob) {
            let bits = self.inner.synced_len() as u64 * 8;
            if bits > 0 {
                let bit = self.next_u64() % bits;
                self.inner.flip_bit(bit);
                self.bit_flips += 1;
            }
        }
    }

    fn read_image(&mut self) -> Result<Vec<u8>, StorageError> {
        self.inner.read_image()
    }

    fn truncate(&mut self, len: u64) -> Result<(), StorageError> {
        self.inner.truncate(len)
    }

    fn reset(&mut self, records: &[Record]) -> Result<(), StorageError> {
        self.inner.reset(records)
    }

    fn stats(&self) -> StorageStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_core::{Entry, ItemId, TxnId, Value};

    fn set(item: u64, v: i64) -> Record {
        Record::SetItem {
            item: ItemId(item),
            entry: Entry::Simple(Value::Int(v)),
        }
    }

    fn decision(txn: u64) -> Record {
        Record::Decision {
            txn: TxnId(txn),
            completed: true,
        }
    }

    fn decode(image: &[u8]) -> Vec<Record> {
        codec::decode_wal(image)
            .expect("image decodes")
            .iter()
            .cloned()
            .collect()
    }

    /// A scratch directory inside the repo's target tree (never /tmp).
    fn scratch(name: &str) -> PathBuf {
        let base = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/tmp/storage-tests")
            .join(name);
        let _ = fs::remove_dir_all(&base);
        fs::create_dir_all(&base).unwrap();
        base
    }

    #[test]
    fn mem_per_append_is_always_durable() {
        let mut s = MemStorage::new();
        s.append(&set(1, 10)).unwrap();
        s.append(&set(1, 11)).unwrap();
        s.crash();
        assert_eq!(decode(&s.read_image().unwrap()), vec![set(1, 10), set(1, 11)]);
    }

    #[test]
    fn mem_periodic_policy_loses_unsynced_tail_on_crash() {
        let mut s = MemStorage::with_policy(FsyncPolicy::EveryN(100));
        s.append(&set(1, 10)).unwrap();
        s.sync().unwrap();
        s.append(&set(1, 11)).unwrap();
        s.append(&set(1, 12)).unwrap();
        assert!(s.unsynced_len() > 0);
        s.crash();
        assert_eq!(decode(&s.read_image().unwrap()), vec![set(1, 10)]);
    }

    #[test]
    fn mem_per_decision_syncs_on_decisions_only() {
        let mut s = MemStorage::with_policy(FsyncPolicy::PerDecision);
        s.append(&set(1, 10)).unwrap();
        assert!(s.unsynced_len() > 0);
        s.append(&decision(7)).unwrap();
        assert_eq!(s.unsynced_len(), 0);
        s.crash();
        assert_eq!(decode(&s.read_image().unwrap()), vec![set(1, 10), decision(7)]);
    }

    #[test]
    fn mem_every_n_syncs_at_interval() {
        let mut s = MemStorage::with_policy(FsyncPolicy::EveryN(3));
        s.append(&set(1, 1)).unwrap();
        s.append(&set(1, 2)).unwrap();
        assert!(s.unsynced_len() > 0);
        s.append(&set(1, 3)).unwrap();
        assert_eq!(s.unsynced_len(), 0);
    }

    #[test]
    fn mem_reset_and_truncate() {
        let mut s = MemStorage::new();
        for i in 0..10 {
            s.append(&set(1, i)).unwrap();
        }
        s.reset(&[set(1, 9)]).unwrap();
        assert_eq!(decode(&s.read_image().unwrap()), vec![set(1, 9)]);
        assert_eq!(s.stats().compactions, 1);
        s.truncate(0).unwrap();
        assert!(s.read_image().unwrap().is_empty());
    }

    #[test]
    fn disk_round_trips_across_reopen() {
        let dir = scratch("reopen");
        {
            let mut s = DiskWal::open(&dir, FsyncPolicy::PerAppend).unwrap();
            s.append(&set(1, 10)).unwrap();
            s.append(&decision(3)).unwrap();
        }
        let mut s = DiskWal::open(&dir, FsyncPolicy::PerAppend).unwrap();
        assert_eq!(decode(&s.read_image().unwrap()), vec![set(1, 10), decision(3)]);
        s.append(&set(2, 20)).unwrap();
        assert_eq!(decode(&s.read_image().unwrap()).len(), 3);
    }

    #[test]
    fn disk_crash_drops_unsynced_suffix() {
        let dir = scratch("crash");
        let mut s = DiskWal::open(&dir, FsyncPolicy::EveryN(100)).unwrap();
        s.append(&set(1, 10)).unwrap();
        s.sync().unwrap();
        s.append(&set(1, 11)).unwrap();
        s.crash();
        assert_eq!(decode(&s.read_image().unwrap()), vec![set(1, 10)]);
        // The log keeps working after the crash truncation.
        s.append(&set(1, 12)).unwrap();
        s.sync().unwrap();
        assert_eq!(decode(&s.read_image().unwrap()), vec![set(1, 10), set(1, 12)]);
    }

    #[test]
    fn disk_rotates_segments_and_replays_in_order() {
        let dir = scratch("rotate");
        let mut s = DiskWal::open_with_segment_bytes(&dir, FsyncPolicy::PerAppend, 64).unwrap();
        for i in 0..20 {
            s.append(&set(1, i)).unwrap();
        }
        assert!(s.segment_count() > 1, "expected rotation at 64-byte segments");
        let records = decode(&s.read_image().unwrap());
        assert_eq!(records.len(), 20);
        assert_eq!(records[19], set(1, 19));
        // Reopen sees the same chain.
        drop(s);
        let mut s = DiskWal::open(&dir, FsyncPolicy::PerAppend).unwrap();
        assert_eq!(decode(&s.read_image().unwrap()).len(), 20);
    }

    #[test]
    fn disk_reset_leaves_one_fresh_segment() {
        let dir = scratch("reset");
        let mut s = DiskWal::open_with_segment_bytes(&dir, FsyncPolicy::PerAppend, 64).unwrap();
        for i in 0..20 {
            s.append(&set(1, i)).unwrap();
        }
        s.reset(&[set(1, 19)]).unwrap();
        assert_eq!(s.segment_count(), 1);
        assert_eq!(decode(&s.read_image().unwrap()), vec![set(1, 19)]);
        // No stray files: exactly one segment, no tmp leftovers.
        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names.len(), 1, "dir should hold one segment, got {names:?}");
        assert!(names[0].ends_with(".seg"));
        // And the snapshot survives a reopen.
        drop(s);
        let mut s = DiskWal::open(&dir, FsyncPolicy::PerAppend).unwrap();
        assert_eq!(decode(&s.read_image().unwrap()), vec![set(1, 19)]);
    }

    #[test]
    fn disk_truncate_across_segments() {
        let dir = scratch("truncate");
        let mut s = DiskWal::open_with_segment_bytes(&dir, FsyncPolicy::PerAppend, 64).unwrap();
        for i in 0..20 {
            s.append(&set(1, i)).unwrap();
        }
        let image = s.read_image().unwrap();
        // Cut to the first two frames (they live in the first segment).
        let two = codec::encode_wal(&crate::wal::Wal::from_records(vec![set(1, 0), set(1, 1)]));
        s.truncate(two.len() as u64).unwrap();
        assert_eq!(decode(&s.read_image().unwrap()), vec![set(1, 0), set(1, 1)]);
        assert!(s.read_image().unwrap().len() < image.len());
        // Appends continue from the cut.
        s.append(&set(2, 2)).unwrap();
        assert_eq!(decode(&s.read_image().unwrap()).len(), 3);
    }

    #[test]
    fn faulty_torn_tail_keeps_a_byte_prefix() {
        let mut hit_partial = false;
        for seed in 0..64 {
            let mut s = FaultyStorage::with_policy(
                FaultConfig {
                    seed,
                    torn_tail_prob: 1.0,
                    bit_flip_prob: 0.0,
                },
                FsyncPolicy::EveryN(100),
            );
            s.append(&set(1, 10)).unwrap();
            s.sync().unwrap();
            let synced = s.read_image().unwrap().len();
            s.append(&set(1, 11)).unwrap();
            s.crash();
            assert_eq!(s.injected_torn_tails(), 1);
            let image = s.read_image().unwrap();
            assert!(image.len() >= synced);
            // The decoded prefix never panics and never invents records.
            let (wal, _) = codec::decode_wal_lossy(&image);
            assert!(wal.len() <= 2);
            if image.len() > synced {
                hit_partial = true;
            }
        }
        assert!(hit_partial, "some seed should tear mid-frame");
    }

    #[test]
    fn faulty_bit_flip_truncates_cleanly() {
        let mut flipped = 0;
        for seed in 0..32 {
            let mut s = FaultyStorage::new(FaultConfig {
                seed,
                torn_tail_prob: 0.0,
                bit_flip_prob: 1.0,
            });
            for i in 0..8 {
                s.append(&set(1, i)).unwrap();
            }
            s.crash();
            flipped += s.injected_bit_flips();
            let image = s.read_image().unwrap();
            // Decoding the corrupt image must not panic; every record it does
            // return is a valid record from the prefix before the flip.
            let (wal, _) = codec::decode_wal_lossy(&image);
            assert!(wal.len() <= 8);
        }
        assert!(flipped >= 32);
    }

    #[test]
    fn faulty_is_deterministic_under_seed() {
        let run = |seed| {
            let mut s = FaultyStorage::with_policy(
                FaultConfig {
                    seed,
                    torn_tail_prob: 0.7,
                    bit_flip_prob: 0.3,
                },
                FsyncPolicy::EveryN(3),
            );
            for i in 0..6 {
                s.append(&set(1, i)).unwrap();
                if i == 2 {
                    s.crash();
                }
            }
            s.crash();
            s.read_image().unwrap()
        };
        assert_eq!(run(42), run(42));
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn storage_error_display() {
        assert!(StorageError::Io("boom".into()).to_string().contains("boom"));
        assert!(StorageError::Codec(codec::CodecError::Truncated)
            .to_string()
            .contains("truncated"));
    }
}
