//! The in-memory item table (materialised from the WAL).

use pv_core::{Entry, ItemId, Value};
use std::collections::BTreeMap;

/// Maps items to their current entries, tracking how many are polyvalues.
#[derive(Debug, Clone, Default)]
pub struct ItemTable {
    entries: BTreeMap<ItemId, Entry<Value>>,
    poly_count: usize,
}

impl ItemTable {
    /// An empty table.
    pub fn new() -> Self {
        ItemTable::default()
    }

    /// Installs `entry` as the current value of `item`.
    pub fn set(&mut self, item: ItemId, entry: Entry<Value>) {
        let was_poly = self.entries.get(&item).is_some_and(Entry::is_poly);
        let is_poly = entry.is_poly();
        self.entries.insert(item, entry);
        match (was_poly, is_poly) {
            (false, true) => self.poly_count += 1,
            // Saturate rather than underflow: a collapse racing a recovery
            // replay can observe a poly entry the counter never accounted
            // for, and the count must degrade to "stale" instead of
            // panicking mid-replay.
            (true, false) => self.poly_count = self.poly_count.saturating_sub(1),
            _ => {}
        }
    }

    /// The current entry of `item`.
    pub fn get(&self, item: ItemId) -> Option<&Entry<Value>> {
        self.entries.get(&item)
    }

    /// Whether the table holds `item`.
    pub fn contains(&self, item: ItemId) -> bool {
        self.entries.contains_key(&item)
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of items currently holding polyvalues — the paper's `P(t)`.
    pub fn poly_count(&self) -> usize {
        self.poly_count
    }

    /// Iterates over `(item, entry)` in item order.
    pub fn iter(&self) -> impl Iterator<Item = (ItemId, &Entry<Value>)> {
        self.entries.iter().map(|(&k, v)| (k, v))
    }

    /// Clears the table (crash of volatile state before replay).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.poly_count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_core::TxnId;

    fn simple(v: i64) -> Entry<Value> {
        Entry::Simple(Value::Int(v))
    }

    fn poly(a: i64, b: i64, t: u64) -> Entry<Value> {
        Entry::in_doubt(simple(a), simple(b), TxnId(t))
    }

    #[test]
    fn set_get_contains() {
        let mut t = ItemTable::new();
        assert!(t.is_empty());
        t.set(ItemId(1), simple(5));
        assert_eq!(t.get(ItemId(1)), Some(&simple(5)));
        assert!(t.contains(ItemId(1)));
        assert!(!t.contains(ItemId(2)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn poly_count_tracks_transitions() {
        let mut t = ItemTable::new();
        t.set(ItemId(1), simple(5));
        assert_eq!(t.poly_count(), 0);
        t.set(ItemId(1), poly(1, 2, 7));
        assert_eq!(t.poly_count(), 1);
        // Poly → poly keeps the count.
        t.set(ItemId(1), poly(3, 4, 8));
        assert_eq!(t.poly_count(), 1);
        // New poly item increments.
        t.set(ItemId(2), poly(1, 2, 7));
        assert_eq!(t.poly_count(), 2);
        // Overwriting with a simple value decrements.
        t.set(ItemId(1), simple(9));
        assert_eq!(t.poly_count(), 1);
    }

    #[test]
    fn iter_in_item_order() {
        let mut t = ItemTable::new();
        t.set(ItemId(3), simple(3));
        t.set(ItemId(1), simple(1));
        let keys: Vec<u64> = t.iter().map(|(k, _)| k.0).collect();
        assert_eq!(keys, vec![1, 3]);
    }

    #[test]
    fn poly_collapse_with_stale_counter_saturates() {
        // Regression: a recovery replay can materialise a poly entry while
        // the counter was rebuilt from scratch (counter = 0). Collapsing
        // that entry must saturate at zero, not underflow-panic.
        let mut t = ItemTable::new();
        t.set(ItemId(1), poly(1, 2, 7));
        t.poly_count = 0; // simulate the stale-counter race
        t.set(ItemId(1), simple(9)); // collapse: previously panicked in debug
        assert_eq!(t.poly_count(), 0);
    }

    #[test]
    fn clear_resets_everything() {
        let mut t = ItemTable::new();
        t.set(ItemId(1), poly(1, 2, 7));
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.poly_count(), 0);
    }
}
