//! Property tests for the simulation substrate: determinism, causality, and
//! failure-injection invariants under arbitrary event schedules.

use proptest::prelude::*;
use pv_simnet::{Actor, Ctx, NetConfig, NodeId, SimDuration, SimTime, World};

/// A recording actor: logs every delivery and timer with its own receive
/// time, and pings a neighbour for every even payload.
#[derive(Default)]
struct Recorder {
    log: Vec<(u64, u32, u64)>, // (virtual µs, from, payload)
}

impl Actor for Recorder {
    type Msg = u64;

    fn on_message(&mut self, ctx: &mut Ctx<u64>, from: NodeId, msg: u64) {
        self.log.push((ctx.now().as_micros(), from.0, msg));
        if msg.is_multiple_of(2) && msg > 0 {
            let next = NodeId((ctx.me().0 + 1) % 3);
            ctx.send(next, msg / 2);
        }
        if msg.is_multiple_of(5) && msg > 0 {
            ctx.set_timer(SimDuration::from_micros(msg), msg);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<u64>, key: u64) {
        self.log.push((ctx.now().as_micros(), u32::MAX, key));
    }
}

/// One externally injected event.
#[derive(Debug, Clone)]
enum Inject {
    Send {
        to: u32,
        payload: u64,
        at_ms: u64,
    },
    Crash {
        node: u32,
        at_ms: u64,
        down_ms: u64,
    },
    Cut {
        a: u32,
        b: u32,
        at_ms: u64,
        dur_ms: u64,
    },
}

fn inject_strategy() -> impl Strategy<Value = Inject> {
    prop_oneof![
        (0..3u32, 0..100u64, 0..2_000u64).prop_map(|(to, payload, at_ms)| Inject::Send {
            to,
            payload,
            at_ms
        }),
        (0..3u32, 0..2_000u64, 1..500u64).prop_map(|(node, at_ms, down_ms)| Inject::Crash {
            node,
            at_ms,
            down_ms
        }),
        (0..3u32, 0..3u32, 0..2_000u64, 1..500u64).prop_map(|(a, b, at_ms, dur_ms)| Inject::Cut {
            a,
            b,
            at_ms,
            dur_ms
        }),
    ]
}

fn run(injections: &[Inject], seed: u64, jitter_us: u64) -> Vec<Vec<(u64, u32, u64)>> {
    let mut world: World<Recorder> = World::new(
        seed,
        NetConfig {
            min_delay: SimDuration::from_micros(50),
            jitter: SimDuration::from_micros(jitter_us),
            local_delay: SimDuration::from_micros(5),
            ..NetConfig::instant()
        },
    );
    for _ in 0..3 {
        world.add_node(Recorder::default());
    }
    for inj in injections {
        match *inj {
            Inject::Send { to, payload, at_ms } => {
                // Injection times are not sorted: this deliberately also
                // exercises `run_until` with targets already in the past.
                world.run_until(SimTime::from_millis(at_ms));
                world.send_from_env(NodeId(to), payload);
            }
            Inject::Crash {
                node,
                at_ms,
                down_ms,
            } => {
                world.schedule_crash(SimTime::from_millis(at_ms), NodeId(node));
                world.schedule_recover(SimTime::from_millis(at_ms + down_ms), NodeId(node));
            }
            Inject::Cut {
                a,
                b,
                at_ms,
                dur_ms,
            } => {
                world.schedule_partition(SimTime::from_millis(at_ms), NodeId(a), NodeId(b));
                world.schedule_heal(SimTime::from_millis(at_ms + dur_ms), NodeId(a), NodeId(b));
            }
        }
    }
    world.run_until(SimTime::from_secs(10));
    (0..3).map(|n| world.actor(NodeId(n)).log.clone()).collect()
}

/// Replays of the shrunk inputs recorded in
/// `prop_simnet.proptest-regressions`. The vendored proptest shim does not
/// read that file, so the historical failure cases are reconstructed here as
/// plain tests — they run in CI regardless of `PROPTEST_CASES`.
mod regressions {
    use super::*;

    /// `no_delivery_during_outage` once failed with: node = 0, at_ms = 100,
    /// down_ms = 100, sends = [(0, 200), (0, 100)], seed = 0 — a send landing
    /// exactly on the crash boundary.
    #[test]
    fn outage_boundary_delivery() {
        let injections = vec![
            Inject::Crash {
                node: 0,
                at_ms: 100,
                down_ms: 100,
            },
            Inject::Send {
                to: 0,
                payload: 0,
                at_ms: 200,
            },
            Inject::Send {
                to: 0,
                payload: 0,
                at_ms: 100,
            },
        ];
        let logs = run(&injections, 0, 100);
        let (lo, hi) = (100 * 1_000, 200 * 1_000);
        for &(t, _, _) in &logs[0] {
            assert!(
                t < lo || t >= hi,
                "node 0 recorded an event at {t}µs during its outage [{lo}, {hi})"
            );
        }
    }

    /// `observed_time_is_monotone` once failed with: injections =
    /// [Send{to:2, payload:66, at_ms:883}, Send{to:0, payload:0, at_ms:884},
    /// Send{to:0, payload:0, at_ms:0}], seed = 0 — an injection scheduled in
    /// the past after `run_until` had already advanced the clock.
    #[test]
    fn past_injection_keeps_time_monotone() {
        let injections = vec![
            Inject::Send {
                to: 2,
                payload: 66,
                at_ms: 883,
            },
            Inject::Send {
                to: 0,
                payload: 0,
                at_ms: 884,
            },
            Inject::Send {
                to: 0,
                payload: 0,
                at_ms: 0,
            },
        ];
        for log in run(&injections, 0, 200) {
            for w in log.windows(2) {
                assert!(w[0].0 <= w[1].0, "time went backwards: {w:?}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Identical seeds and schedules produce bit-identical histories on
    /// every node, regardless of jitter and failures.
    #[test]
    fn runs_are_deterministic(
        injections in prop::collection::vec(inject_strategy(), 0..12),
        seed in 0u64..1_000,
        jitter in 0u64..500,
    ) {
        let a = run(&injections, seed, jitter);
        let b = run(&injections, seed, jitter);
        prop_assert_eq!(a, b);
    }

    /// Virtual time never goes backwards in any node's observed history.
    #[test]
    fn observed_time_is_monotone(
        injections in prop::collection::vec(inject_strategy(), 0..12),
        seed in 0u64..1_000,
    ) {
        for log in run(&injections, seed, 200) {
            for w in log.windows(2) {
                prop_assert!(w[0].0 <= w[1].0, "time went backwards: {w:?}");
            }
        }
    }

    /// With zero jitter and no failures, message histories are independent
    /// of the seed entirely.
    #[test]
    fn zero_jitter_no_failures_is_seed_independent(
        sends in prop::collection::vec((0..3u32, 0..100u64, 0..2_000u64), 0..12),
        seed_a in 0u64..1_000,
        seed_b in 0u64..1_000,
    ) {
        let injections: Vec<Inject> = sends
            .iter()
            .map(|&(to, payload, at_ms)| Inject::Send { to, payload, at_ms })
            .collect();
        let a = run(&injections, seed_a, 0);
        let b = run(&injections, seed_b, 0);
        prop_assert_eq!(a, b);
    }

    /// A crashed node never records a delivery while down: every log entry
    /// of a node falls outside its scheduled outages.
    #[test]
    fn no_delivery_during_outage(
        node in 0..3u32,
        at_ms in 100u64..1_000,
        down_ms in 100u64..1_000,
        sends in prop::collection::vec((0..100u64, 0..2_000u64), 1..10),
        seed in 0u64..1_000,
    ) {
        let mut injections = vec![Inject::Crash { node, at_ms, down_ms }];
        injections.extend(
            sends
                .iter()
                .map(|&(payload, t)| Inject::Send { to: node, payload, at_ms: t }),
        );
        let logs = run(&injections, seed, 100);
        let (lo, hi) = (at_ms * 1_000, (at_ms + down_ms) * 1_000);
        for &(t, _, _) in &logs[node as usize] {
            prop_assert!(
                t < lo || t >= hi,
                "node {node} recorded an event at {t}µs during its outage [{lo}, {hi})"
            );
        }
    }
}
