//! Deterministic random number streams.
//!
//! Every source of randomness in a simulation run derives from one master
//! seed, so a run is exactly reproducible from `(configuration, seed)`.
//! Independent components fork their own sub-streams so that adding a
//! component does not perturb the draws seen by the others.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic random stream.
#[derive(Debug, Clone)]
pub struct SimRng {
    rng: SmallRng,
    seed: u64,
}

impl SimRng {
    /// Creates the master stream for a run.
    pub fn new(seed: u64) -> Self {
        SimRng {
            rng: SmallRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Forks an independent sub-stream identified by `stream`.
    ///
    /// Forking is a pure function of `(seed, stream)`: the sub-stream does
    /// not depend on how much the parent has been consumed.
    pub fn fork(&self, stream: u64) -> SimRng {
        // SplitMix64-style mixing of the (seed, stream) pair.
        let mut z = self.seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng::new(z)
    }

    /// A uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.rng.random::<f64>()
    }

    /// A uniform draw in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }

    /// A uniform integer in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        self.rng.random_range(0..n)
    }

    /// A Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.unit() < p
    }

    /// An exponential draw with the given mean, by inverse transform.
    ///
    /// The offline `rand` crate does not bundle `rand_distr`; inverse
    /// transform sampling (`-mean · ln(1-u)`) is exact and two lines.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean >= 0.0, "exponential mean must be non-negative");
        if mean == 0.0 {
            return 0.0;
        }
        let u: f64 = self.unit();
        -mean * (1.0 - u).ln()
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "pick from empty slice");
        &xs[self.below(xs.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.unit(), b.unit());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let va: Vec<f64> = (0..10).map(|_| a.unit()).collect();
        let vb: Vec<f64> = (0..10).map(|_| b.unit()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn fork_is_independent_of_consumption() {
        let parent = SimRng::new(7);
        let mut consumed = parent.clone();
        for _ in 0..50 {
            consumed.unit();
        }
        let mut f1 = parent.fork(3);
        let mut f2 = consumed.fork(3);
        for _ in 0..20 {
            assert_eq!(f1.unit(), f2.unit());
        }
    }

    #[test]
    fn fork_streams_are_distinct() {
        let parent = SimRng::new(7);
        let mut f1 = parent.fork(1);
        let mut f2 = parent.fork(2);
        let v1: Vec<f64> = (0..10).map(|_| f1.unit()).collect();
        let v2: Vec<f64> = (0..10).map(|_| f2.unit()).collect();
        assert_ne!(v1, v2);
    }

    #[test]
    fn unit_is_in_range() {
        let mut r = SimRng::new(9);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = SimRng::new(9);
        for _ in 0..1000 {
            let u = r.uniform(5.0, 6.0);
            assert!((5.0..6.0).contains(&u));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::new(9);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(9);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = SimRng::new(11);
        let n = 20_000;
        let mean = 4.0;
        let sum: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let got = sum / n as f64;
        assert!((got - mean).abs() < 0.15 * mean, "sample mean {got}");
    }

    #[test]
    fn exponential_zero_mean_is_zero() {
        let mut r = SimRng::new(11);
        assert_eq!(r.exponential(0.0), 0.0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::new(13);
        let mut xs: Vec<u32> = (0..20).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<u32>>());
    }

    #[test]
    fn pick_returns_member() {
        let mut r = SimRng::new(13);
        let xs = [1, 2, 3];
        for _ in 0..50 {
            assert!(xs.contains(r.pick(&xs)));
        }
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        SimRng::new(1).below(0);
    }

    #[test]
    #[should_panic(expected = "pick from empty")]
    fn pick_empty_panics() {
        let xs: [u8; 0] = [];
        SimRng::new(1).pick(&xs);
    }
}
