//! Virtual time for the discrete-event simulator.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in microseconds since the start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds a time from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Builds a time from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// This time expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Microseconds since the origin.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration since `earlier`; saturates at zero if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a duration from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a duration from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a duration from fractional seconds, rounding to microseconds.
    /// Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e6).round() as u64)
    }

    /// The duration in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration in microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Scales the duration by a non-negative factor.
    pub fn mul_f64(self, k: f64) -> Self {
        SimDuration::from_secs_f64(self.as_secs_f64() * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs(1).as_micros(), 1_000_000);
        assert_eq!(SimDuration::from_millis(1).as_micros(), 1_000);
        assert_eq!(SimDuration::from_micros(7).as_micros(), 7);
        assert!((SimTime::from_secs(1).as_secs_f64() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fractional_seconds_round_trip() {
        let d = SimDuration::from_secs_f64(0.125);
        assert_eq!(d.as_micros(), 125_000);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 1_500_000);
        let mut t2 = SimTime::ZERO;
        t2 += SimDuration::from_micros(5);
        assert_eq!(t2.as_micros(), 5);
        assert_eq!(
            (SimDuration::from_secs(2) - SimDuration::from_secs(1)).as_micros(),
            1_000_000
        );
        // Saturation, not wrap-around.
        assert_eq!(
            (SimDuration::from_secs(1) - SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(3);
        assert_eq!(b.since(a).as_micros(), 2_000_000);
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn scaling() {
        assert_eq!(
            SimDuration::from_secs(2).mul_f64(0.5).as_micros(),
            1_000_000
        );
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
        assert_eq!(SimDuration::from_micros(1).to_string(), "0.000001s");
    }
}
