//! # pv-simnet — deterministic discrete-event simulation substrate
//!
//! The distributed substrate for the polyvalue engine: a virtual-time event
//! loop over message-passing [`Actor`]s with a configurable network model
//! (latency, jitter, loss, partitions) and failure injection (crashes with
//! exponential recovery, per §4 of the paper). Runs are exactly reproducible
//! from `(configuration, seed)`.
//!
//! The paper evaluated polyvalues by analysis and simulation; this crate is
//! the simulation half's foundation, and `pv-engine` builds the full
//! two-phase-commit-with-polyvalues protocol on top of it.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod actor;
mod failure;
mod metrics;
mod net;
mod rng;
mod time;
mod trace;
mod world;

pub use actor::{Actor, Ctx, Effect, NodeId, TimerId};
pub use failure::{FailureConfig, FailurePlan, Outage};
pub use metrics::{Histogram, HistogramSummary, Metrics, MetricsSnapshot};
pub use net::{LinkState, NetConfig};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceEvent, TraceRecord, TraceSink};
pub use world::World;
