//! Network model: latency, loss, and partitions.

use crate::actor::NodeId;
use crate::rng::SimRng;
use crate::time::SimDuration;
use std::collections::BTreeSet;

/// Static configuration of the message network.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Minimum one-way latency between distinct nodes.
    pub min_delay: SimDuration,
    /// Additional uniformly distributed latency on top of `min_delay`.
    pub jitter: SimDuration,
    /// Latency of a node sending to itself.
    pub local_delay: SimDuration,
    /// Probability that any remote message is lost in transit.
    pub drop_prob: f64,
    /// Probability that any remote message is delivered twice (the duplicate
    /// gets its own independently sampled latency and reorder offset).
    pub dup_prob: f64,
    /// Extra uniformly distributed latency added per remote message, on top
    /// of `min_delay + jitter`. A non-zero window lets later sends overtake
    /// earlier ones — i.e. genuine reordering.
    pub reorder_window: SimDuration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            min_delay: SimDuration::from_millis(5),
            jitter: SimDuration::from_millis(5),
            local_delay: SimDuration::from_micros(10),
            drop_prob: 0.0,
            dup_prob: 0.0,
            reorder_window: SimDuration::ZERO,
        }
    }
}

impl NetConfig {
    /// A zero-latency, lossless network, useful in unit tests.
    pub fn instant() -> Self {
        NetConfig {
            min_delay: SimDuration::from_micros(1),
            jitter: SimDuration::ZERO,
            local_delay: SimDuration::from_micros(1),
            drop_prob: 0.0,
            dup_prob: 0.0,
            reorder_window: SimDuration::ZERO,
        }
    }

    /// Samples the one-way latency for a message from `from` to `to`.
    pub fn sample_delay(&self, from: NodeId, to: NodeId, rng: &mut SimRng) -> SimDuration {
        if from == to {
            return self.local_delay;
        }
        let jitter = if self.jitter == SimDuration::ZERO {
            SimDuration::ZERO
        } else {
            SimDuration::from_micros(rng.below(self.jitter.as_micros().max(1)))
        };
        self.min_delay + jitter
    }
}

/// Mutable link state: the set of partitioned (blocked) node pairs.
#[derive(Debug, Clone, Default)]
pub struct LinkState {
    blocked: BTreeSet<(NodeId, NodeId)>,
}

impl LinkState {
    /// Normalises a pair so `(a, b)` and `(b, a)` are the same link.
    fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Cuts the link between `a` and `b` (both directions).
    pub fn cut(&mut self, a: NodeId, b: NodeId) {
        self.blocked.insert(Self::key(a, b));
    }

    /// Heals the link between `a` and `b`.
    pub fn heal(&mut self, a: NodeId, b: NodeId) {
        self.blocked.remove(&Self::key(a, b));
    }

    /// Whether traffic can flow between `a` and `b`.
    pub fn connected(&self, a: NodeId, b: NodeId) -> bool {
        a == b || !self.blocked.contains(&Self::key(a, b))
    }

    /// Number of cut links.
    pub fn cut_count(&self) -> usize {
        self.blocked.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = NetConfig::default();
        assert!(c.min_delay > SimDuration::ZERO);
        assert_eq!(c.drop_prob, 0.0);
    }

    #[test]
    fn delay_sampling_respects_bounds() {
        let c = NetConfig {
            min_delay: SimDuration::from_millis(10),
            jitter: SimDuration::from_millis(5),
            local_delay: SimDuration::from_micros(1),
            ..NetConfig::instant()
        };
        let mut rng = SimRng::new(3);
        for _ in 0..200 {
            let d = c.sample_delay(NodeId(0), NodeId(1), &mut rng);
            assert!(d >= SimDuration::from_millis(10));
            assert!(d < SimDuration::from_millis(15));
        }
        assert_eq!(
            c.sample_delay(NodeId(2), NodeId(2), &mut rng),
            SimDuration::from_micros(1)
        );
    }

    #[test]
    fn zero_jitter_is_deterministic() {
        let c = NetConfig::instant();
        let mut rng = SimRng::new(3);
        assert_eq!(
            c.sample_delay(NodeId(0), NodeId(1), &mut rng),
            SimDuration::from_micros(1)
        );
    }

    #[test]
    fn links_cut_and_heal_symmetrically() {
        let mut ls = LinkState::default();
        assert!(ls.connected(NodeId(0), NodeId(1)));
        ls.cut(NodeId(1), NodeId(0));
        assert!(!ls.connected(NodeId(0), NodeId(1)));
        assert!(!ls.connected(NodeId(1), NodeId(0)));
        assert_eq!(ls.cut_count(), 1);
        // A node is always connected to itself.
        assert!(ls.connected(NodeId(0), NodeId(0)));
        ls.heal(NodeId(0), NodeId(1));
        assert!(ls.connected(NodeId(0), NodeId(1)));
        assert_eq!(ls.cut_count(), 0);
    }

    #[test]
    fn healing_unknown_link_is_noop() {
        let mut ls = LinkState::default();
        ls.heal(NodeId(5), NodeId(6));
        assert!(ls.connected(NodeId(5), NodeId(6)));
    }
}
