//! Failure injection: scripted and stochastic crash/recovery schedules.

use crate::actor::{Actor, NodeId};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::world::World;

/// One planned outage of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outage {
    /// The node that fails.
    pub node: NodeId,
    /// When the node crashes.
    pub crash_at: SimTime,
    /// When the node recovers.
    pub recover_at: SimTime,
}

/// A schedule of node outages for a run.
#[derive(Debug, Clone, Default)]
pub struct FailurePlan {
    outages: Vec<Outage>,
}

/// Parameters of the stochastic failure process.
///
/// Crashes arrive at each node as a Poisson process of rate
/// `crash_rate_per_sec`; each outage lasts an exponentially distributed time
/// with mean `mean_downtime_secs` — the paper's recovery model, where `R` is
/// "the proportion of failures recovered each second" (mean downtime `1/R`).
#[derive(Debug, Clone, Copy)]
pub struct FailureConfig {
    /// Poisson crash rate per node, per second of virtual time.
    pub crash_rate_per_sec: f64,
    /// Mean outage duration in seconds (`1/R` in the paper's notation).
    pub mean_downtime_secs: f64,
    /// Horizon: no crashes are generated at or beyond this time.
    pub horizon: SimTime,
}

impl FailurePlan {
    /// An empty plan.
    pub fn new() -> Self {
        FailurePlan::default()
    }

    /// Adds one scripted outage. Panics if `recover_at <= crash_at`.
    pub fn outage(mut self, node: NodeId, crash_at: SimTime, recover_at: SimTime) -> Self {
        assert!(recover_at > crash_at, "outage must have positive duration");
        self.outages.push(Outage {
            node,
            crash_at,
            recover_at,
        });
        self
    }

    /// Generates a random plan per [`FailureConfig`] for `nodes` nodes.
    ///
    /// Outages of one node never overlap: the next crash is drawn after the
    /// previous recovery.
    pub fn poisson(cfg: FailureConfig, nodes: u32, rng: &mut SimRng) -> Self {
        let mut plan = FailurePlan::new();
        for n in 0..nodes {
            let mut node_rng = rng.fork(0xFA11 + u64::from(n));
            let mut t = SimTime::ZERO;
            loop {
                let gap = if cfg.crash_rate_per_sec <= 0.0 {
                    break;
                } else {
                    SimDuration::from_secs_f64(node_rng.exponential(1.0 / cfg.crash_rate_per_sec))
                };
                let crash_at = t + gap;
                if crash_at >= cfg.horizon {
                    break;
                }
                let down = SimDuration::from_secs_f64(node_rng.exponential(cfg.mean_downtime_secs))
                    .max(SimDuration::from_micros(1));
                let recover_at = crash_at + down;
                plan.outages.push(Outage {
                    node: NodeId(n),
                    crash_at,
                    recover_at,
                });
                t = recover_at;
            }
        }
        plan
    }

    /// The outages in the plan.
    pub fn outages(&self) -> &[Outage] {
        &self.outages
    }

    /// Total downtime accumulated over all outages.
    pub fn total_downtime(&self) -> SimDuration {
        self.outages.iter().fold(SimDuration::ZERO, |acc, o| {
            acc + o.recover_at.since(o.crash_at)
        })
    }

    /// Schedules every outage onto a world.
    pub fn apply<A: Actor>(&self, world: &mut World<A>) {
        for o in &self.outages {
            world.schedule_crash(o.crash_at, o.node);
            world.schedule_recover(o.recover_at, o.node);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::Ctx;
    use crate::net::NetConfig;

    struct Noop;
    impl Actor for Noop {
        type Msg = ();
        fn on_message(&mut self, _ctx: &mut Ctx<()>, _from: NodeId, _msg: ()) {}
    }

    #[test]
    fn scripted_plan_applies() {
        let mut w: World<Noop> = World::new(1, NetConfig::instant());
        let a = w.add_node(Noop);
        let plan = FailurePlan::new().outage(a, SimTime::from_secs(1), SimTime::from_secs(2));
        assert_eq!(plan.outages().len(), 1);
        assert_eq!(plan.total_downtime(), SimDuration::from_secs(1));
        plan.apply(&mut w);
        w.run_until(SimTime::from_millis(1500));
        assert!(!w.is_up(a));
        w.run_until(SimTime::from_millis(2500));
        assert!(w.is_up(a));
    }

    #[test]
    #[should_panic(expected = "positive duration")]
    fn zero_length_outage_rejected() {
        let _ = FailurePlan::new().outage(NodeId(0), SimTime::from_secs(1), SimTime::from_secs(1));
    }

    #[test]
    fn poisson_plan_respects_horizon_and_no_overlap() {
        let mut rng = SimRng::new(99);
        let cfg = FailureConfig {
            crash_rate_per_sec: 0.5,
            mean_downtime_secs: 0.3,
            horizon: SimTime::from_secs(100),
        };
        let plan = FailurePlan::poisson(cfg, 4, &mut rng);
        assert!(!plan.outages().is_empty());
        for o in plan.outages() {
            assert!(o.crash_at < cfg.horizon);
            assert!(o.recover_at > o.crash_at);
        }
        // Per-node outages are sequential.
        for n in 0..4u32 {
            let mut last_recover = SimTime::ZERO;
            for o in plan.outages().iter().filter(|o| o.node == NodeId(n)) {
                assert!(o.crash_at >= last_recover);
                last_recover = o.recover_at;
            }
        }
    }

    #[test]
    fn poisson_plan_is_deterministic() {
        let cfg = FailureConfig {
            crash_rate_per_sec: 1.0,
            mean_downtime_secs: 0.5,
            horizon: SimTime::from_secs(10),
        };
        let p1 = FailurePlan::poisson(cfg, 3, &mut SimRng::new(5));
        let p2 = FailurePlan::poisson(cfg, 3, &mut SimRng::new(5));
        assert_eq!(p1.outages(), p2.outages());
    }

    #[test]
    fn zero_rate_means_no_outages() {
        let cfg = FailureConfig {
            crash_rate_per_sec: 0.0,
            mean_downtime_secs: 0.5,
            horizon: SimTime::from_secs(10),
        };
        let plan = FailurePlan::poisson(cfg, 3, &mut SimRng::new(5));
        assert!(plan.outages().is_empty());
    }

    #[test]
    fn crash_rate_roughly_matches() {
        let cfg = FailureConfig {
            crash_rate_per_sec: 0.2,
            mean_downtime_secs: 0.1,
            horizon: SimTime::from_secs(1000),
        };
        let plan = FailurePlan::poisson(cfg, 1, &mut SimRng::new(17));
        let n = plan.outages().len() as f64;
        // Expect about rate * horizon = 200 outages (downtime shortens the
        // exposure window slightly).
        assert!(n > 120.0 && n < 280.0, "n = {n}");
    }
}
