//! Metrics registry: counters, gauge time series, and histograms.

use crate::time::SimTime;
use std::collections::BTreeMap;
use std::fmt;

/// A value-distribution accumulator with summary statistics.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    values: Vec<f64>,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        self.values.push(v);
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`) by nearest-rank, or `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("metrics must not be NaN"));
        let rank = ((q.clamp(0.0, 1.0)) * (sorted.len() - 1) as f64).round() as usize;
        Some(sorted[rank])
    }

    /// Smallest observation.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }

    /// Largest observation.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }

    /// All raw observations, in arrival order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// A named registry of counters, gauges, and histograms for one run.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, Vec<(SimTime, f64)>>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds `by` to the counter `name` (creating it at zero).
    pub fn inc_by(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += by;
    }

    /// Adds one to the counter `name`.
    pub fn inc(&mut self, name: &str) {
        self.inc_by(name, 1);
    }

    /// The current value of a counter (zero if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Appends a gauge sample at time `t`.
    pub fn gauge(&mut self, name: &str, t: SimTime, v: f64) {
        self.gauges.entry(name.to_owned()).or_default().push((t, v));
    }

    /// The sample series of a gauge (empty if never sampled).
    pub fn gauge_series(&self, name: &str) -> &[(SimTime, f64)] {
        self.gauges.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The latest value of a gauge, if any.
    pub fn gauge_last(&self, name: &str) -> Option<f64> {
        self.gauge_series(name).last().map(|&(_, v)| v)
    }

    /// Time-weighted mean of a gauge over `[from, to]`, treating each sample
    /// as holding until the next. `None` when there is no sample at or
    /// before `from`... the series must start at or before `from` to be
    /// meaningful; earlier samples are clipped.
    pub fn gauge_time_mean(&self, name: &str, from: SimTime, to: SimTime) -> Option<f64> {
        let series = self.gauge_series(name);
        if series.is_empty() || to <= from {
            return None;
        }
        let mut acc = 0.0;
        let mut last_t = from;
        let mut last_v: Option<f64> = None;
        for &(t, v) in series {
            if t <= from {
                last_v = Some(v);
                continue;
            }
            if t >= to {
                break;
            }
            if let Some(lv) = last_v {
                acc += lv * t.since(last_t).as_secs_f64();
            }
            last_t = t;
            last_v = Some(v);
        }
        let lv = last_v?;
        acc += lv * to.since(last_t).as_secs_f64();
        Some(acc / to.since(from).as_secs_f64())
    }

    /// Records an observation into histogram `name`.
    pub fn observe(&mut self, name: &str, v: f64) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .observe(v);
    }

    /// The histogram `name`, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates over all counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Merges another registry into this one (counters add, gauge series and
    /// histograms concatenate).
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, series) in &other.gauges {
            self.gauges
                .entry(k.clone())
                .or_default()
                .extend(series.iter().copied());
        }
        for (k, h) in &other.histograms {
            let dst = self.histograms.entry(k.clone()).or_default();
            for &v in h.values() {
                dst.observe(v);
            }
        }
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.counters {
            writeln!(f, "counter {k} = {v}")?;
        }
        for (k, h) in &self.histograms {
            writeln!(
                f,
                "hist {k}: n={} mean={:.3} p50={:.3} p99={:.3}",
                h.count(),
                h.mean().unwrap_or(f64::NAN),
                h.quantile(0.5).unwrap_or(f64::NAN),
                h.quantile(0.99).unwrap_or(f64::NAN),
            )?;
        }
        for (k, series) in &self.gauges {
            writeln!(f, "gauge {k}: {} samples", series.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        assert_eq!(m.counter("x"), 0);
        m.inc("x");
        m.inc_by("x", 4);
        assert_eq!(m.counter("x"), 5);
        assert_eq!(m.counters().collect::<Vec<_>>(), vec![("x", 5)]);
    }

    #[test]
    fn histogram_summary() {
        let mut h = Histogram::default();
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean(), Some(3.0));
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(0.5), Some(3.0));
        assert_eq!(h.quantile(1.0), Some(5.0));
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(5.0));
    }

    #[test]
    fn empty_histogram_returns_none() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn gauges_record_series() {
        let mut m = Metrics::new();
        m.gauge("p", SimTime::from_secs(1), 10.0);
        m.gauge("p", SimTime::from_secs(2), 20.0);
        assert_eq!(m.gauge_series("p").len(), 2);
        assert_eq!(m.gauge_last("p"), Some(20.0));
        assert_eq!(m.gauge_last("missing"), None);
    }

    #[test]
    fn gauge_time_mean_weights_by_duration() {
        let mut m = Metrics::new();
        // 10 for 1s, then 20 for 3s → mean (10·1 + 20·3)/4 = 17.5.
        m.gauge("p", SimTime::ZERO, 10.0);
        m.gauge("p", SimTime::from_secs(1), 20.0);
        let mean = m
            .gauge_time_mean("p", SimTime::ZERO, SimTime::from_secs(4))
            .unwrap();
        assert!((mean - 17.5).abs() < 1e-9, "{mean}");
    }

    #[test]
    fn gauge_time_mean_clips_before_window() {
        let mut m = Metrics::new();
        m.gauge("p", SimTime::ZERO, 5.0);
        m.gauge("p", SimTime::from_secs(10), 15.0);
        // Window entirely after the last sample.
        let mean = m
            .gauge_time_mean("p", SimTime::from_secs(20), SimTime::from_secs(30))
            .unwrap();
        assert!((mean - 15.0).abs() < 1e-9);
        // Degenerate/empty cases.
        assert!(m
            .gauge_time_mean("p", SimTime::from_secs(3), SimTime::from_secs(3))
            .is_none());
        assert!(m
            .gauge_time_mean("missing", SimTime::ZERO, SimTime::from_secs(1))
            .is_none());
    }

    #[test]
    fn observe_routes_to_histogram() {
        let mut m = Metrics::new();
        m.observe("lat", 1.5);
        m.observe("lat", 2.5);
        assert_eq!(m.histogram("lat").unwrap().count(), 2);
        assert!(m.histogram("missing").is_none());
    }

    #[test]
    fn merge_combines_registries() {
        let mut a = Metrics::new();
        a.inc("c");
        a.observe("h", 1.0);
        a.gauge("g", SimTime::ZERO, 1.0);
        let mut b = Metrics::new();
        b.inc_by("c", 2);
        b.observe("h", 2.0);
        b.gauge("g", SimTime::from_secs(1), 2.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        assert_eq!(a.gauge_series("g").len(), 2);
    }

    #[test]
    fn display_mentions_each_kind() {
        let mut m = Metrics::new();
        m.inc("c");
        m.observe("h", 1.0);
        m.gauge("g", SimTime::ZERO, 1.0);
        let s = m.to_string();
        assert!(s.contains("counter c = 1"));
        assert!(s.contains("hist h"));
        assert!(s.contains("gauge g"));
    }
}
