//! Metrics registry: counters, gauge time series, and histograms.

use crate::time::SimTime;
use std::collections::BTreeMap;
use std::fmt;

/// A value-distribution accumulator with summary statistics.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    values: Vec<f64>,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        self.values.push(v);
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`) by nearest-rank, or `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("metrics must not be NaN"));
        let rank = ((q.clamp(0.0, 1.0)) * (sorted.len() - 1) as f64).round() as usize;
        Some(sorted[rank])
    }

    /// Smallest observation.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }

    /// Largest observation.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }

    /// All raw observations, in arrival order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Point-in-time summary statistics, or `None` if empty.
    pub fn summary(&self) -> Option<HistogramSummary> {
        if self.values.is_empty() {
            return None;
        }
        Some(HistogramSummary {
            count: self.count(),
            sum: self.values.iter().sum(),
            mean: self.mean().expect("non-empty"),
            min: self.min().expect("non-empty"),
            p50: self.quantile(0.5).expect("non-empty"),
            p90: self.quantile(0.9).expect("non-empty"),
            p99: self.quantile(0.99).expect("non-empty"),
            max: self.max().expect("non-empty"),
        })
    }
}

/// Summary statistics of one histogram, captured by [`Metrics::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: usize,
    /// Sum of all observations.
    pub sum: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest observation.
    pub min: f64,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 90th percentile (nearest-rank).
    pub p90: f64,
    /// 99th percentile (nearest-rank).
    pub p99: f64,
    /// Largest observation.
    pub max: f64,
}

/// An immutable point-in-time capture of a [`Metrics`] registry, exportable
/// as JSON or Prometheus text exposition.
///
/// Gauges are captured at their latest sample; histograms as
/// [`HistogramSummary`]. Map iteration order (and therefore export output)
/// is the registries' name order, so exports are deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Latest gauge sample by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name (empty histograms are omitted).
    pub histograms: BTreeMap<String, HistogramSummary>,
}

/// Splits a metric name into its base and an optional embedded Prometheus
/// label block: `"txn.committed{protocol=\"polyvalue\"}"` →
/// `("txn.committed", Some("protocol=\"polyvalue\""))`.
fn split_labels(name: &str) -> (&str, Option<&str>) {
    match (name.find('{'), name.ends_with('}')) {
        (Some(i), true) => (&name[..i], Some(&name[i + 1..name.len() - 1])),
        _ => (name, None),
    }
}

/// Maps a metric base name to a valid Prometheus identifier: dots and any
/// other non-`[a-zA-Z0-9_:]` characters become underscores.
fn prom_ident(base: &str) -> String {
    base.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Formats an f64 as a JSON-safe number (non-finite becomes `null`).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

impl MetricsSnapshot {
    /// Serializes the snapshot as a stable, human-readable JSON document.
    pub fn to_json(&self) -> String {
        use fmt::Write;
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (k, v) in &self.counters {
            write!(out, "{}\n    {:?}: {v}", if first { "" } else { "," }, k).unwrap();
            first = false;
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });
        out.push_str("  \"gauges\": {");
        first = true;
        for (k, v) in &self.gauges {
            write!(
                out,
                "{}\n    {:?}: {}",
                if first { "" } else { "," },
                k,
                json_num(*v)
            )
            .unwrap();
            first = false;
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });
        out.push_str("  \"histograms\": {");
        first = true;
        for (k, h) in &self.histograms {
            write!(
                out,
                "{}\n    {:?}: {{\"count\": {}, \"sum\": {}, \"mean\": {}, \"min\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}",
                if first { "" } else { "," },
                k,
                h.count,
                json_num(h.sum),
                json_num(h.mean),
                json_num(h.min),
                json_num(h.p50),
                json_num(h.p90),
                json_num(h.p99),
                json_num(h.max),
            )
            .unwrap();
            first = false;
        }
        out.push_str(if first { "}\n}" } else { "\n  }\n}" });
        out.push('\n');
        out
    }

    /// Serializes the snapshot in the Prometheus text exposition format.
    ///
    /// Metric names gain a `pv_` prefix and have dots mapped to underscores;
    /// a label block embedded in the name (see [`Metrics::with_label`])
    /// passes through: `txn.committed{protocol="polyvalue"}` becomes
    /// `pv_txn_committed{protocol="polyvalue"}`. Histograms export as
    /// Prometheus summaries (quantiles + `_sum` + `_count`).
    pub fn to_prometheus(&self) -> String {
        use fmt::Write;
        use std::collections::BTreeSet;
        let mut out = String::new();
        let mut typed: BTreeSet<String> = BTreeSet::new();
        let mut type_line = |out: &mut String, ident: &str, kind: &str| {
            if typed.insert(ident.to_owned()) {
                writeln!(out, "# TYPE {ident} {kind}").unwrap();
            }
        };
        for (name, v) in &self.counters {
            let (base, labels) = split_labels(name);
            let ident = format!("pv_{}", prom_ident(base));
            type_line(&mut out, &ident, "counter");
            match labels {
                Some(l) => writeln!(out, "{ident}{{{l}}} {v}").unwrap(),
                None => writeln!(out, "{ident} {v}").unwrap(),
            }
        }
        for (name, v) in &self.gauges {
            let (base, labels) = split_labels(name);
            let ident = format!("pv_{}", prom_ident(base));
            type_line(&mut out, &ident, "gauge");
            match labels {
                Some(l) => writeln!(out, "{ident}{{{l}}} {v}").unwrap(),
                None => writeln!(out, "{ident} {v}").unwrap(),
            }
        }
        for (name, h) in &self.histograms {
            let (base, labels) = split_labels(name);
            let ident = format!("pv_{}", prom_ident(base));
            type_line(&mut out, &ident, "summary");
            let with = |extra: &str| match labels {
                Some(l) => format!("{{{l},{extra}}}"),
                None => format!("{{{extra}}}"),
            };
            let plain = match labels {
                Some(l) => format!("{{{l}}}"),
                None => String::new(),
            };
            writeln!(out, "{ident}{} {}", with("quantile=\"0.5\""), h.p50).unwrap();
            writeln!(out, "{ident}{} {}", with("quantile=\"0.9\""), h.p90).unwrap();
            writeln!(out, "{ident}{} {}", with("quantile=\"0.99\""), h.p99).unwrap();
            writeln!(out, "{ident}_sum{plain} {}", h.sum).unwrap();
            writeln!(out, "{ident}_count{plain} {}", h.count).unwrap();
        }
        out
    }
}

/// A named registry of counters, gauges, and histograms for one run.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, Vec<(SimTime, f64)>>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds `by` to the counter `name` (creating it at zero).
    pub fn inc_by(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += by;
    }

    /// Adds one to the counter `name`.
    pub fn inc(&mut self, name: &str) {
        self.inc_by(name, 1);
    }

    /// The current value of a counter (zero if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Appends a gauge sample at time `t`.
    pub fn gauge(&mut self, name: &str, t: SimTime, v: f64) {
        self.gauges.entry(name.to_owned()).or_default().push((t, v));
    }

    /// The sample series of a gauge (empty if never sampled).
    pub fn gauge_series(&self, name: &str) -> &[(SimTime, f64)] {
        self.gauges.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The latest value of a gauge, if any.
    pub fn gauge_last(&self, name: &str) -> Option<f64> {
        self.gauge_series(name).last().map(|&(_, v)| v)
    }

    /// Time-weighted mean of a gauge over `[from, to]`, treating each sample
    /// as holding until the next. `None` when there is no sample at or
    /// before `from`... the series must start at or before `from` to be
    /// meaningful; earlier samples are clipped.
    pub fn gauge_time_mean(&self, name: &str, from: SimTime, to: SimTime) -> Option<f64> {
        let series = self.gauge_series(name);
        if series.is_empty() || to <= from {
            return None;
        }
        let mut acc = 0.0;
        let mut last_t = from;
        let mut last_v: Option<f64> = None;
        for &(t, v) in series {
            if t <= from {
                last_v = Some(v);
                continue;
            }
            if t >= to {
                break;
            }
            if let Some(lv) = last_v {
                acc += lv * t.since(last_t).as_secs_f64();
            }
            last_t = t;
            last_v = Some(v);
        }
        let lv = last_v?;
        acc += lv * to.since(last_t).as_secs_f64();
        Some(acc / to.since(from).as_secs_f64())
    }

    /// Records an observation into histogram `name`.
    pub fn observe(&mut self, name: &str, v: f64) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .observe(v);
    }

    /// The histogram `name`, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates over all counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates over all histograms in name order (used by exporters and by
    /// the `pv-net` wire format, which ships raw observations so site-local
    /// registries merge losslessly at the load generator).
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, h)| (k.as_str(), h))
    }

    /// Composes a metric name carrying a Prometheus-style label, e.g.
    /// `Metrics::with_label("txn.committed", "protocol", "polyvalue")` →
    /// `txn.committed{protocol="polyvalue"}`. The exporters understand the
    /// embedded block; every other accessor treats it as an opaque name.
    pub fn with_label(name: &str, key: &str, value: &str) -> String {
        format!("{name}{{{key}={value:?}}}")
    }

    /// Captures a point-in-time [`MetricsSnapshot`] (latest gauge values,
    /// histogram summaries) for export as JSON or Prometheus text.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            gauges: self
                .gauges
                .iter()
                .filter_map(|(k, s)| s.last().map(|&(_, v)| (k.clone(), v)))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter_map(|(k, h)| h.summary().map(|s| (k.clone(), s)))
                .collect(),
        }
    }

    /// Merges another registry into this one (counters add, gauge series and
    /// histograms concatenate).
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, series) in &other.gauges {
            self.gauges
                .entry(k.clone())
                .or_default()
                .extend(series.iter().copied());
        }
        for (k, h) in &other.histograms {
            let dst = self.histograms.entry(k.clone()).or_default();
            for &v in h.values() {
                dst.observe(v);
            }
        }
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.counters {
            writeln!(f, "counter {k} = {v}")?;
        }
        for (k, h) in &self.histograms {
            writeln!(
                f,
                "hist {k}: n={} mean={:.3} p50={:.3} p99={:.3}",
                h.count(),
                h.mean().unwrap_or(f64::NAN),
                h.quantile(0.5).unwrap_or(f64::NAN),
                h.quantile(0.99).unwrap_or(f64::NAN),
            )?;
        }
        for (k, series) in &self.gauges {
            writeln!(f, "gauge {k}: {} samples", series.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        assert_eq!(m.counter("x"), 0);
        m.inc("x");
        m.inc_by("x", 4);
        assert_eq!(m.counter("x"), 5);
        assert_eq!(m.counters().collect::<Vec<_>>(), vec![("x", 5)]);
    }

    #[test]
    fn histogram_summary() {
        let mut h = Histogram::default();
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean(), Some(3.0));
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(0.5), Some(3.0));
        assert_eq!(h.quantile(1.0), Some(5.0));
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(5.0));
    }

    #[test]
    fn empty_histogram_returns_none() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn gauges_record_series() {
        let mut m = Metrics::new();
        m.gauge("p", SimTime::from_secs(1), 10.0);
        m.gauge("p", SimTime::from_secs(2), 20.0);
        assert_eq!(m.gauge_series("p").len(), 2);
        assert_eq!(m.gauge_last("p"), Some(20.0));
        assert_eq!(m.gauge_last("missing"), None);
    }

    #[test]
    fn gauge_time_mean_weights_by_duration() {
        let mut m = Metrics::new();
        // 10 for 1s, then 20 for 3s → mean (10·1 + 20·3)/4 = 17.5.
        m.gauge("p", SimTime::ZERO, 10.0);
        m.gauge("p", SimTime::from_secs(1), 20.0);
        let mean = m
            .gauge_time_mean("p", SimTime::ZERO, SimTime::from_secs(4))
            .unwrap();
        assert!((mean - 17.5).abs() < 1e-9, "{mean}");
    }

    #[test]
    fn gauge_time_mean_clips_before_window() {
        let mut m = Metrics::new();
        m.gauge("p", SimTime::ZERO, 5.0);
        m.gauge("p", SimTime::from_secs(10), 15.0);
        // Window entirely after the last sample.
        let mean = m
            .gauge_time_mean("p", SimTime::from_secs(20), SimTime::from_secs(30))
            .unwrap();
        assert!((mean - 15.0).abs() < 1e-9);
        // Degenerate/empty cases.
        assert!(m
            .gauge_time_mean("p", SimTime::from_secs(3), SimTime::from_secs(3))
            .is_none());
        assert!(m
            .gauge_time_mean("missing", SimTime::ZERO, SimTime::from_secs(1))
            .is_none());
    }

    #[test]
    fn observe_routes_to_histogram() {
        let mut m = Metrics::new();
        m.observe("lat", 1.5);
        m.observe("lat", 2.5);
        assert_eq!(m.histogram("lat").unwrap().count(), 2);
        assert!(m.histogram("missing").is_none());
    }

    #[test]
    fn merge_combines_registries() {
        let mut a = Metrics::new();
        a.inc("c");
        a.observe("h", 1.0);
        a.gauge("g", SimTime::ZERO, 1.0);
        let mut b = Metrics::new();
        b.inc_by("c", 2);
        b.observe("h", 2.0);
        b.gauge("g", SimTime::from_secs(1), 2.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        assert_eq!(a.gauge_series("g").len(), 2);
    }

    #[test]
    fn snapshot_captures_each_kind() {
        let mut m = Metrics::new();
        m.inc_by("c", 3);
        m.gauge("g", SimTime::ZERO, 1.0);
        m.gauge("g", SimTime::from_secs(1), 2.5);
        m.observe("h", 1.0);
        m.observe("h", 3.0);
        let s = m.snapshot();
        assert_eq!(s.counters.get("c"), Some(&3));
        assert_eq!(s.gauges.get("g"), Some(&2.5));
        let h = s.histograms.get("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 4.0);
        assert_eq!(h.mean, 2.0);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 3.0);
    }

    #[test]
    fn json_export_is_valid_and_stable() {
        let mut m = Metrics::new();
        m.inc("b.count");
        m.inc("a.count");
        m.gauge("g", SimTime::ZERO, 1.5);
        m.observe("h", 2.0);
        let j = m.snapshot().to_json();
        // Name-ordered, quoted keys, balanced braces.
        assert!(j.find("\"a.count\"").unwrap() < j.find("\"b.count\"").unwrap());
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(j.contains("\"g\": 1.5"));
        assert!(j.contains("\"count\": 1"));
        // Empty registry still produces balanced output.
        let empty = Metrics::new().snapshot().to_json();
        assert_eq!(empty.matches('{').count(), empty.matches('}').count());
    }

    #[test]
    fn prometheus_export_sanitizes_and_types() {
        let mut m = Metrics::new();
        m.inc_by("net.delivered", 7);
        m.gauge("poly.depth", SimTime::ZERO, 2.0);
        m.observe("phase.submit_decided", 0.25);
        let p = m.snapshot().to_prometheus();
        assert!(p.contains("# TYPE pv_net_delivered counter"));
        assert!(p.contains("pv_net_delivered 7"));
        assert!(p.contains("# TYPE pv_poly_depth gauge"));
        assert!(p.contains("# TYPE pv_phase_submit_decided summary"));
        assert!(p.contains("pv_phase_submit_decided{quantile=\"0.99\"} 0.25"));
        assert!(p.contains("pv_phase_submit_decided_count 1"));
    }

    #[test]
    fn labels_pass_through_exports() {
        let name = Metrics::with_label("txn.committed", "protocol", "polyvalue");
        assert_eq!(name, "txn.committed{protocol=\"polyvalue\"}");
        let mut m = Metrics::new();
        m.inc_by(&name, 2);
        let p = m.snapshot().to_prometheus();
        assert!(p.contains("# TYPE pv_txn_committed counter"));
        assert!(p.contains("pv_txn_committed{protocol=\"polyvalue\"} 2"));
        let mut lm = Metrics::new();
        lm.observe(&Metrics::with_label("lat", "protocol", "relaxed"), 1.0);
        let lp = lm.snapshot().to_prometheus();
        assert!(lp.contains("pv_lat{protocol=\"relaxed\",quantile=\"0.5\"} 1"));
        assert!(lp.contains("pv_lat_count{protocol=\"relaxed\"} 1"));
    }

    #[test]
    fn display_mentions_each_kind() {
        let mut m = Metrics::new();
        m.inc("c");
        m.observe("h", 1.0);
        m.gauge("g", SimTime::ZERO, 1.0);
        let s = m.to_string();
        assert!(s.contains("counter c = 1"));
        assert!(s.contains("hist h"));
        assert!(s.contains("gauge g"));
    }
}
