//! Structured protocol trace: typed events, recorded through [`crate::Ctx`].
//!
//! Every protocol transition the engine makes — submit, prepare, wait-phase
//! timeout, polyvalue install, outcome propagation, collapse — is emitted as
//! a [`TraceEvent`] and recorded into the run's [`Trace`]. Because events
//! flow through the same `Ctx` used for messages and timers, the simulated
//! `World` and the thread-backed live runtime share one instrumentation code
//! path, and a simulation run's trace is a pure function of `(configuration,
//! seed)` — two same-seed runs serialize to byte-identical streams.
//!
//! Identifiers are primitive (`u64` transaction ids, `u32` sites) so the
//! substrate stays independent of the engine's id newtypes.

use crate::actor::NodeId;
use crate::time::SimTime;
use std::fmt;

/// One protocol transition, in the vocabulary of the paper's §2–§3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A client handed a transaction to a coordinator site.
    TxnSubmitted {
        /// Client-local request id.
        req_id: u64,
        /// The coordinator site chosen for the request.
        coordinator: u32,
    },
    /// A client re-submitted a request after a retryable abort.
    TxnRetried {
        /// Client-local request id.
        req_id: u64,
        /// Retry ordinal (1 = first retry).
        attempt: u32,
    },
    /// The evaluator split a transaction into a polytransaction with
    /// multiple alternatives (§3.2).
    AltSplit {
        /// Global transaction id.
        txn: u64,
        /// Number of alternative transactions produced.
        alternatives: u32,
    },
    /// A participant staged the transaction's writes and voted ready.
    Prepared {
        /// Global transaction id.
        txn: u64,
        /// The participant site.
        site: u32,
    },
    /// The coordinator decided the transaction's outcome and propagated it
    /// to the write sites.
    Decided {
        /// Global transaction id.
        txn: u64,
        /// `true` = complete, `false` = abort.
        completed: bool,
    },
    /// A participant's wait phase timed out with the outcome unknown (§2.4).
    WaitTimedOut {
        /// Global transaction id.
        txn: u64,
        /// The participant site.
        site: u32,
    },
    /// A participant installed in-doubt polyvalues and released its locks
    /// (the paper's mechanism, §3.1).
    PolyvalueInstalled {
        /// The in-doubt transaction.
        txn: u64,
        /// The installing site.
        site: u32,
        /// How many items became polyvalued.
        items: u32,
    },
    /// A site learned the outcome of a transaction it tracked as in-doubt.
    OutcomeLearned {
        /// The formerly in-doubt transaction.
        txn: u64,
        /// The learning site.
        site: u32,
        /// The learned outcome.
        completed: bool,
    },
    /// A site forwarded a learned outcome along its §3.3 sent-to table.
    OutcomeForwarded {
        /// The transaction whose outcome is being forwarded.
        txn: u64,
        /// The site that had shipped dependent polyvalues.
        site: u32,
        /// The destination site.
        to: u32,
    },
    /// Every local polyvalue depending on a transaction reduced to a simple
    /// value; the uncertainty window closed at this site.
    PolyvalueCollapsed {
        /// The resolved transaction.
        txn: u64,
        /// The site where its polyvalues collapsed.
        site: u32,
        /// Microseconds from install to collapse (the polyvalue lifetime).
        lifetime_us: u64,
    },
    /// A coordination-free read-only transaction served from an MVCC
    /// snapshot: no locks taken, no protocol messages between sites.
    SnapshotRead {
        /// The serving site.
        site: u32,
        /// The pinned snapshot sequence number the read observed.
        snapshot: u64,
        /// Number of entries returned.
        items: u32,
    },
    /// Paxos Commit: a site timed out on a stalled transaction and became a
    /// takeover leader at the given ballot.
    PcTakeover {
        /// The stalled transaction.
        txn: u64,
        /// The site leading the takeover.
        site: u32,
        /// The takeover ballot.
        ballot: u64,
    },
}

impl TraceEvent {
    /// A short stable label naming the event kind (used in summaries).
    pub fn label(&self) -> &'static str {
        match self {
            TraceEvent::TxnSubmitted { .. } => "txn_submitted",
            TraceEvent::TxnRetried { .. } => "txn_retried",
            TraceEvent::AltSplit { .. } => "alt_split",
            TraceEvent::Prepared { .. } => "prepared",
            TraceEvent::Decided { .. } => "decided",
            TraceEvent::WaitTimedOut { .. } => "wait_timed_out",
            TraceEvent::PolyvalueInstalled { .. } => "polyvalue_installed",
            TraceEvent::OutcomeLearned { .. } => "outcome_learned",
            TraceEvent::OutcomeForwarded { .. } => "outcome_forwarded",
            TraceEvent::PolyvalueCollapsed { .. } => "polyvalue_collapsed",
            TraceEvent::SnapshotRead { .. } => "snapshot_read",
            TraceEvent::PcTakeover { .. } => "pc_takeover",
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TraceEvent::TxnSubmitted { req_id, coordinator } => {
                write!(f, "txn_submitted req={req_id} coord=s{coordinator}")
            }
            TraceEvent::TxnRetried { req_id, attempt } => {
                write!(f, "txn_retried req={req_id} attempt={attempt}")
            }
            TraceEvent::AltSplit { txn, alternatives } => {
                write!(f, "alt_split txn={txn} alts={alternatives}")
            }
            TraceEvent::Prepared { txn, site } => {
                write!(f, "prepared txn={txn} site=s{site}")
            }
            TraceEvent::Decided { txn, completed } => {
                write!(f, "decided txn={txn} completed={completed}")
            }
            TraceEvent::WaitTimedOut { txn, site } => {
                write!(f, "wait_timed_out txn={txn} site=s{site}")
            }
            TraceEvent::PolyvalueInstalled { txn, site, items } => {
                write!(f, "polyvalue_installed txn={txn} site=s{site} items={items}")
            }
            TraceEvent::OutcomeLearned { txn, site, completed } => {
                write!(f, "outcome_learned txn={txn} site=s{site} completed={completed}")
            }
            TraceEvent::OutcomeForwarded { txn, site, to } => {
                write!(f, "outcome_forwarded txn={txn} site=s{site} to=s{to}")
            }
            TraceEvent::PolyvalueCollapsed { txn, site, lifetime_us } => {
                write!(
                    f,
                    "polyvalue_collapsed txn={txn} site=s{site} lifetime_us={lifetime_us}"
                )
            }
            TraceEvent::SnapshotRead { site, snapshot, items } => {
                write!(f, "snapshot_read site=s{site} snapshot={snapshot} items={items}")
            }
            TraceEvent::PcTakeover { txn, site, ballot } => {
                write!(f, "pc_takeover txn={txn} site=s{site} ballot={ballot}")
            }
        }
    }
}

/// One recorded event with its position in the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual (or wall, in the live runtime) time of the event.
    pub at: SimTime,
    /// The node whose callback emitted the event.
    pub node: NodeId,
    /// Global sequence number, dense from zero, in emission order.
    pub seq: u64,
    /// The event itself.
    pub event: TraceEvent,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Stable line format: sequence, microsecond timestamp, node, event.
        write!(f, "{:06} {:>10} {} {}", self.seq, self.at.0, self.node, self.event)
    }
}

/// A consumer of trace records, attached with [`Trace::with_sink`].
///
/// Sinks observe records as they are emitted (streaming); the `Trace` also
/// buffers records for post-run inspection unless buffering is disabled.
/// Any `FnMut(&TraceRecord)` is a sink.
pub trait TraceSink {
    /// Called once per emitted record, in emission order.
    fn record(&mut self, record: &TraceRecord);
}

impl<F: FnMut(&TraceRecord)> TraceSink for F {
    fn record(&mut self, record: &TraceRecord) {
        self(record)
    }
}

/// The per-run event recorder.
///
/// Defaults to disabled (zero cost beyond constructing the event); enable
/// buffering with [`Trace::collecting`] or attach a streaming sink with
/// [`Trace::with_sink`].
#[derive(Default)]
pub struct Trace {
    enabled: bool,
    seq: u64,
    records: Vec<TraceRecord>,
    sink: Option<Box<dyn TraceSink + Send>>,
}

impl fmt::Debug for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Trace")
            .field("enabled", &self.enabled)
            .field("seq", &self.seq)
            .field("records", &self.records.len())
            .field("sink", &self.sink.is_some())
            .finish()
    }
}

impl Trace {
    /// A disabled trace: events are dropped at the door.
    pub fn disabled() -> Self {
        Trace::default()
    }

    /// A trace that buffers every record in memory.
    pub fn collecting() -> Self {
        Trace {
            enabled: true,
            ..Trace::default()
        }
    }

    /// A collecting trace that additionally streams records to `sink`.
    pub fn with_sink(sink: impl TraceSink + Send + 'static) -> Self {
        Trace {
            enabled: true,
            sink: Some(Box::new(sink)),
            ..Trace::default()
        }
    }

    /// Whether records are currently being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event (no-op while disabled).
    pub fn record(&mut self, at: SimTime, node: NodeId, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        let record = TraceRecord {
            at,
            node,
            seq: self.seq,
            event,
        };
        self.seq += 1;
        if let Some(sink) = &mut self.sink {
            sink.record(&record);
        }
        self.records.push(record);
    }

    /// All buffered records, in emission order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Counts buffered records matching `pred`.
    pub fn count(&self, pred: impl Fn(&TraceEvent) -> bool) -> usize {
        self.records.iter().filter(|r| pred(&r.event)).count()
    }

    /// Serializes the buffered records to the stable line format — one
    /// record per line, `{seq} {time_us} {node} {event}`. Two same-seed
    /// simulation runs produce byte-identical output.
    pub fn to_text(&self) -> String {
        use fmt::Write;
        let mut out = String::new();
        for r in &self.records {
            writeln!(out, "{r}").expect("writing to String cannot fail");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev() -> TraceEvent {
        TraceEvent::PolyvalueInstalled {
            txn: 7,
            site: 2,
            items: 3,
        }
    }

    #[test]
    fn disabled_trace_drops_events() {
        let mut t = Trace::disabled();
        t.record(SimTime::ZERO, NodeId(0), ev());
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn collecting_trace_buffers_in_order() {
        let mut t = Trace::collecting();
        t.record(SimTime::from_millis(1), NodeId(0), ev());
        t.record(SimTime::from_millis(2), NodeId(1), ev());
        assert_eq!(t.len(), 2);
        assert_eq!(t.records()[0].seq, 0);
        assert_eq!(t.records()[1].seq, 1);
        assert_eq!(t.records()[1].node, NodeId(1));
    }

    #[test]
    fn sink_sees_every_record() {
        use std::sync::{Arc, Mutex};
        let seen: Arc<Mutex<Vec<u64>>> = Arc::default();
        let seen2 = Arc::clone(&seen);
        let mut t = Trace::with_sink(move |r: &TraceRecord| {
            seen2.lock().expect("not poisoned").push(r.seq);
        });
        t.record(SimTime::ZERO, NodeId(0), ev());
        t.record(SimTime::ZERO, NodeId(0), ev());
        assert_eq!(*seen.lock().expect("not poisoned"), vec![0, 1]);
    }

    #[test]
    fn text_format_is_stable() {
        let mut t = Trace::collecting();
        t.record(SimTime::from_millis(5), NodeId(3), ev());
        assert_eq!(
            t.to_text(),
            "000000       5000 n3 polyvalue_installed txn=7 site=s2 items=3\n"
        );
    }

    #[test]
    fn count_filters_by_event() {
        let mut t = Trace::collecting();
        t.record(SimTime::ZERO, NodeId(0), ev());
        t.record(
            SimTime::ZERO,
            NodeId(0),
            TraceEvent::Decided {
                txn: 1,
                completed: true,
            },
        );
        assert_eq!(
            t.count(|e| matches!(e, TraceEvent::PolyvalueInstalled { .. })),
            1
        );
    }

    #[test]
    fn labels_are_snake_case() {
        assert_eq!(ev().label(), "polyvalue_installed");
        assert_eq!(
            TraceEvent::Decided {
                txn: 0,
                completed: false
            }
            .label(),
            "decided"
        );
    }
}
