//! Actors and their execution context.

use crate::metrics::Metrics;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::{Trace, TraceEvent};
use std::fmt;

/// Identifies a node (an actor instance) in the simulated system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The pseudo-node representing the outside environment; messages
    /// injected with [`crate::World::send_from_env`] carry this sender.
    pub const ENV: NodeId = NodeId(u32::MAX);
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == NodeId::ENV {
            write!(f, "env")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

/// Handle for cancelling a pending timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(pub(crate) u64);

/// A deterministic event-driven process.
///
/// Actors never block: each callback runs to completion, emitting effects
/// (messages, timers) through the [`Ctx`]. All state an actor holds in `self`
/// is *volatile* unless the actor itself models stable storage — when the
/// failure injector crashes a node, [`Actor::on_crash`] must discard whatever
/// would not survive a real crash.
pub trait Actor {
    /// The message type exchanged between actors of this system.
    type Msg: Clone + fmt::Debug;

    /// Called once when the world starts (or when the node is added to an
    /// already-running world).
    fn on_start(&mut self, _ctx: &mut Ctx<Self::Msg>) {}

    /// Called when a message is delivered to this node.
    fn on_message(&mut self, ctx: &mut Ctx<Self::Msg>, from: NodeId, msg: Self::Msg);

    /// Called when a timer set by this node fires. `key` is the value passed
    /// to [`Ctx::set_timer`]. Timers do not survive crashes.
    fn on_timer(&mut self, _ctx: &mut Ctx<Self::Msg>, _key: u64) {}

    /// Called when the node crashes; must drop volatile state. No effects
    /// can be emitted from a crash.
    fn on_crash(&mut self) {}

    /// Called when the node recovers; may rebuild volatile state from
    /// whatever the actor models as stable storage and restart timers.
    fn on_recover(&mut self, _ctx: &mut Ctx<Self::Msg>) {}
}

/// Effects emitted by an actor callback.
///
/// The simulation world applies these internally; external drivers (such as
/// the engine's thread-backed live runtime) obtain them via
/// [`Ctx::drain_effects`] and map them onto real channels and timers.
#[derive(Debug)]
pub enum Effect<M> {
    /// Send `msg` to node `to`.
    Send {
        /// Destination node.
        to: NodeId,
        /// The message.
        msg: M,
    },
    /// Arm a timer identified by `id` carrying `key`, due at `at`.
    SetTimer {
        /// Unique timer identity (for cancellation).
        id: u64,
        /// The key passed back to [`Actor::on_timer`].
        key: u64,
        /// Virtual due time.
        at: SimTime,
    },
    /// Cancel the timer with this identity.
    CancelTimer(u64),
}

/// The execution context handed to actor callbacks.
pub struct Ctx<'a, M> {
    pub(crate) now: SimTime,
    pub(crate) me: NodeId,
    pub(crate) effects: Vec<Effect<M>>,
    pub(crate) rng: &'a mut SimRng,
    pub(crate) metrics: &'a mut Metrics,
    pub(crate) trace: &'a mut Trace,
    pub(crate) next_timer_id: &'a mut u64,
}

impl<'a, M> Ctx<'a, M> {
    /// Builds a context for an *external* driver (a runtime other than
    /// [`crate::World`], e.g. a thread-per-node deployment). The driver is
    /// responsible for applying the effects collected here; see
    /// [`Ctx::drain_effects`].
    pub fn external(
        now: SimTime,
        me: NodeId,
        rng: &'a mut SimRng,
        metrics: &'a mut Metrics,
        trace: &'a mut Trace,
        next_timer_id: &'a mut u64,
    ) -> Self {
        Ctx {
            now,
            me,
            effects: Vec::new(),
            rng,
            metrics,
            trace,
            next_timer_id,
        }
    }

    /// Takes the effects accumulated so far (external drivers only; the
    /// world drains internally).
    pub fn drain_effects(&mut self) -> Vec<Effect<M>> {
        std::mem::take(&mut self.effects)
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's identity.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Sends `msg` to `to`. Delivery latency and loss follow the world's
    /// network configuration; messages to a crashed or partitioned node are
    /// silently dropped, exactly like a real datagram.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.effects.push(Effect::Send { to, msg });
    }

    /// Arms a timer that fires after `delay` with the given `key`. Returns a
    /// handle usable with [`Ctx::cancel_timer`]. Timers are volatile: they
    /// are discarded if the node crashes.
    pub fn set_timer(&mut self, delay: SimDuration, key: u64) -> TimerId {
        let id = *self.next_timer_id;
        *self.next_timer_id += 1;
        self.effects.push(Effect::SetTimer {
            id,
            key,
            at: self.now + delay,
        });
        TimerId(id)
    }

    /// Cancels a pending timer; cancelling an already-fired timer is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.effects.push(Effect::CancelTimer(id.0));
    }

    /// This node's deterministic random stream.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// The world's metrics registry.
    pub fn metrics(&mut self) -> &mut Metrics {
        self.metrics
    }

    /// Records a protocol trace event at the current time, attributed to
    /// this node. No-op unless tracing was enabled for the run.
    pub fn trace(&mut self, event: TraceEvent) {
        self.trace.record(self.now, self.me, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(NodeId::ENV.to_string(), "env");
    }

    #[test]
    fn ctx_accumulates_effects() {
        let mut rng = SimRng::new(1);
        let mut metrics = Metrics::new();
        let mut trace = Trace::collecting();
        let mut next = 0u64;
        let mut ctx: Ctx<'_, u32> = Ctx {
            now: SimTime::from_secs(1),
            me: NodeId(0),
            effects: Vec::new(),
            rng: &mut rng,
            metrics: &mut metrics,
            trace: &mut trace,
            next_timer_id: &mut next,
        };
        assert_eq!(ctx.now(), SimTime::from_secs(1));
        assert_eq!(ctx.me(), NodeId(0));
        ctx.send(NodeId(1), 42);
        let t = ctx.set_timer(SimDuration::from_secs(1), 7);
        ctx.cancel_timer(t);
        ctx.rng().unit();
        ctx.metrics().inc("x");
        ctx.trace(TraceEvent::Decided {
            txn: 1,
            completed: true,
        });
        assert_eq!(ctx.effects.len(), 3);
        assert_eq!(next, 1);
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.records()[0].at, SimTime::from_secs(1));
    }
}
