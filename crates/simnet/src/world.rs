//! The simulation world: event loop, scheduling, failures.

use crate::actor::{Actor, Ctx, Effect, NodeId};
use crate::metrics::Metrics;
use crate::net::{LinkState, NetConfig};
use crate::rng::SimRng;
use crate::time::SimTime;
use crate::trace::Trace;
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

/// What happens when a scheduled event comes due.
#[derive(Debug)]
enum EventKind<M> {
    Deliver {
        from: NodeId,
        to: NodeId,
        msg: M,
    },
    /// Several messages from one sender callback that share a delivery time
    /// and destination, delivered back-to-back in send order. Produced by
    /// the adjacent-send batching in [`World::run_callback`]; behaviourally
    /// identical to the equivalent run of single `Deliver` events (which
    /// would occupy consecutive `(at, seq)` slots anyway), but costs one
    /// heap operation instead of one per message.
    DeliverBatch {
        from: NodeId,
        to: NodeId,
        msgs: Vec<M>,
    },
    Timer {
        node: NodeId,
        id: u64,
        key: u64,
        gen: u32,
    },
    Crash(NodeId),
    Recover(NodeId),
    LinkDown(NodeId, NodeId),
    LinkUp(NodeId, NodeId),
}

/// A scheduled event. Ordering is `(time, seq)`: ties broken by insertion
/// order, which keeps runs fully deterministic.
#[derive(Debug)]
struct Scheduled<M> {
    at: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The in-progress run of staged sends from one callback: none, a single
/// message, or a coalesced batch sharing a `(delivery time, destination)`.
enum Pending<M> {
    None,
    One(SimTime, NodeId, M),
    Many(SimTime, NodeId, Vec<M>),
}

/// A deterministic discrete-event simulation of a message-passing system.
///
/// The world owns a set of [`Actor`] nodes, a virtual clock, a network model
/// (latency, loss, partitions), and a failure schedule (crashes and
/// recoveries). Runs are exactly reproducible from the seed.
///
/// # Examples
///
/// ```
/// use pv_simnet::{Actor, Ctx, NetConfig, NodeId, SimTime, World};
///
/// struct Echo;
/// impl Actor for Echo {
///     type Msg = u32;
///     fn on_message(&mut self, ctx: &mut Ctx<u32>, from: NodeId, msg: u32) {
///         if from != NodeId::ENV {
///             return;
///         }
///         ctx.metrics().inc("echoed");
///         ctx.send(ctx.me(), msg + 1);
///     }
/// }
///
/// let mut world = World::new(42, NetConfig::instant());
/// let n = world.add_node(Echo);
/// world.send_from_env(n, 7);
/// world.run_until(SimTime::from_secs(1));
/// assert_eq!(world.metrics().counter("echoed"), 1);
/// ```
pub struct World<A: Actor> {
    now: SimTime,
    seq: u64,
    next_timer_id: u64,
    events: BinaryHeap<Reverse<Scheduled<A::Msg>>>,
    actors: Vec<A>,
    up: Vec<bool>,
    crash_gen: Vec<u32>,
    cancelled_timers: BTreeSet<u64>,
    links: LinkState,
    net: NetConfig,
    rng: SimRng,
    metrics: Metrics,
    trace: Trace,
    started: bool,
}

impl<A: Actor> World<A> {
    /// Creates an empty world with the given seed and network model.
    pub fn new(seed: u64, net: NetConfig) -> Self {
        World {
            now: SimTime::ZERO,
            seq: 0,
            next_timer_id: 0,
            events: BinaryHeap::new(),
            actors: Vec::new(),
            up: Vec::new(),
            crash_gen: Vec::new(),
            cancelled_timers: BTreeSet::new(),
            links: LinkState::default(),
            net,
            rng: SimRng::new(seed),
            metrics: Metrics::new(),
            trace: Trace::disabled(),
            started: false,
        }
    }

    /// Adds a node; returns its identity. If the world has already started,
    /// the actor's `on_start` runs immediately.
    pub fn add_node(&mut self, actor: A) -> NodeId {
        let id = NodeId(self.actors.len() as u32);
        self.actors.push(actor);
        self.up.push(true);
        self.crash_gen.push(0);
        if self.started {
            self.run_callback(id, |actor, ctx| actor.on_start(ctx));
        }
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.actors.len()
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Whether `node` is currently up.
    pub fn is_up(&self, node: NodeId) -> bool {
        self.up[node.0 as usize]
    }

    /// Immutable access to a node's actor (for assertions and scraping).
    pub fn actor(&self, node: NodeId) -> &A {
        &self.actors[node.0 as usize]
    }

    /// Mutable access to a node's actor. Intended for test setup; effects
    /// cannot be emitted through this path.
    pub fn actor_mut(&mut self, node: NodeId) -> &mut A {
        &mut self.actors[node.0 as usize]
    }

    /// Runs a caller-supplied callback on `node`'s actor with a full effect
    /// context and returns its result. Sends, timers, traces, and metrics
    /// the callback emits apply exactly as they would from a delivery, so
    /// drivers can expose actor operations (e.g. direct snapshot reads)
    /// without inventing a message round-trip. Consumes the same per-node
    /// RNG fork a delivery would: two same-seed runs making the same calls
    /// at the same points remain byte-identical.
    pub fn call<R>(&mut self, node: NodeId, f: impl FnOnce(&mut A, &mut Ctx<A::Msg>) -> R) -> R {
        let mut out = None;
        self.run_callback(node, |actor, ctx| out = Some(f(actor, ctx)));
        out.expect("callback ran")
    }

    /// The run's metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable access to the metrics registry.
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// The run's protocol trace (disabled unless [`World::set_trace`] armed
    /// one before the run).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable access to the trace (e.g. for recording driver-level events).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// Installs a trace recorder; pass [`Trace::collecting`] to capture the
    /// run's protocol transitions.
    pub fn set_trace(&mut self, trace: Trace) {
        self.trace = trace;
    }

    /// Removes and returns the trace, leaving a disabled one behind.
    pub fn take_trace(&mut self) -> Trace {
        std::mem::take(&mut self.trace)
    }

    /// The master random stream (e.g. for workload generation).
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Injects a message from the environment, delivered after local delay.
    pub fn send_from_env(&mut self, to: NodeId, msg: A::Msg) {
        let at = self.now + self.net.local_delay;
        self.push(
            at,
            EventKind::Deliver {
                from: NodeId::ENV,
                to,
                msg,
            },
        );
    }

    /// Schedules a crash of `node` at time `at`.
    pub fn schedule_crash(&mut self, at: SimTime, node: NodeId) {
        self.push(at, EventKind::Crash(node));
    }

    /// Schedules a recovery of `node` at time `at`.
    pub fn schedule_recover(&mut self, at: SimTime, node: NodeId) {
        self.push(at, EventKind::Recover(node));
    }

    /// Schedules a bidirectional link cut between `a` and `b` at time `at`.
    pub fn schedule_partition(&mut self, at: SimTime, a: NodeId, b: NodeId) {
        self.push(at, EventKind::LinkDown(a, b));
    }

    /// Schedules the link between `a` and `b` to heal at time `at`.
    pub fn schedule_heal(&mut self, at: SimTime, a: NodeId, b: NodeId) {
        self.push(at, EventKind::LinkUp(a, b));
    }

    /// Calls `on_start` on every node added so far. Idempotent.
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.actors.len() {
            self.run_callback(NodeId(i as u32), |actor, ctx| actor.on_start(ctx));
        }
    }

    /// Processes a single event; returns `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        self.start();
        let Some(Reverse(ev)) = self.events.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "time went backwards");
        self.now = ev.at;
        match ev.kind {
            EventKind::Deliver { from, to, msg } => {
                let to_idx = to.0 as usize;
                if to_idx >= self.actors.len() || !self.up[to_idx] {
                    self.metrics.inc("net.dropped_dest_down");
                } else if from != NodeId::ENV && from != to && !self.links.connected(from, to) {
                    // Partition began while the message was in flight.
                    self.metrics.inc("net.dropped_partition");
                } else {
                    self.metrics.inc("net.delivered");
                    self.run_callback(to, |actor, ctx| actor.on_message(ctx, from, msg));
                }
            }
            EventKind::DeliverBatch { from, to, msgs } => {
                // The destination's liveness and the link state cannot change
                // between the batch's messages (both change only via events,
                // and this batch occupies a single event slot), so the checks
                // hoist out of the loop; metrics count per message, exactly
                // as the unbatched path would.
                let to_idx = to.0 as usize;
                if to_idx >= self.actors.len() || !self.up[to_idx] {
                    self.metrics.inc_by("net.dropped_dest_down", msgs.len() as u64);
                } else if from != NodeId::ENV && from != to && !self.links.connected(from, to) {
                    self.metrics.inc_by("net.dropped_partition", msgs.len() as u64);
                } else {
                    for msg in msgs {
                        self.metrics.inc("net.delivered");
                        self.run_callback(to, |actor, ctx| actor.on_message(ctx, from, msg));
                    }
                }
            }
            EventKind::Timer { node, id, key, gen } => {
                if self.cancelled_timers.remove(&id) {
                    return true;
                }
                let idx = node.0 as usize;
                if !self.up[idx] || self.crash_gen[idx] != gen {
                    return true; // timer died with the crash
                }
                self.run_callback(node, |actor, ctx| actor.on_timer(ctx, key));
            }
            EventKind::Crash(node) => {
                let idx = node.0 as usize;
                if self.up[idx] {
                    self.up[idx] = false;
                    self.crash_gen[idx] += 1;
                    self.metrics.inc("node.crashes");
                    self.actors[idx].on_crash();
                }
            }
            EventKind::Recover(node) => {
                let idx = node.0 as usize;
                if !self.up[idx] {
                    self.up[idx] = true;
                    self.metrics.inc("node.recoveries");
                    self.run_callback(node, |actor, ctx| actor.on_recover(ctx));
                }
            }
            EventKind::LinkDown(a, b) => {
                self.links.cut(a, b);
                self.metrics.inc("net.partitions");
            }
            EventKind::LinkUp(a, b) => {
                self.links.heal(a, b);
                self.metrics.inc("net.heals");
            }
        }
        true
    }

    /// Runs until the queue is exhausted or virtual time would pass `t`;
    /// afterwards `now() == max(now, t)` (events at exactly `t` are
    /// processed; a target already in the past is a no-op — the clock never
    /// rewinds).
    pub fn run_until(&mut self, t: SimTime) {
        self.start();
        while let Some(Reverse(head)) = self.events.peek() {
            if head.at > t {
                break;
            }
            self.step();
        }
        self.now = self.now.max(t);
    }

    /// Runs until no events remain (the system is quiescent) or `max_events`
    /// have been processed. Returns the number of events processed.
    pub fn run_to_quiescence(&mut self, max_events: u64) -> u64 {
        self.start();
        let mut n = 0;
        while n < max_events && self.step() {
            n += 1;
        }
        n
    }

    /// Number of pending events (for tests).
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    fn push(&mut self, at: SimTime, kind: EventKind<A::Msg>) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Reverse(Scheduled { at, seq, kind }));
    }

    /// Runs one actor callback and applies its effects.
    fn run_callback(&mut self, node: NodeId, f: impl FnOnce(&mut A, &mut Ctx<A::Msg>)) {
        let idx = node.0 as usize;
        let mut node_rng = self.rng.fork(u64::from(node.0) + 1);
        let mut ctx = Ctx {
            now: self.now,
            me: node,
            effects: Vec::new(),
            rng: &mut node_rng,
            metrics: &mut self.metrics,
            trace: &mut self.trace,
            next_timer_id: &mut self.next_timer_id,
        };
        f(&mut self.actors[idx], &mut ctx);
        let effects = std::mem::take(&mut ctx.effects);
        // Refresh the master stream so successive callbacks differ.
        self.rng = self.rng.fork(0x5eed);
        // Outgoing sends are staged so that *adjacent* sends sharing a
        // delivery time and destination coalesce into one `DeliverBatch`
        // event. The RNG is consumed per message in effect order (identical
        // to the unbatched scheme), and a pending run is flushed before any
        // event-pushing effect so the `(at, seq)` interleaving of deliveries
        // against timers is preserved exactly.
        let mut pending = Pending::None;
        for effect in effects {
            match effect {
                Effect::Send { to, msg } => {
                    if node != to && !self.links.connected(node, to) {
                        self.metrics.inc("net.dropped_partition");
                        continue;
                    }
                    if node != to && self.net.drop_prob > 0.0 && self.rng.chance(self.net.drop_prob)
                    {
                        self.metrics.inc("net.dropped_loss");
                        continue;
                    }
                    // Duplication and reordering only ever draw from the RNG
                    // when enabled, so zero-configured runs stay bit-for-bit
                    // identical to runs predating these knobs.
                    let copies = if node != to
                        && self.net.dup_prob > 0.0
                        && self.rng.chance(self.net.dup_prob)
                    {
                        self.metrics.inc("net.duplicated");
                        2
                    } else {
                        1
                    };
                    let mut msg = Some(msg);
                    for k in 0..copies {
                        let mut delay = self.net.sample_delay(node, to, &mut self.rng);
                        if node != to && self.net.reorder_window > crate::time::SimDuration::ZERO {
                            delay = delay
                                + crate::time::SimDuration::from_micros(
                                    self.rng
                                        .below(self.net.reorder_window.as_micros().max(1)),
                                );
                        }
                        // The final copy moves the message; only duplicated
                        // copies pay for a clone.
                        let m = if k + 1 == copies {
                            msg.take().expect("one move per send")
                        } else {
                            msg.clone().expect("copies pending")
                        };
                        self.stage(node, &mut pending, self.now + delay, to, m);
                    }
                }
                Effect::SetTimer { id, key, at } => {
                    self.flush(node, &mut pending);
                    self.push(
                        at,
                        EventKind::Timer {
                            node,
                            id,
                            key,
                            gen: self.crash_gen[idx],
                        },
                    );
                }
                Effect::CancelTimer(id) => {
                    self.cancelled_timers.insert(id);
                }
            }
        }
        self.flush(node, &mut pending);
    }

    /// Stages one outgoing message, coalescing it with the pending run when
    /// the delivery slot matches, and flushing the run otherwise.
    fn stage(
        &mut self,
        node: NodeId,
        pending: &mut Pending<A::Msg>,
        at: SimTime,
        to: NodeId,
        msg: A::Msg,
    ) {
        match std::mem::replace(pending, Pending::None) {
            Pending::None => *pending = Pending::One(at, to, msg),
            Pending::One(at0, to0, m0) => {
                if at0 == at && to0 == to {
                    *pending = Pending::Many(at, to, vec![m0, msg]);
                } else {
                    self.push(at0, EventKind::Deliver { from: node, to: to0, msg: m0 });
                    *pending = Pending::One(at, to, msg);
                }
            }
            Pending::Many(at0, to0, mut ms) => {
                if at0 == at && to0 == to {
                    ms.push(msg);
                    *pending = Pending::Many(at0, to0, ms);
                } else {
                    self.push(at0, EventKind::DeliverBatch { from: node, to: to0, msgs: ms });
                    *pending = Pending::One(at, to, msg);
                }
            }
        }
    }

    /// Emits the pending delivery run, if any, as a single event.
    fn flush(&mut self, node: NodeId, pending: &mut Pending<A::Msg>) {
        match std::mem::replace(pending, Pending::None) {
            Pending::None => {}
            Pending::One(at, to, msg) => {
                self.push(at, EventKind::Deliver { from: node, to, msg });
            }
            Pending::Many(at, to, msgs) => {
                self.push(at, EventKind::DeliverBatch { from: node, to, msgs });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// Test actor: counts messages, echoes pings, exercises timers.
    #[derive(Default)]
    struct Node {
        received: Vec<(NodeId, u32)>,
        timers_fired: Vec<u64>,
        crashed: u32,
        recovered: u32,
        // "Stable" state surviving crashes, vs volatile scratch.
        stable: u32,
        volatile: u32,
    }

    #[derive(Clone, Debug)]
    enum Msg {
        Ping(u32),
        PingTo(NodeId, u32),
        ArmTimer(u64),
        ArmAndCancel(u64),
        Bump,
    }

    impl Actor for Node {
        type Msg = Msg;

        fn on_message(&mut self, ctx: &mut Ctx<Msg>, from: NodeId, msg: Msg) {
            match msg {
                Msg::Ping(v) => self.received.push((from, v)),
                Msg::PingTo(to, v) => ctx.send(to, Msg::Ping(v)),
                Msg::ArmTimer(key) => {
                    ctx.set_timer(SimDuration::from_millis(100), key);
                }
                Msg::ArmAndCancel(key) => {
                    let t = ctx.set_timer(SimDuration::from_millis(100), key);
                    ctx.cancel_timer(t);
                }
                Msg::Bump => {
                    self.stable += 1;
                    self.volatile += 1;
                }
            }
        }

        fn on_timer(&mut self, _ctx: &mut Ctx<Msg>, key: u64) {
            self.timers_fired.push(key);
        }

        fn on_crash(&mut self) {
            self.crashed += 1;
            self.volatile = 0;
        }

        fn on_recover(&mut self, _ctx: &mut Ctx<Msg>) {
            self.recovered += 1;
        }
    }

    fn world() -> World<Node> {
        World::new(7, NetConfig::instant())
    }

    #[test]
    fn messages_are_delivered_in_order() {
        let mut w = world();
        let a = w.add_node(Node::default());
        w.send_from_env(a, Msg::Ping(1));
        w.send_from_env(a, Msg::Ping(2));
        w.run_until(SimTime::from_secs(1));
        let got: Vec<u32> = w.actor(a).received.iter().map(|&(_, v)| v).collect();
        assert_eq!(got, vec![1, 2]);
        assert_eq!(w.now(), SimTime::from_secs(1));
    }

    #[test]
    fn node_to_node_messaging() {
        let mut w = world();
        let a = w.add_node(Node::default());
        let b = w.add_node(Node::default());
        w.send_from_env(a, Msg::PingTo(b, 9));
        w.run_until(SimTime::from_secs(1));
        assert_eq!(w.actor(b).received, vec![(a, 9)]);
    }

    #[test]
    fn timers_fire_and_cancel() {
        let mut w = world();
        let a = w.add_node(Node::default());
        w.send_from_env(a, Msg::ArmTimer(5));
        w.send_from_env(a, Msg::ArmAndCancel(6));
        w.run_until(SimTime::from_secs(1));
        assert_eq!(w.actor(a).timers_fired, vec![5]);
    }

    #[test]
    fn crash_drops_messages_and_timers() {
        let mut w = world();
        let a = w.add_node(Node::default());
        w.send_from_env(a, Msg::ArmTimer(1));
        w.schedule_crash(SimTime::from_millis(50), a);
        // Message arriving while down is dropped.
        w.run_until(SimTime::from_millis(60));
        w.send_from_env(a, Msg::Ping(1));
        w.run_until(SimTime::from_secs(1));
        assert!(!w.is_up(a));
        assert_eq!(w.actor(a).crashed, 1);
        assert!(
            w.actor(a).timers_fired.is_empty(),
            "timer must die with crash"
        );
        assert!(w.actor(a).received.is_empty());
        assert_eq!(w.metrics().counter("net.dropped_dest_down"), 1);
    }

    #[test]
    fn recovery_restores_delivery() {
        let mut w = world();
        let a = w.add_node(Node::default());
        w.schedule_crash(SimTime::from_millis(10), a);
        w.schedule_recover(SimTime::from_millis(20), a);
        w.run_until(SimTime::from_millis(30));
        assert!(w.is_up(a));
        assert_eq!(w.actor(a).recovered, 1);
        w.send_from_env(a, Msg::Ping(3));
        w.run_until(SimTime::from_secs(1));
        assert_eq!(w.actor(a).received.len(), 1);
    }

    #[test]
    fn volatile_state_is_lost_stable_survives() {
        let mut w = world();
        let a = w.add_node(Node::default());
        w.send_from_env(a, Msg::Bump);
        w.run_until(SimTime::from_millis(5));
        w.schedule_crash(SimTime::from_millis(10), a);
        w.schedule_recover(SimTime::from_millis(20), a);
        w.run_until(SimTime::from_secs(1));
        assert_eq!(w.actor(a).stable, 1);
        assert_eq!(w.actor(a).volatile, 0);
    }

    #[test]
    fn partitions_block_and_heal() {
        let mut w = world();
        let a = w.add_node(Node::default());
        let b = w.add_node(Node::default());
        w.schedule_partition(SimTime::ZERO, a, b);
        w.run_until(SimTime::from_millis(1));
        w.send_from_env(a, Msg::PingTo(b, 1));
        w.run_until(SimTime::from_millis(10));
        assert!(w.actor(b).received.is_empty());
        assert_eq!(w.metrics().counter("net.dropped_partition"), 1);
        w.schedule_heal(w.now(), a, b);
        w.run_until(SimTime::from_millis(20));
        w.send_from_env(a, Msg::PingTo(b, 2));
        w.run_until(SimTime::from_millis(30));
        assert_eq!(w.actor(b).received, vec![(a, 2)]);
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        let run = |seed: u64| {
            let mut w: World<Node> = World::new(
                seed,
                NetConfig {
                    min_delay: SimDuration::from_millis(1),
                    jitter: SimDuration::from_millis(10),
                    local_delay: SimDuration::from_micros(1),
                    drop_prob: 0.2,
                    dup_prob: 0.1,
                    reorder_window: SimDuration::from_millis(5),
                },
            );
            let a = w.add_node(Node::default());
            let b = w.add_node(Node::default());
            for i in 0..50 {
                w.send_from_env(a, Msg::PingTo(b, i));
            }
            w.run_until(SimTime::from_secs(1));
            w.actor(b).received.clone()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12), "different seeds should perturb the run");
    }

    #[test]
    fn run_until_never_rewinds_the_clock() {
        let mut w = world();
        let a = w.add_node(Node::default());
        w.run_until(SimTime::from_secs(2));
        assert_eq!(w.now(), SimTime::from_secs(2));
        // A target in the past is a no-op, not a time machine.
        w.run_until(SimTime::from_secs(1));
        assert_eq!(w.now(), SimTime::from_secs(2));
        // Events injected afterwards happen at or after the current time.
        w.send_from_env(a, Msg::Ping(1));
        w.run_until(SimTime::from_secs(3));
        assert_eq!(w.actor(a).received.len(), 1);
    }

    #[test]
    fn run_to_quiescence_counts_events() {
        let mut w = world();
        let a = w.add_node(Node::default());
        w.send_from_env(a, Msg::Ping(1));
        let n = w.run_to_quiescence(1000);
        assert_eq!(n, 1);
        assert_eq!(w.pending_events(), 0);
        assert!(!w.step());
    }

    #[test]
    fn double_crash_and_double_recover_are_idempotent() {
        let mut w = world();
        let a = w.add_node(Node::default());
        w.schedule_crash(SimTime::from_millis(1), a);
        w.schedule_crash(SimTime::from_millis(2), a);
        w.schedule_recover(SimTime::from_millis(3), a);
        w.schedule_recover(SimTime::from_millis(4), a);
        w.run_until(SimTime::from_millis(10));
        assert_eq!(w.actor(a).crashed, 1);
        assert_eq!(w.actor(a).recovered, 1);
    }

    #[test]
    fn duplicating_network_delivers_some_messages_twice() {
        let mut w: World<Node> = World::new(
            5,
            NetConfig {
                dup_prob: 0.5,
                ..NetConfig::instant()
            },
        );
        let a = w.add_node(Node::default());
        let b = w.add_node(Node::default());
        for i in 0..100 {
            w.send_from_env(a, Msg::PingTo(b, i));
        }
        w.run_until(SimTime::from_secs(1));
        let got = w.actor(b).received.len();
        assert!(got > 100, "expected duplicates, got {got}");
        assert_eq!(w.metrics().counter("net.duplicated"), got as u64 - 100);
        // Self-sends are never duplicated.
        let mut w: World<Node> = World::new(
            5,
            NetConfig {
                dup_prob: 1.0,
                ..NetConfig::instant()
            },
        );
        let a = w.add_node(Node::default());
        w.send_from_env(a, Msg::PingTo(a, 1));
        w.run_until(SimTime::from_secs(1));
        assert_eq!(w.actor(a).received.len(), 1);
    }

    #[test]
    fn reorder_window_shuffles_delivery_order() {
        let mut w: World<Node> = World::new(
            9,
            NetConfig {
                reorder_window: SimDuration::from_millis(50),
                ..NetConfig::instant()
            },
        );
        let a = w.add_node(Node::default());
        let b = w.add_node(Node::default());
        for i in 0..50 {
            w.send_from_env(a, Msg::PingTo(b, i));
        }
        w.run_until(SimTime::from_secs(1));
        let got: Vec<u32> = w.actor(b).received.iter().map(|&(_, v)| v).collect();
        assert_eq!(got.len(), 50, "reordering must not lose messages");
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_ne!(got, sorted, "expected at least one out-of-order delivery");
    }

    #[test]
    fn dup_and_reorder_are_deterministic_under_seed() {
        let run = |seed: u64| {
            let mut w: World<Node> = World::new(
                seed,
                NetConfig {
                    dup_prob: 0.3,
                    reorder_window: SimDuration::from_millis(20),
                    ..NetConfig::instant()
                },
            );
            let a = w.add_node(Node::default());
            let b = w.add_node(Node::default());
            for i in 0..50 {
                w.send_from_env(a, Msg::PingTo(b, i));
            }
            w.run_until(SimTime::from_secs(1));
            w.actor(b).received.clone()
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn lossy_network_drops_some_messages() {
        let mut w: World<Node> = World::new(
            5,
            NetConfig {
                drop_prob: 0.5,
                ..NetConfig::instant()
            },
        );
        let a = w.add_node(Node::default());
        let b = w.add_node(Node::default());
        for i in 0..100 {
            w.send_from_env(a, Msg::PingTo(b, i));
        }
        w.run_until(SimTime::from_secs(1));
        let got = w.actor(b).received.len();
        assert!(got > 10 && got < 90, "got {got}");
        assert!(w.metrics().counter("net.dropped_loss") > 0);
    }
}
