//! `pv-analysis` — ahead-of-time static analysis for the polyvalue system.
//!
//! The runtime (`pv-engine`) discovers problems *dynamically*: an ill-typed
//! expression aborts its transaction at evaluation time, a malformed
//! condition set panics polyvalue assembly, a protocol bug corrupts state
//! silently. This crate moves those discoveries ahead of execution with
//! three passes that share one diagnostic vocabulary ([`Diagnostic`],
//! stable `PV0xx` [`Code`]s, documented in DESIGN.md §8):
//!
//! 1. **Expression checking** ([`expr_check`]) — usage-based type inference
//!    over [`pv_core::expr::Expr`], read/write-set inference, and statically
//!    evaluable hazards (division by a constant zero, constant guards,
//!    guarded writes unrelated to their guard).
//! 2. **Condition-algebra verification** ([`cond_check`]) — symbolic proof
//!    that a planned condition set is complete and pairwise disjoint (the
//!    §3.1 polyvalue invariant), detection of unreachable alternatives, and
//!    the worst-case alternative-explosion bound of §3.2.
//! 3. **Trace conformance** ([`trace_check`]) — replay of a recorded
//!    [`pv_simnet::TraceEvent`] stream against the protocol's legal
//!    transition structure (prepare before decide, timeout before install,
//!    outcome before collapse).
//!
//! The passes are pure functions over `pv-core`/`pv-simnet` data — this
//! crate deliberately depends on nothing else, so the engine, the CLI
//! (`pv-lint`), and CI can all call it without dependency cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cond_check;
pub mod diag;
pub mod expr_check;
pub mod trace_check;

pub use cond_check::{
    check_condition_set, check_explosion, check_polyvalue, explosion_bound, ItemUncertainty,
};
pub use diag::{Code, Diagnostic, Report, Severity, Span};
pub use expr_check::{check_expr, check_spec, const_eval, SpecAnalysis, Ty};
pub use trace_check::{check_trace, check_trace_text, parse_trace_text, TraceParseError};

use pv_core::spec::TransactionSpec;

/// Runs every spec-level pass on one transaction: expression checking plus
/// the structural checks that need no knowledge of current item state.
///
/// This is the analysis the engine's opt-in submit gate runs (with
/// `EngineConfig::static_checks`); callers that also know the uncertainty
/// of the items involved can add [`check_explosion`] on top.
pub fn analyze_spec(spec: &TransactionSpec) -> Report {
    check_spec(spec).report
}

/// Convenience for gates: `Err(rendered report)` when `spec` has any
/// `Error`-severity finding, `Ok(())` otherwise (warnings pass).
pub fn gate_spec(spec: &TransactionSpec) -> Result<(), String> {
    let report = analyze_spec(spec);
    if report.has_errors() {
        Err(report.render().trim_end().to_owned())
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_core::expr::{Expr, ItemId};

    #[test]
    fn gate_accepts_well_typed_spec() {
        let spec = TransactionSpec::new()
            .guard(Expr::read(ItemId(0)).ge(Expr::int(10)))
            .update(ItemId(0), Expr::read(ItemId(0)).sub(Expr::int(10)));
        assert!(gate_spec(&spec).is_ok());
    }

    #[test]
    fn gate_rejects_ill_typed_spec() {
        let spec = TransactionSpec::new().update(ItemId(0), Expr::int(1).add(Expr::bool(true)));
        let err = gate_spec(&spec).unwrap_err();
        assert!(err.contains("PV001"), "unexpected: {err}");
    }

    #[test]
    fn gate_passes_warnings_through() {
        // A constant guard is a warning, not an error: the gate lets it by.
        let spec = TransactionSpec::new()
            .guard(Expr::bool(true))
            .update(ItemId(0), Expr::int(1));
        assert!(gate_spec(&spec).is_ok());
    }
}
