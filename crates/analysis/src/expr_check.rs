//! Pass 1: static checking of transaction expressions.
//!
//! Infers a type (int/bool/str) for every expression in a
//! [`TransactionSpec`] *before* it runs, unifying the types of database
//! items across the guard, updates, and outputs. Hazards that the runtime
//! evaluator would only hit mid-transaction — incompatible operands,
//! non-boolean guards, division by a constant zero — surface here as
//! `PV00x` diagnostics instead of runtime aborts.
//!
//! Items are dynamically typed at runtime, so the checker works by
//! *usage-based* inference: the first typed use of an item fixes its type,
//! and every later use must agree. Inference runs two passes over the spec
//! so constraints discovered late (e.g. an output that fixes an item's
//! type) still apply to earlier expressions.

use crate::diag::{Code, Report, Span};
use pv_core::expr::{BinOp, Expr, ItemId};
use pv_core::spec::TransactionSpec;
use pv_core::value::Value;
use std::collections::BTreeMap;
use std::fmt;

/// The static types of the expression language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Ty {
    /// 64-bit signed integer.
    Int,
    /// Boolean.
    Bool,
    /// UTF-8 string.
    Str,
}

impl Ty {
    /// The type of a constant value.
    pub fn of(v: &Value) -> Ty {
        match v {
            Value::Int(_) => Ty::Int,
            Value::Bool(_) => Ty::Bool,
            Value::Str(_) => Ty::Str,
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Int => write!(f, "int"),
            Ty::Bool => write!(f, "bool"),
            Ty::Str => write!(f, "str"),
        }
    }
}

/// Everything pass 1 learns about a transaction spec.
#[derive(Debug, Clone)]
pub struct SpecAnalysis {
    /// The findings.
    pub report: Report,
    /// Items the spec could read (static over-approximation).
    pub read_set: std::collections::BTreeSet<ItemId>,
    /// Items the spec writes.
    pub write_set: std::collections::BTreeSet<ItemId>,
    /// The inferred type of every item whose type the spec constrains.
    pub item_types: BTreeMap<ItemId, Ty>,
}

/// Evaluates an expression that depends on no database item, if possible.
///
/// Constant folding is *pure*: reads stop it, and any value-level fault
/// (overflow, type mismatch) simply yields `None` — faults are reported by
/// the type checker, not the folder. Short-circuit operators fold when
/// their left operand decides the result.
pub fn const_eval(expr: &Expr) -> Option<Value> {
    match expr {
        Expr::Const(v) => Some(v.clone()),
        Expr::Read(_) => None,
        Expr::Bin(BinOp::And, a, b) => match const_eval(a)?.as_bool()? {
            false => Some(Value::Bool(false)),
            true => const_eval(b).filter(|v| v.as_bool().is_some()),
        },
        Expr::Bin(BinOp::Or, a, b) => match const_eval(a)?.as_bool()? {
            true => Some(Value::Bool(true)),
            false => const_eval(b).filter(|v| v.as_bool().is_some()),
        },
        Expr::Bin(op, a, b) => {
            let (a, b) = (const_eval(a)?, const_eval(b)?);
            match op {
                BinOp::Add => a.add(&b).ok(),
                BinOp::Sub => a.sub(&b).ok(),
                BinOp::Mul => a.mul(&b).ok(),
                BinOp::Div => a.div(&b).ok(),
                BinOp::Min => a.min_v(&b).ok(),
                BinOp::Max => a.max_v(&b).ok(),
                BinOp::And | BinOp::Or => unreachable!("handled above"),
            }
        }
        Expr::Cmp(op, a, b) => const_eval(a)?.compare(*op, &const_eval(b)?).ok(),
        Expr::Neg(a) => const_eval(a)?.neg().ok(),
        Expr::Not(a) => const_eval(a)?.not().ok(),
        Expr::If(c, t, e) => {
            if const_eval(c)?.as_bool()? {
                const_eval(t)
            } else {
                const_eval(e)
            }
        }
    }
}

/// An expectation imposed on a subexpression by its context: the type it
/// must have and the code to report if it does not.
#[derive(Clone, Copy)]
struct Expect {
    ty: Ty,
    code: Code,
}

impl Expect {
    fn op(ty: Ty) -> Option<Expect> {
        Some(Expect {
            ty,
            code: Code::TypeMismatch,
        })
    }

    fn cond() -> Option<Expect> {
        Some(Expect {
            ty: Ty::Bool,
            code: Code::NotBool,
        })
    }
}

/// The inference engine: a type environment for items plus a report.
/// Diagnostics are suppressed on the first (constraint-gathering) pass and
/// emitted on the second.
struct Infer {
    items: BTreeMap<ItemId, Ty>,
    report: Report,
    emit: bool,
}

impl Infer {
    fn new() -> Self {
        Infer {
            items: BTreeMap::new(),
            report: Report::new(),
            emit: false,
        }
    }

    fn diag(&mut self, code: Code, span: &Span, message: String) {
        if self.emit {
            self.report.push(code, span.clone(), message);
        }
    }

    /// Checks an inferred type against the context's expectation, reporting
    /// a mismatch and returning the type the context will assume.
    fn meet(&mut self, found: Option<Ty>, expect: Option<Expect>, span: &Span, what: &str) -> Option<Ty> {
        match (found, expect) {
            (Some(f), Some(e)) if f != e.ty => {
                self.diag(e.code, span, format!("{what} has type {f}, expected {}", e.ty));
                Some(e.ty)
            }
            (Some(f), _) => Some(f),
            (None, Some(e)) => Some(e.ty),
            (None, None) => None,
        }
    }

    /// Infers the type of `expr` under `expect`, recording item types as
    /// they are discovered.
    fn infer(&mut self, expr: &Expr, expect: Option<Expect>, span: &Span) -> Option<Ty> {
        match expr {
            Expr::Const(v) => {
                let t = Ty::of(v);
                self.meet(Some(t), expect, span, &format!("constant {v}"))
            }
            Expr::Read(item) => {
                if let Some(&known) = self.items.get(item) {
                    self.meet(Some(known), expect, span, &format!("{item}"))
                } else if let Some(e) = expect {
                    self.items.insert(*item, e.ty);
                    Some(e.ty)
                } else {
                    None
                }
            }
            Expr::Bin(op @ (BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div), a, b) => {
                self.infer(a, Expect::op(Ty::Int), span);
                self.infer(b, Expect::op(Ty::Int), span);
                if *op == BinOp::Div && const_eval(b) == Some(Value::Int(0)) {
                    self.diag(
                        Code::DivByConstZero,
                        span,
                        format!("divisor of ({expr}) is constantly zero"),
                    );
                }
                self.meet(Some(Ty::Int), expect, span, "arithmetic result")
            }
            Expr::Bin(BinOp::And | BinOp::Or, a, b) => {
                self.infer(a, Expect::op(Ty::Bool), span);
                self.infer(b, Expect::op(Ty::Bool), span);
                self.meet(Some(Ty::Bool), expect, span, "boolean result")
            }
            Expr::Bin(BinOp::Min | BinOp::Max, a, b) => {
                let ta = self.infer(a, expect, span);
                let expect_b = ta.map(|t| Expect {
                    ty: t,
                    code: Code::TypeMismatch,
                });
                let tb = self.infer(b, expect_b.or(expect), span);
                // Symmetric constraint: a type learned only from the right
                // operand also binds the left one.
                if ta.is_none() {
                    if let Some(t) = tb {
                        self.infer(a, Expect::op(t), span);
                    }
                }
                ta.or(tb)
            }
            Expr::Cmp(_, a, b) => {
                let ta = self.infer(a, None, span);
                let expect_b = ta.and_then(Expect::op);
                let tb = self.infer(b, expect_b, span);
                // The constraint is symmetric: if only the right side was
                // typed, re-run the left side against it.
                if ta.is_none() {
                    if let Some(t) = tb {
                        self.infer(a, Expect::op(t), span);
                    }
                }
                self.meet(Some(Ty::Bool), expect, span, "comparison result")
            }
            Expr::Neg(a) => {
                self.infer(a, Expect::op(Ty::Int), span);
                self.meet(Some(Ty::Int), expect, span, "negation result")
            }
            Expr::Not(a) => {
                self.infer(a, Expect::op(Ty::Bool), span);
                self.meet(Some(Ty::Bool), expect, span, "logical-not result")
            }
            Expr::If(c, t, e) => {
                self.infer(c, Expect::cond(), span);
                let tt = self.infer(t, expect, span);
                let expect_e = tt.and_then(Expect::op).or(expect);
                let te = self.infer(e, expect_e, span);
                if tt.is_none() {
                    if let Some(ty) = te {
                        self.infer(t, Expect::op(ty), span);
                    }
                }
                tt.or(te)
            }
        }
    }

    fn run_spec(&mut self, spec: &TransactionSpec) {
        if let Some(g) = &spec.guard {
            self.infer(g, Expect::cond(), &Span::Guard);
        }
        for (item, expr) in &spec.updates {
            let span = Span::Update(*item);
            let expect = self.items.get(item).map(|&t| Expect {
                ty: t,
                code: Code::TypeMismatch,
            });
            let t = self.infer(expr, expect, &span);
            if let Some(t) = t {
                self.items.entry(*item).or_insert(t);
            }
        }
        for (name, expr) in &spec.outputs {
            let span = Span::Output(name.clone());
            self.infer(expr, None, &span);
        }
    }
}

/// Checks a whole transaction spec: type inference plus spec-level hazards.
pub fn check_spec(spec: &TransactionSpec) -> SpecAnalysis {
    let mut infer = Infer::new();
    // Pass 1 gathers item-type constraints silently; pass 2 reports against
    // the full environment.
    infer.run_spec(spec);
    infer.emit = true;
    infer.run_spec(spec);

    let mut report = std::mem::take(&mut infer.report);

    if let Some(g) = &spec.guard {
        if let Some(v) = const_eval(g) {
            if let Some(b) = v.as_bool() {
                report.push(
                    Code::ConstantGuard,
                    Span::Guard,
                    if b {
                        "guard is constantly true (vacuous)".to_owned()
                    } else {
                        "guard is constantly false (the transaction can never be granted)"
                            .to_owned()
                    },
                );
            }
        }
        // A guarded update that blindly overwrites an item — reading neither
        // the item itself (increment-style, self-constrained) nor anything
        // the guard checks — is unconstrained by the guard: the guard cannot
        // be protecting the value being destroyed.
        let guard_reads = g.read_set();
        if !guard_reads.is_empty() {
            for (item, expr) in &spec.updates {
                let update_reads = expr.read_set();
                let constrained = guard_reads.contains(item)
                    || update_reads.contains(item)
                    || update_reads.iter().any(|i| guard_reads.contains(i));
                if !constrained {
                    report.push(
                        Code::UnguardedWrite,
                        Span::Update(*item),
                        format!("update of {item} reads neither {item} nor anything the guard checks"),
                    );
                }
            }
        }
    }
    if spec.updates.is_empty() && spec.outputs.is_empty() {
        report.push(
            Code::EmptySpec,
            Span::Whole,
            "transaction has no updates and no outputs".to_owned(),
        );
    }

    SpecAnalysis {
        report,
        read_set: spec.read_set(),
        write_set: spec.write_set(),
        item_types: infer.items,
    }
}

/// Checks one standalone expression, returning its inferred type (if the
/// expression constrains it) alongside the findings.
pub fn check_expr(expr: &Expr) -> (Report, Option<Ty>) {
    let mut infer = Infer::new();
    let span = Span::Whole;
    infer.infer(expr, None, &span);
    infer.emit = true;
    let ty = infer.infer(expr, None, &span);
    (infer.report, ty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_core::expr::Expr;

    fn read(i: u64) -> Expr {
        Expr::read(ItemId(i))
    }

    #[test]
    fn well_typed_transfer_is_clean() {
        let spec = TransactionSpec::new()
            .guard(read(0).ge(Expr::int(10)))
            .update(ItemId(0), read(0).sub(Expr::int(10)))
            .update(ItemId(1), read(1).add(Expr::int(10)))
            .output("granted", read(0).ge(Expr::int(10)));
        let out = check_spec(&spec);
        assert!(out.report.is_clean(), "unexpected: {}", out.report);
        assert_eq!(out.item_types[&ItemId(0)], Ty::Int);
        assert_eq!(out.item_types[&ItemId(1)], Ty::Int);
        assert_eq!(out.write_set.len(), 2);
        assert_eq!(out.read_set.len(), 2);
    }

    #[test]
    fn ill_typed_operands_flagged() {
        // 1 + true: PV001.
        let spec = TransactionSpec::new().output("v", Expr::int(1).add(Expr::bool(true)));
        let out = check_spec(&spec);
        assert!(out.report.has_code(Code::TypeMismatch));
        assert!(out.report.has_errors());
    }

    #[test]
    fn non_bool_guard_flagged() {
        let spec = TransactionSpec::new()
            .guard(read(0).add(Expr::int(1)))
            .update(ItemId(0), Expr::int(0));
        let out = check_spec(&spec);
        assert!(out.report.has_code(Code::NotBool));
    }

    #[test]
    fn if_condition_must_be_bool() {
        let spec =
            TransactionSpec::new().output("v", Expr::ite(Expr::int(1), Expr::int(2), Expr::int(3)));
        let out = check_spec(&spec);
        assert!(out.report.has_code(Code::NotBool));
    }

    #[test]
    fn division_by_constant_zero_flagged() {
        let spec = TransactionSpec::new().output("v", read(0).div(Expr::int(0)));
        let out = check_spec(&spec);
        assert!(out.report.has_code(Code::DivByConstZero));
        // Even when the zero is computed, constant folding sees through it.
        let spec2 =
            TransactionSpec::new().output("v", read(0).div(Expr::int(2).sub(Expr::int(2))));
        let out2 = check_spec(&spec2);
        assert!(out2.report.has_code(Code::DivByConstZero));
        // A non-zero constant divisor is fine.
        let spec3 = TransactionSpec::new().output("v", read(0).div(Expr::int(2)));
        assert!(!check_spec(&spec3).report.has_code(Code::DivByConstZero));
    }

    #[test]
    fn item_types_unify_across_positions() {
        // Item 0 used as int in the guard but as bool in an output: PV001.
        let spec = TransactionSpec::new()
            .guard(read(0).ge(Expr::int(10)))
            .update(ItemId(0), read(0).sub(Expr::int(1)))
            .output("flag", read(0).and(Expr::bool(true)));
        let out = check_spec(&spec);
        assert!(out.report.has_code(Code::TypeMismatch));
    }

    #[test]
    fn late_constraint_reaches_early_use() {
        // The output fixes item 0 to bool; the earlier guard uses it as int.
        // The two-pass inference catches the conflict regardless of order.
        let spec = TransactionSpec::new()
            .guard(read(0).ge(Expr::int(10)))
            .update(ItemId(1), Expr::int(1))
            .output("flag", read(0).not());
        let out = check_spec(&spec);
        assert!(out.report.has_code(Code::TypeMismatch));
    }

    #[test]
    fn constant_guard_warns() {
        let spec = TransactionSpec::new()
            .guard(Expr::bool(true))
            .update(ItemId(0), Expr::int(1));
        let out = check_spec(&spec);
        assert!(out.report.has_code(Code::ConstantGuard));
        assert!(!out.report.has_errors());
        let denied = TransactionSpec::new()
            .guard(Expr::int(1).gt(Expr::int(2)))
            .update(ItemId(0), Expr::int(1));
        assert!(check_spec(&denied).report.has_code(Code::ConstantGuard));
    }

    #[test]
    fn unguarded_write_warns() {
        // Guard checks item 0 but the update blindly overwrites item 5.
        let spec = TransactionSpec::new()
            .guard(read(0).ge(Expr::int(10)))
            .update(ItemId(0), read(0).sub(Expr::int(10)))
            .update(ItemId(5), Expr::int(7));
        let out = check_spec(&spec);
        assert!(out.report.has_code(Code::UnguardedWrite));
        let d = out
            .report
            .diagnostics()
            .iter()
            .find(|d| d.code == Code::UnguardedWrite)
            .unwrap();
        assert_eq!(d.span, Span::Update(ItemId(5)));
    }

    #[test]
    fn empty_spec_is_an_info() {
        let out = check_spec(&TransactionSpec::new());
        assert!(out.report.has_code(Code::EmptySpec));
        assert!(!out.report.has_errors());
    }

    #[test]
    fn min_max_unify_operands() {
        let spec = TransactionSpec::new().output("v", read(0).min(Expr::int(3)).max(read(1)));
        let out = check_spec(&spec);
        assert!(out.report.is_clean(), "unexpected: {}", out.report);
        assert_eq!(out.item_types[&ItemId(0)], Ty::Int);
        assert_eq!(out.item_types[&ItemId(1)], Ty::Int);
        let bad = TransactionSpec::new().output("v", Expr::str("a").min(Expr::int(3)));
        assert!(check_spec(&bad).report.has_code(Code::TypeMismatch));
    }

    #[test]
    fn cmp_constrains_both_sides() {
        // Right-to-left propagation: `read(0)` is only typed by the rhs.
        let spec = TransactionSpec::new().output("v", read(0).eq_v(Expr::str("open")));
        let out = check_spec(&spec);
        assert_eq!(out.item_types[&ItemId(0)], Ty::Str);
        // And a conflicting later use is reported.
        let spec2 = TransactionSpec::new()
            .output("v", read(0).eq_v(Expr::str("open")))
            .output("w", read(0).add(Expr::int(1)));
        assert!(check_spec(&spec2).report.has_code(Code::TypeMismatch));
    }

    #[test]
    fn if_branches_must_agree() {
        let e = Expr::ite(Expr::bool(true), Expr::int(1), Expr::str("x"));
        let (report, _) = check_expr(&e);
        assert!(report.has_code(Code::TypeMismatch));
        let ok = Expr::ite(Expr::bool(true), Expr::int(1), Expr::int(2));
        let (report, ty) = check_expr(&ok);
        assert!(report.is_clean());
        assert_eq!(ty, Some(Ty::Int));
    }

    #[test]
    fn const_eval_folds_pure_expressions() {
        assert_eq!(
            const_eval(&Expr::int(2).add(Expr::int(3)).mul(Expr::int(4))),
            Some(Value::Int(20))
        );
        assert_eq!(
            const_eval(&Expr::bool(false).and(read(0).gt(Expr::int(0)))),
            Some(Value::Bool(false))
        );
        assert_eq!(
            const_eval(&Expr::bool(true).or(read(0).gt(Expr::int(0)))),
            Some(Value::Bool(true))
        );
        assert_eq!(const_eval(&read(0)), None);
        // Faulting folds yield None rather than a panic.
        assert_eq!(const_eval(&Expr::int(1).div(Expr::int(0))), None);
        assert_eq!(
            const_eval(&Expr::ite(
                Expr::int(1).lt(Expr::int(2)),
                Expr::str("y"),
                Expr::str("n")
            )),
            Some(Value::Str("y".into()))
        );
    }

    #[test]
    fn untyped_expression_reports_no_type() {
        // A bare read constrains nothing.
        let (report, ty) = check_expr(&read(0));
        assert!(report.is_clean());
        assert_eq!(ty, None);
    }
}
