//! Pass 3: protocol-trace conformance checking.
//!
//! Replays a recorded [`TraceEvent`] stream (from the observability layer)
//! and reports transitions the protocol can never legally make:
//!
//! * a site voting *prepared* after the coordinator already decided the
//!   transaction **complete** — the decision cannot have gathered that vote
//!   (`PV020`); a late prepare after an *abort* decision is a legal race
//!   (the participant had not yet heard the coordinator gave up on it);
//! * polyvalues installed without the wait-phase timeout that justifies
//!   them (`PV021`);
//! * polyvalues collapsing at a site that never learned the outcome they
//!   depend on (`PV022`);
//! * contradictory outcomes for one transaction across `decided` and
//!   `outcome_learned` events (`PV023`).
//!
//! The `PV021` legality is not hand-coded: the checker replays a shadow
//! [`PartPhase`] per (transaction, site) through the *same*
//! [`pv_protocol::transition`] table the engine's participant runs
//! (Figure 1 of the paper), and an install is legal exactly when that
//! machine took the wait-phase `Timeout` edge whose action is
//! `install polyvalues`. A coordinator decision deliberately does **not**
//! advance the shadow phase — a participant may legally time out after the
//! coordinator decided but before the decision reached it, and the table
//! consult must see the wait phase in that race.
//!
//! Traces are accepted either as in-memory [`TraceRecord`]s or as the
//! stable text format `Trace::to_text` emits, which [`parse_trace_text`]
//! reads back.

use crate::diag::{Code, Report, Span};
use pv_protocol::{transition, PartAction, PartEvent, PartPhase};
use pv_simnet::{NodeId, SimTime, TraceEvent, TraceRecord};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A failure reading the textual trace format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

/// Parses one `key=value` field, stripping an optional site/node prefix.
fn field(fields: &BTreeMap<&str, &str>, key: &str, line: usize) -> Result<u64, TraceParseError> {
    let raw = fields.get(key).ok_or_else(|| TraceParseError {
        line,
        message: format!("missing field {key}"),
    })?;
    let raw = raw.trim_start_matches('s');
    raw.parse().map_err(|_| TraceParseError {
        line,
        message: format!("field {key} is not a number: {raw}"),
    })
}

fn bool_field(
    fields: &BTreeMap<&str, &str>,
    key: &str,
    line: usize,
) -> Result<bool, TraceParseError> {
    match fields.get(key) {
        Some(&"true") => Ok(true),
        Some(&"false") => Ok(false),
        Some(other) => Err(TraceParseError {
            line,
            message: format!("field {key} is not a boolean: {other}"),
        }),
        None => Err(TraceParseError {
            line,
            message: format!("missing field {key}"),
        }),
    }
}

/// Reads back the stable line format emitted by `Trace::to_text`:
/// `{seq:06} {time_us} {node} {label} {key=value}...`. Blank lines and
/// lines starting with `#` are skipped.
pub fn parse_trace_text(text: &str) -> Result<Vec<TraceRecord>, TraceParseError> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let raw = raw.trim();
        if raw.is_empty() || raw.starts_with('#') {
            continue;
        }
        let mut parts = raw.split_whitespace();
        let err = |message: String| TraceParseError { line, message };
        let seq: u64 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| err("missing sequence number".into()))?;
        let at: u64 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| err("missing timestamp".into()))?;
        let node = parts
            .next()
            .and_then(|s| s.strip_prefix('n'))
            .and_then(|s| s.parse::<u32>().ok())
            .ok_or_else(|| err("missing node (expected nN)".into()))?;
        let label = parts.next().ok_or_else(|| err("missing event label".into()))?;
        let fields: BTreeMap<&str, &str> = parts
            .filter_map(|kv| kv.split_once('='))
            .collect();
        let event = match label {
            "txn_submitted" => TraceEvent::TxnSubmitted {
                req_id: field(&fields, "req", line)?,
                coordinator: field(&fields, "coord", line)? as u32,
            },
            "txn_retried" => TraceEvent::TxnRetried {
                req_id: field(&fields, "req", line)?,
                attempt: field(&fields, "attempt", line)? as u32,
            },
            "alt_split" => TraceEvent::AltSplit {
                txn: field(&fields, "txn", line)?,
                alternatives: field(&fields, "alts", line)? as u32,
            },
            "prepared" => TraceEvent::Prepared {
                txn: field(&fields, "txn", line)?,
                site: field(&fields, "site", line)? as u32,
            },
            "decided" => TraceEvent::Decided {
                txn: field(&fields, "txn", line)?,
                completed: bool_field(&fields, "completed", line)?,
            },
            "wait_timed_out" => TraceEvent::WaitTimedOut {
                txn: field(&fields, "txn", line)?,
                site: field(&fields, "site", line)? as u32,
            },
            "polyvalue_installed" => TraceEvent::PolyvalueInstalled {
                txn: field(&fields, "txn", line)?,
                site: field(&fields, "site", line)? as u32,
                items: field(&fields, "items", line)? as u32,
            },
            "outcome_learned" => TraceEvent::OutcomeLearned {
                txn: field(&fields, "txn", line)?,
                site: field(&fields, "site", line)? as u32,
                completed: bool_field(&fields, "completed", line)?,
            },
            "outcome_forwarded" => TraceEvent::OutcomeForwarded {
                txn: field(&fields, "txn", line)?,
                site: field(&fields, "site", line)? as u32,
                to: field(&fields, "to", line)? as u32,
            },
            "polyvalue_collapsed" => TraceEvent::PolyvalueCollapsed {
                txn: field(&fields, "txn", line)?,
                site: field(&fields, "site", line)? as u32,
                lifetime_us: field(&fields, "lifetime_us", line)?,
            },
            "snapshot_read" => TraceEvent::SnapshotRead {
                site: field(&fields, "site", line)? as u32,
                snapshot: field(&fields, "snapshot", line)?,
                items: field(&fields, "items", line)? as u32,
            },
            "pc_takeover" => TraceEvent::PcTakeover {
                txn: field(&fields, "txn", line)?,
                site: field(&fields, "site", line)? as u32,
                ballot: field(&fields, "ballot", line)?,
            },
            other => {
                return Err(err(format!("unknown event label {other}")));
            }
        };
        out.push(TraceRecord {
            at: SimTime(at),
            node: NodeId(node),
            seq,
            event,
        });
    }
    Ok(out)
}

/// Replays `records` and reports every protocol-invariant violation.
pub fn check_trace(records: &[TraceRecord]) -> Report {
    let mut report = Report::new();
    // Per-transaction protocol state accumulated over the replay.
    let mut committed: BTreeMap<u64, u64> = BTreeMap::new(); // txn -> seq of complete decision
    let mut outcomes: BTreeMap<u64, (bool, u64)> = BTreeMap::new(); // txn -> (outcome, seq)
    // Shadow Figure-1 machine per (txn, site); absent means idle.
    let mut phases: BTreeMap<(u64, u32), PartPhase> = BTreeMap::new();
    // (txn, site) pairs whose shadow machine took the timeout edge with the
    // install-polyvalues action — the table-derived licence for `PV021`.
    let mut may_install: BTreeSet<(u64, u32)> = BTreeSet::new();
    let mut learned: BTreeSet<(u64, u32)> = BTreeSet::new(); // (txn, site)
    let mut last_seq: Option<u64> = None;

    for r in records {
        if let Some(prev) = last_seq {
            if r.seq <= prev {
                report.push(
                    Code::NonMonotonicSeq,
                    Span::Trace(r.seq),
                    format!("sequence number {} follows {prev}", r.seq),
                );
            }
        }
        last_seq = Some(r.seq);

        match r.event {
            TraceEvent::Prepared { txn, site } => {
                if let Some(&decided_seq) = committed.get(&txn) {
                    report.push(
                        Code::DecideBeforePrepare,
                        Span::Trace(r.seq),
                        format!(
                            "site s{site} prepared txn {txn} after it was decided complete \
                             at seq {decided_seq}"
                        ),
                    );
                }
                // Drive the shadow machine the way the engine's participant
                // does on a Prepare: staging is instantaneous, so begin and
                // compute-done fire back-to-back and the part lands in the
                // wait phase. (A trace replaying a crash may show Prepared
                // again for a re-staged transaction; re-basing from idle is
                // exactly what the recovered participant does too.)
                let phase = transition(PartPhase::Idle, PartEvent::Begin)
                    .map(|(p, _)| p)
                    .and_then(|p| transition(p, PartEvent::ComputeDone))
                    .map(|(p, _)| p)
                    .expect("Figure 1 defines begin/compute-done from idle");
                phases.insert((txn, site), phase);
            }
            TraceEvent::Decided { txn, completed } => {
                if completed {
                    committed.entry(txn).or_insert(r.seq);
                }
                record_outcome(&mut report, &mut outcomes, txn, completed, r.seq, "decided");
            }
            TraceEvent::WaitTimedOut { txn, site } => {
                // Consult the Figure-1 table: from the shadow phase, does a
                // timeout produce the install-polyvalues action? Only then is
                // a later install at this (txn, site) licensed.
                let phase = phases.get(&(txn, site)).copied().unwrap_or(PartPhase::Idle);
                if let Some((next, action)) = transition(phase, PartEvent::Timeout) {
                    if action == PartAction::InstallPolyvalues {
                        may_install.insert((txn, site));
                    }
                    phases.insert((txn, site), next);
                }
            }
            TraceEvent::PolyvalueInstalled { txn, site, .. } => {
                if !may_install.contains(&(txn, site)) {
                    report.push(
                        Code::InstallWithoutTimeout,
                        Span::Trace(r.seq),
                        format!(
                            "site s{site} installed polyvalues for txn {txn} without a \
                             wait-phase timeout"
                        ),
                    );
                }
            }
            TraceEvent::OutcomeLearned {
                txn,
                site,
                completed,
            } => {
                learned.insert((txn, site));
                record_outcome(
                    &mut report,
                    &mut outcomes,
                    txn,
                    completed,
                    r.seq,
                    "outcome_learned",
                );
            }
            TraceEvent::PolyvalueCollapsed { txn, site, .. } => {
                if !learned.contains(&(txn, site)) {
                    report.push(
                        Code::CollapseBeforeOutcome,
                        Span::Trace(r.seq),
                        format!(
                            "polyvalues for txn {txn} collapsed at site s{site} before the \
                             site learned the outcome"
                        ),
                    );
                }
            }
            // A Paxos Commit takeover is replay-neutral on its own: any
            // number of sites may contend for the verdict at any time. What
            // must hold — every Decided/OutcomeLearned the contest produces
            // agrees — is already enforced by the PV023 outcome rules, and
            // PV020 still applies to the votes (`prepared` events) a commit
            // verdict rests on.
            // A snapshot read never takes locks or messages other sites, so
            // it cannot create protocol obligations: replay-neutral.
            TraceEvent::TxnSubmitted { .. }
            | TraceEvent::TxnRetried { .. }
            | TraceEvent::AltSplit { .. }
            | TraceEvent::OutcomeForwarded { .. }
            | TraceEvent::SnapshotRead { .. }
            | TraceEvent::PcTakeover { .. } => {}
        }
    }
    report
}

/// Records one observed outcome for `txn`, reporting `PV023` when it
/// contradicts an earlier observation.
fn record_outcome(
    report: &mut Report,
    outcomes: &mut BTreeMap<u64, (bool, u64)>,
    txn: u64,
    completed: bool,
    seq: u64,
    what: &str,
) {
    match outcomes.get(&txn) {
        Some(&(prev, prev_seq)) if prev != completed => {
            report.push(
                Code::OutcomeMismatch,
                Span::Trace(seq),
                format!(
                    "{what} reports txn {txn} {} but seq {prev_seq} recorded {}",
                    outcome_name(completed),
                    outcome_name(prev)
                ),
            );
        }
        Some(_) => {}
        None => {
            outcomes.insert(txn, (completed, seq));
        }
    }
}

fn outcome_name(completed: bool) -> &'static str {
    if completed {
        "complete"
    } else {
        "abort"
    }
}

/// Parses the textual trace format and checks it in one step.
pub fn check_trace_text(text: &str) -> Result<Report, TraceParseError> {
    Ok(check_trace(&parse_trace_text(text)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            at: SimTime(seq * 100),
            node: NodeId(0),
            seq,
            event,
        }
    }

    fn healthy_records() -> Vec<TraceRecord> {
        vec![
            rec(0, TraceEvent::TxnSubmitted { req_id: 1, coordinator: 0 }),
            rec(1, TraceEvent::Prepared { txn: 7, site: 1 }),
            rec(2, TraceEvent::WaitTimedOut { txn: 7, site: 1 }),
            rec(3, TraceEvent::PolyvalueInstalled { txn: 7, site: 1, items: 2 }),
            rec(4, TraceEvent::Decided { txn: 7, completed: true }),
            rec(5, TraceEvent::OutcomeLearned { txn: 7, site: 1, completed: true }),
            rec(
                6,
                TraceEvent::PolyvalueCollapsed { txn: 7, site: 1, lifetime_us: 400 },
            ),
            rec(7, TraceEvent::OutcomeForwarded { txn: 7, site: 1, to: 2 }),
        ]
    }

    #[test]
    fn healthy_trace_is_clean() {
        let report = check_trace(&healthy_records());
        assert!(report.is_clean(), "unexpected: {report}");
    }

    #[test]
    fn decide_before_prepare_flagged() {
        let records = vec![
            rec(0, TraceEvent::Decided { txn: 7, completed: true }),
            rec(1, TraceEvent::Prepared { txn: 7, site: 1 }),
        ];
        let report = check_trace(&records);
        assert!(report.has_code(Code::DecideBeforePrepare));
    }

    #[test]
    fn late_prepare_after_abort_is_legal() {
        // The coordinator gave up (abort) while the prepare was in flight:
        // a legal race, not a violation.
        let records = vec![
            rec(0, TraceEvent::Decided { txn: 7, completed: false }),
            rec(1, TraceEvent::Prepared { txn: 7, site: 1 }),
        ];
        assert!(check_trace(&records).is_clean());
    }

    #[test]
    fn install_without_timeout_flagged() {
        let records = vec![rec(
            0,
            TraceEvent::PolyvalueInstalled { txn: 7, site: 1, items: 2 },
        )];
        let report = check_trace(&records);
        assert!(report.has_code(Code::InstallWithoutTimeout));
        // A timeout at a *different* site does not justify the install.
        let records = vec![
            rec(0, TraceEvent::WaitTimedOut { txn: 7, site: 2 }),
            rec(1, TraceEvent::PolyvalueInstalled { txn: 7, site: 1, items: 2 }),
        ];
        assert!(check_trace(&records).has_code(Code::InstallWithoutTimeout));
    }

    #[test]
    fn timeout_without_prepare_does_not_license_install() {
        // The legality comes from the Figure-1 table: with no Prepared the
        // shadow machine is idle, idle has no timeout edge, so the timeout
        // licenses nothing and the install is still a violation.
        let records = vec![
            rec(0, TraceEvent::WaitTimedOut { txn: 7, site: 1 }),
            rec(1, TraceEvent::PolyvalueInstalled { txn: 7, site: 1, items: 2 }),
        ];
        assert!(check_trace(&records).has_code(Code::InstallWithoutTimeout));
    }

    #[test]
    fn decided_then_timeout_install_is_legal() {
        // The decision was in flight when the wait phase timed out: the
        // shadow machine must still be in `wait` (a Decided event does not
        // advance it), so the table licenses the install.
        let records = vec![
            rec(0, TraceEvent::Prepared { txn: 7, site: 1 }),
            rec(1, TraceEvent::Decided { txn: 7, completed: true }),
            rec(2, TraceEvent::WaitTimedOut { txn: 7, site: 1 }),
            rec(3, TraceEvent::PolyvalueInstalled { txn: 7, site: 1, items: 2 }),
        ];
        assert!(check_trace(&records).is_clean());
    }

    #[test]
    fn collapse_before_outcome_flagged() {
        let records = vec![rec(
            0,
            TraceEvent::PolyvalueCollapsed { txn: 7, site: 1, lifetime_us: 10 },
        )];
        let report = check_trace(&records);
        assert!(report.has_code(Code::CollapseBeforeOutcome));
    }

    #[test]
    fn paxos_takeover_trace_is_clean() {
        // Paxos Commit run: both sites prepare (vote), site 1 times out and
        // takes over, the takeover decides complete, everyone learns it. No
        // polyvalues are ever involved.
        let records = vec![
            rec(0, TraceEvent::TxnSubmitted { req_id: 1, coordinator: 0 }),
            rec(1, TraceEvent::Prepared { txn: 7, site: 0 }),
            rec(2, TraceEvent::Prepared { txn: 7, site: 1 }),
            rec(3, TraceEvent::WaitTimedOut { txn: 7, site: 1 }),
            rec(4, TraceEvent::PcTakeover { txn: 7, site: 1, ballot: (1 << 16) | 1 }),
            rec(5, TraceEvent::Decided { txn: 7, completed: true }),
            rec(6, TraceEvent::OutcomeLearned { txn: 7, site: 0, completed: true }),
            rec(7, TraceEvent::OutcomeLearned { txn: 7, site: 1, completed: true }),
        ];
        let report = check_trace(&records);
        assert!(report.is_clean(), "unexpected: {report}");
    }

    #[test]
    fn paxos_takeover_conflicting_verdicts_flagged() {
        // Two contenders claiming different outcomes is exactly the split
        // brain PV023 exists for; a takeover event does not excuse it.
        let records = vec![
            rec(0, TraceEvent::PcTakeover { txn: 7, site: 1, ballot: (1 << 16) | 1 }),
            rec(1, TraceEvent::Decided { txn: 7, completed: true }),
            rec(2, TraceEvent::PcTakeover { txn: 7, site: 2, ballot: (1 << 16) | 2 }),
            rec(3, TraceEvent::Decided { txn: 7, completed: false }),
        ];
        assert!(check_trace(&records).has_code(Code::OutcomeMismatch));
    }

    #[test]
    fn pc_takeover_text_round_trip() {
        let text = "000000 10 n1 pc_takeover txn=7 site=s1 ballot=65537\n";
        let parsed = parse_trace_text(text).unwrap();
        assert_eq!(
            parsed[0].event,
            TraceEvent::PcTakeover { txn: 7, site: 1, ballot: 65537 }
        );
        assert!(check_trace_text(text).unwrap().is_clean());
    }

    #[test]
    fn snapshot_read_text_round_trip() {
        let text = "000000 10 n2 snapshot_read site=s2 snapshot=41 items=3\n";
        let parsed = parse_trace_text(text).unwrap();
        assert_eq!(
            parsed[0].event,
            TraceEvent::SnapshotRead { site: 2, snapshot: 41, items: 3 }
        );
        // Reads are replay-neutral: a bare snapshot read is a clean trace.
        assert!(check_trace_text(text).unwrap().is_clean());
    }

    #[test]
    fn outcome_mismatch_flagged() {
        let records = vec![
            rec(0, TraceEvent::Decided { txn: 7, completed: true }),
            rec(1, TraceEvent::OutcomeLearned { txn: 7, site: 1, completed: false }),
        ];
        let report = check_trace(&records);
        assert!(report.has_code(Code::OutcomeMismatch));
    }

    #[test]
    fn non_monotonic_seq_noted() {
        let records = vec![
            rec(5, TraceEvent::TxnSubmitted { req_id: 1, coordinator: 0 }),
            rec(5, TraceEvent::TxnSubmitted { req_id: 2, coordinator: 0 }),
        ];
        let report = check_trace(&records);
        assert!(report.has_code(Code::NonMonotonicSeq));
        assert!(!report.has_errors());
    }

    #[test]
    fn text_round_trip() {
        use pv_simnet::Trace;
        let mut t = Trace::collecting();
        for r in healthy_records() {
            t.record(r.at, r.node, r.event);
        }
        let text = t.to_text();
        let parsed = parse_trace_text(&text).unwrap();
        assert_eq!(parsed.len(), 8);
        for (p, h) in parsed.iter().zip(healthy_records()) {
            assert_eq!(p.event, h.event);
            assert_eq!(p.at, h.at);
        }
        assert!(check_trace_text(&text).unwrap().is_clean());
    }

    #[test]
    fn parser_reports_bad_lines() {
        assert!(parse_trace_text("garbage").is_err());
        assert!(parse_trace_text("000000 10 n0 unknown_event txn=1").is_err());
        assert!(parse_trace_text("000000 10 n0 decided txn=1").is_err()); // missing completed
        assert!(parse_trace_text("000000 10 n0 decided txn=1 completed=maybe").is_err());
        // Comments and blank lines are fine.
        let ok = "# a comment\n\n000000 10 n0 decided txn=1 completed=true\n";
        assert_eq!(parse_trace_text(ok).unwrap().len(), 1);
    }

    #[test]
    fn parse_error_display() {
        let e = parse_trace_text("oops").unwrap_err();
        assert!(e.to_string().contains("line 1"));
    }
}
