//! The shared diagnostic vocabulary of every analysis pass.
//!
//! All three passes — the expression checker, the condition-algebra
//! verifier, and the trace-conformance checker — report their findings as
//! [`Diagnostic`]s collected into a [`Report`]. A diagnostic carries a
//! stable `PV0xx` [`Code`] (documented in DESIGN.md §8), a [`Severity`],
//! and a [`Span`] locating the finding inside the analyzed artifact.

use pv_core::ItemId;
use std::fmt;

/// How bad a finding is.
///
/// `Error`-severity findings mean the artifact is certainly wrong (an
/// ill-typed expression, an incomplete condition set, a protocol-invariant
/// violation); the engine's opt-in submit gate rejects on these. Warnings
/// flag suspicious-but-legal constructs; infos are observations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// An observation, not a problem.
    Info,
    /// Suspicious but not certainly wrong.
    Warning,
    /// Certainly wrong; the submit gate rejects on these.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The stable diagnostic codes. `PV00x` come from the expression checker,
/// `PV01x` from the condition-algebra verifier, `PV02x` from the
/// trace-conformance checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Code {
    /// PV001 — operands of an operator have incompatible types.
    TypeMismatch,
    /// PV002 — a guard or condition position is not boolean.
    NotBool,
    /// PV003 — division whose divisor is a constant zero.
    DivByConstZero,
    /// PV004 — the guard is a compile-time constant (vacuous or unsatisfiable).
    ConstantGuard,
    /// PV005 — a guarded update writes an item the guard never reads.
    UnguardedWrite,
    /// PV006 — the transaction has no updates and no outputs.
    EmptySpec,
    /// PV010 — the condition set does not cover every outcome assignment.
    Incomplete,
    /// PV011 — two conditions in the set can hold simultaneously.
    Overlap,
    /// PV012 — a condition is equivalent to `false` (unreachable alternative).
    UnreachableAlt,
    /// PV013 — the worst-case alternative count exceeds the configured bound.
    AltExplosion,
    /// PV014 — two pairs of a polyvalue carry the same value.
    DuplicateValue,
    /// PV020 — a transaction was decided before any site prepared it.
    DecideBeforePrepare,
    /// PV021 — a site installed polyvalues without a wait-phase timeout.
    InstallWithoutTimeout,
    /// PV022 — polyvalues collapsed at a site that never learned the outcome.
    CollapseBeforeOutcome,
    /// PV023 — a learned or repeated outcome contradicts the decision.
    OutcomeMismatch,
    /// PV024 — trace sequence numbers are not strictly increasing.
    NonMonotonicSeq,
}

impl Code {
    /// The stable `PV0xx` rendering of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::TypeMismatch => "PV001",
            Code::NotBool => "PV002",
            Code::DivByConstZero => "PV003",
            Code::ConstantGuard => "PV004",
            Code::UnguardedWrite => "PV005",
            Code::EmptySpec => "PV006",
            Code::Incomplete => "PV010",
            Code::Overlap => "PV011",
            Code::UnreachableAlt => "PV012",
            Code::AltExplosion => "PV013",
            Code::DuplicateValue => "PV014",
            Code::DecideBeforePrepare => "PV020",
            Code::InstallWithoutTimeout => "PV021",
            Code::CollapseBeforeOutcome => "PV022",
            Code::OutcomeMismatch => "PV023",
            Code::NonMonotonicSeq => "PV024",
        }
    }

    /// The severity this code is reported at.
    pub fn severity(self) -> Severity {
        match self {
            Code::TypeMismatch
            | Code::NotBool
            | Code::DivByConstZero
            | Code::Incomplete
            | Code::Overlap
            | Code::UnreachableAlt
            | Code::DuplicateValue
            | Code::DecideBeforePrepare
            | Code::InstallWithoutTimeout
            | Code::CollapseBeforeOutcome
            | Code::OutcomeMismatch => Severity::Error,
            Code::ConstantGuard | Code::UnguardedWrite | Code::AltExplosion => Severity::Warning,
            Code::EmptySpec | Code::NonMonotonicSeq => Severity::Info,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// Where inside the analyzed artifact a finding points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Span {
    /// The whole artifact.
    Whole,
    /// The transaction's guard expression.
    Guard,
    /// The update expression for an item.
    Update(ItemId),
    /// The named output expression.
    Output(String),
    /// The `idx`-th condition (or pair) of a condition set / polyvalue.
    Pair(usize),
    /// The trace record with this sequence number.
    Trace(u64),
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Span::Whole => write!(f, "spec"),
            Span::Guard => write!(f, "guard"),
            Span::Update(item) => write!(f, "update {item}"),
            Span::Output(name) => write!(f, "output {name}"),
            Span::Pair(idx) => write!(f, "pair #{idx}"),
            Span::Trace(seq) => write!(f, "trace seq {seq}"),
        }
    }
}

/// One finding of an analysis pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity (derived from the code).
    pub severity: Severity,
    /// The stable `PV0xx` code.
    pub code: Code,
    /// Where the finding points.
    pub span: Span,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic at the code's default severity.
    pub fn new(code: Code, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: code.severity(),
            code,
            span,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] at {}: {}",
            self.severity, self.code, self.span, self.message
        )
    }
}

/// A collection of diagnostics from one or more passes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    diags: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Records a finding.
    pub fn push(&mut self, code: Code, span: Span, message: impl Into<String>) {
        self.diags.push(Diagnostic::new(code, span, message));
    }

    /// Appends every diagnostic of `other`.
    pub fn merge(&mut self, other: Report) {
        self.diags.extend(other.diags);
    }

    /// All findings, in emission order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Whether any finding has `Error` severity.
    pub fn has_errors(&self) -> bool {
        self.diags.iter().any(|d| d.severity == Severity::Error)
    }

    /// Number of `Error`-severity findings.
    pub fn error_count(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Whether the report is empty (a clean artifact).
    pub fn is_clean(&self) -> bool {
        self.diags.is_empty()
    }

    /// Whether any finding carries `code`.
    pub fn has_code(&self, code: Code) -> bool {
        self.diags.iter().any(|d| d.code == code)
    }

    /// Renders the report one diagnostic per line (empty string when clean).
    pub fn render(&self) -> String {
        use fmt::Write;
        let mut out = String::new();
        for d in &self.diags {
            writeln!(out, "{d}").expect("writing to String cannot fail");
        }
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_distinct() {
        let codes = [
            Code::TypeMismatch,
            Code::NotBool,
            Code::DivByConstZero,
            Code::ConstantGuard,
            Code::UnguardedWrite,
            Code::EmptySpec,
            Code::Incomplete,
            Code::Overlap,
            Code::UnreachableAlt,
            Code::AltExplosion,
            Code::DuplicateValue,
            Code::DecideBeforePrepare,
            Code::InstallWithoutTimeout,
            Code::CollapseBeforeOutcome,
            Code::OutcomeMismatch,
            Code::NonMonotonicSeq,
        ];
        let mut seen = std::collections::BTreeSet::new();
        for c in codes {
            assert!(c.as_str().starts_with("PV"));
            assert!(seen.insert(c.as_str()), "duplicate code {c}");
        }
    }

    #[test]
    fn report_error_accounting() {
        let mut r = Report::new();
        assert!(r.is_clean());
        assert!(!r.has_errors());
        r.push(Code::EmptySpec, Span::Whole, "nothing to do");
        assert!(!r.has_errors());
        r.push(Code::TypeMismatch, Span::Guard, "int vs bool");
        assert!(r.has_errors());
        assert_eq!(r.error_count(), 1);
        assert!(r.has_code(Code::TypeMismatch));
        assert!(!r.has_code(Code::Overlap));
    }

    #[test]
    fn display_formats() {
        let d = Diagnostic::new(Code::DivByConstZero, Span::Update(ItemId(3)), "x / 0");
        assert_eq!(d.to_string(), "error[PV003] at update item3: x / 0");
        let mut r = Report::new();
        r.push(Code::UnguardedWrite, Span::Update(ItemId(1)), "blind");
        assert!(r.render().contains("warning[PV005]"));
        assert_eq!(r.to_string(), r.render());
    }

    #[test]
    fn merge_concatenates() {
        let mut a = Report::new();
        a.push(Code::EmptySpec, Span::Whole, "a");
        let mut b = Report::new();
        b.push(Code::Overlap, Span::Pair(1), "b");
        a.merge(b);
        assert_eq!(a.diagnostics().len(), 2);
    }
}
