//! Pass 2: symbolic verification of polyvalue condition algebra.
//!
//! A polyvalue's conditions must be *complete* (their disjunction is a
//! tautology) and *pairwise disjoint* (no two can hold at once) — the §3.1
//! invariant. The runtime enforces this per-construction; this pass proves
//! it symbolically for a *planned* condition set before any polyvalue is
//! installed, using the same DNF machinery (`pv_core::cond`), and flags
//! unreachable alternatives whose condition is equivalent to `false`.
//!
//! The pass also bounds polytransaction splitting ahead of time: given the
//! uncertainty of the items a transaction reads, [`explosion_bound`]
//! computes the worst-case number of alternative transactions the
//! evaluator could produce (§3.2), and [`check_explosion`] turns an
//! excessive bound into a `PV013` warning.

use crate::diag::{Code, Report, Span};
use pv_core::cond::Condition;
use pv_core::expr::ItemId;
use pv_core::poly::Polyvalue;
use pv_core::spec::TransactionSpec;
use pv_core::txn::TxnId;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Verifies that a family of conditions is complete, pairwise disjoint, and
/// free of unreachable (constantly false) members.
pub fn check_condition_set(conds: &[Condition]) -> Report {
    let mut report = Report::new();
    for (i, c) in conds.iter().enumerate() {
        if c.is_false() {
            report.push(
                Code::UnreachableAlt,
                Span::Pair(i),
                format!("condition #{i} is equivalent to false (unreachable alternative)"),
            );
        }
    }
    for (i, a) in conds.iter().enumerate() {
        for (j, b) in conds.iter().enumerate().skip(i + 1) {
            if !a.disjoint_with(b) {
                let both = a.and(b);
                report.push(
                    Code::Overlap,
                    Span::Pair(j),
                    format!("conditions #{i} ({a}) and #{j} ({b}) can hold together, e.g. under {both}"),
                );
            }
        }
    }
    let mut union = Condition::fls();
    for c in conds {
        union = union.or(c);
    }
    if !union.is_true() {
        let gap = union.not();
        let example = gap
            .products()
            .first()
            .map(|p| p.to_string())
            .unwrap_or_else(|| "⊥".to_owned());
        report.push(
            Code::Incomplete,
            Span::Whole,
            format!("no condition covers the outcome {example}"),
        );
    }
    report
}

/// Verifies a constructed polyvalue: minimality (distinct values) plus the
/// full condition-set check.
pub fn check_polyvalue<V: Clone + Eq + fmt::Display>(poly: &Polyvalue<V>) -> Report {
    let mut report = Report::new();
    let pairs = poly.pairs();
    for (i, (v, _)) in pairs.iter().enumerate() {
        for (j, (w, _)) in pairs.iter().enumerate().skip(i + 1) {
            if v == w {
                report.push(
                    Code::DuplicateValue,
                    Span::Pair(j),
                    format!("pairs #{i} and #{j} both carry value {v} (not minimal)"),
                );
            }
        }
    }
    let conds: Vec<Condition> = pairs.iter().map(|(_, c)| c.clone()).collect();
    report.merge(check_condition_set(&conds));
    report
}

/// How uncertain one database item is: the number of `⟨value, condition⟩`
/// pairs it holds and the transactions those conditions depend on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ItemUncertainty {
    /// Number of alternative values (≥ 2 for a polyvalue; 1 for simple).
    pub pairs: usize,
    /// Transactions whose outcomes the item's conditions mention.
    pub deps: BTreeSet<TxnId>,
}

impl ItemUncertainty {
    /// The uncertainty of a constructed polyvalue.
    pub fn of<V: Clone + Eq>(poly: &Polyvalue<V>) -> Self {
        ItemUncertainty {
            pairs: poly.len(),
            deps: poly.deps(),
        }
    }
}

/// Worst-case number of alternative transactions a polytransaction over
/// `spec` could split into, given the uncertainty of the items it reads.
///
/// Two bounds compose: the product of per-item pair counts (each read of a
/// distinct uncertain item multiplies the alternatives), and `2^v` where
/// `v` is the number of distinct transactions involved (conditions over the
/// same transactions are correlated — §3.2's observation that consistent
/// combinations, not raw cross-products, bound the split). The tighter of
/// the two is returned.
pub fn explosion_bound(
    spec: &TransactionSpec,
    uncertainty: &BTreeMap<ItemId, ItemUncertainty>,
) -> u128 {
    let mut product: u128 = 1;
    let mut vars: BTreeSet<TxnId> = BTreeSet::new();
    for item in spec.read_set() {
        if let Some(u) = uncertainty.get(&item) {
            if u.pairs > 1 {
                product = product.saturating_mul(u.pairs as u128);
                vars.extend(u.deps.iter().copied());
            }
        }
    }
    let by_vars: u128 = if vars.len() >= 128 {
        u128::MAX
    } else {
        1u128 << vars.len()
    };
    product.min(by_vars)
}

/// Warns (`PV013`) when the worst-case alternative count of a planned
/// polytransaction exceeds `limit`.
pub fn check_explosion(
    spec: &TransactionSpec,
    uncertainty: &BTreeMap<ItemId, ItemUncertainty>,
    limit: u128,
) -> Report {
    let mut report = Report::new();
    let bound = explosion_bound(spec, uncertainty);
    if bound > limit {
        report.push(
            Code::AltExplosion,
            Span::Whole,
            format!(
                "worst-case polytransaction split is {bound} alternatives (limit {limit})"
            ),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_core::entry::Entry;
    use pv_core::expr::Expr;
    use pv_core::value::Value;

    fn v(n: u64) -> Condition {
        Condition::var(TxnId(n))
    }

    fn nv(n: u64) -> Condition {
        Condition::not_var(TxnId(n))
    }

    #[test]
    fn in_doubt_pair_is_accepted() {
        let report = check_condition_set(&[v(1), nv(1)]);
        assert!(report.is_clean(), "unexpected: {report}");
    }

    #[test]
    fn incomplete_set_flagged_with_counterexample() {
        // {T1∧T2, ¬T1} misses the outcome T1∧¬T2.
        let report = check_condition_set(&[v(1).and(&v(2)), nv(1)]);
        assert!(report.has_code(Code::Incomplete));
        let d = &report.diagnostics()[0];
        assert!(d.message.contains("T1"), "counterexample missing: {d}");
    }

    #[test]
    fn overlapping_set_flagged() {
        let report = check_condition_set(&[v(1), v(1).and(&v(2)), nv(1)]);
        assert!(report.has_code(Code::Overlap));
    }

    #[test]
    fn unreachable_alternative_flagged() {
        let report = check_condition_set(&[v(1), nv(1), Condition::fls()]);
        assert!(report.has_code(Code::UnreachableAlt));
        // The false member also leaves completeness intact, so only the
        // unreachable finding (an error) should appear.
        assert!(!report.has_code(Code::Incomplete));
    }

    #[test]
    fn three_way_shannon_split_is_accepted() {
        // {T1, ¬T1∧T2, ¬T1∧¬T2}: complete and disjoint.
        let conds = [v(1), nv(1).and(&v(2)), nv(1).and(&nv(2))];
        assert!(check_condition_set(&conds).is_clean());
    }

    #[test]
    fn polyvalue_checker_accepts_runtime_built_polys() {
        let e = Entry::in_doubt(
            Entry::Simple(Value::Int(90)),
            Entry::Simple(Value::Int(100)),
            TxnId(9),
        );
        let p = e.as_poly().unwrap();
        assert!(check_polyvalue(p).is_clean());
    }

    #[test]
    fn explosion_bound_multiplies_independent_items() {
        let spec = TransactionSpec::new().output(
            "sum",
            Expr::read(ItemId(0)).add(Expr::read(ItemId(1))),
        );
        let mut unc = BTreeMap::new();
        unc.insert(
            ItemId(0),
            ItemUncertainty {
                pairs: 2,
                deps: [TxnId(1)].into_iter().collect(),
            },
        );
        unc.insert(
            ItemId(1),
            ItemUncertainty {
                pairs: 2,
                deps: [TxnId(2)].into_iter().collect(),
            },
        );
        assert_eq!(explosion_bound(&spec, &unc), 4);
    }

    #[test]
    fn explosion_bound_tightens_on_shared_deps() {
        // Both items depend on the same transaction: only 2 consistent
        // combinations exist, not 4.
        let spec = TransactionSpec::new().output(
            "sum",
            Expr::read(ItemId(0)).add(Expr::read(ItemId(1))),
        );
        let mut unc = BTreeMap::new();
        let shared = ItemUncertainty {
            pairs: 2,
            deps: [TxnId(1)].into_iter().collect(),
        };
        unc.insert(ItemId(0), shared.clone());
        unc.insert(ItemId(1), shared);
        assert_eq!(explosion_bound(&spec, &unc), 2);
    }

    #[test]
    fn explosion_ignores_unread_and_simple_items() {
        let spec = TransactionSpec::new().output("v", Expr::read(ItemId(0)));
        let mut unc = BTreeMap::new();
        unc.insert(
            ItemId(0),
            ItemUncertainty {
                pairs: 1,
                deps: BTreeSet::new(),
            },
        );
        unc.insert(
            ItemId(9),
            ItemUncertainty {
                pairs: 8,
                deps: [TxnId(4)].into_iter().collect(),
            },
        );
        assert_eq!(explosion_bound(&spec, &unc), 1);
    }

    #[test]
    fn check_explosion_warns_over_limit() {
        let spec = TransactionSpec::new().output(
            "sum",
            Expr::read(ItemId(0)).add(Expr::read(ItemId(1))),
        );
        let mut unc = BTreeMap::new();
        for i in 0..2u64 {
            unc.insert(
                ItemId(i),
                ItemUncertainty {
                    pairs: 4,
                    deps: (0..2).map(|k| TxnId(i * 2 + k)).collect(),
                },
            );
        }
        let report = check_explosion(&spec, &unc, 8);
        assert!(report.has_code(Code::AltExplosion));
        assert!(check_explosion(&spec, &unc, 100).is_clean());
    }

    #[test]
    fn uncertainty_of_reads_poly() {
        let e = Entry::in_doubt(
            Entry::Simple(Value::Int(1)),
            Entry::Simple(Value::Int(2)),
            TxnId(3),
        );
        let u = ItemUncertainty::of(e.as_poly().unwrap());
        assert_eq!(u.pairs, 2);
        assert!(u.deps.contains(&TxnId(3)));
    }
}
