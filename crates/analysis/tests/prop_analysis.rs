//! Property tests tying the static passes to the runtime they predict.
//!
//! 1. Well-typed-by-construction random expressions: the checker finds no
//!    type errors, and `pv_core::evaluate` never hits a runtime type fault
//!    on them (value faults — overflow, division by zero — remain possible
//!    and legal).
//! 2. Checker-clean arbitrary expressions evaluate without type faults
//!    under a valuation matching the inferred item types (soundness).
//! 3. Condition families the symbolic verifier accepts as complete and
//!    disjoint are exactly those the runtime `Entry::assemble` invariant
//!    check accepts, and the two agree on *why* corrupted families fail.

use proptest::prelude::*;
use pv_analysis::diag::Code;
use pv_analysis::expr_check::{check_spec, Ty};
use pv_analysis::{check_condition_set, Report};
use pv_core::cond::Condition;
use pv_core::value::ValueError;
use pv_core::{
    evaluate, Entry, EvalOutcome, Expr, ItemId, PolyError, SplitMode, TransactionSpec, TxnId,
    Value,
};
use std::collections::BTreeMap;

// ---- generators -----------------------------------------------------------

/// A type environment being built up while generating an expression: items
/// get a type on first use and keep it.
type ItemTys = BTreeMap<u64, Ty>;

fn pick(rng: &mut TestRng, n: u64) -> u64 {
    rng.next_u64() % n
}

/// A read of an item compatible with `want`, or a constant when the drawn
/// item is already fixed to another type.
fn gen_read(rng: &mut TestRng, want: Ty, items: &mut ItemTys) -> Expr {
    let id = pick(rng, 6);
    match items.get(&id) {
        Some(&t) if t != want => gen_const(rng, want),
        _ => {
            items.insert(id, want);
            Expr::read(ItemId(id))
        }
    }
}

fn gen_const(rng: &mut TestRng, want: Ty) -> Expr {
    match want {
        Ty::Int => Expr::int(pick(rng, 41) as i64 - 20),
        Ty::Bool => Expr::bool(rng.next_u64() & 1 == 1),
        Ty::Str => Expr::str(if rng.next_u64() & 1 == 1 { "a" } else { "b" }),
    }
}

/// A well-typed expression of type `want`, by construction.
fn gen_expr(rng: &mut TestRng, want: Ty, depth: u32, items: &mut ItemTys) -> Expr {
    if depth == 0 {
        return if rng.next_u64() & 1 == 1 {
            gen_read(rng, want, items)
        } else {
            gen_const(rng, want)
        };
    }
    let d = depth - 1;
    match want {
        Ty::Int => match pick(rng, 8) {
            0 => gen_expr(rng, Ty::Int, d, items).add(gen_expr(rng, Ty::Int, d, items)),
            1 => gen_expr(rng, Ty::Int, d, items).sub(gen_expr(rng, Ty::Int, d, items)),
            2 => gen_expr(rng, Ty::Int, d, items).mul(gen_expr(rng, Ty::Int, d, items)),
            3 => {
                // Divisors are reads or non-zero constants, so the checker's
                // PV003 (constant zero divisor) never fires; runtime
                // DivideByZero through a zero-valued *item* remains possible.
                let divisor = if rng.next_u64() & 1 == 1 {
                    gen_read(rng, Ty::Int, items)
                } else {
                    Expr::int(pick(rng, 5) as i64 + 1)
                };
                gen_expr(rng, Ty::Int, d, items).div(divisor)
            }
            4 => gen_expr(rng, Ty::Int, d, items).min(gen_expr(rng, Ty::Int, d, items)),
            5 => gen_expr(rng, Ty::Int, d, items).max(gen_expr(rng, Ty::Int, d, items)),
            6 => gen_expr(rng, Ty::Int, d, items).neg(),
            _ => Expr::ite(
                gen_expr(rng, Ty::Bool, d, items),
                gen_expr(rng, Ty::Int, d, items),
                gen_expr(rng, Ty::Int, d, items),
            ),
        },
        Ty::Bool => match pick(rng, 5) {
            0 => gen_expr(rng, Ty::Bool, d, items).and(gen_expr(rng, Ty::Bool, d, items)),
            1 => gen_expr(rng, Ty::Bool, d, items).or(gen_expr(rng, Ty::Bool, d, items)),
            2 => gen_expr(rng, Ty::Bool, d, items).not(),
            3 => {
                let operand_ty = if rng.next_u64() & 1 == 1 { Ty::Int } else { Ty::Str };
                let a = gen_expr(rng, operand_ty, d, items);
                let b = gen_expr(rng, operand_ty, d, items);
                match pick(rng, 4) {
                    0 => a.lt(b),
                    1 => a.le(b),
                    2 => a.eq_v(b),
                    _ => a.ge(b),
                }
            }
            _ => Expr::ite(
                gen_expr(rng, Ty::Bool, d, items),
                gen_expr(rng, Ty::Bool, d, items),
                gen_expr(rng, Ty::Bool, d, items),
            ),
        },
        Ty::Str => Expr::ite(
            gen_expr(rng, Ty::Bool, d, items),
            gen_read(rng, Ty::Str, items),
            gen_const(rng, Ty::Str),
        ),
    }
}

/// An arbitrary, frequently ill-typed expression.
fn gen_junk(rng: &mut TestRng, depth: u32) -> Expr {
    if depth == 0 {
        return match pick(rng, 3) {
            0 => Expr::int(pick(rng, 9) as i64 - 4),
            1 => Expr::bool(rng.next_u64() & 1 == 1),
            _ => Expr::read(ItemId(pick(rng, 4))),
        };
    }
    let d = depth - 1;
    match pick(rng, 7) {
        0 => gen_junk(rng, d).add(gen_junk(rng, d)),
        1 => gen_junk(rng, d).div(gen_junk(rng, d)),
        2 => gen_junk(rng, d).and(gen_junk(rng, d)),
        3 => gen_junk(rng, d).lt(gen_junk(rng, d)),
        4 => gen_junk(rng, d).not(),
        5 => Expr::ite(gen_junk(rng, d), gen_junk(rng, d), gen_junk(rng, d)),
        _ => gen_junk(rng, 0),
    }
}

/// A valuation agreeing with the type environment (unconstrained items are
/// free: default them to ints).
fn valuation(rng: &mut TestRng, items: &ItemTys) -> BTreeMap<ItemId, Value> {
    let mut out = BTreeMap::new();
    for id in 0..6u64 {
        let v = match items.get(&id) {
            Some(Ty::Int) | None => Value::Int(pick(rng, 11) as i64 - 5),
            Some(Ty::Bool) => Value::Bool(rng.next_u64() & 1 == 1),
            Some(Ty::Str) => Value::Str(if rng.next_u64() & 1 == 1 { "a" } else { "b" }.into()),
        };
        out.insert(ItemId(id), v);
    }
    out
}

fn has_type_error(report: &Report) -> bool {
    report.has_code(Code::TypeMismatch) || report.has_code(Code::NotBool)
}

/// Whether `err` is a runtime *type* fault (as opposed to a legal value
/// fault like overflow or a zero-valued divisor item).
fn is_type_fault(err: &pv_core::expr::EvalError) -> bool {
    use pv_core::expr::EvalError;
    match err {
        EvalError::Value(ValueError::TypeMismatch { .. }) => true,
        EvalError::Value(_) => false,
        _ => true, // GuardNotBool / OperandNotBool / ConditionNotBool / MissingItem
    }
}

/// A complete + pairwise-disjoint condition family built by iterated
/// Shannon splits of {true}.
fn gen_family(rng: &mut TestRng, splits: u32) -> Vec<Condition> {
    let mut family = vec![Condition::tru()];
    for _ in 0..splits {
        let idx = pick(rng, family.len() as u64) as usize;
        let member = family[idx].clone();
        // Split on a transaction the member does not already mention, so
        // neither half is false.
        let txn = (0..16)
            .map(|_| TxnId(pick(rng, 8)))
            .find(|t| !member.vars().contains(t));
        let Some(txn) = txn else { continue };
        let on = member.and(&Condition::var(txn));
        let off = member.and(&Condition::not_var(txn));
        family[idx] = on;
        family.push(off);
    }
    family
}

/// Runs the family through the runtime invariant check by assembling an
/// entry with a distinct value per alternative.
fn runtime_accepts(family: &[Condition]) -> Result<Entry<Value>, PolyError> {
    let alts = family
        .iter()
        .enumerate()
        .map(|(i, c)| (Entry::Simple(Value::Int(i as i64)), c.clone()))
        .collect();
    Entry::assemble(alts)
}

// ---- properties -----------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn well_typed_expressions_check_clean_and_eval_without_type_faults(seed: u64) {
        let mut rng = TestRng::new(seed);
        let mut items = ItemTys::new();
        let want = match pick(&mut rng, 3) {
            0 => Ty::Int,
            1 => Ty::Bool,
            _ => Ty::Str,
        };
        let expr = gen_expr(&mut rng, want, 4, &mut items);
        let spec = TransactionSpec::new().output("v", expr);
        let analysis = check_spec(&spec);
        prop_assert!(
            !has_type_error(&analysis.report),
            "false positive on well-typed expr: {}\nspec: {spec:?}",
            analysis.report
        );
        // Inferred types can only agree with the generator's assignments.
        for (id, ty) in &analysis.item_types {
            prop_assert_eq!(items.get(&id.0), Some(ty), "inference disagrees for {id}");
        }
        let source = valuation(&mut rng, &items);
        match evaluate(&spec, &source, SplitMode::Lazy) {
            Ok(_) => {}
            Err(e) => prop_assert!(
                !is_type_fault(&e),
                "well-typed expr hit runtime type fault {e:?}\nspec: {spec:?}"
            ),
        }
    }

    #[test]
    fn checker_clean_junk_evaluates_without_type_faults(seed: u64) {
        let mut rng = TestRng::new(seed);
        let expr = gen_junk(&mut rng, 4);
        let spec = TransactionSpec::new().output("v", expr);
        let analysis = check_spec(&spec);
        if analysis.report.has_errors() {
            return; // only clean verdicts make a soundness claim
        }
        // Give every item the inferred type (unconstrained ones are ints).
        let typed: ItemTys = analysis.item_types.iter().map(|(k, v)| (k.0, *v)).collect();
        let source = valuation(&mut rng, &typed);
        match evaluate(&spec, &source, SplitMode::Lazy) {
            Ok(_) => {}
            Err(e) => prop_assert!(
                !is_type_fault(&e),
                "checker-clean expr hit type fault {e:?}\nspec: {spec:?}"
            ),
        }
    }

    #[test]
    fn shannon_families_accepted_by_verifier_and_runtime(seed: u64, splits in 0u32..6) {
        let mut rng = TestRng::new(seed);
        let family = gen_family(&mut rng, splits);
        let report = check_condition_set(&family);
        prop_assert!(report.is_clean(), "verifier rejects Shannon family: {report}");
        let entry = runtime_accepts(&family);
        prop_assert!(entry.is_ok(), "runtime rejects Shannon family: {entry:?}");
    }

    #[test]
    fn corrupted_families_rejected_by_both_for_the_same_reason(seed: u64, splits in 2u32..6) {
        let mut rng = TestRng::new(seed);
        let family = gen_family(&mut rng, splits);
        if family.len() < 2 {
            return;
        }
        // Dropping a member leaves a gap: symbolic PV010, runtime NotComplete.
        let mut incomplete = family.clone();
        incomplete.remove(pick(&mut rng, incomplete.len() as u64) as usize);
        let report = check_condition_set(&incomplete);
        prop_assert!(report.has_code(Code::Incomplete), "missed gap: {report}");
        prop_assert_eq!(runtime_accepts(&incomplete).err(), Some(PolyError::NotComplete));

        // Duplicating a member makes two conditions overlap: symbolic PV011,
        // runtime NotDisjoint.
        let mut overlapping = family.clone();
        let dup = overlapping[pick(&mut rng, overlapping.len() as u64) as usize].clone();
        overlapping.push(dup);
        let report = check_condition_set(&overlapping);
        prop_assert!(report.has_code(Code::Overlap), "missed overlap: {report}");
        prop_assert_eq!(runtime_accepts(&overlapping).err(), Some(PolyError::NotDisjoint));
    }

    #[test]
    fn evaluator_outcomes_respect_the_condition_invariant(seed: u64) {
        // End-to-end: a polytransaction over an in-doubt item produces
        // outputs whose polyvalues the symbolic verifier accepts.
        let mut rng = TestRng::new(seed);
        let base = pick(&mut rng, 50) as i64;
        let delta = pick(&mut rng, 20) as i64 + 1;
        let item = ItemId(0);
        let in_doubt = Entry::in_doubt(
            Entry::Simple(Value::Int(base + delta)),
            Entry::Simple(Value::Int(base)),
            TxnId(pick(&mut rng, 8)),
        );
        let mut source: BTreeMap<ItemId, Entry<Value>> = BTreeMap::new();
        source.insert(item, in_doubt);
        let spec = TransactionSpec::new()
            .guard(Expr::read(item).ge(Expr::int(base)))
            .output("v", Expr::read(item).add(Expr::int(delta)));
        let out: EvalOutcome = evaluate(&spec, &source, SplitMode::Lazy).expect("evaluates");
        let outputs = out.collate_outputs().expect("collates");
        for (_, entry) in outputs {
            if let Entry::Poly(p) = entry {
                let report = pv_analysis::check_polyvalue(&p);
                prop_assert!(report.is_clean(), "runtime-built polyvalue flagged: {report}");
            }
        }
    }
}
