//! Bounded exhaustive interleaving exploration of the protocol.
//!
//! Because [`SiteMachine`] is pure — events in, effects out, no hidden clock
//! or randomness — a small cluster of machines can be *model-checked*: the
//! [`Explorer`] enumerates every reachable ordering of message deliveries,
//! timer firings, and (optionally) site crash/recover events for a scripted
//! transfer workload, asserting the protocol's safety invariants in every
//! reachable state.
//!
//! ## Semantics
//!
//! The network may delay any message arbitrarily and timers have arbitrary
//! (positive) delays, so from any state each of the following is a legal next
//! step: deliver one in-flight message, fire one armed timer, or (within the
//! crash budget) crash-and-recover one site — losing its volatile state,
//! armed timers, and the in-flight messages addressed to it, then replaying
//! its WAL. Exploring all of these orderings covers every schedule the
//! deterministic simulation, the live runtime, or the crash-point harness
//! could ever produce for the same workload — and many more.
//!
//! ## Invariants
//!
//! * **I1 agreement** — no two decisions or outcome notifications for the
//!   same transaction ever disagree.
//! * **I2 polyvalues only from wait-timeout** — a site installs in-doubt
//!   polyvalues for a transaction only after its wait phase timed out there
//!   (Figure 1's only install-polyvalues edge).
//! * **I3 collapse only after outcome** — polyvalues for a transaction
//!   collapse at a site only after that site learned the outcome, and only
//!   if they were installed there.
//! * **I4 no install after outcome** — a site never installs polyvalues for
//!   a transaction whose outcome it already learned.
//! * **I5 conservation** — in every *quiescent* state (no messages, no
//!   timers) no polyvalue or staged write survives, and the scripted
//!   transfers conserve the total balance.
//!
//! States are deduplicated by hashing the full logical state (machines,
//! WALs, network, timers), so exploration terminates without a depth bound
//! on configurations whose state space is finite.

use crate::config::EngineConfig;
use crate::directory::Directory;
use crate::machine::{site_node, Input, Output, SiteMachine};
use crate::messages::Msg;
use crate::timer::TimerKey;
use pv_core::{Entry, Expr, ItemId, TransactionSpec, Value};
use pv_simnet::{NodeId, SimTime, TraceEvent};
use pv_store::{SiteId, SiteStore};
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};

/// The node id explorer "clients" submit from and receive replies on.
const CLIENT: NodeId = NodeId(1_000_000);

/// Exploration scenario and bounds.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Number of sites. There are `max(sites, 2)` items, item `i` homed at
    /// site `i % sites` (initial balance [`ExploreConfig::initial`]) — at
    /// least two so single-site scenarios still transfer between distinct
    /// items and conservation stays meaningful.
    pub sites: u32,
    /// Number of scripted transfers. Transfer `k` moves
    /// [`ExploreConfig::amount`] from item `k % items` to item
    /// `(k + 1) % items`, coordinated by site `k % sites`.
    pub txns: u32,
    /// Per-transfer amount.
    pub amount: i64,
    /// Initial balance of every item.
    pub initial: i64,
    /// How many crash/recover events the whole exploration may use per path.
    pub crashes: u32,
    /// Depth bound (actions per path); paths longer than this are truncated
    /// and reported via [`ExploreReport::truncated`].
    pub max_depth: usize,
    /// State bound; exploration stops (truncated) once this many distinct
    /// states were expanded.
    pub max_states: usize,
    /// Engine configuration for every machine. Timeout durations are
    /// irrelevant (the explorer fires timers in every legal order); the
    /// protocol/lock-policy choices matter.
    pub engine: EngineConfig,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            sites: 2,
            txns: 1,
            amount: 10,
            initial: 100,
            crashes: 1,
            max_depth: 256,
            max_states: 1_000_000,
            engine: EngineConfig::default(),
        }
    }
}

impl ExploreConfig {
    /// Item count: one per site, but never fewer than two (a one-item
    /// "transfer" would write the same item twice and mint money).
    fn items(&self) -> u32 {
        self.sites.max(2)
    }

    fn transfer_spec(&self, k: u32) -> TransactionSpec {
        let from = ItemId((k % self.items()) as u64);
        let to = ItemId(((k + 1) % self.items()) as u64);
        let amount = self.amount;
        TransactionSpec::new()
            .guard(Expr::read(from).ge(Expr::int(amount)))
            .update(from, Expr::read(from).sub(Expr::int(amount)))
            .update(to, Expr::read(to).add(Expr::int(amount)))
            .output("granted", Expr::read(from).ge(Expr::int(amount)))
    }
}

/// A violated invariant, with the action path that reached it.
#[derive(Debug, Clone)]
pub struct InvariantViolation {
    /// Which invariant (I1–I5) was violated.
    pub invariant: &'static str,
    /// Human-readable description of the violation.
    pub detail: String,
    /// The action sequence from the initial state to the violation.
    pub path: Vec<String>,
}

/// Summary of one exploration run.
#[derive(Debug, Clone, Default)]
pub struct ExploreReport {
    /// Distinct states expanded.
    pub states: u64,
    /// State transitions taken (actions applied).
    pub transitions: u64,
    /// Quiescent states reached (no messages, no timers).
    pub quiescent: u64,
    /// Longest action path explored.
    pub deepest: usize,
    /// Whether any bound ([`ExploreConfig::max_depth`] or
    /// [`ExploreConfig::max_states`]) cut the exploration short. A `false`
    /// here means the reachable state space was fully enumerated.
    pub truncated: bool,
    /// All invariant violations found (deduplicated per state).
    pub violations: Vec<InvariantViolation>,
}

/// A message sitting in the explorer's "network".
#[derive(Debug, Clone)]
struct Envelope {
    from: NodeId,
    to: NodeId,
    msg: Msg,
}

/// Invariant bookkeeping carried along each path.
#[derive(Debug, Clone, Default)]
struct Book {
    /// First claimed outcome per transaction (I1).
    outcomes: BTreeMap<u64, bool>,
    /// Outcomes each site has learned via Decision/OutcomeNotify delivery.
    site_known: BTreeMap<(u32, u64), bool>,
    /// Sites whose wait phase timed out per transaction (I2).
    waited: BTreeSet<(u32, u64)>,
    /// Sites that installed polyvalues per transaction (I3).
    installed: BTreeSet<(u32, u64)>,
}

/// One node of the exploration graph: machines + stores + network + timers.
struct State {
    machines: Vec<SiteMachine>,
    stores: Vec<SiteStore>,
    in_flight: Vec<Envelope>,
    timers: Vec<(SiteId, TimerKey)>,
    crashes_left: u32,
    book: Book,
    depth: usize,
    path: Vec<String>,
}

/// One edge of the exploration graph.
#[derive(Debug, Clone)]
enum Action {
    Deliver(usize),
    Fire(usize),
    CrashRecover(SiteId),
}

impl State {
    fn initial(cfg: &ExploreConfig) -> State {
        let directory = Directory::Mod(cfg.sites);
        let mut machines = Vec::new();
        let mut stores = Vec::new();
        for s in 0..cfg.sites {
            machines.push(SiteMachine::new(s, cfg.engine.clone(), directory.clone()));
            stores.push(SiteStore::new());
        }
        for item in 0..cfg.items() {
            stores[(item % cfg.sites) as usize]
                .seed_item(ItemId(item as u64), Value::Int(cfg.initial));
        }
        let mut in_flight = Vec::new();
        for k in 0..cfg.txns {
            in_flight.push(Envelope {
                from: CLIENT,
                to: site_node(k % cfg.sites),
                msg: Msg::Submit {
                    req_id: k as u64,
                    spec: cfg.transfer_spec(k),
                },
            });
        }
        let mut st = State {
            machines,
            stores,
            in_flight,
            timers: Vec::new(),
            crashes_left: cfg.crashes,
            book: Book::default(),
            depth: 0,
            path: Vec::new(),
        };
        st.canonicalize();
        st
    }

    /// Forks the state for a branch. `SiteStore::clone` snapshots into a
    /// fresh always-durable in-memory backend, which is exactly the
    /// explorer's storage model (crashes here lose no synced state).
    fn fork(&self) -> State {
        State {
            machines: self.machines.clone(),
            stores: self.stores.clone(),
            in_flight: self.in_flight.clone(),
            timers: self.timers.clone(),
            crashes_left: self.crashes_left,
            book: self.book.clone(),
            depth: self.depth,
            path: self.path.clone(),
        }
    }

    /// Sorts the network and timer lists so states differing only by queue
    /// permutation collapse to one canonical form (delivery *choice* is the
    /// explorer's branching, so queue order carries no information), and
    /// folds identical duplicates. Folding is what keeps the state space
    /// finite: an inquiry tick that fires before its previous `Inquire` was
    /// delivered would otherwise pile up an unbounded queue of identical
    /// messages. The protocol is explicitly duplicate-tolerant (idempotent
    /// handlers), and any folded duplicate is regenerated by the next tick,
    /// so no distinct protocol behaviour is lost.
    fn canonicalize(&mut self) {
        self.in_flight
            .sort_by_cached_key(|e| (e.to.0, e.from.0, format!("{:?}", e.msg)));
        self.in_flight
            .dedup_by_key(|e| (e.to.0, e.from.0, format!("{:?}", e.msg)));
        self.timers.sort();
        self.timers.dedup();
    }

    /// Stable hash of the full logical state for the visited set. Machine
    /// and message state is folded in via their `Debug` rendering (streamed
    /// straight into the hasher — no intermediate strings); store state via
    /// [`SiteStore::logical_view`] — the *replayed* tables, not the raw log
    /// bytes, so interleavings that append independent records in different
    /// orders collapse to one state. (Sound because every future transition,
    /// including crash-recovery, depends only on the replay result; under
    /// Paxos Commit, where each acceptor logs a record per vote, promise and
    /// acceptance, hashing raw bytes multiplied the space by the number of
    /// log-order permutations.)
    fn fingerprint(&self) -> u64 {
        struct HashWriter<'a>(&'a mut std::collections::hash_map::DefaultHasher);
        impl std::fmt::Write for HashWriter<'_> {
            fn write_str(&mut self, s: &str) -> std::fmt::Result {
                self.0.write(s.as_bytes());
                Ok(())
            }
        }
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for m in &self.machines {
            let _ = write!(HashWriter(&mut h), "{m:?}");
        }
        for s in &self.stores {
            let _ = write!(HashWriter(&mut h), "{:?}", s.logical_view());
        }
        for e in &self.in_flight {
            (e.from.0, e.to.0).hash(&mut h);
            let _ = write!(HashWriter(&mut h), "{:?}", e.msg);
        }
        self.timers.hash(&mut h);
        self.crashes_left.hash(&mut h);
        h.finish()
    }

    fn actions(&self) -> Vec<Action> {
        let mut acts = Vec::new();
        for i in 0..self.in_flight.len() {
            acts.push(Action::Deliver(i));
        }
        for i in 0..self.timers.len() {
            acts.push(Action::Fire(i));
        }
        if self.crashes_left > 0 {
            for s in 0..self.machines.len() as u32 {
                acts.push(Action::CrashRecover(s));
            }
        }
        acts
    }

    fn quiescent(&self) -> bool {
        self.in_flight.is_empty() && self.timers.is_empty()
    }

    /// Applies one action, checking invariants on every emitted effect.
    /// Returns the trace events emitted (for callers replaying traces) and
    /// any violations found during this step.
    fn apply(&mut self, action: &Action) -> (Vec<(SiteId, TraceEvent)>, Vec<InvariantViolation>) {
        let mut traces = Vec::new();
        let mut violations = Vec::new();
        match *action {
            Action::Deliver(i) => {
                let env = self.in_flight.remove(i);
                let site = env.to.0;
                self.path.push(format!("deliver {:?} to site {site}", kind(&env.msg)));
                // Learning an outcome is observable at delivery time (I3/I4
                // need "site knew before" to be well-defined).
                if let Msg::Decision { txn, completed } | Msg::OutcomeNotify { txn, completed } =
                    env.msg
                {
                    self.book.site_known.insert((site, txn.raw()), completed);
                }
                let mut out = Vec::new();
                self.machines[site as usize].step(
                    SimTime::ZERO,
                    Input::Msg {
                        from: env.from,
                        msg: env.msg,
                    },
                    &mut self.stores[site as usize],
                    &mut out,
                );
                self.absorb(site, out, &mut traces, &mut violations);
            }
            Action::Fire(i) => {
                let (site, key) = self.timers.remove(i);
                self.path.push(format!("fire {key} at site {site}"));
                let mut out = Vec::new();
                self.machines[site as usize].step(
                    SimTime::ZERO,
                    Input::Timer(key),
                    &mut self.stores[site as usize],
                    &mut out,
                );
                self.absorb(site, out, &mut traces, &mut violations);
            }
            Action::CrashRecover(site) => {
                self.crashes_left -= 1;
                self.path.push(format!("crash+recover site {site}"));
                self.machines[site as usize].crash();
                self.stores[site as usize].crash_and_recover();
                // The node's volatile surroundings die with it.
                self.in_flight.retain(|e| e.to.0 != site);
                self.timers.retain(|(s, _)| *s != site);
                let mut out = Vec::new();
                self.machines[site as usize].step(
                    SimTime::ZERO,
                    Input::Recovered,
                    &mut self.stores[site as usize],
                    &mut out,
                );
                self.absorb(site, out, &mut traces, &mut violations);
            }
        }
        self.depth += 1;
        self.canonicalize();
        (traces, violations)
    }

    /// Folds a step's outputs into the state: sends join the network, timer
    /// arms join the timer list, traces feed the invariant checks, and coin
    /// requests are answered immediately (heads — the §2.3 relaxed protocol
    /// is not the explorer's default subject, but it must not wedge).
    fn absorb(
        &mut self,
        site: SiteId,
        outputs: Vec<Output>,
        traces: &mut Vec<(SiteId, TraceEvent)>,
        violations: &mut Vec<InvariantViolation>,
    ) {
        let mut queue: std::collections::VecDeque<Output> = outputs.into();
        while let Some(output) = queue.pop_front() {
            match output {
                Output::Send { to, msg } => {
                    if let Msg::Decision { txn, completed }
                    | Msg::OutcomeNotify { txn, completed } = &msg
                    {
                        self.claim_outcome(txn.raw(), *completed, violations);
                    }
                    if to.0 < self.machines.len() as u32 {
                        self.in_flight.push(Envelope {
                            from: site_node(site),
                            to,
                            msg,
                        });
                    }
                    // Replies to clients leave the system under exploration.
                }
                Output::ArmTimer { key, .. } => self.timers.push((site, key)),
                Output::Trace(ev) => {
                    self.check_trace(site, &ev, violations);
                    traces.push((site, ev));
                }
                Output::Metric(_) => {}
                Output::NeedCoin { txn, .. } => {
                    let mut out = Vec::new();
                    self.machines[site as usize].step(
                        SimTime::ZERO,
                        Input::Coin {
                            txn,
                            completed: true,
                        },
                        &mut self.stores[site as usize],
                        &mut out,
                    );
                    for o in out.into_iter().rev() {
                        queue.push_front(o);
                    }
                }
            }
        }
    }

    fn claim_outcome(&mut self, txn: u64, completed: bool, violations: &mut Vec<InvariantViolation>) {
        match self.book.outcomes.get(&txn) {
            None => {
                self.book.outcomes.insert(txn, completed);
            }
            Some(&prev) if prev != completed => violations.push(InvariantViolation {
                invariant: "I1",
                detail: format!(
                    "transaction {txn:#x} claimed both completed={prev} and completed={completed}"
                ),
                path: self.path.clone(),
            }),
            Some(_) => {}
        }
    }

    fn check_trace(
        &mut self,
        site: SiteId,
        ev: &TraceEvent,
        violations: &mut Vec<InvariantViolation>,
    ) {
        match *ev {
            TraceEvent::Decided { txn, completed } => {
                self.claim_outcome(txn, completed, violations);
            }
            TraceEvent::WaitTimedOut { txn, site: s } => {
                self.book.waited.insert((s, txn));
                debug_assert_eq!(s, site);
            }
            TraceEvent::PolyvalueInstalled { txn, site: s, .. } => {
                if !self.book.waited.contains(&(s, txn)) {
                    violations.push(InvariantViolation {
                        invariant: "I2",
                        detail: format!(
                            "site {s} installed polyvalues for {txn:#x} without a wait timeout"
                        ),
                        path: self.path.clone(),
                    });
                }
                if self.book.site_known.contains_key(&(s, txn)) {
                    violations.push(InvariantViolation {
                        invariant: "I4",
                        detail: format!(
                            "site {s} installed polyvalues for {txn:#x} after learning its outcome"
                        ),
                        path: self.path.clone(),
                    });
                }
                self.book.installed.insert((s, txn));
            }
            TraceEvent::PolyvalueCollapsed { txn, site: s, .. } => {
                if !self.book.installed.contains(&(s, txn)) {
                    violations.push(InvariantViolation {
                        invariant: "I3",
                        detail: format!(
                            "site {s} collapsed polyvalues for {txn:#x} it never installed"
                        ),
                        path: self.path.clone(),
                    });
                }
                if !self.book.site_known.contains_key(&(s, txn)) {
                    violations.push(InvariantViolation {
                        invariant: "I3",
                        detail: format!(
                            "site {s} collapsed polyvalues for {txn:#x} before learning its outcome"
                        ),
                        path: self.path.clone(),
                    });
                }
            }
            _ => {}
        }
    }

    /// I5, checked when no message or timer remains: nothing may stay
    /// in-doubt, and the transfers must conserve the total balance.
    fn check_quiescent(&self, cfg: &ExploreConfig, violations: &mut Vec<InvariantViolation>) {
        let mut total: i64 = 0;
        for (s, store) in self.stores.iter().enumerate() {
            if store.poly_count() != 0 {
                violations.push(InvariantViolation {
                    invariant: "I5",
                    detail: format!(
                        "site {s} still holds {} polyvalued item(s) at quiescence",
                        store.poly_count()
                    ),
                    path: self.path.clone(),
                });
            }
            if !store.pending_txns().is_empty() {
                violations.push(InvariantViolation {
                    invariant: "I5",
                    detail: format!("site {s} still holds staged writes at quiescence"),
                    path: self.path.clone(),
                });
            }
            for (_, entry) in store.iter_items() {
                if let Entry::Simple(Value::Int(n)) = entry {
                    total += n;
                }
            }
        }
        let expected = cfg.initial * cfg.items() as i64;
        if total != expected {
            violations.push(InvariantViolation {
                invariant: "I5",
                detail: format!("total balance {total} != initial total {expected}"),
                path: self.path.clone(),
            });
        }
    }
}

/// `Msg` discriminant name for path labels (full payloads make paths
/// unreadable).
fn kind(msg: &Msg) -> &'static str {
    match msg {
        Msg::Submit { .. } => "Submit",
        Msg::Reply { .. } => "Reply",
        Msg::ReadReq { .. } => "ReadReq",
        Msg::ReadResp { .. } => "ReadResp",
        Msg::ReadNack { .. } => "ReadNack",
        Msg::Prepare { .. } => "Prepare",
        Msg::Ready { .. } => "Ready",
        Msg::PrepareNack { .. } => "PrepareNack",
        Msg::Decision { .. } => "Decision",
        Msg::Inquire { .. } => "Inquire",
        Msg::OutcomeNotify { .. } => "OutcomeNotify",
        Msg::PcPrepare { .. } => "PcPrepare",
        Msg::PcVote { .. } => "PcVote",
        Msg::PcVoteAck { .. } => "PcVoteAck",
        Msg::PcPhase1a { .. } => "PcPhase1a",
        Msg::PcPhase1b { .. } => "PcPhase1b",
        Msg::PcPhase2a { .. } => "PcPhase2a",
        Msg::PcPhase2b { .. } => "PcPhase2b",
        Msg::SnapshotRead { .. } => "SnapshotRead",
        Msg::SnapshotReadReply { .. } => "SnapshotReadReply",
    }
}

/// Exhaustive interleaving explorer over a scripted transfer workload.
pub struct Explorer {
    cfg: ExploreConfig,
}

impl Explorer {
    /// An explorer for the given scenario.
    pub fn new(cfg: ExploreConfig) -> Self {
        Explorer { cfg }
    }

    /// Enumerates every reachable interleaving (depth-first, deduplicating
    /// states) and returns the aggregate report.
    pub fn run(&self) -> ExploreReport {
        let mut report = ExploreReport::default();
        let mut visited: HashSet<u64> = HashSet::new();
        let initial = State::initial(&self.cfg);
        visited.insert(initial.fingerprint());
        let mut stack: Vec<State> = vec![initial];
        while let Some(state) = stack.pop() {
            report.states += 1;
            report.deepest = report.deepest.max(state.depth);
            if report.states as usize >= self.cfg.max_states {
                report.truncated = true;
                break;
            }
            let quiescent = state.quiescent();
            if quiescent {
                report.quiescent += 1;
                state.check_quiescent(&self.cfg, &mut report.violations);
            }
            if state.depth >= self.cfg.max_depth {
                if !quiescent {
                    report.truncated = true;
                }
                continue;
            }
            let actions = state.actions();
            let last = actions.len().checked_sub(1);
            let mut parent = Some(state);
            for (i, action) in actions.iter().enumerate() {
                // The parent state is not needed after its last action, so
                // the final branch reuses it instead of forking.
                let mut next = if Some(i) == last {
                    parent.take().expect("parent is live until the last action")
                } else {
                    parent.as_ref().expect("parent is live until the last action").fork()
                };
                let (_, violations) = next.apply(action);
                report.transitions += 1;
                report.violations.extend(violations);
                if visited.insert(next.fingerprint()) {
                    stack.push(next);
                }
            }
        }
        report
    }

    /// One random path through the same action space — the proptest-facing
    /// little sibling of [`Explorer::run`]. Returns the trace events emitted
    /// along the path and any invariant violations; the walk never exceeds
    /// `max_steps` actions.
    pub fn random_walk(&self, seed: u64, max_steps: usize) -> WalkResult {
        let mut rng = seed | 1;
        let mut draw = move |bound: usize| {
            // xorshift64* — deterministic, dependency-free.
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            (rng.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 32) as usize % bound.max(1)
        };
        let mut state = State::initial(&self.cfg);
        let mut result = WalkResult::default();
        for _ in 0..max_steps {
            let actions = state.actions();
            if actions.is_empty() {
                break;
            }
            let action = &actions[draw(actions.len())];
            let (traces, violations) = state.apply(action);
            result.steps += 1;
            result.trace.extend(traces);
            result.violations.extend(violations);
        }
        if state.quiescent() {
            state.check_quiescent(&self.cfg, &mut result.violations);
        }
        result
    }
}

/// Outcome of one [`Explorer::random_walk`].
#[derive(Debug, Clone, Default)]
pub struct WalkResult {
    /// Actions actually taken (may be fewer than requested if the system
    /// quiesced).
    pub steps: usize,
    /// Trace events emitted along the path, with the emitting site.
    pub trace: Vec<(SiteId, TraceEvent)>,
    /// Invariant violations found along the path.
    pub violations: Vec<InvariantViolation>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_crash_free_exploration_is_clean() {
        // Debug builds bound the search (the full 2-site/1-txn graph has
        // ~24k logical states, minutes without optimizations); release
        // builds — and the CI `pv-explore` job — enumerate it completely.
        let max_states = if cfg!(debug_assertions) { 4_000 } else { usize::MAX };
        let report = Explorer::new(ExploreConfig {
            sites: 2,
            txns: 1,
            crashes: 0,
            max_states,
            ..ExploreConfig::default()
        })
        .run();
        if !cfg!(debug_assertions) {
            assert!(!report.truncated, "2-site/1-txn must enumerate fully");
        }
        assert!(report.states > 10);
        assert!(report.quiescent > 0, "some path must quiesce");
        assert!(
            report.violations.is_empty(),
            "violations: {:#?}",
            report.violations
        );
    }

    fn paxos_engine() -> EngineConfig {
        EngineConfig {
            protocol: crate::config::CommitProtocol::PaxosCommit,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn paxos_commit_crash_free_exploration_is_clean() {
        // Unlike the polyvalue graph, the Paxos Commit 2-site/1-txn graph is
        // not CI-enumerable: concurrent takeovers with interleaving-dependent
        // ballots push it past 10M logical states. The sweep is therefore a
        // bounded-depth frontier — wide enough to cover the full fast path
        // plus takeover races — and the single-site graph (32 states) is
        // enumerated completely as the exactness anchor.
        let max_states = if cfg!(debug_assertions) { 2_000 } else { 50_000 };
        let report = Explorer::new(ExploreConfig {
            sites: 2,
            txns: 1,
            crashes: 0,
            max_states,
            engine: paxos_engine(),
            ..ExploreConfig::default()
        })
        .run();
        assert!(report.states > 10);
        assert!(report.quiescent > 0, "some path must quiesce");
        assert!(
            report.violations.is_empty(),
            "violations: {:#?}",
            report.violations
        );

        let single = Explorer::new(ExploreConfig {
            sites: 1,
            txns: 1,
            crashes: 0,
            max_states: 10_000,
            engine: paxos_engine(),
            ..ExploreConfig::default()
        })
        .run();
        assert!(!single.truncated, "1-site Paxos Commit must enumerate fully");
        assert!(single.quiescent > 0);
        assert!(
            single.violations.is_empty(),
            "violations: {:#?}",
            single.violations
        );
    }

    #[test]
    fn paxos_commit_exploration_with_one_crash_is_clean() {
        // Every site doubles as an acceptor, so the crash budget covers the
        // acceptor-crash schedules the protocol's durability discipline
        // (log+sync before every reply) exists for — including crashing an
        // acceptor between accepting a vote and the decision, then replaying
        // its WAL into a takeover.
        let max_states = if cfg!(debug_assertions) { 1_500 } else { 30_000 };
        let report = Explorer::new(ExploreConfig {
            sites: 2,
            txns: 1,
            crashes: 1,
            max_states,
            engine: paxos_engine(),
            ..ExploreConfig::default()
        })
        .run();
        assert!(report.quiescent > 0, "some path must quiesce");
        assert!(
            report.violations.is_empty(),
            "violations: {:#?}",
            report.violations
        );

        // Exactness anchor: the single-site graph (coordinator, registrar
        // and sole acceptor co-located) enumerates completely even with a
        // crash budget — every WAL-replay schedule of the acceptor log is
        // covered, none violates.
        let single = Explorer::new(ExploreConfig {
            sites: 1,
            txns: 1,
            crashes: 1,
            max_states: 10_000,
            engine: paxos_engine(),
            ..ExploreConfig::default()
        })
        .run();
        assert!(!single.truncated, "1-site/1-crash Paxos Commit must enumerate fully");
        assert!(single.quiescent > 0);
        assert!(
            single.violations.is_empty(),
            "violations: {:#?}",
            single.violations
        );
    }

    #[test]
    fn paxos_commit_random_walks_are_clean() {
        let explorer = Explorer::new(ExploreConfig {
            engine: paxos_engine(),
            ..ExploreConfig::default()
        });
        for seed in [7, 42, 1999] {
            let walk = explorer.random_walk(seed, 80);
            assert!(walk.violations.is_empty(), "violations: {:#?}", walk.violations);
        }
    }

    #[test]
    fn random_walks_are_clean_and_reproducible() {
        let explorer = Explorer::new(ExploreConfig::default());
        let a = explorer.random_walk(42, 60);
        let b = explorer.random_walk(42, 60);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.trace, b.trace);
        assert!(a.violations.is_empty(), "violations: {:#?}", a.violations);
    }
}
