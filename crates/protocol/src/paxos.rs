//! Paxos Commit (Gray & Lamport, "Consensus on Transaction Commit"):
//! the non-blocking fourth protocol variant.
//!
//! Every site doubles as an *acceptor*. A participant's prepared vote is the
//! ballot-0 phase-2a message of that participant's own Paxos instance,
//! broadcast to all acceptors; each acceptor durably accepts the vote and
//! acknowledges it to the transaction's coordinator, which announces
//! *complete* once **every** participant's instance has a majority of
//! acceptances. Because the vote carries the full participant set, any
//! acceptor holding any vote doubles as the registrar: a takeover leader
//! that sees one vote knows exactly which participants must all be prepared.
//!
//! When a participant's wait phase (or the coordinator's ready window) times
//! out, the site becomes a *takeover leader*: it runs phase 1 at a ballot
//! `((epoch + 1) << 16) | site` — unique per site incarnation, so retries
//! are idempotent and the model checker's state space stays finite — over a
//! single *verdict* instance. A majority of phase-1b replies lets the leader
//! pick safely:
//!
//! * any previously accepted verdict (highest ballot) must be re-proposed;
//! * otherwise, commit iff every registered participant's prepared vote is
//!   visible in the union of the majority's replies — an invisible vote can
//!   never reach majority acceptance once a majority has promised, so
//!   proposing abort is safe; zero visible votes means zero registrars, so
//!   no coordinator can ever have committed, and abort is again safe.
//!
//! Durability discipline: an acceptor logs **and syncs** every vote,
//! promise, and acceptance *before* replying. An acceptor that acknowledged
//! state and then forgot it in a crash would let a ballot-0 commit and a
//! higher-ballot abort each assemble a "majority" the other cannot see.
//! Symmetrically, acceptor state for a transaction is pruned
//! ([`pv_store::SiteStore::pc_forget`]) only after the decision itself is
//! durable at that acceptor, so a post-crash phase-1a is answered by the
//! outcome, never by an empty promise.
//!
//! Unlike the polyvalue protocol this variant never installs polyvalues and
//! never blocks while a majority of acceptors is reachable — exactly the
//! trade-off the four-way shootout in `pv-bench` measures.

use crate::config::CommitProtocol;
use crate::coordinator::CoordPhase;
use crate::machine::{site_node, Emit, SiteMachine};
use crate::messages::{AbortReason, Msg, TxnResult};
use crate::participant::{transition, PartAction, PartEvent, PartPhase};
use crate::timer::TimerKey;
use pv_core::{Entry, ItemId, TxnId, Value};
use pv_simnet::TraceEvent;
use pv_store::{SiteId, SiteStore};
use std::collections::{BTreeMap, BTreeSet};

/// What one acceptor reported in phase 1b.
#[derive(Debug, Clone)]
pub(crate) struct Phase1Info {
    pub(crate) votes: Vec<(SiteId, bool)>,
    pub(crate) parts: Vec<SiteId>,
    pub(crate) accepted: Option<(u64, bool)>,
}

/// A takeover this site is leading for one stalled transaction.
#[derive(Debug, Clone)]
pub(crate) struct Takeover {
    pub(crate) ballot: u64,
    /// Phase-1b replies, by acceptor.
    pub(crate) promises: BTreeMap<SiteId, Phase1Info>,
    /// The verdict proposed in phase 2, once phase 1 completed.
    pub(crate) verdict: Option<bool>,
    /// Phase-2b acceptances, by acceptor.
    pub(crate) accepts: BTreeSet<SiteId>,
}

/// Volatile Paxos Commit leader state: the takeovers this site is driving.
/// Durable acceptor state lives in the store ([`pv_store::PaxosState`]); a
/// crash wipes this and the stalled transaction simply times out again.
#[derive(Debug, Clone, Default)]
pub struct Paxos {
    pub(crate) takeovers: BTreeMap<TxnId, Takeover>,
}

impl Paxos {
    /// Number of takeovers this site currently leads.
    pub fn active_takeovers(&self) -> usize {
        self.takeovers.len()
    }
}

impl SiteMachine {
    /// The acceptor group size and the majority threshold.
    fn quorum(&self) -> (u32, usize) {
        let n = self.directory.sites();
        (n, (n / 2 + 1) as usize)
    }

    /// Routes a Paxos Commit message: remote destinations get a network
    /// send; the local site applies it synchronously by direct call.
    /// Co-located roles — participant-as-acceptor, coordinator-as-acceptor,
    /// takeover-leader-as-acceptor — exchange no messages, exactly the
    /// co-location argument of the Paxos Commit paper. Beyond saving real
    /// message cost, this spares the model checker one delivery choice
    /// point per self-hop, which shrinks the interleaving space
    /// combinatorially.
    pub(crate) fn pc_cast(
        &mut self,
        em: &mut Emit<'_>,
        store: &mut SiteStore,
        to: SiteId,
        msg: Msg,
    ) {
        if to != self.id {
            em.send(site_node(to), msg);
            return;
        }
        let from = self.id;
        match msg {
            Msg::PcPrepare { txn, writes, parts } => {
                self.on_pc_prepare(em, store, from, txn, writes, parts)
            }
            Msg::PcVote {
                txn,
                part,
                parts,
                prepared,
            } => self.on_pc_vote(em, store, from, txn, part, parts, prepared),
            Msg::PcVoteAck {
                txn,
                part,
                acceptor,
                prepared,
            } => self.on_pc_vote_ack(em, store, txn, part, acceptor, prepared),
            Msg::PcPhase1a { txn, ballot } => self.on_pc_phase1a(em, store, from, txn, ballot),
            Msg::PcPhase1b {
                txn,
                ballot,
                acceptor,
                votes,
                parts,
                accepted,
            } => self.on_pc_phase1b(em, store, txn, ballot, acceptor, votes, parts, accepted),
            Msg::PcPhase2a {
                txn,
                ballot,
                completed,
            } => self.on_pc_phase2a(em, store, from, txn, ballot, completed),
            Msg::PcPhase2b {
                txn,
                ballot,
                acceptor,
                completed,
            } => self.on_pc_phase2b(em, store, txn, ballot, acceptor, completed),
            Msg::Decision { txn, completed } => self.on_decision(em, store, txn, completed),
            Msg::OutcomeNotify { txn, completed } => {
                self.on_outcome_notify(em, store, txn, completed)
            }
            Msg::PrepareNack { txn } => self.finish_abort(em, store, txn, AbortReason::LockConflict),
            _ => debug_assert!(false, "message kind never self-addressed under Paxos Commit"),
        }
    }

    /// Coordinator → participant prepare under Paxos Commit: stage the
    /// writes, then broadcast the ballot-0 vote to every acceptor. Mirrors
    /// `on_prepare` except the readiness signal is the vote itself.
    pub(crate) fn on_pc_prepare(
        &mut self,
        em: &mut Emit<'_>,
        store: &mut SiteStore,
        from: SiteId,
        txn: TxnId,
        writes: Vec<(ItemId, Entry<Value>)>,
        parts: Vec<SiteId>,
    ) {
        let (n, _) = self.quorum();
        let Some(part) = self.participant.parts.get_mut(&txn) else {
            // No live read lease (crash, revocation): refuse. The nacker has
            // not voted and never will — its vote happens only after staging
            // — so the coordinator's abort cannot contradict a takeover.
            self.pc_cast(em, store, from, Msg::PrepareNack { txn });
            return;
        };
        if part.staged && store.pending(txn).is_some() {
            // Duplicate prepare: re-broadcast the identical vote (acceptors
            // fold it idempotently).
            let me = self.id;
            for site in 0..n {
                self.pc_cast(
                    em,
                    store,
                    site,
                    Msg::PcVote {
                        txn,
                        part: me,
                        parts: parts.clone(),
                        prepared: true,
                    },
                );
            }
            return;
        }
        // Figure 1 still governs the participant's phase: idle → compute →
        // wait. The table's send-ready action materialises as the vote
        // broadcast rather than a point-to-point Ready.
        let (phase, action) = transition(part.phase, PartEvent::Begin)
            .expect("Figure 1 defines begin in the idle state");
        debug_assert_eq!(action, PartAction::None);
        let (phase, action) = transition(phase, PartEvent::ComputeDone)
            .expect("Figure 1 defines compute-done in the compute state");
        debug_assert_eq!(phase, PartPhase::Wait);
        debug_assert_eq!(action, PartAction::SendReady);
        part.phase = phase;
        part.staged = true;
        store.stage(txn, from, writes);
        em.trace(TraceEvent::Prepared {
            txn: txn.raw(),
            site: self.id,
        });
        em.arm(self.config.wait_timeout, TimerKey::PartWait(txn));
        let me = self.id;
        for site in 0..n {
            self.pc_cast(
                em,
                store,
                site,
                Msg::PcVote {
                    txn,
                    part: me,
                    parts: parts.clone(),
                    prepared: true,
                },
            );
        }
    }

    /// Acceptor: a participant's ballot-0 vote arrived.
    ///
    /// Recording acceptor state deliberately does *not* arm the inquiry
    /// tick: takeover entry is owned by the `PartWait` / `ReadyWait`
    /// timeouts on the healthy path and by [`SiteMachine::on_recovered`]
    /// after a crash. Arming it here would make "suspect the coordinator"
    /// an enabled transition at every acceptor after every message, which
    /// multiplies the model checker's state space without adding a
    /// liveness path those timers do not already provide.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_pc_vote(
        &mut self,
        em: &mut Emit<'_>,
        store: &mut SiteStore,
        from: SiteId,
        txn: TxnId,
        part: SiteId,
        parts: Vec<SiteId>,
        prepared: bool,
    ) {
        if let Some(completed) = store.decision_of(txn) {
            self.pc_cast(em, store, from, Msg::OutcomeNotify { txn, completed });
            return;
        }
        let known = store.pc_state(txn);
        if known.is_some_and(|st| st.promised > 0) {
            // A takeover is under way at a higher ballot: late ballot-0
            // votes are refused so they can never assemble a majority the
            // leader did not see. The voter learns the outcome through the
            // takeover's Decision broadcast.
            return;
        }
        if known.is_none_or(|st| st.votes.get(&part) != Some(&prepared)) {
            store.pc_record_vote(txn, part, parts, prepared);
        }
        // Durable (possibly already): acknowledge to the coordinator.
        let me = self.id;
        self.pc_cast(
            em,
            store,
            crate::ids::coordinator_of(txn),
            Msg::PcVoteAck {
                txn,
                part,
                acceptor: me,
                prepared,
            },
        );
    }

    /// Coordinator: an acceptor acknowledged a participant's vote.
    pub(crate) fn on_pc_vote_ack(
        &mut self,
        em: &mut Emit<'_>,
        store: &mut SiteStore,
        txn: TxnId,
        part: SiteId,
        acceptor: SiteId,
        prepared: bool,
    ) {
        let (n, majority) = self.quorum();
        let Some(coord) = self.coordinator.coords.get_mut(&txn) else {
            return;
        };
        if coord.phase != CoordPhase::Preparing {
            return;
        }
        if !prepared {
            // An abort vote sinks the transaction outright. (Participants
            // currently refuse via PrepareNack instead, so this is belt and
            // braces for future vote semantics.)
            self.finish_abort(em, store, txn, AbortReason::LockConflict);
            return;
        }
        coord.acks.entry(part).or_default().insert(acceptor);
        let complete = coord
            .write_sites
            .iter()
            .all(|p| coord.acks.get(p).is_some_and(|s| s.len() >= majority));
        if !complete {
            return;
        }
        if store.decision_of(txn).is_some() {
            // A takeover (possibly our own, after a ready timeout) already
            // decided; its Decision broadcast will resolve the client.
            return;
        }
        store.record_decision(txn, true);
        let coord = self.coordinator.coords.remove(&txn).expect("checked above");
        self.note_decided(em, txn, &coord, true);
        self.paxos.takeovers.remove(&txn);
        for site in 0..n {
            self.pc_cast(
                em,
                store,
                site,
                Msg::Decision {
                    txn,
                    completed: true,
                },
            );
        }
        let result = coord.pending_result.expect("set when preparing");
        self.note_commit_metrics(em, &result);
        self.deliver_result(em, coord.client, coord.req_id, result);
    }

    /// Becomes takeover leader for a stalled transaction: phase 1a at this
    /// site's fixed ballot, broadcast to every acceptor. Re-driven by the
    /// inquiry tick until a decision lands.
    pub(crate) fn start_takeover(&mut self, em: &mut Emit<'_>, store: &mut SiteStore, txn: TxnId) {
        if store.decision_of(txn).is_some() || self.paxos.takeovers.contains_key(&txn) {
            return;
        }
        // Round: above both this incarnation's epoch and any round this
        // site's own acceptor already promised — so a takeover started after
        // a dead leader's higher ballot swept through still gets its own
        // acceptor's promise. Fixed per (site incarnation, transaction):
        // at most one ballot is ever minted per takeover entry, keeping the
        // explorer's state space finite (no escalation duels).
        let promised_round = store.pc_state(txn).map_or(0, |st| st.promised >> 16);
        let round = promised_round.max(u64::from(store.epoch())) + 1;
        let ballot = (round << 16) | u64::from(self.id);
        em.inc("pc.takeovers");
        em.trace(TraceEvent::PcTakeover {
            txn: txn.raw(),
            site: self.id,
            ballot,
        });
        self.paxos.takeovers.insert(
            txn,
            Takeover {
                ballot,
                promises: BTreeMap::new(),
                verdict: None,
                accepts: BTreeSet::new(),
            },
        );
        for site in 0..self.directory.sites() {
            self.pc_cast(em, store, site, Msg::PcPhase1a { txn, ballot });
        }
        self.ensure_inquire(em);
    }

    /// Acceptor: a takeover leader's phase 1a.
    pub(crate) fn on_pc_phase1a(
        &mut self,
        em: &mut Emit<'_>,
        store: &mut SiteStore,
        from: SiteId,
        txn: TxnId,
        ballot: u64,
    ) {
        if let Some(completed) = store.decision_of(txn) {
            self.pc_cast(em, store, from, Msg::OutcomeNotify { txn, completed });
            return;
        }
        let promised = store.pc_state(txn).map_or(0, |st| st.promised);
        if ballot < promised {
            return; // stale leader; its inquiry tick will learn the outcome
        }
        if ballot > promised {
            store.pc_promise(txn, ballot);
        }
        let st = store.pc_state(txn);
        let reply = Msg::PcPhase1b {
            txn,
            ballot,
            acceptor: self.id,
            votes: st.map_or_else(Vec::new, |s| {
                s.votes.iter().map(|(&p, &v)| (p, v)).collect()
            }),
            parts: st.map_or_else(Vec::new, |s| s.parts.clone()),
            accepted: st.and_then(|s| s.accepted),
        };
        self.pc_cast(em, store, from, reply);
    }

    /// Leader: an acceptor's phase 1b. On a majority, pick the verdict and
    /// broadcast phase 2a.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_pc_phase1b(
        &mut self,
        em: &mut Emit<'_>,
        store: &mut SiteStore,
        txn: TxnId,
        ballot: u64,
        acceptor: SiteId,
        votes: Vec<(SiteId, bool)>,
        parts: Vec<SiteId>,
        accepted: Option<(u64, bool)>,
    ) {
        let (n, majority) = self.quorum();
        let Some(t) = self.paxos.takeovers.get_mut(&txn) else {
            return;
        };
        if t.ballot != ballot || t.verdict.is_some() {
            return;
        }
        t.promises.insert(
            acceptor,
            Phase1Info {
                votes,
                parts,
                accepted,
            },
        );
        if t.promises.len() < majority {
            return;
        }
        // A previously accepted verdict (highest ballot wins) must be
        // re-proposed; otherwise decide from the union of visible votes.
        let mut best: Option<(u64, bool)> = None;
        for info in t.promises.values() {
            if let Some((b, v)) = info.accepted {
                if best.is_none_or(|(bb, _)| bb <= b) {
                    best = Some((b, v));
                }
            }
        }
        let verdict = match best {
            Some((_, v)) => v,
            None => {
                let mut all_parts: BTreeSet<SiteId> = BTreeSet::new();
                let mut vote_of: BTreeMap<SiteId, bool> = BTreeMap::new();
                for info in t.promises.values() {
                    all_parts.extend(info.parts.iter().copied());
                    for &(p, v) in &info.votes {
                        vote_of.insert(p, v);
                    }
                }
                // Zero visible votes ⇒ zero registrars ⇒ nobody could have
                // committed ⇒ abort is safe (and the only liveness-preserving
                // choice when the coordinator died pre-prepare).
                !all_parts.is_empty() && all_parts.iter().all(|p| vote_of.get(p) == Some(&true))
            }
        };
        t.verdict = Some(verdict);
        for site in 0..n {
            self.pc_cast(
                em,
                store,
                site,
                Msg::PcPhase2a {
                    txn,
                    ballot,
                    completed: verdict,
                },
            );
        }
    }

    /// Acceptor: a takeover leader's phase 2a.
    pub(crate) fn on_pc_phase2a(
        &mut self,
        em: &mut Emit<'_>,
        store: &mut SiteStore,
        from: SiteId,
        txn: TxnId,
        ballot: u64,
        completed: bool,
    ) {
        if let Some(known) = store.decision_of(txn) {
            self.pc_cast(
                em,
                store,
                from,
                Msg::OutcomeNotify {
                    txn,
                    completed: known,
                },
            );
            return;
        }
        let st = store.pc_state(txn);
        if ballot < st.map_or(0, |s| s.promised) {
            return;
        }
        if st.and_then(|s| s.accepted) != Some((ballot, completed)) {
            store.pc_accept(txn, ballot, completed);
        }
        let me = self.id;
        self.pc_cast(
            em,
            store,
            from,
            Msg::PcPhase2b {
                txn,
                ballot,
                acceptor: me,
                completed,
            },
        );
    }

    /// Leader: an acceptor's phase 2b. A majority chooses the verdict; the
    /// leader makes it durable and broadcasts the plain `Decision`.
    pub(crate) fn on_pc_phase2b(
        &mut self,
        em: &mut Emit<'_>,
        store: &mut SiteStore,
        txn: TxnId,
        ballot: u64,
        acceptor: SiteId,
        completed: bool,
    ) {
        let (n, majority) = self.quorum();
        let Some(t) = self.paxos.takeovers.get_mut(&txn) else {
            return;
        };
        if t.ballot != ballot || t.verdict != Some(completed) {
            return;
        }
        t.accepts.insert(acceptor);
        if t.accepts.len() < majority {
            return;
        }
        self.paxos.takeovers.remove(&txn);
        em.inc("pc.takeover.decided");
        if store.decision_of(txn).is_none() {
            store.record_decision(txn, completed);
            em.trace(TraceEvent::Decided {
                txn: txn.raw(),
                completed,
            });
        }
        for site in 0..n {
            self.pc_cast(em, store, site, Msg::Decision { txn, completed });
        }
    }

    /// Every Paxos Commit site durably adopts a learned decision: records it
    /// (so late votes and phase messages are answered by the outcome), prunes
    /// the acceptor state — safe only *after* the decision is durable — drops
    /// any takeover, and resolves this site's own coordinator state if the
    /// decision arrived from a takeover leader. No-op under other protocols.
    pub(crate) fn pc_learn_decision(
        &mut self,
        em: &mut Emit<'_>,
        store: &mut SiteStore,
        txn: TxnId,
        completed: bool,
    ) {
        if !matches!(self.config.protocol, CommitProtocol::PaxosCommit) {
            return;
        }
        let was_unknown = store.decision_of(txn).is_none();
        if was_unknown {
            store.record_decision(txn, completed);
        }
        store.pc_forget(txn);
        if self.paxos.takeovers.remove(&txn).is_some() && was_unknown {
            // This site was contending for the verdict because it was in
            // doubt; learning the outcome closes that uncertainty window.
            em.trace(TraceEvent::OutcomeLearned {
                txn: txn.raw(),
                site: self.id,
                completed,
            });
        }
        if let Some(coord) = self.coordinator.coords.remove(&txn) {
            // A takeover decided a transaction we were still coordinating:
            // adopt its verdict and answer the client.
            self.note_decided(em, txn, &coord, completed);
            if completed {
                if let Some(result) = coord.pending_result {
                    self.note_commit_metrics(em, &result);
                    self.deliver_result(em, coord.client, coord.req_id, result);
                }
            } else {
                em.inc("txn.aborted.timeout");
                em.send(
                    coord.client,
                    Msg::Reply {
                        req_id: coord.req_id,
                        result: TxnResult::Aborted {
                            reason: AbortReason::Timeout,
                        },
                    },
                );
            }
        }
    }

    /// Re-drives stalled takeovers from the inquiry tick: phase 1a to
    /// acceptors that have not promised, or phase 2a to those that have not
    /// accepted. Identical re-sends are idempotent at the acceptors.
    pub(crate) fn redrive_takeovers(&mut self, em: &mut Emit<'_>, store: &mut SiteStore) {
        let n = self.directory.sites();
        // Collect first: a self-addressed re-send is applied inline by
        // `pc_cast` and may mutate the takeover table mid-iteration.
        let mut sends: Vec<(SiteId, Msg)> = Vec::new();
        for (&txn, t) in &self.paxos.takeovers {
            match t.verdict {
                Some(completed) => {
                    for site in (0..n).filter(|s| !t.accepts.contains(s)) {
                        sends.push((
                            site,
                            Msg::PcPhase2a {
                                txn,
                                ballot: t.ballot,
                                completed,
                            },
                        ));
                    }
                }
                None => {
                    for site in (0..n).filter(|s| !t.promises.contains_key(s)) {
                        sends.push((
                            site,
                            Msg::PcPhase1a {
                                txn,
                                ballot: t.ballot,
                            },
                        ));
                    }
                }
            }
        }
        for (site, msg) in sends {
            self.pc_cast(em, store, site, msg);
        }
    }
}
