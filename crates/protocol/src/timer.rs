//! Typed timer keys.
//!
//! The protocol machines arm timers by emitting
//! [`Output::ArmTimer`](crate::machine::Output::ArmTimer) with a [`TimerKey`];
//! drivers hand the key back via
//! [`Input::Timer`](crate::machine::Input::Timer) when the timer fires. For
//! runtimes whose timer facility carries a bare `u64` (the simulation's
//! `Ctx::set_timer`, the live runtime's timer wheel), [`TimerKey::encode`]
//! packs the key into one word and [`TimerKey::decode`] recovers it:
//!
//! ```text
//! 63     60 59        48 47        32 31                     0
//! +--------+------------+------------+------------------------+
//! | tag(4) |  site(12)  | epoch (16) |      counter (32)      |
//! +--------+------------+------------+------------------------+
//! ```
//!
//! The low 60 bits are the transaction id (whose own site field must fit in
//! 12 bits — clusters beyond 4095 sites would need a wider key type); the
//! tag selects the purpose. Keys are opaque payload to every runtime — only
//! the fire-time dispatch reads them — so the packing never influences
//! scheduling.

use pv_core::TxnId;
use std::fmt;

/// What a pending protocol timer is for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TimerKey {
    /// Coordinator patience for read responses.
    CoordRead(TxnId),
    /// Coordinator patience for readies.
    CoordReady(TxnId),
    /// Participant wait-phase patience (the Figure-1 timeout edge).
    PartWait(TxnId),
    /// Participant read-lease expiry for a transaction that never progressed.
    ReadLease(TxnId),
    /// A wound-wait-queued read request waited too long.
    QueueExpire(TxnId),
    /// The periodic §3.3 outcome-inquiry tick.
    Inquire,
}

/// Tag values; `0` is reserved as invalid so an all-zero key never decodes.
const TAG_COORD_READ: u64 = 1;
const TAG_COORD_READY: u64 = 2;
const TAG_PART_WAIT: u64 = 3;
const TAG_READ_LEASE: u64 = 4;
const TAG_QUEUE_EXPIRE: u64 = 5;
const TAG_INQUIRE: u64 = 6;

/// Mask of the 60 transaction bits.
const TXN_MASK: u64 = (1 << 60) - 1;

impl TimerKey {
    /// Packs the key into a `u64` for runtimes with untyped timer payloads.
    ///
    /// # Panics
    ///
    /// Panics if the transaction's coordinator site exceeds 12 bits (4095);
    /// see the module docs for the layout.
    pub fn encode(self) -> u64 {
        let (tag, txn) = match self {
            TimerKey::CoordRead(txn) => (TAG_COORD_READ, txn.raw()),
            TimerKey::CoordReady(txn) => (TAG_COORD_READY, txn.raw()),
            TimerKey::PartWait(txn) => (TAG_PART_WAIT, txn.raw()),
            TimerKey::ReadLease(txn) => (TAG_READ_LEASE, txn.raw()),
            TimerKey::QueueExpire(txn) => (TAG_QUEUE_EXPIRE, txn.raw()),
            TimerKey::Inquire => (TAG_INQUIRE, 0),
        };
        assert!(
            txn & !TXN_MASK == 0,
            "timer key cannot carry a site id above 4095"
        );
        (tag << 60) | txn
    }

    /// Recovers a key packed by [`TimerKey::encode`]; `None` for words that
    /// were never produced by it (e.g. a stale key from another subsystem).
    pub fn decode(raw: u64) -> Option<TimerKey> {
        let txn = TxnId(raw & TXN_MASK);
        match raw >> 60 {
            TAG_COORD_READ => Some(TimerKey::CoordRead(txn)),
            TAG_COORD_READY => Some(TimerKey::CoordReady(txn)),
            TAG_PART_WAIT => Some(TimerKey::PartWait(txn)),
            TAG_READ_LEASE => Some(TimerKey::ReadLease(txn)),
            TAG_QUEUE_EXPIRE => Some(TimerKey::QueueExpire(txn)),
            TAG_INQUIRE if txn == TxnId(0) => Some(TimerKey::Inquire),
            _ => None,
        }
    }
}

impl fmt::Display for TimerKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimerKey::CoordRead(txn) => write!(f, "coord-read({txn})"),
            TimerKey::CoordReady(txn) => write!(f, "coord-ready({txn})"),
            TimerKey::PartWait(txn) => write!(f, "part-wait({txn})"),
            TimerKey::ReadLease(txn) => write!(f, "read-lease({txn})"),
            TimerKey::QueueExpire(txn) => write!(f, "queue-expire({txn})"),
            TimerKey::Inquire => write!(f, "inquire"),
        }
    }
}

/// Every key constructor, for exhaustive round-trip tests.
#[cfg(test)]
fn all_keys(txn: TxnId) -> Vec<TimerKey> {
    vec![
        TimerKey::CoordRead(txn),
        TimerKey::CoordReady(txn),
        TimerKey::PartWait(txn),
        TimerKey::ReadLease(txn),
        TimerKey::QueueExpire(txn),
        TimerKey::Inquire,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::encode_txn;

    #[test]
    fn round_trip_every_variant() {
        // Boundary transactions: zero, max legal site/epoch/counter, mixes.
        let txns = [
            encode_txn(0, 0, 0),
            encode_txn(4095, 0, 0),
            encode_txn(0, 0xFFFF, 0),
            encode_txn(0, 0, 0xFFFF_FFFF),
            encode_txn(4095, 0xFFFF, 0xFFFF_FFFF),
            encode_txn(7, 3, 12345),
        ];
        for txn in txns {
            for key in all_keys(txn) {
                assert_eq!(TimerKey::decode(key.encode()), Some(key), "{key}");
            }
        }
    }

    #[test]
    fn distinct_keys_encode_distinctly() {
        let a = encode_txn(1, 0, 7);
        let b = encode_txn(2, 0, 7);
        let mut seen = std::collections::BTreeSet::new();
        for txn in [a, b] {
            for key in all_keys(txn) {
                seen.insert(key.encode());
            }
        }
        // Inquire carries no txn, so the two txn sets share exactly one word.
        assert_eq!(seen.len(), 11);
    }

    #[test]
    fn garbage_words_do_not_decode() {
        assert_eq!(TimerKey::decode(0), None);
        assert_eq!(TimerKey::decode(42), None); // tag 0
        assert_eq!(TimerKey::decode(u64::MAX), None); // tag 15
        // Inquire with a nonzero txn field was never encoded.
        assert_eq!(TimerKey::decode((6 << 60) | 99), None);
    }

    #[test]
    #[should_panic(expected = "site id above 4095")]
    fn oversized_site_panics() {
        TimerKey::PartWait(encode_txn(4096, 0, 0)).encode();
    }

    #[test]
    fn display_is_human_readable() {
        let txn = encode_txn(1, 0, 7);
        assert!(TimerKey::PartWait(txn).to_string().starts_with("part-wait"));
        assert_eq!(TimerKey::Inquire.to_string(), "inquire");
    }
}
