//! Item placement: which site holds which item.

use pv_core::ItemId;
use pv_store::SiteId;
use std::collections::BTreeMap;

/// Maps items to their home sites. Every site and client of a cluster holds
/// the same directory (placement is static, as in the paper's model where
/// "each item is stored at one of the sites").
#[derive(Debug, Clone)]
pub enum Directory {
    /// Item `i` lives at site `i mod n`.
    Mod(u32),
    /// Explicit placement; items absent from the map do not exist.
    Explicit(BTreeMap<ItemId, SiteId>),
}

impl Directory {
    /// The home site of `item`, or `None` if the item does not exist
    /// (explicit directories only).
    pub fn site_of(&self, item: ItemId) -> Option<SiteId> {
        match self {
            Directory::Mod(n) => {
                assert!(*n > 0, "directory over zero sites");
                Some((item.0 % u64::from(*n)) as SiteId)
            }
            Directory::Explicit(map) => map.get(&item).copied(),
        }
    }

    /// The number of sites in the cluster this directory describes — the
    /// Paxos Commit acceptor group (`0..sites()`). For explicit placements
    /// this is derived from the highest site mentioned; a cluster with
    /// trailing item-free sites should use [`Directory::Mod`].
    pub fn sites(&self) -> u32 {
        match self {
            Directory::Mod(n) => *n,
            Directory::Explicit(map) => map.values().max().map_or(0, |&s| s + 1),
        }
    }

    /// Groups items by home site, preserving the input order within a site.
    pub fn group_by_site<T, I: IntoIterator<Item = (ItemId, T)>>(
        &self,
        items: I,
    ) -> BTreeMap<SiteId, Vec<(ItemId, T)>> {
        let mut out: BTreeMap<SiteId, Vec<(ItemId, T)>> = BTreeMap::new();
        for (item, tag) in items {
            let site = self
                .site_of(item)
                .unwrap_or_else(|| panic!("no site holds {item}"));
            out.entry(site).or_default().push((item, tag));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mod_directory_spreads_items() {
        let d = Directory::Mod(3);
        assert_eq!(d.site_of(ItemId(0)), Some(0));
        assert_eq!(d.site_of(ItemId(1)), Some(1));
        assert_eq!(d.site_of(ItemId(2)), Some(2));
        assert_eq!(d.site_of(ItemId(3)), Some(0));
    }

    #[test]
    fn explicit_directory() {
        let d = Directory::Explicit([(ItemId(1), 5), (ItemId(2), 5)].into());
        assert_eq!(d.site_of(ItemId(1)), Some(5));
        assert_eq!(d.site_of(ItemId(9)), None);
    }

    #[test]
    fn grouping() {
        let d = Directory::Mod(2);
        let groups = d.group_by_site([(ItemId(0), 'a'), (ItemId(1), 'b'), (ItemId(2), 'c')]);
        assert_eq!(groups[&0], vec![(ItemId(0), 'a'), (ItemId(2), 'c')]);
        assert_eq!(groups[&1], vec![(ItemId(1), 'b')]);
    }

    #[test]
    #[should_panic(expected = "no site holds")]
    fn grouping_unknown_item_panics() {
        let d = Directory::Explicit(BTreeMap::new());
        let _ = d.group_by_site([(ItemId(1), ())]);
    }
}
