//! # pv-protocol — the sans-IO polyvalue commit protocol
//!
//! The §3.1 protocol of the paper as *pure state machines*: a
//! [`SiteMachine`] bundles the coordinator role ([`Coordinator`]), the
//! participant role ([`Participant`], driven by the Figure-1 transition table
//! in [`participant`]), and the §3.3 recovery manager ([`RecoveryManager`]).
//! Drivers feed typed [`Input`] events in and apply the typed [`Output`]
//! effects that come back — no sockets, no clocks, no threads, no randomness
//! inside the protocol itself.
//!
//! Because the machine is pure and clonable, one protocol implementation
//! serves every runtime:
//!
//! * `pv-engine`'s `Cluster` drives it over the deterministic simulation;
//! * `LiveCluster` drives the same machine from real threads over channels;
//! * the crash-point harness crashes it at every WAL append;
//! * the [`explore`] module *exhaustively enumerates* every reachable
//!   message/timer/crash interleaving of a small cluster and asserts the
//!   protocol's invariants in each one.
//!
//! The module split mirrors the paper: [`coordinator`] is the read → evaluate
//! → prepare → decide pipeline, [`participant`] is Figure 1 (serving reads,
//! staging, and the wait-timeout edge that installs polyvalues), and
//! [`recovery`] is the §3.3 inquiry/outcome-forwarding machinery.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod coordinator;
pub mod directory;
pub mod explore;
pub mod ids;
pub mod locks;
pub mod machine;
pub mod messages;
pub mod participant;
pub mod paxos;
pub mod recovery;
pub mod timer;

pub use config::{CommitProtocol, EngineConfig, LockPolicy, UncertainOutputPolicy};
pub use coordinator::Coordinator;
pub use directory::Directory;
pub use explore::{ExploreConfig, ExploreReport, Explorer, InvariantViolation, WalkResult};
pub use ids::{coordinator_of, encode_txn};
pub use locks::LockTable;
pub use machine::{site_node, Input, MetricOp, Output, SiteMachine};
pub use messages::{AbortReason, AccessMode, Msg, TxnResult};
pub use participant::{
    all_transitions, render_figure1, transition, PartAction, PartEvent, PartPhase, Participant,
};
pub use paxos::Paxos;
pub use recovery::RecoveryManager;
pub use timer::TimerKey;
