//! Per-item lock table with no-wait conflict handling.
//!
//! Sites lock items while a transaction is between its read phase and its
//! outcome (strict two-phase locking). Conflicts are resolved *no-wait*: the
//! requester is refused and the coordinator aborts and the client retries
//! with backoff. Under the polyvalue protocol locks are released as soon as
//! the site installs in-doubt polyvalues — that early release is exactly the
//! availability the paper buys; the blocking baseline keeps them.
//!
//! The table is *sharded*: items hash (with a deterministic, seed-free
//! hasher) onto [`SHARDS`] independent hash maps, so a lookup touches one
//! small map instead of one big ordered tree. Determinism note: no code path
//! ever iterates a shard map — every multi-item answer ([`release_all`],
//! [`conflicts`]) is produced from per-transaction `BTreeSet`s and is sorted
//! — so the (unspecified) hash-map iteration order can never leak into
//! engine behaviour.
//!
//! [`release_all`]: LockTable::release_all
//! [`conflicts`]: LockTable::conflicts

use pv_core::{ItemId, TxnId};
use std::collections::{BTreeSet, HashMap};
use std::hash::{BuildHasher, Hasher};

/// Number of shards; a power of two so the shard index is a mask.
const SHARDS: usize = 16;

/// An FxHash-style multiply-rotate hasher. Deterministic across processes
/// and platforms (unlike `RandomState`), so sharding and map layout are
/// reproducible — and no per-process seed can perturb anything observable.
#[derive(Debug, Clone, Default)]
pub struct DetHasher(u64);

impl Hasher for DetHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.mix(b as u64);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

impl DetHasher {
    fn mix(&mut self, word: u64) {
        const K: u64 = 0x517c_c1b7_2722_0a95;
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

/// [`BuildHasher`] for [`DetHasher`] (zero state, fully deterministic).
#[derive(Debug, Clone, Default)]
pub struct DetState;

impl BuildHasher for DetState {
    type Hasher = DetHasher;

    fn build_hasher(&self) -> DetHasher {
        DetHasher::default()
    }
}

/// A hash map keyed with the deterministic hasher.
type DetMap<K, V> = HashMap<K, V, DetState>;

/// The lock state of one item.
#[derive(Debug, Clone, PartialEq, Eq)]
enum LockState {
    /// Shared by a set of readers.
    Read(BTreeSet<TxnId>),
    /// Held exclusively by one writer.
    Write(TxnId),
}

/// A site's lock table.
#[derive(Debug, Clone, Default)]
pub struct LockTable {
    shards: [DetMap<ItemId, LockState>; SHARDS],
    held: DetMap<TxnId, BTreeSet<ItemId>>,
}

/// The shard an item belongs to.
fn shard_of(item: ItemId) -> usize {
    let mut h = DetHasher::default();
    h.write_u64(item.0);
    (h.finish() as usize) & (SHARDS - 1)
}

impl LockTable {
    /// An empty table.
    pub fn new() -> Self {
        LockTable::default()
    }

    fn shard(&self, item: ItemId) -> &DetMap<ItemId, LockState> {
        &self.shards[shard_of(item)]
    }

    fn shard_mut(&mut self, item: ItemId) -> &mut DetMap<ItemId, LockState> {
        &mut self.shards[shard_of(item)]
    }

    /// Tries to acquire a shared lock; `false` on conflict (no-wait).
    /// Re-acquiring a lock the transaction already holds succeeds.
    pub fn try_read(&mut self, txn: TxnId, item: ItemId) -> bool {
        match self.shard_mut(item).get_mut(&item) {
            None => {
                self.shard_mut(item)
                    .insert(item, LockState::Read([txn].into()));
            }
            Some(LockState::Read(readers)) => {
                readers.insert(txn);
            }
            Some(LockState::Write(owner)) => {
                if *owner != txn {
                    return false;
                }
            }
        }
        self.held.entry(txn).or_default().insert(item);
        true
    }

    /// Tries to acquire an exclusive lock; `false` on conflict. A
    /// transaction that is the *sole* reader of the item upgrades in place.
    pub fn try_write(&mut self, txn: TxnId, item: ItemId) -> bool {
        match self.shard_mut(item).get_mut(&item) {
            None => {
                self.shard_mut(item).insert(item, LockState::Write(txn));
            }
            Some(LockState::Write(owner)) => {
                if *owner != txn {
                    return false;
                }
            }
            Some(state @ LockState::Read(_)) => {
                let LockState::Read(readers) = &*state else {
                    unreachable!()
                };
                if readers.len() == 1 && readers.contains(&txn) {
                    *state = LockState::Write(txn);
                } else {
                    return false;
                }
            }
        }
        self.held.entry(txn).or_default().insert(item);
        true
    }

    /// The transactions that would block `txn` from taking `item` in the
    /// given mode (empty = acquirable), in ascending order. Used by
    /// wound-wait to pick victims.
    pub fn conflicts(&self, txn: TxnId, item: ItemId, exclusive: bool) -> Vec<TxnId> {
        match self.shard(item).get(&item) {
            None => Vec::new(),
            Some(LockState::Write(owner)) => {
                if *owner == txn {
                    Vec::new()
                } else {
                    vec![*owner]
                }
            }
            Some(LockState::Read(readers)) => {
                if !exclusive {
                    return Vec::new();
                }
                readers.iter().copied().filter(|r| *r != txn).collect()
            }
        }
    }

    /// Releases every lock held by `txn`; returns the items released, in
    /// ascending order.
    pub fn release_all(&mut self, txn: TxnId) -> Vec<ItemId> {
        let Some(items) = self.held.remove(&txn) else {
            return Vec::new();
        };
        for &item in &items {
            match self.shards[shard_of(item)].get_mut(&item) {
                Some(LockState::Write(owner)) if *owner == txn => {
                    self.shards[shard_of(item)].remove(&item);
                }
                Some(LockState::Read(readers)) => {
                    readers.remove(&txn);
                    if readers.is_empty() {
                        self.shards[shard_of(item)].remove(&item);
                    }
                }
                _ => {}
            }
        }
        items.into_iter().collect()
    }

    /// Whether `txn` holds any lock.
    pub fn holds_any(&self, txn: TxnId) -> bool {
        self.held.get(&txn).is_some_and(|s| !s.is_empty())
    }

    /// Whether `item` is locked at all.
    pub fn is_locked(&self, item: ItemId) -> bool {
        self.shard(item).contains_key(&item)
    }

    /// Number of currently locked items.
    pub fn locked_count(&self) -> usize {
        self.shards.iter().map(HashMap::len).sum()
    }

    /// Drops every lock (volatile state lost in a crash).
    pub fn clear(&mut self) {
        for shard in &mut self.shards {
            shard.clear();
        }
        self.held.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> TxnId {
        TxnId(n)
    }

    fn i(n: u64) -> ItemId {
        ItemId(n)
    }

    #[test]
    fn shared_reads_coexist() {
        let mut l = LockTable::new();
        assert!(l.try_read(t(1), i(1)));
        assert!(l.try_read(t(2), i(1)));
        assert!(l.is_locked(i(1)));
        assert_eq!(l.locked_count(), 1);
    }

    #[test]
    fn write_excludes_everyone_else() {
        let mut l = LockTable::new();
        assert!(l.try_write(t(1), i(1)));
        assert!(!l.try_write(t(2), i(1)));
        assert!(!l.try_read(t(2), i(1)));
        // The owner can re-enter both ways.
        assert!(l.try_write(t(1), i(1)));
        assert!(l.try_read(t(1), i(1)));
    }

    #[test]
    fn read_blocks_write_from_others() {
        let mut l = LockTable::new();
        assert!(l.try_read(t(1), i(1)));
        assert!(!l.try_write(t(2), i(1)));
    }

    #[test]
    fn sole_reader_upgrades() {
        let mut l = LockTable::new();
        assert!(l.try_read(t(1), i(1)));
        assert!(l.try_write(t(1), i(1)));
        assert!(!l.try_read(t(2), i(1)), "upgraded lock must be exclusive");
    }

    #[test]
    fn shared_readers_cannot_upgrade() {
        let mut l = LockTable::new();
        assert!(l.try_read(t(1), i(1)));
        assert!(l.try_read(t(2), i(1)));
        assert!(!l.try_write(t(1), i(1)));
    }

    #[test]
    fn release_frees_items() {
        let mut l = LockTable::new();
        assert!(l.try_write(t(1), i(1)));
        assert!(l.try_read(t(1), i(2)));
        assert!(l.try_read(t(2), i(2)));
        assert!(l.holds_any(t(1)));
        let released = l.release_all(t(1));
        assert_eq!(released, vec![i(1), i(2)]);
        assert!(!l.holds_any(t(1)));
        // Item 1 is free; item 2 still read-locked by t2.
        assert!(l.try_write(t(3), i(1)));
        assert!(!l.try_write(t(3), i(2)));
        assert!(l.try_read(t(3), i(2)));
    }

    #[test]
    fn release_unknown_txn_is_empty() {
        let mut l = LockTable::new();
        assert!(l.release_all(t(9)).is_empty());
    }

    #[test]
    fn clear_drops_everything() {
        let mut l = LockTable::new();
        l.try_write(t(1), i(1));
        l.try_read(t(2), i(2));
        l.clear();
        assert_eq!(l.locked_count(), 0);
        assert!(!l.holds_any(t(1)));
        assert!(l.try_write(t(3), i(1)));
    }

    #[test]
    fn conflicts_lists_blockers() {
        let mut l = LockTable::new();
        assert!(l.conflicts(t(9), i(1), true).is_empty());
        l.try_write(t(1), i(1));
        assert_eq!(l.conflicts(t(9), i(1), false), vec![t(1)]);
        assert!(
            l.conflicts(t(1), i(1), true).is_empty(),
            "owner never self-conflicts"
        );
        l.try_read(t(2), i(2));
        l.try_read(t(3), i(2));
        assert!(
            l.conflicts(t(9), i(2), false).is_empty(),
            "shared read is fine"
        );
        assert_eq!(l.conflicts(t(9), i(2), true), vec![t(2), t(3)]);
        assert_eq!(l.conflicts(t(2), i(2), true), vec![t(3)]);
    }

    #[test]
    fn release_then_reacquire_cycle() {
        let mut l = LockTable::new();
        for round in 0..3 {
            assert!(l.try_write(t(round), i(1)), "round {round}");
            l.release_all(t(round));
        }
        assert_eq!(l.locked_count(), 0);
    }

    #[test]
    fn sharding_is_deterministic_and_spreads_items() {
        // The same item always lands on the same shard (the hasher has no
        // per-process seed), and a run of item ids uses more than one shard.
        let shards: Vec<usize> = (0..64).map(|n| shard_of(i(n))).collect();
        let again: Vec<usize> = (0..64).map(|n| shard_of(i(n))).collect();
        assert_eq!(shards, again);
        let distinct: BTreeSet<usize> = shards.iter().copied().collect();
        assert!(distinct.len() > SHARDS / 2, "64 items must spread widely");
    }

    #[test]
    fn cross_shard_release_stays_sorted() {
        // A transaction holding items on many shards must still release them
        // in ascending item order, whatever the shard layout.
        let mut l = LockTable::new();
        let items: Vec<ItemId> = (0..40).rev().map(i).collect();
        for &item in &items {
            assert!(l.try_write(t(1), item));
        }
        assert_eq!(l.locked_count(), 40);
        let released = l.release_all(t(1));
        let expected: Vec<ItemId> = (0..40).map(i).collect();
        assert_eq!(released, expected);
        assert_eq!(l.locked_count(), 0);
    }
}
